// At-least-once replay soak (ISSUE 6 satellite): randomized seeds drive a
// lossy, jittery, reordering link — with and without a mid-run stage crash —
// and the sink checks delivery coverage, duplicate side effects, and a
// byte-identical downstream order hash on same-seed replay.
//
// Seed count: GATES_SOAK_SEEDS env var (default 25 for CI). The nightly
// 1k-seed sweep is the DISABLED_ test below:
//   test_chaos --gtest_also_run_disabled_tests \
//              --gtest_filter='*FullThousandSeedSoak*'
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

/// What the sink observed: arrival order and per-sequence delivery counts.
struct SinkLog {
  std::vector<std::pair<StreamId, std::uint64_t>> order;
  std::map<std::pair<StreamId, std::uint64_t>, std::uint64_t> deliveries;
  /// Side effects applied idempotently (the at-least-once consumer
  /// pattern): one per unique sequence, replays suppressed by dedup.
  std::uint64_t side_effects = 0;

  std::uint64_t duplicates() const {
    std::uint64_t n = 0;
    for (const auto& [key, count] : deliveries) n += count - 1;
    return n;
  }

  /// FNV-1a over the (stream, sequence) arrival order — the downstream
  /// order hash compared across same-seed replays.
  std::uint64_t order_hash() const {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](std::uint64_t v) {
      for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ull;
      }
    };
    for (const auto& [stream, seq] : order) {
      mix(stream);
      mix(seq);
    }
    return h;
  }
};

class RecordingSink : public StreamProcessor {
 public:
  explicit RecordingSink(std::shared_ptr<SinkLog> log)
      : log_(std::move(log)) {}
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter&) override {
    const auto key = std::make_pair(packet.stream, packet.sequence);
    log_->order.push_back(key);
    if (++log_->deliveries[key] == 1) ++log_->side_effects;
  }
  std::string name() const override { return "recording-sink"; }

 private:
  std::shared_ptr<SinkLog> log_;
};

class Forward : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    emitter.emit(packet);
  }
  std::string name() const override { return "forward"; }
};

struct SoakResult {
  SinkLog log;
  RunReport report;
};

constexpr std::uint64_t kPackets = 400;

/// source (node 1) -> fwd (node 1) -> sink (node 0); the inter-node hop
/// runs retransmit-mode loss + jitter + bounded reordering. With `crash`,
/// node 1's fwd stage dies mid-run and fails over with retention replay.
SoakResult run_soak(std::uint64_t seed, bool crash) {
  PipelineSpec spec;
  Placement placement;
  StageSpec fwd;
  fwd.name = "fwd";
  fwd.factory = [] { return std::make_unique<Forward>(); };
  spec.stages.push_back(std::move(fwd));
  placement.stage_nodes.push_back(1);
  auto log = std::make_shared<SinkLog>();
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [log] { return std::make_unique<RecordingSink>(log); };
  spec.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);
  spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = 200;
  src.total_packets = kPackets;
  src.packet_bytes = 50;
  src.location = 1;
  src.target_stage = 0;
  spec.sources = {src};
  HostModel hosts;
  hosts.cpu_factor = {1.0, 1.0};
  net::Topology topology;
  net::ImpairmentSpec impair;
  impair.loss = 0.3;
  impair.loss_mode = net::LossMode::kRetransmit;
  impair.retransmit_delay = 0.02;
  impair.jitter = 0.05;
  impair.reorder = 0.5;
  impair.reorder_delay = 0.1;
  topology.set_pair(1, 0, {50e3, 0.02, impair});
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  cfg.seed = seed;
  cfg.failover.enabled = true;
  SimEngine engine(spec, placement, hosts, topology, cfg);
  if (crash) engine.schedule_node_failure(1, 1.0);
  EXPECT_TRUE(engine.run().is_ok());
  return {*log, engine.report()};
}

int soak_seed_count() {
  if (const char* env = std::getenv("GATES_SOAK_SEEDS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  return 25;
}

void check_soak_seed(std::uint64_t seed) {
  // Loss + reordering, no crash: retransmit-mode loss delays but never
  // drops, so every sequence arrives exactly once — no gaps, no dupes.
  const SoakResult clean = run_soak(seed, /*crash=*/false);
  EXPECT_TRUE(clean.report.completed) << "seed " << seed;
  EXPECT_EQ(clean.log.order.size(), kPackets) << "seed " << seed;
  EXPECT_EQ(clean.log.side_effects, kPackets) << "seed " << seed;
  EXPECT_EQ(clean.log.duplicates(), 0u) << "seed " << seed;

  // Same seed, same everything: the downstream order hash is byte-identical
  // on replay (the DES is a pure function of config + seed).
  const SoakResult replay = run_soak(seed, /*crash=*/false);
  EXPECT_EQ(clean.log.order_hash(), replay.log.order_hash())
      << "seed " << seed;
  EXPECT_EQ(clean.report.execution_time, replay.report.execution_time)
      << "seed " << seed;

  // Crash mid-run: at-least-once. Retention replay may duplicate, the
  // idempotent consumer suppresses duplicate side effects, and coverage is
  // bounded below by what the bounded retention window admits losing.
  const SoakResult crashed = run_soak(seed, /*crash=*/true);
  EXPECT_TRUE(crashed.report.completed) << "seed " << seed;
  ASSERT_FALSE(crashed.report.failures.empty()) << "seed " << seed;
  std::uint64_t lost_retention = 0;
  for (const FailureReport& f : crashed.report.failures) {
    lost_retention += f.packets_lost_retention;
  }
  EXPECT_GE(crashed.log.side_effects, kPackets - lost_retention)
      << "seed " << seed;
  if (crashed.log.side_effects < kPackets - lost_retention &&
      std::getenv("GATES_SOAK_DEBUG")) {
    std::fprintf(stderr, "DEBUG seed %llu: %s\n",
                 static_cast<unsigned long long>(seed),
                 crashed.report.to_json().c_str());
  }
  EXPECT_LE(crashed.log.side_effects, kPackets) << "seed " << seed;
  // Deterministic replay holds under failover too.
  const SoakResult crashed2 = run_soak(seed, /*crash=*/true);
  EXPECT_EQ(crashed.log.order_hash(), crashed2.log.order_hash())
      << "seed " << seed;
}

TEST(ReplaySoak, RandomizedSeedsKeepAtLeastOnceInvariants) {
  const int seeds = soak_seed_count();
  for (int i = 0; i < seeds; ++i) {
    check_soak_seed(1000 + 7 * static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

// Nightly-only: the full 1k-seed sweep the satellite calls for. ~minutes.
TEST(ReplaySoak, DISABLED_FullThousandSeedSoak) {
  for (int i = 0; i < 1000; ++i) {
    check_soak_seed(static_cast<std::uint64_t>(i));
    if (HasFatalFailure()) return;
  }
}

}  // namespace
}  // namespace gates::core
