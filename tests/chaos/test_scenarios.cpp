// Chaos scenarios end to end: builders, the Sim soak across the whole
// scenario matrix (deterministic replay), and a live Rt crash-flap run.
#include <gtest/gtest.h>

#include <memory>

#include "gates/chaos/runner.hpp"
#include "gates/chaos/scenario.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/obs/trace.hpp"

namespace gates::chaos {
namespace {

class CountingProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter& emitter) override {
    ++packets_;
    if (forward_) emitter.emit(packet);
  }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
  bool forward_ = true;
};

struct Built {
  core::PipelineSpec spec;
  core::Placement placement;
  core::HostModel hosts;
  net::Topology topology;
};

/// source (node 1) -> fwd (node 1) -> sink (node 0) over a 20 KB/s WAN pair
/// link: the flow the scenarios impair, with a crashable mid-pipeline stage.
Built wan_pipeline(std::uint64_t packets, double rate) {
  Built b;
  core::StageSpec fwd;
  fwd.name = "fwd";
  fwd.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages.push_back(std::move(fwd));
  b.placement.stage_nodes.push_back(1);
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    auto p = std::make_unique<CountingProcessor>();
    p->forward_ = false;
    return p;
  };
  b.spec.stages.push_back(std::move(sink));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 1, 0}};
  core::SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 50;
  src.location = 1;
  src.target_stage = 0;
  b.spec.sources = {src};
  b.hosts.cpu_factor = {1.0, 1.0};
  b.topology.set_pair(1, 0, {20e3, 0.01, {}});
  return b;
}

ChaosTarget wan_target(const Built& b) {
  ChaosTarget target;
  target.from = 1;
  target.to = 0;
  target.base = b.topology.between(1, 0);
  target.victim_node = 1;
  target.victim_stage = 0;  // fwd
  return target;
}

core::SimEngine::Config sim_config(std::uint64_t seed = 5) {
  core::SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  cfg.seed = seed;
  cfg.failover.enabled = true;
  return cfg;
}

TEST(Scenarios, BuildersProduceSortedSchedules) {
  Built b = wan_pipeline(100, 100);
  const ChaosTarget target = wan_target(b);
  for (const std::string& name : scenario_names()) {
    ChaosScenario s;
    ASSERT_TRUE(scenario_by_name(name, target, 20.0, &s)) << name;
    EXPECT_EQ(s.name, name);
    EXPECT_FALSE(s.actions.empty()) << name;
    for (std::size_t i = 1; i < s.actions.size(); ++i) {
      EXPECT_LE(s.actions[i - 1].time, s.actions[i].time) << name;
    }
    EXPECT_GT(s.last_transition, 0.0) << name;
    EXPECT_LE(s.last_transition, 20.0) << name;
  }
  ChaosScenario unknown;
  EXPECT_FALSE(scenario_by_name("nope", target, 20.0, &unknown));
}

TEST(Scenarios, CrashFlapComposesKillsAndTransitions) {
  Built b = wan_pipeline(100, 100);
  const ChaosScenario s = crash_flap(wan_target(b), 10.0);
  EXPECT_TRUE(s.has_kills);
  ASSERT_EQ(s.expected_failed_nodes.size(), 1u);
  EXPECT_EQ(s.expected_failed_nodes[0], 1u);
  bool saw_link_change = false, saw_crash = false, saw_recovery = false;
  for (const ChaosAction& a : s.actions) {
    if (a.kind == ChaosAction::Kind::kLinkChange) saw_link_change = true;
    if (a.kind == ChaosAction::Kind::kNodeFailure) saw_crash = true;
    if (a.kind == ChaosAction::Kind::kNodeRecovery) saw_recovery = true;
  }
  EXPECT_TRUE(saw_link_change);
  EXPECT_TRUE(saw_crash);
  EXPECT_TRUE(saw_recovery);
}

TEST(Scenarios, PartitionScenarioBlocksWithoutLosing) {
  const ChaosScenario s = partition(wan_target(wan_pipeline(1, 1)), 8.0);
  ASSERT_EQ(s.actions.size(), 2u);
  EXPECT_GE(s.actions[0].spec.impair.loss, 1.0);
  EXPECT_EQ(s.actions[0].spec.impair.loss_mode, net::LossMode::kRetransmit);
  EXPECT_GT(s.actions[0].spec.impair.retransmit_delay, 0.0);
  EXPECT_FALSE(s.lossy_drop);  // retransmit partitions lose nothing
}

/// Runs one scenario against the Sim WAN pipeline and returns the chaos
/// report (trace is captured for the Eq. 4 invariant).
ChaosReport run_sim_scenario(const std::string& name, std::uint64_t seed) {
  auto& buffer = obs::TraceBuffer::global();
  buffer.set_enabled(true);
  buffer.clear();
  Built b = wan_pipeline(2000, 250);  // 8 s of data
  ChaosScenario scenario;
  EXPECT_TRUE(scenario_by_name(name, wan_target(b), 8.0, &scenario));
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                         sim_config(seed));
  apply_to_sim(engine, scenario, b.placement);
  EXPECT_TRUE(engine.run().is_ok());
  ChaosReport report = make_report(scenario, "sim", seed, engine.report(),
                                   buffer.events());
  buffer.set_enabled(false);
  buffer.clear();
  return report;
}

TEST(Scenarios, SimSoakMatrixPassesAllInvariants) {
  for (const std::string& name : scenario_names()) {
    const ChaosReport report = run_sim_scenario(name, 5);
    for (const InvariantResult& r : report.invariants) {
      EXPECT_TRUE(r.passed)
          << name << ": " << r.name << " — " << r.detail;
    }
    EXPECT_TRUE(report.all_passed()) << name;
  }
}

TEST(Scenarios, SimChaosRunIsDeterministic) {
  // The acceptance-criteria composition, replayed under a fixed seed: the
  // whole run — failover included — is a pure function of (config, seed).
  const ChaosReport a = run_sim_scenario("crash-flap", 23);
  const ChaosReport b = run_sim_scenario("crash-flap", 23);
  EXPECT_EQ(a.run.execution_time, b.run.execution_time);
  ASSERT_EQ(a.run.failures.size(), b.run.failures.size());
  for (std::size_t i = 0; i < a.run.failures.size(); ++i) {
    EXPECT_EQ(a.run.failures[i].detected_at, b.run.failures[i].detected_at);
    EXPECT_EQ(a.run.failures[i].packets_replayed,
              b.run.failures[i].packets_replayed);
  }
  ASSERT_EQ(a.run.links.size(), b.run.links.size());
  for (std::size_t i = 0; i < a.run.links.size(); ++i) {
    EXPECT_EQ(a.run.links[i].messages_retransmitted,
              b.run.links[i].messages_retransmitted);
  }
}

TEST(Scenarios, RtCrashFlapSoak) {
  // Live-thread variant, time-scaled: flapping link + stage crash composed,
  // driven by the timer thread while run() blocks.
  auto& buffer = obs::TraceBuffer::global();
  buffer.set_enabled(true);
  buffer.clear();
  Built b = wan_pipeline(1000, 500);  // 2 s of data
  ChaosScenario scenario;
  ASSERT_TRUE(scenario_by_name("crash-flap", wan_target(b), 2.0, &scenario));
  core::RtEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  cfg.seed = 5;
  cfg.failover.enabled = true;
  cfg.failover.heartbeat_period = 0.05;
  cfg.max_wall_time = 30;
  core::RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  prepare_rt(engine, scenario);
  RtChaosDriver driver(engine, scenario);
  driver.start();
  ASSERT_TRUE(engine.run().is_ok());
  driver.finish();
  const ChaosReport report =
      make_report(scenario, "rt", cfg.seed, engine.report(), buffer.events());
  buffer.set_enabled(false);
  buffer.clear();
  for (const InvariantResult& r : report.invariants) {
    EXPECT_TRUE(r.passed) << r.name << " — " << r.detail;
  }
  // The crashed fwd stage was restarted and the sink still finished.
  ASSERT_FALSE(report.run.failures.empty());
  EXPECT_TRUE(report.all_passed());
}

}  // namespace
}  // namespace gates::chaos
