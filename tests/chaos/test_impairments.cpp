// Link impairments at the SimLink and SimEngine level: loss modes, burst
// loss, jitter/reordering, transition classification, and determinism.
#include <gtest/gtest.h>

#include <deque>
#include <memory>

#include "gates/core/sim_engine.hpp"
#include "gates/net/link.hpp"
#include "gates/net/link_profile.hpp"
#include "gates/obs/trace.hpp"

namespace gates::net {
namespace {

class RecordingSink : public MessageSink {
 public:
  bool try_deliver(SimMessage&& msg) override {
    delivered_.push_back(std::move(msg));
    return true;
  }
  std::deque<SimMessage> delivered_;
};

SimMessage make_msg(std::size_t bytes, MessageSink* sink, int seq = 0) {
  SimMessage msg;
  msg.wire_bytes = bytes;
  msg.sink = sink;
  msg.payload = seq;
  return msg;
}

SimLink::Config impaired(ImpairmentSpec impair, Bandwidth bw = 1000.0,
                         Duration latency = 0.0, std::uint64_t seed = 11) {
  SimLink::Config cfg;
  cfg.name = "l";
  cfg.bandwidth = bw;
  cfg.latency = latency;
  cfg.impair = impair;
  cfg.rng = Rng(seed);
  return cfg;
}

TEST(Impairments, RetransmitLossDeliversEverythingSlower) {
  // 50 x 100 B at 1000 B/s = 5 s clean. Loss 0.5 in retransmit mode keeps
  // every message but re-serializes about half of the transmissions.
  sim::Simulation sim;
  RecordingSink sink;
  ImpairmentSpec impair;
  impair.loss = 0.5;
  impair.loss_mode = LossMode::kRetransmit;
  SimLink link(sim, impaired(impair));
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(link.send(make_msg(100, &sink)));
  sim.run();
  EXPECT_EQ(sink.delivered_.size(), 50u);
  EXPECT_EQ(link.stats().messages_lost, 0u);
  EXPECT_GT(link.stats().messages_retransmitted, 10u);
  EXPECT_GT(sim.now(), 6.0);  // clean run takes 5 s
}

TEST(Impairments, DropLossIsPermanentAndAccounted) {
  sim::Simulation sim;
  RecordingSink sink;
  ImpairmentSpec impair;
  impair.loss = 0.5;
  impair.loss_mode = LossMode::kDrop;
  SimLink link(sim, impaired(impair));
  for (int i = 0; i < 100; ++i) ASSERT_TRUE(link.send(make_msg(100, &sink)));
  sim.run();
  EXPECT_EQ(sink.delivered_.size() + link.stats().messages_lost, 100u);
  EXPECT_GT(link.stats().messages_lost, 20u);
  EXPECT_LT(link.stats().messages_lost, 80u);
  EXPECT_EQ(link.stats().messages_retransmitted, 0u);
}

TEST(Impairments, RetransmitTimeoutPausesTheLink) {
  // One message, loss 1.0 would retry forever; heal the link at t=2 and the
  // message still lands. The RTO bounds the retry event rate meanwhile.
  sim::Simulation sim;
  RecordingSink sink;
  ImpairmentSpec impair;
  impair.loss = 1.0;
  impair.loss_mode = LossMode::kRetransmit;
  impair.retransmit_delay = 0.05;
  SimLink link(sim, impaired(impair));
  ASSERT_TRUE(link.send(make_msg(100, &sink)));
  sim.schedule_at(2.0, [&] { link.set_profile(ImpairmentSpec{}); });
  sim.run();
  ASSERT_EQ(sink.delivered_.size(), 1u);
  EXPECT_GE(sim.now(), 2.0);  // blocked until the heal
  EXPECT_GT(link.stats().messages_retransmitted, 10u);
}

TEST(Impairments, GilbertElliottLossIsDeterministicPerSeed) {
  auto run_once = [](std::uint64_t seed) {
    sim::Simulation sim;
    RecordingSink sink;
    ImpairmentSpec impair;
    impair.burst = true;
    impair.p_good_bad = 0.1;
    impair.p_bad_good = 0.3;
    impair.loss_bad = 0.9;
    impair.loss_mode = LossMode::kDrop;
    SimLink link(sim, impaired(impair, 1000.0, 0.0, seed));
    for (int i = 0; i < 200; ++i) EXPECT_TRUE(link.send(make_msg(10, &sink)));
    sim.run();
    return link.stats().messages_lost;
  };
  const auto a = run_once(3);
  EXPECT_GT(a, 0u);
  EXPECT_EQ(a, run_once(3));   // same seed, same channel trajectory
  EXPECT_NE(a, run_once(17));  // different stream diverges (overwhelmingly)
}

TEST(Impairments, ReorderingOvertakesInTheSim) {
  // Every other message held back 0.5 s while serialization takes 0.01 s:
  // held messages are overtaken by several successors.
  sim::Simulation sim;
  RecordingSink sink;
  ImpairmentSpec impair;
  impair.reorder = 0.5;
  impair.reorder_delay = 0.5;
  SimLink link(sim, impaired(impair, 10000.0));
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(link.send(make_msg(100, &sink, i)));
  }
  sim.run();
  ASSERT_EQ(sink.delivered_.size(), 40u);
  bool out_of_order = false;
  for (std::size_t i = 1; i < sink.delivered_.size(); ++i) {
    if (std::any_cast<int>(sink.delivered_[i].payload) <
        std::any_cast<int>(sink.delivered_[i - 1].payload)) {
      out_of_order = true;
    }
  }
  EXPECT_TRUE(out_of_order);
  EXPECT_GT(link.stats().messages_jittered, 5u);
}

TEST(Impairments, JitterSpreadsDeliveryTimes) {
  sim::Simulation sim;
  RecordingSink sink;
  ImpairmentSpec impair;
  impair.jitter = 0.3;
  SimLink link(sim, impaired(impair));
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(link.send(make_msg(100, &sink)));
  sim.run();
  EXPECT_EQ(sink.delivered_.size(), 20u);
  EXPECT_EQ(link.stats().messages_jittered, 20u);
  // Last arrival can trail the clean finish (2 s) by up to the jitter bound.
  EXPECT_GT(sim.now(), 2.0);
  EXPECT_LE(sim.now(), 2.0 + 0.3 + 1e-9);
}

TEST(Impairments, ClassifyTransitionKinds) {
  LinkSpec base{1000.0, 0.01, {}};
  LinkSpec degraded = base;
  degraded.bandwidth = 500.0;
  EXPECT_EQ(classify_transition(base, degraded), LinkTransition::kDegrade);
  LinkSpec delayed = base;
  delayed.latency = 0.5;
  EXPECT_EQ(classify_transition(base, delayed), LinkTransition::kDegrade);
  LinkSpec lossy = base;
  lossy.impair.loss = 0.1;
  EXPECT_EQ(classify_transition(base, lossy), LinkTransition::kDegrade);
  LinkSpec cut = base;
  cut.impair.loss = 1.0;
  EXPECT_EQ(classify_transition(base, cut), LinkTransition::kPartition);
  LinkSpec burst_cut = base;
  burst_cut.impair.burst = true;
  burst_cut.impair.loss_bad = 1.0;
  burst_cut.impair.p_bad_good = 0.0;
  EXPECT_EQ(classify_transition(base, burst_cut), LinkTransition::kPartition);
  EXPECT_EQ(classify_transition(base, base), LinkTransition::kRestore);
}

TEST(Impairments, WorstCaseOneWayBudgetsJitterAndReorder) {
  Topology topology;
  LinkSpec wan{1000.0, 0.1, {}};
  wan.impair.jitter = 0.05;
  wan.impair.reorder = 0.2;
  wan.impair.reorder_delay = 0.3;
  topology.set_pair(1, 0, wan);
  EXPECT_NEAR(wan.worst_case_one_way(), 0.45, 1e-12);
  EXPECT_NEAR(topology.worst_case_one_way(0), 0.45, 1e-12);
  EXPECT_NEAR(topology.worst_case_one_way(), 0.45, 1e-12);
}

}  // namespace
}  // namespace gates::net

namespace gates::core {
namespace {

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet&, Emitter&) override { ++packets_; }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// One remote source (node 1) into a sink (node 0) over a 1 KB/s pair link.
Built remote_sink(std::uint64_t packets = 100, double rate = 1000) {
  Built b;
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(sink)};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 100;
  src.location = 1;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0};
  b.hosts.cpu_factor = {1.0, 1.0};
  b.topology.set_pair(1, 0, {1000.0, 0.0, {}});
  return b;
}

SimEngine::Config zero_wire() {
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  return cfg;
}

TEST(ImpairedEngine, ScheduledLinkChangeStretchesAndTraces) {
  // Clean run: 100 x 100 B at 1 KB/s = 10 s. Degrading to 500 B/s with 30%
  // retransmit loss for the middle half stretches it; the transitions land
  // in the trace as degrade + restore.
  auto& buffer = obs::TraceBuffer::global();
  buffer.set_enabled(true);
  buffer.clear();

  auto b = remote_sink();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  net::LinkSpec degraded{500.0, 0.0, {}};
  degraded.impair.loss = 0.3;
  engine.schedule_link_change(1, 0, 3.0, degraded);
  engine.schedule_link_change(1, 0, 8.0, net::LinkSpec{1000.0, 0.0, {}});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  EXPECT_GT(engine.report().execution_time, 11.0);

  bool saw_degrade = false, saw_restore = false;
  for (const auto& e : buffer.events()) {
    if (e.kind == obs::TraceKind::kLinkDegrade) saw_degrade = true;
    if (e.kind == obs::TraceKind::kLinkRestore) saw_restore = true;
  }
  EXPECT_TRUE(saw_degrade);
  EXPECT_TRUE(saw_restore);
  buffer.set_enabled(false);
  buffer.clear();

  // Link accounting reaches the run report.
  ASSERT_FALSE(engine.report().links.empty());
  std::uint64_t retransmitted = 0;
  for (const auto& l : engine.report().links) {
    retransmitted += l.messages_retransmitted;
  }
  EXPECT_GT(retransmitted, 0u);
}

TEST(ImpairedEngine, ImpairedRunIsDeterministic) {
  auto run_once = [] {
    auto b = remote_sink();
    net::LinkSpec wan = b.topology.between(1, 0);
    wan.impair.loss = 0.2;
    wan.impair.jitter = 0.05;
    wan.impair.reorder = 0.3;
    wan.impair.reorder_delay = 0.1;
    b.topology.set_pair(1, 0, wan);
    auto cfg = zero_wire();
    cfg.seed = 99;
    SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
    EXPECT_TRUE(engine.run().is_ok());
    return engine.report().execution_time;
  };
  const double t1 = run_once();
  EXPECT_GT(t1, 10.0);           // impairments cost something
  EXPECT_EQ(t1, run_once());     // bit-identical across runs
}

TEST(ImpairedEngine, PartitionBlocksUntilHealed) {
  auto b = remote_sink();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  net::LinkSpec cut = b.topology.between(1, 0);
  cut.impair.loss = 1.0;
  cut.impair.retransmit_delay = 0.05;
  engine.schedule_link_change(1, 0, 2.0, cut);
  engine.schedule_link_change(1, 0, 6.0, b.topology.between(1, 0));
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  // Nothing was lost: the sink still saw all 100 packets.
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(0));
  EXPECT_EQ(sink.packets_, 100u);
  // The 4 s outage pushed completion past the clean 10 s.
  EXPECT_GT(engine.report().execution_time, 12.0);
}

}  // namespace
}  // namespace gates::core
