// Heartbeat/lease behavior under pure propagation delay: slow links must
// never look like dead nodes (ISSUE 6 satellite). The failure detector's
// lease is auto-widened to cover the worst one-way heartbeat delay, and
// detection latency honestly includes that delay when a node really dies.
#include <gtest/gtest.h>

#include <memory>

#include "gates/core/failover.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

TEST(LeaseBeats, FastLinksKeepConfiguredBeats) {
  // worst one-way well inside the lease: the configured value stands.
  EXPECT_EQ(lease_beats_for_delay(1.0, 0.25, 3), 3u);
  EXPECT_EQ(lease_beats_for_delay(0.5, 0.0, 3), 3u);
  EXPECT_EQ(lease_beats_for_delay(0.5, -1.0, 3), 3u);
}

TEST(LeaseBeats, SlowLinksWidenTheLease) {
  // needed = period + 2*worst. period 1, worst 2 -> 5 beats exactly.
  EXPECT_EQ(lease_beats_for_delay(1.0, 2.0, 3), 5u);
  // Non-integral ratio rounds up: period 0.1, worst 0.25 -> 0.6/0.1 = 6.
  EXPECT_EQ(lease_beats_for_delay(0.1, 0.25, 2), 6u);
  // Fractional result: period 0.4, worst 0.5 -> 1.4/0.4 = 3.5 -> 4 beats.
  EXPECT_EQ(lease_beats_for_delay(0.4, 0.5, 3), 4u);
}

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    if (forward_) emitter.emit(packet);
  }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
  bool forward_ = true;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// source (node 1) -> fwd (node 1) -> sink (node 0); the 1<->0 pair link
/// carries `one_way` seconds of propagation delay in each direction.
Built delayed_pipeline(Duration one_way, std::uint64_t packets, double rate) {
  Built b;
  StageSpec fwd;
  fwd.name = "fwd";
  fwd.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages.push_back(std::move(fwd));
  b.placement.stage_nodes.push_back(1);
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    auto p = std::make_unique<CountingProcessor>();
    p->forward_ = false;
    return p;
  };
  b.spec.stages.push_back(std::move(sink));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 50;
  src.location = 1;
  src.target_stage = 0;
  b.spec.sources = {src};
  b.hosts.cpu_factor = {1.0, 1.0};
  b.topology.set_pair(1, 0, {1e6, one_way, {}});
  return b;
}

SimEngine::Config failover_config(Duration period, std::size_t beats) {
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  cfg.seed = 5;
  cfg.failover.enabled = true;
  cfg.failover.heartbeat_period = period;
  cfg.failover.suspicion_beats = beats;
  return cfg;
}

TEST(HeartbeatDelay, HalfSecondRttNeverTriggersFailover) {
  // 500 ms RTT (250 ms each way) against a lease of only
  // period * beats = 0.1 * 2 = 0.2 s — shorter than ONE one-way hop. The
  // detector must auto-widen the lease rather than declare healthy nodes
  // dead on delay alone.
  Built b = delayed_pipeline(/*one_way=*/0.25, 2000, 250);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   failover_config(0.1, 2));
  ASSERT_TRUE(engine.run().is_ok());
  const RunReport& report = engine.report();
  EXPECT_TRUE(report.completed);
  EXPECT_TRUE(report.failures.empty())
      << report.failures.size() << " false failover(s) on a healthy grid";
  ASSERT_NE(report.stage("sink"), nullptr);
  EXPECT_EQ(report.stage("sink")->packets_processed, 2000u);
}

TEST(HeartbeatDelay, DetectionLatencyIncludesPropagationDelay) {
  // A real crash on a slow link is detected later — by exactly the extra
  // heartbeat flight time — and must never be reported as detected before
  // the lease plus delay could have expired.
  FailureReport fast, slow;
  for (const Duration one_way : {0.0, 0.25}) {
    Built b = delayed_pipeline(one_way, 2000, 250);
    SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                     failover_config(0.5, 3));
    engine.schedule_node_failure(1, 2.0);
    ASSERT_TRUE(engine.run().is_ok());
    const RunReport& report = engine.report();
    ASSERT_FALSE(report.failures.empty());
    (one_way == 0.0 ? fast : slow) = report.failures.front();
  }
  // Both detect no earlier than the lease after the crash...
  EXPECT_GE(fast.detection_latency(), 1.5);
  EXPECT_GE(slow.detection_latency(), 1.5);
  // ...and the slow link shifts detection later by its one-way delay.
  EXPECT_NEAR(slow.detected_at - fast.detected_at, 0.25, 1e-9);
}

TEST(HeartbeatDelay, CrashOnSlowLinkStillRecovers) {
  // Delay-aware leases must not break real failover: the fwd stage on the
  // slow link crashes, is re-placed, and the run still completes.
  Built b = delayed_pipeline(/*one_way=*/0.25, 2000, 250);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   failover_config(0.5, 3));
  engine.schedule_node_failure(1, 2.0);
  ASSERT_TRUE(engine.run().is_ok());
  const RunReport& report = engine.report();
  EXPECT_TRUE(report.completed);
  ASSERT_FALSE(report.failures.empty());
  EXPECT_EQ(report.failures.front().outcome,
            FailureReport::Outcome::kRecovered);
}

}  // namespace
}  // namespace gates::core
