#include <gtest/gtest.h>

#include "gates/xml/xml.hpp"

namespace gates::xml {
namespace {

TEST(XmlParser, MinimalDocument) {
  auto doc = parse("<root/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->name(), "root");
  EXPECT_TRUE(doc->root->children().empty());
}

TEST(XmlParser, AttributesPreserveOrder) {
  auto doc = parse(R"(<e b="2" a="1" c="3"/>)");
  ASSERT_TRUE(doc.ok());
  const auto& attrs = doc->root->attrs();
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].first, "b");
  EXPECT_EQ(attrs[1].first, "a");
  EXPECT_EQ(attrs[2].first, "c");
  EXPECT_EQ(doc->root->attr("a").value(), "1");
}

TEST(XmlParser, SingleQuotedAttributes) {
  auto doc = parse("<e a='x y'/>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->attr("a").value(), "x y");
}

TEST(XmlParser, NestedElementsAndText) {
  auto doc = parse("<a><b>hello</b><c><d/></c></a>");
  ASSERT_TRUE(doc.ok());
  ASSERT_EQ(doc->root->children().size(), 2u);
  EXPECT_EQ(doc->root->child("b")->trimmed_text(), "hello");
  EXPECT_NE(doc->root->find("c/d"), nullptr);
  EXPECT_EQ(doc->root->find("c/x"), nullptr);
}

TEST(XmlParser, PrologAndComments) {
  auto doc = parse(
      "<?xml version=\"1.0\"?>\n"
      "<!-- a comment -->\n"
      "<root><!-- inner --><child/></root>\n"
      "<!-- trailing -->");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->children().size(), 1u);
}

TEST(XmlParser, EntityDecoding) {
  auto doc = parse("<e a=\"&lt;&gt;&amp;&quot;&apos;\">&lt;text&gt;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->attr("a").value(), "<>&\"'");
  EXPECT_EQ(doc->root->trimmed_text(), "<text>");
}

TEST(XmlParser, NumericCharacterReferences) {
  auto doc = parse("<e>&#65;&#x42;</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->trimmed_text(), "AB");
}

TEST(XmlParser, NumericReferenceUtf8Encoding) {
  auto doc = parse("<e>&#233;</e>");  // é
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->trimmed_text(), "\xC3\xA9");
}

TEST(XmlParser, Cdata) {
  auto doc = parse("<e><![CDATA[<not-parsed attr=\"1\">&amp;]]></e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "<not-parsed attr=\"1\">&amp;");
}

TEST(XmlParser, MixedTextConcatenates) {
  auto doc = parse("<e>one<child/>two</e>");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->text(), "onetwo");
  EXPECT_EQ(doc->root->children().size(), 1u);
}

TEST(XmlParser, ChildrenNamedAndRequiredAttr) {
  auto doc = parse(R"(<e><p name="a"/><q/><p name="b"/></e>)");
  ASSERT_TRUE(doc.ok());
  auto ps = doc->root->children_named("p");
  ASSERT_EQ(ps.size(), 2u);
  EXPECT_EQ(ps[1]->required_attr("name").value(), "b");
  EXPECT_FALSE(ps[0]->required_attr("missing").ok());
}

TEST(XmlParser, WhitespaceInTagsTolerated) {
  auto doc = parse("<e  a = \"1\"  ></e >");
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->root->attr("a").value(), "1");
}

struct MalformedCase {
  const char* name;
  const char* input;
};

class XmlParserMalformed : public ::testing::TestWithParam<MalformedCase> {};

TEST_P(XmlParserMalformed, IsRejected) {
  auto doc = parse(GetParam().input);
  EXPECT_FALSE(doc.ok()) << GetParam().input;
  EXPECT_EQ(doc.status().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    Malformed, XmlParserMalformed,
    ::testing::Values(
        MalformedCase{"empty", ""},
        MalformedCase{"text_only", "just text"},
        MalformedCase{"unclosed_root", "<root>"},
        MalformedCase{"mismatched_close", "<a><b></a></b>"},
        MalformedCase{"unterminated_comment", "<a><!-- oops</a>"},
        MalformedCase{"unterminated_cdata", "<a><![CDATA[x</a>"},
        MalformedCase{"unterminated_attr", "<a b=\"1/>"},
        MalformedCase{"unquoted_attr", "<a b=1/>"},
        MalformedCase{"missing_equals", "<a b \"1\"/>"},
        MalformedCase{"duplicate_attr", "<a b=\"1\" b=\"2\"/>"},
        MalformedCase{"two_roots", "<a/><b/>"},
        MalformedCase{"trailing_garbage", "<a/>junk"},
        MalformedCase{"bad_entity", "<a>&bogus;</a>"},
        MalformedCase{"unterminated_entity", "<a>&lt</a>"},
        MalformedCase{"bad_numeric_entity", "<a>&#xZZ;</a>"},
        MalformedCase{"lt_in_attr", "<a b=\"<\"/>"},
        MalformedCase{"bad_name_start", "<1a/>"},
        MalformedCase{"stray_close", "</a>"}),
    [](const auto& info) { return info.param.name; });

TEST(XmlParser, ReportsErrorLocation) {
  ParseError error;
  auto doc = parse_with_location("<a>\n  <b>\n</a>", &error);
  ASSERT_FALSE(doc.ok());
  EXPECT_EQ(error.line, 3);
  EXPECT_FALSE(error.to_string().empty());
}

TEST(XmlParser, DeeplyNestedDocument) {
  std::string input;
  const int depth = 200;
  for (int i = 0; i < depth; ++i) input += "<n>";
  for (int i = 0; i < depth; ++i) input += "</n>";
  auto doc = parse(input);
  ASSERT_TRUE(doc.ok());
  const Element* cur = doc->root.get();
  int levels = 1;
  while ((cur = cur->child("n")) != nullptr) ++levels;
  EXPECT_EQ(levels, depth);
}

}  // namespace
}  // namespace gates::xml
