#include <gtest/gtest.h>

#include "gates/common/rng.hpp"
#include "gates/xml/xml.hpp"

namespace gates::xml {
namespace {

TEST(XmlWriter, EscapesSpecials) {
  EXPECT_EQ(escape("<a&b>\"'"), "&lt;a&amp;b&gt;&quot;&apos;");
  EXPECT_EQ(escape("plain"), "plain");
}

TEST(XmlWriter, EmptyElementSelfCloses) {
  Element e("root");
  EXPECT_EQ(write(e), "<root/>\n");
}

TEST(XmlWriter, AttributesAndText) {
  Element e("root");
  e.set_attr("a", "1<2");
  e.append_text("hi & bye");
  EXPECT_EQ(write(e), "<root a=\"1&lt;2\">hi &amp; bye</root>\n");
}

TEST(XmlWriter, DocumentHasProlog) {
  Document doc;
  doc.root = std::make_unique<Element>("r");
  const std::string out = write(doc);
  EXPECT_EQ(out.substr(0, 5), "<?xml");
}

TEST(XmlWriter, NestedIndentation) {
  Element root("a");
  root.add_child("b").add_child("c");
  EXPECT_EQ(write(root), "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n");
}

TEST(XmlWriter, ParseWriteRoundTripPreservesStructure) {
  const char* input = R"(<app name="x">
    <stage code="builtin://a" capacity="10"><param name="k" value="v &amp; w"/></stage>
    <stage code="builtin://b"/>
  </app>)";
  auto doc1 = parse(input);
  ASSERT_TRUE(doc1.ok());
  auto doc2 = parse(write(*doc1));
  ASSERT_TRUE(doc2.ok());
  EXPECT_EQ(doc2->root->children().size(), 2u);
  EXPECT_EQ(doc2->root->children()[0]->child("param")->attr("value").value(),
            "v & w");
}

// Property: write(parse(write(random tree))) is stable.
void compare_trees(const Element& a, const Element& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.attrs(), b.attrs());
  ASSERT_EQ(a.children().size(), b.children().size());
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    compare_trees(*a.children()[i], *b.children()[i]);
  }
}

void build_random(Element& e, Rng& rng, int depth) {
  const int attrs = static_cast<int>(rng.next_below(3));
  for (int i = 0; i < attrs; ++i) {
    e.set_attr("a" + std::to_string(i),
               std::string("v<&\">'") + std::to_string(rng.next_below(100)));
  }
  if (depth <= 0) return;
  const int kids = static_cast<int>(rng.next_below(4));
  for (int i = 0; i < kids; ++i) {
    build_random(e.add_child("n" + std::to_string(rng.next_below(5))), rng,
                 depth - 1);
  }
}

class XmlRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(XmlRoundTrip, RandomTreeSurvivesRoundTrip) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  Element root("root");
  build_random(root, rng, 4);
  auto parsed = parse(write(root));
  ASSERT_TRUE(parsed.ok());
  compare_trees(root, *parsed->root);
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlRoundTrip, ::testing::Range(0, 12));

}  // namespace
}  // namespace gates::xml
