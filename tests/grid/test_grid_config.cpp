#include "gates/grid/grid_config.hpp"

#include <gtest/gtest.h>

namespace gates::grid {
namespace {

const char* kGrid = R"(<?xml version="1.0"?>
<grid name="demo">
  <node id="0" hostname="central" cpu="2.0" memory-mb="8192"/>
  <node id="1" hostname="edge1"/>
  <node id="2" hostname="edge2" available="false"/>
  <default-link bandwidth="1e6" latency="0.002"/>
  <link from="1" to="0" bandwidth="100e3" latency="0.01"/>
  <shared-ingress node="0" bandwidth="50e3"/>
</grid>)";

TEST(GridConfig, ParsesNodesLinksAndIngress) {
  auto config = parse_grid_config(kGrid);
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_EQ(config->name, "demo");
  ASSERT_EQ(config->directory.size(), 3u);
  EXPECT_EQ(config->directory.node(0)->hostname, "central");
  EXPECT_DOUBLE_EQ(config->directory.node(0)->resources.cpu_factor, 2.0);
  EXPECT_DOUBLE_EQ(config->directory.node(1)->resources.cpu_factor, 1.0);
  EXPECT_FALSE(config->directory.node(2)->available);

  EXPECT_DOUBLE_EQ(config->topology.default_link().bandwidth, 1e6);
  EXPECT_DOUBLE_EQ(config->topology.default_link().latency, 0.002);
  EXPECT_DOUBLE_EQ(config->topology.between(1, 0).bandwidth, 100e3);
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).bandwidth, 1e6);  // default
  ASSERT_TRUE(config->topology.shared_ingress(0).has_value());
  EXPECT_DOUBLE_EQ(config->topology.shared_ingress(0)->bandwidth, 50e3);
}

TEST(GridConfig, HostModelFollowsNodes) {
  auto config = parse_grid_config(kGrid);
  ASSERT_TRUE(config.ok());
  auto hosts = config->directory.host_model();
  EXPECT_DOUBLE_EQ(hosts.at(0), 2.0);
  EXPECT_DOUBLE_EQ(hosts.at(1), 1.0);
}

struct BadGridCase {
  const char* name;
  const char* xml;
};

class GridConfigRejects : public ::testing::TestWithParam<BadGridCase> {};

TEST_P(GridConfigRejects, MalformedConfig) {
  EXPECT_FALSE(parse_grid_config(GetParam().xml).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GridConfigRejects,
    ::testing::Values(
        BadGridCase{"not_xml", "nope"},
        BadGridCase{"wrong_root", "<gird/>"},
        BadGridCase{"no_nodes", "<grid/>"},
        BadGridCase{"sparse_ids", "<grid><node id='0'/><node id='2'/></grid>"},
        BadGridCase{"missing_id", "<grid><node/></grid>"},
        BadGridCase{"bad_cpu", "<grid><node id='0' cpu='-1'/></grid>"},
        BadGridCase{"bad_available",
                    "<grid><node id='0' available='perhaps'/></grid>"},
        BadGridCase{"link_unknown_node",
                    "<grid><node id='0'/><link from='0' to='9'/></grid>"},
        BadGridCase{"link_bad_bandwidth",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' bandwidth='0'/></grid>"},
        BadGridCase{"ingress_missing_bandwidth",
                    "<grid><node id='0'/><shared-ingress node='0'/></grid>"},
        BadGridCase{"ingress_unknown_node",
                    "<grid><node id='0'/>"
                    "<shared-ingress node='3' bandwidth='1e3'/></grid>"},
        BadGridCase{"default_link_bad_latency",
                    "<grid><node id='0'/>"
                    "<default-link bandwidth='1e3' latency='-1'/></grid>"}),
    [](const auto& info) { return info.param.name; });

TEST(GridConfig, LinkInheritsDefaultLatency) {
  auto config = parse_grid_config(R"(
    <grid>
      <node id="0"/><node id="1"/>
      <default-link bandwidth="1e5" latency="0.5"/>
      <link from="0" to="1" bandwidth="7e3"/>
    </grid>)");
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).bandwidth, 7e3);
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).latency, 0.5);
}

}  // namespace
}  // namespace gates::grid
