#include "gates/grid/grid_config.hpp"

#include <gtest/gtest.h>

namespace gates::grid {
namespace {

const char* kGrid = R"(<?xml version="1.0"?>
<grid name="demo">
  <node id="0" hostname="central" cpu="2.0" memory-mb="8192"/>
  <node id="1" hostname="edge1"/>
  <node id="2" hostname="edge2" available="false"/>
  <default-link bandwidth="1e6" latency="0.002"/>
  <link from="1" to="0" bandwidth="100e3" latency="0.01"/>
  <shared-ingress node="0" bandwidth="50e3"/>
</grid>)";

TEST(GridConfig, ParsesNodesLinksAndIngress) {
  auto config = parse_grid_config(kGrid);
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_EQ(config->name, "demo");
  ASSERT_EQ(config->directory.size(), 3u);
  EXPECT_EQ(config->directory.node(0)->hostname, "central");
  EXPECT_DOUBLE_EQ(config->directory.node(0)->resources.cpu_factor, 2.0);
  EXPECT_DOUBLE_EQ(config->directory.node(1)->resources.cpu_factor, 1.0);
  EXPECT_FALSE(config->directory.node(2)->available);

  EXPECT_DOUBLE_EQ(config->topology.default_link().bandwidth, 1e6);
  EXPECT_DOUBLE_EQ(config->topology.default_link().latency, 0.002);
  EXPECT_DOUBLE_EQ(config->topology.between(1, 0).bandwidth, 100e3);
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).bandwidth, 1e6);  // default
  ASSERT_TRUE(config->topology.shared_ingress(0).has_value());
  EXPECT_DOUBLE_EQ(config->topology.shared_ingress(0)->bandwidth, 50e3);
}

TEST(GridConfig, ParsesCoresListPerNode) {
  auto config = parse_grid_config(R"(<grid>
    <node id="0" cores="0,2,4-7"/>
    <node id="1"/>
  </grid>)");
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_EQ(config->directory.node(0)->resources.cores,
            (std::vector<int>{0, 2, 4, 5, 6, 7}));
  EXPECT_TRUE(config->directory.node(1)->resources.cores.empty());
}

TEST(GridConfig, HostModelFollowsNodes) {
  auto config = parse_grid_config(kGrid);
  ASSERT_TRUE(config.ok());
  auto hosts = config->directory.host_model();
  EXPECT_DOUBLE_EQ(hosts.at(0), 2.0);
  EXPECT_DOUBLE_EQ(hosts.at(1), 1.0);
}

struct BadGridCase {
  const char* name;
  const char* xml;
};

class GridConfigRejects : public ::testing::TestWithParam<BadGridCase> {};

TEST_P(GridConfigRejects, MalformedConfig) {
  EXPECT_FALSE(parse_grid_config(GetParam().xml).ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, GridConfigRejects,
    ::testing::Values(
        BadGridCase{"not_xml", "nope"},
        BadGridCase{"wrong_root", "<gird/>"},
        BadGridCase{"no_nodes", "<grid/>"},
        BadGridCase{"sparse_ids", "<grid><node id='0'/><node id='2'/></grid>"},
        BadGridCase{"missing_id", "<grid><node/></grid>"},
        BadGridCase{"bad_cpu", "<grid><node id='0' cpu='-1'/></grid>"},
        BadGridCase{"bad_available",
                    "<grid><node id='0' available='perhaps'/></grid>"},
        BadGridCase{"link_unknown_node",
                    "<grid><node id='0'/><link from='0' to='9'/></grid>"},
        BadGridCase{"link_bad_bandwidth",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' bandwidth='0'/></grid>"},
        BadGridCase{"ingress_missing_bandwidth",
                    "<grid><node id='0'/><shared-ingress node='0'/></grid>"},
        BadGridCase{"ingress_unknown_node",
                    "<grid><node id='0'/>"
                    "<shared-ingress node='3' bandwidth='1e3'/></grid>"},
        BadGridCase{"default_link_bad_latency",
                    "<grid><node id='0'/>"
                    "<default-link bandwidth='1e3' latency='-1'/></grid>"},
        BadGridCase{"cores_negative", "<grid><node id='0' cores='-1'/></grid>"},
        BadGridCase{"cores_reversed_range",
                    "<grid><node id='0' cores='7-4'/></grid>"},
        BadGridCase{"cores_duplicate",
                    "<grid><node id='0' cores='0,1,1'/></grid>"},
        BadGridCase{"cores_garbage",
                    "<grid><node id='0' cores='0,two'/></grid>"}),
    [](const auto& info) { return info.param.name; });

TEST(GridConfig, LinkInheritsDefaultLatency) {
  auto config = parse_grid_config(R"(
    <grid>
      <node id="0"/><node id="1"/>
      <default-link bandwidth="1e5" latency="0.5"/>
      <link from="0" to="1" bandwidth="7e3"/>
    </grid>)");
  ASSERT_TRUE(config.ok());
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).bandwidth, 7e3);
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).latency, 0.5);
}

TEST(GridConfig, ParsesLinkImpairments) {
  auto config = parse_grid_config(R"(
    <grid>
      <node id="0"/><node id="1"/>
      <link from="1" to="0" bandwidth="56e3" latency="0.05"
            loss="0.02" loss-mode="drop" jitter="0.01"
            reorder="0.1" reorder-delay="0.08"/>
      <link from="0" to="1" bandwidth="56e3" latency="0.05"
            burst="true" p-good-bad="0.01" p-bad-good="0.2"
            loss-good="0.001" loss-bad="0.4"
            loss-mode="retransmit" retransmit-delay="0.2"/>
    </grid>)");
  ASSERT_TRUE(config.ok()) << config.status().to_string();

  const net::ImpairmentSpec& iid = config->topology.between(1, 0).impair;
  EXPECT_DOUBLE_EQ(iid.loss, 0.02);
  EXPECT_EQ(iid.loss_mode, net::LossMode::kDrop);
  EXPECT_DOUBLE_EQ(iid.jitter, 0.01);
  EXPECT_DOUBLE_EQ(iid.reorder, 0.1);
  EXPECT_DOUBLE_EQ(iid.reorder_delay, 0.08);
  EXPECT_FALSE(iid.burst);

  const net::ImpairmentSpec& ge = config->topology.between(0, 1).impair;
  EXPECT_TRUE(ge.burst);
  EXPECT_DOUBLE_EQ(ge.p_good_bad, 0.01);
  EXPECT_DOUBLE_EQ(ge.p_bad_good, 0.2);
  EXPECT_DOUBLE_EQ(ge.loss_good, 0.001);
  EXPECT_DOUBLE_EQ(ge.loss_bad, 0.4);
  EXPECT_EQ(ge.loss_mode, net::LossMode::kRetransmit);
  EXPECT_DOUBLE_EQ(ge.retransmit_delay, 0.2);
}

TEST(GridConfig, DefaultLinkImpairmentIsInherited) {
  auto config = parse_grid_config(R"(
    <grid>
      <node id="0"/><node id="1"/>
      <default-link bandwidth="1e5" latency="0.01" loss="0.05"/>
      <link from="0" to="1" bandwidth="7e3" loss="0"/>
    </grid>)");
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_DOUBLE_EQ(config->topology.between(1, 0).impair.loss, 0.05);
  EXPECT_DOUBLE_EQ(config->topology.between(0, 1).impair.loss, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    ImpairmentCases, GridConfigRejects,
    ::testing::Values(
        BadGridCase{"loss_above_one",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' loss='1.5'/></grid>"},
        BadGridCase{"loss_negative",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' loss='-0.1'/></grid>"},
        BadGridCase{"unknown_loss_mode",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' loss-mode='teleport'/></grid>"},
        BadGridCase{"bad_burst_flag",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' burst='maybe'/></grid>"},
        BadGridCase{"negative_jitter",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' jitter='-0.01'/></grid>"},
        BadGridCase{"ge_probability_out_of_range",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' p-good-bad='2'/></grid>"},
        BadGridCase{"negative_retransmit_delay",
                    "<grid><node id='0'/><node id='1'/>"
                    "<link from='0' to='1' retransmit-delay='-1'/></grid>"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gates::grid
