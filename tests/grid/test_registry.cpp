#include "gates/grid/registry.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gates/common/serialize.hpp"

namespace gates::grid {
namespace {

class DummyProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet&, core::Emitter&) override {}
  std::string name() const override { return "dummy"; }
};

TEST(ProcessorRegistry, AddAndLookup) {
  ProcessorRegistry registry;
  ASSERT_TRUE(registry.add("dummy", [] {
    return std::make_unique<DummyProcessor>();
  }).is_ok());
  EXPECT_TRUE(registry.contains("dummy"));
  auto factory = registry.lookup("dummy");
  ASSERT_TRUE(factory.ok());
  EXPECT_EQ((*factory)()->name(), "dummy");
}

TEST(ProcessorRegistry, DuplicateNameRejected) {
  ProcessorRegistry registry;
  auto factory = [] { return std::make_unique<DummyProcessor>(); };
  ASSERT_TRUE(registry.add("x", factory).is_ok());
  auto status = registry.add("x", factory);
  EXPECT_EQ(status.code(), StatusCode::kAlreadyExists);
}

TEST(ProcessorRegistry, NullFactoryRejected) {
  ProcessorRegistry registry;
  EXPECT_EQ(registry.add("x", nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(ProcessorRegistry, UnknownLookupIsNotFound) {
  ProcessorRegistry registry;
  EXPECT_EQ(registry.lookup("ghost").status().code(), StatusCode::kNotFound);
}

TEST(ProcessorRegistry, NamesAreSorted) {
  ProcessorRegistry registry;
  auto factory = [] { return std::make_unique<DummyProcessor>(); };
  (void)registry.add("zeta", factory);
  (void)registry.add("alpha", factory);
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

TEST(GeneratorRegistry, BuiltinZerosGenerator) {
  GeneratorRegistry registry;
  Properties props;
  props.set("bytes", "32");
  auto gen = registry.make("zeros", props);
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  auto packet = (*gen)(0, rng);
  EXPECT_EQ(packet.payload_bytes(), 32u);
}

TEST(GeneratorRegistry, BuiltinZipfGenerator) {
  GeneratorRegistry registry;
  Properties props;
  props.set("universe", "100");
  props.set("theta", "1.0");
  auto gen = registry.make("zipf-u64", props);
  ASSERT_TRUE(gen.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    auto packet = (*gen)(i, rng);
    ASSERT_EQ(packet.payload_bytes(), 8u);
    Deserializer d(packet.payload);
    std::uint64_t v;
    ASSERT_TRUE(d.read_u64(v).is_ok());
    ASSERT_LT(v, 100u);
  }
}

TEST(GeneratorRegistry, ZipfValidatesProperties) {
  GeneratorRegistry registry;
  Properties props;
  props.set("universe", "0");
  EXPECT_FALSE(registry.make("zipf-u64", props).ok());
  Properties props2;
  props2.set("theta", "-1");
  EXPECT_FALSE(registry.make("zipf-u64", props2).ok());
}

TEST(GeneratorRegistry, UnknownGeneratorIsNotFound) {
  GeneratorRegistry registry;
  EXPECT_EQ(registry.make("nope", {}).status().code(), StatusCode::kNotFound);
}

TEST(GeneratorRegistry, CustomGeneratorRegisters) {
  GeneratorRegistry registry;
  ASSERT_TRUE(registry
                  .add("custom",
                       [](const Properties&) -> StatusOr<core::PacketGenerator> {
                         return core::PacketGenerator(
                             [](std::uint64_t, Rng&) { return core::Packet{}; });
                       })
                  .is_ok());
  EXPECT_TRUE(registry.contains("custom"));
  EXPECT_EQ(registry.add("custom", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(GeneratorRegistry, GlobalHasBuiltins) {
  EXPECT_TRUE(GeneratorRegistry::global().contains("zeros"));
  EXPECT_TRUE(GeneratorRegistry::global().contains("zipf-u64"));
}

}  // namespace
}  // namespace gates::grid
