#include "gates/grid/container.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gates::grid {
namespace {

class DummyProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet&, core::Emitter&) override {}
  std::string name() const override { return "dummy"; }
};

core::ProcessorFactory dummy_factory() {
  return [] { return std::make_unique<DummyProcessor>(); };
}

TEST(GatesServiceInstance, HappyPathLifecycle) {
  GatesServiceInstance instance("stage", 3);
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kCreated);
  EXPECT_EQ(instance.node(), 3u);

  ASSERT_TRUE(instance.upload_code(dummy_factory()).is_ok());
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kCustomized);

  auto processor = instance.instantiate();
  ASSERT_TRUE(processor.ok());
  EXPECT_EQ((*processor)->name(), "dummy");
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kRunning);

  instance.stop();
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kStopped);
}

TEST(GatesServiceInstance, InstantiateBeforeUploadFails) {
  GatesServiceInstance instance("stage", 0);
  auto processor = instance.instantiate();
  EXPECT_EQ(processor.status().code(), StatusCode::kFailedPrecondition);
}

TEST(GatesServiceInstance, DoubleUploadFails) {
  GatesServiceInstance instance("stage", 0);
  ASSERT_TRUE(instance.upload_code(dummy_factory()).is_ok());
  EXPECT_EQ(instance.upload_code(dummy_factory()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(GatesServiceInstance, NullCodeRejected) {
  GatesServiceInstance instance("stage", 0);
  EXPECT_EQ(instance.upload_code(nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(GatesServiceInstance, DoubleInstantiateFails) {
  GatesServiceInstance instance("stage", 0);
  ASSERT_TRUE(instance.upload_code(dummy_factory()).is_ok());
  ASSERT_TRUE(instance.instantiate().ok());
  EXPECT_EQ(instance.instantiate().status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(GatesServiceInstance, NullProducingFactorySurfacesInternal) {
  GatesServiceInstance instance("stage", 0);
  ASSERT_TRUE(instance
                  .upload_code([]() -> std::unique_ptr<core::StreamProcessor> {
                    return nullptr;
                  })
                  .is_ok());
  EXPECT_EQ(instance.instantiate().status().code(), StatusCode::kInternal);
}

TEST(GatesServiceInstance, RestartAllowsReinstantiation) {
  GatesServiceInstance instance("stage", 0);
  ASSERT_TRUE(instance.upload_code(dummy_factory()).is_ok());
  ASSERT_TRUE(instance.instantiate().ok());
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kRunning);

  ASSERT_TRUE(instance.restart().is_ok());
  EXPECT_EQ(instance.state(), GatesServiceInstance::State::kCustomized);
  // The retained code produces a fresh processor for the restarted worker.
  auto processor = instance.instantiate();
  ASSERT_TRUE(processor.ok());
  EXPECT_EQ((*processor)->name(), "dummy");
}

TEST(GatesServiceInstance, RestartRequiresRunningState) {
  GatesServiceInstance instance("stage", 0);
  EXPECT_EQ(instance.restart().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(instance.upload_code(dummy_factory()).is_ok());
  EXPECT_EQ(instance.restart().code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(instance.instantiate().ok());
  instance.stop();
  EXPECT_EQ(instance.restart().code(), StatusCode::kFailedPrecondition);
}

TEST(ServiceContainer, TracksInstances) {
  ServiceContainer container(7);
  EXPECT_EQ(container.node(), 7u);
  auto& a = container.create_instance("a");
  auto& b = container.create_instance("b");
  EXPECT_EQ(container.instance_count(), 2u);
  EXPECT_EQ(a.stage_name(), "a");
  EXPECT_EQ(b.node(), 7u);
}

TEST(ServiceContainer, StopAllStopsEveryInstance) {
  ServiceContainer container(0);
  container.create_instance("a");
  container.create_instance("b");
  container.stop_all();
  for (const auto& instance : container.instances()) {
    EXPECT_EQ(instance->state(), GatesServiceInstance::State::kStopped);
  }
}

TEST(ServiceState, NamesAreStable) {
  EXPECT_STREQ(service_state_name(GatesServiceInstance::State::kCreated),
               "CREATED");
  EXPECT_STREQ(service_state_name(GatesServiceInstance::State::kRunning),
               "RUNNING");
}

}  // namespace
}  // namespace gates::grid
