#include "gates/grid/repository.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gates::grid {
namespace {

class DummyProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet&, core::Emitter&) override {}
  std::string name() const override { return "dummy"; }
};

ProcessorRegistry registry_with_dummy() {
  ProcessorRegistry registry;
  (void)registry.add("dummy", [] { return std::make_unique<DummyProcessor>(); });
  return registry;
}

TEST(ApplicationRepository, PublishAndFetch) {
  ApplicationRepository repo("r");
  ASSERT_TRUE(repo.publish("stages/x", {"dummy", "2.1", "desc"}).is_ok());
  auto entry = repo.fetch("stages/x");
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(entry->processor_name, "dummy");
  EXPECT_EQ(entry->version, "2.1");
  EXPECT_EQ(repo.size(), 1u);
}

TEST(ApplicationRepository, DuplicatePathRejected) {
  ApplicationRepository repo("r");
  ASSERT_TRUE(repo.publish("p", {"dummy", "1", ""}).is_ok());
  EXPECT_EQ(repo.publish("p", {"other", "1", ""}).code(),
            StatusCode::kAlreadyExists);
}

TEST(ApplicationRepository, EmptyProcessorNameRejected) {
  ApplicationRepository repo("r");
  EXPECT_EQ(repo.publish("p", {"", "1", ""}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ApplicationRepository, MissingPathIsNotFound) {
  ApplicationRepository repo("r");
  EXPECT_EQ(repo.fetch("ghost").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryRegistry, CreateAndGet) {
  RepositoryRegistry registry;
  auto repo = registry.create("apps");
  ASSERT_TRUE(repo.ok());
  EXPECT_EQ((*repo)->name(), "apps");
  EXPECT_TRUE(registry.get("apps").ok());
  EXPECT_EQ(registry.create("apps").status().code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(registry.get("ghost").status().code(), StatusCode::kNotFound);
}

TEST(RepositoryRegistry, ResolvesBuiltinScheme) {
  RepositoryRegistry repos;
  auto processors = registry_with_dummy();
  auto factory = repos.resolve("builtin://dummy", processors);
  ASSERT_TRUE(factory.ok());
  EXPECT_EQ((*factory)()->name(), "dummy");
}

TEST(RepositoryRegistry, ResolvesRepoScheme) {
  RepositoryRegistry repos;
  auto repo = repos.create("apps");
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE((*repo)->publish("stages/s1", {"dummy", "1", ""}).is_ok());
  auto processors = registry_with_dummy();
  auto factory = repos.resolve("repo://apps/stages/s1", processors);
  ASSERT_TRUE(factory.ok());
  EXPECT_EQ((*factory)()->name(), "dummy");
}

TEST(RepositoryRegistry, ResolveErrors) {
  RepositoryRegistry repos;
  auto processors = registry_with_dummy();
  // Unknown scheme.
  EXPECT_EQ(repos.resolve("http://x/y", processors).status().code(),
            StatusCode::kInvalidArgument);
  // Malformed URI.
  EXPECT_FALSE(repos.resolve("not-a-uri", processors).ok());
  // Unknown repository.
  EXPECT_EQ(repos.resolve("repo://ghost/p", processors).status().code(),
            StatusCode::kNotFound);
  // Known repository, unknown path.
  (void)repos.create("apps");
  EXPECT_EQ(repos.resolve("repo://apps/ghost", processors).status().code(),
            StatusCode::kNotFound);
  // Entry referencing an unregistered processor.
  ASSERT_TRUE(
      (*repos.get("apps"))->publish("p", {"unregistered", "1", ""}).is_ok());
  EXPECT_EQ(repos.resolve("repo://apps/p", processors).status().code(),
            StatusCode::kNotFound);
  // Builtin referencing an unregistered processor.
  EXPECT_EQ(repos.resolve("builtin://ghost", processors).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace gates::grid
