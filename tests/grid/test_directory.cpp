#include "gates/grid/directory.hpp"

#include <gtest/gtest.h>

namespace gates::grid {
namespace {

TEST(ResourceDirectory, RegistersWithDenseIds) {
  ResourceDirectory dir;
  EXPECT_EQ(dir.register_node("a", {}), 0u);
  EXPECT_EQ(dir.register_node("b", {}), 1u);
  EXPECT_EQ(dir.size(), 2u);
  EXPECT_EQ(dir.node(1)->hostname, "b");
}

TEST(ResourceDirectory, UnknownNodeIsNotFound) {
  ResourceDirectory dir;
  EXPECT_FALSE(dir.node(0).ok());
  EXPECT_FALSE(dir.set_available(5, false).is_ok());
}

TEST(ResourceDirectory, SatisfiesChecksCpuAndMemory) {
  ResourceDirectory dir;
  ResourceSpec weak;
  weak.cpu_factor = 0.5;
  weak.memory_mb = 128;
  dir.register_node("weak", weak);

  core::ResourceRequirement req;
  req.min_cpu_factor = 1.0;
  EXPECT_FALSE(dir.satisfies(0, req));
  req.min_cpu_factor = 0.5;
  EXPECT_TRUE(dir.satisfies(0, req));
  req.min_memory_mb = 256;
  EXPECT_FALSE(dir.satisfies(0, req));
  EXPECT_FALSE(dir.satisfies(99, req));
}

TEST(ResourceDirectory, UnavailableNodesAreExcluded) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  ASSERT_TRUE(dir.set_available(0, false).is_ok());
  EXPECT_FALSE(dir.satisfies(0, {}));
  EXPECT_TRUE(dir.query({}).empty());
  ASSERT_TRUE(dir.set_available(0, true).is_ok());
  EXPECT_EQ(dir.query({}).size(), 1u);
}

TEST(ResourceDirectory, QueryReturnsAscendingMatches) {
  ResourceDirectory dir;
  ResourceSpec big;
  big.cpu_factor = 4;
  dir.register_node("n0", {});
  dir.register_node("n1", big);
  dir.register_node("n2", big);
  core::ResourceRequirement req;
  req.min_cpu_factor = 2;
  EXPECT_EQ(dir.query(req), (std::vector<NodeId>{1, 2}));
}

TEST(ResourceDirectory, HostModelMirrorsCpuFactors) {
  ResourceDirectory dir;
  ResourceSpec fast;
  fast.cpu_factor = 2.5;
  dir.register_node("slow", {});
  dir.register_node("fast", fast);
  auto model = dir.host_model();
  EXPECT_DOUBLE_EQ(model.at(0), 1.0);
  EXPECT_DOUBLE_EQ(model.at(1), 2.5);
}

}  // namespace
}  // namespace gates::grid
