#include "gates/grid/directory.hpp"

#include <gtest/gtest.h>

namespace gates::grid {
namespace {

TEST(ResourceDirectory, RegistersWithDenseIds) {
  ResourceDirectory dir;
  EXPECT_EQ(dir.register_node("a", {}), 0u);
  EXPECT_EQ(dir.register_node("b", {}), 1u);
  EXPECT_EQ(dir.size(), 2u);
  EXPECT_EQ(dir.node(1)->hostname, "b");
}

TEST(ResourceDirectory, UnknownNodeIsNotFound) {
  ResourceDirectory dir;
  EXPECT_FALSE(dir.node(0).ok());
  EXPECT_FALSE(dir.set_available(5, false).is_ok());
}

TEST(ResourceDirectory, SatisfiesChecksCpuAndMemory) {
  ResourceDirectory dir;
  ResourceSpec weak;
  weak.cpu_factor = 0.5;
  weak.memory_mb = 128;
  dir.register_node("weak", weak);

  core::ResourceRequirement req;
  req.min_cpu_factor = 1.0;
  EXPECT_FALSE(dir.satisfies(0, req));
  req.min_cpu_factor = 0.5;
  EXPECT_TRUE(dir.satisfies(0, req));
  req.min_memory_mb = 256;
  EXPECT_FALSE(dir.satisfies(0, req));
  EXPECT_FALSE(dir.satisfies(99, req));
}

TEST(ResourceDirectory, UnavailableNodesAreExcluded) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  ASSERT_TRUE(dir.set_available(0, false).is_ok());
  EXPECT_FALSE(dir.satisfies(0, {}));
  EXPECT_TRUE(dir.query({}).empty());
  ASSERT_TRUE(dir.set_available(0, true).is_ok());
  EXPECT_EQ(dir.query({}).size(), 1u);
}

TEST(ResourceDirectory, QueryReturnsAscendingMatches) {
  ResourceDirectory dir;
  ResourceSpec big;
  big.cpu_factor = 4;
  dir.register_node("n0", {});
  dir.register_node("n1", big);
  dir.register_node("n2", big);
  core::ResourceRequirement req;
  req.min_cpu_factor = 2;
  EXPECT_EQ(dir.query(req), (std::vector<NodeId>{1, 2}));
}

TEST(ResourceDirectory, FreshNodeIsAliveForOneLeaseFromZero) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  // Never beat: trusted for one lease (0.5 * 3 = 1.5 s) from time 0.
  EXPECT_EQ(dir.health(0, 1.0), NodeHealth::kAlive);
  EXPECT_EQ(dir.health(0, 2.0), NodeHealth::kSuspect);
}

TEST(ResourceDirectory, HeartbeatExtendsTheLease) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  ASSERT_TRUE(dir.heartbeat(0, 10.0).is_ok());
  EXPECT_EQ(dir.health(0, 11.0), NodeHealth::kAlive);
  EXPECT_EQ(dir.health(0, 11.5), NodeHealth::kAlive);  // exactly the lease
  EXPECT_EQ(dir.health(0, 11.6), NodeHealth::kSuspect);
}

TEST(ResourceDirectory, HealthConfigScalesTheLease) {
  ResourceDirectory dir;
  HealthConfig health;
  health.heartbeat_period = 1.0;
  health.suspicion_beats = 5;
  dir.set_health_config(health);
  dir.register_node("a", {});
  ASSERT_TRUE(dir.heartbeat(0, 0.0).is_ok());
  EXPECT_EQ(dir.health(0, 4.9), NodeHealth::kAlive);
  EXPECT_EQ(dir.health(0, 5.1), NodeHealth::kSuspect);
}

TEST(ResourceDirectory, MarkFailedIsDeadUntilItBeatsAgain) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  ASSERT_TRUE(dir.heartbeat(0, 1.0).is_ok());
  ASSERT_TRUE(dir.mark_failed(0).is_ok());
  EXPECT_EQ(dir.health(0, 1.1), NodeHealth::kDead);
  // A beating node has demonstrably recovered.
  ASSERT_TRUE(dir.heartbeat(0, 2.0).is_ok());
  EXPECT_EQ(dir.health(0, 2.1), NodeHealth::kAlive);
}

TEST(ResourceDirectory, UnavailableNodeIsDead) {
  ResourceDirectory dir;
  dir.register_node("a", {});
  ASSERT_TRUE(dir.set_available(0, false).is_ok());
  EXPECT_EQ(dir.health(0, 0.0), NodeHealth::kDead);
}

TEST(ResourceDirectory, HealthOfUnknownNodeIsDead) {
  ResourceDirectory dir;
  EXPECT_EQ(dir.health(42, 0.0), NodeHealth::kDead);
}

TEST(ResourceDirectory, QueryHealthyFiltersSuspectsAndDead) {
  ResourceDirectory dir;
  dir.register_node("alive", {});
  dir.register_node("stale", {});
  dir.register_node("failed", {});
  ASSERT_TRUE(dir.heartbeat(0, 10.0).is_ok());
  ASSERT_TRUE(dir.heartbeat(1, 5.0).is_ok());  // lease long expired at 10.5
  ASSERT_TRUE(dir.heartbeat(2, 10.0).is_ok());
  ASSERT_TRUE(dir.mark_failed(2).is_ok());
  EXPECT_EQ(dir.query_healthy({}, 10.5), (std::vector<NodeId>{0}));
}

TEST(ResourceDirectory, HeartbeatOnUnknownNodeFails) {
  ResourceDirectory dir;
  EXPECT_FALSE(dir.heartbeat(3, 0.0).is_ok());
  EXPECT_FALSE(dir.mark_failed(3).is_ok());
}

TEST(ResourceDirectory, FindBetterThanPicksTheFastestStrictImprovement) {
  ResourceDirectory dir;
  ResourceSpec slow, fast, faster;
  slow.cpu_factor = 1.0;
  fast.cpu_factor = 2.0;
  faster.cpu_factor = 4.0;
  dir.register_node("current", slow);   // node 0
  dir.register_node("fast", fast);      // node 1
  dir.register_node("faster", faster);  // node 2
  dir.register_node("peer", faster);    // node 3: ties node 2 at the top
  // Fresh nodes are alive for one lease from t=0.
  EXPECT_EQ(dir.find_better_than(0, {}, 0.0), 2u);
  // From a top node, an equal peer never counts as an improvement — strict
  // ordering is what prevents migration ping-pong between equals.
  EXPECT_EQ(dir.find_better_than(2, {}, 0.0), kInvalidNode);
  EXPECT_EQ(dir.find_better_than(3, {}, 0.0), kInvalidNode);
}

TEST(ResourceDirectory, FindBetterThanHonorsRequirementAndHealth) {
  ResourceDirectory dir;
  ResourceSpec slow, fast;
  slow.cpu_factor = 1.0;
  slow.memory_mb = 8192;
  fast.cpu_factor = 4.0;
  fast.memory_mb = 512;
  dir.register_node("current", slow);  // node 0
  dir.register_node("fast", fast);     // node 1: faster, but memory-starved
  core::ResourceRequirement req;
  req.min_memory_mb = 1024;
  EXPECT_EQ(dir.find_better_than(0, req, 0.0), kInvalidNode);
  // Without the memory floor node 1 wins — until its lease lapses: a
  // migration must never target a node the detector would declare dead.
  EXPECT_EQ(dir.find_better_than(0, {}, 0.0), 1u);
  ASSERT_TRUE(dir.heartbeat(1, 0.0).is_ok());
  EXPECT_EQ(dir.find_better_than(0, {}, 100.0), kInvalidNode);
}

TEST(NodeHealth, NamesAreStable) {
  EXPECT_STREQ(node_health_name(NodeHealth::kAlive), "alive");
  EXPECT_STREQ(node_health_name(NodeHealth::kSuspect), "suspect");
  EXPECT_STREQ(node_health_name(NodeHealth::kDead), "dead");
}

TEST(ResourceDirectory, HostModelMirrorsCpuFactors) {
  ResourceDirectory dir;
  ResourceSpec fast;
  fast.cpu_factor = 2.5;
  dir.register_node("slow", {});
  dir.register_node("fast", fast);
  auto model = dir.host_model();
  EXPECT_DOUBLE_EQ(model.at(0), 1.0);
  EXPECT_DOUBLE_EQ(model.at(1), 2.5);
}

}  // namespace
}  // namespace gates::grid
