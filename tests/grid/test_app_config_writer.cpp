#include <gtest/gtest.h>

#include "gates/grid/app_config.hpp"

namespace gates::grid {
namespace {

const char* kConfig = R"(
<application name="roundtrip">
  <stages>
    <stage name="summary" code="builtin://count-samps-summary" capacity="150">
      <requirement min-cpu="0.5" min-memory-mb="128"/>
      <cost per-packet="0.00001" per-byte="0.0000005"/>
      <param name="emit-every" value="2500"/>
      <placement node="1"/>
      <parallelism mode="keyed" replicas="2" max-replicas="4" key="stream"/>
      <monitor expected="15" over="30" under="4" window="8" alpha="0.6"
               p1="0.2" p2="0.3" p3="0.5" lt1="-0.15" lt2="0.15"/>
      <controller gain="0.08" variability="1.5" decay="0.6"/>
    </stage>
    <stage name="sink" code="builtin://count-samps-sink"/>
  </stages>
  <edges><edge from="summary" to="sink" port="2"/></edges>
  <sources>
    <source name="s0" stream="3" rate="138.5" count="25000" target="summary"
            node="1" type="zipf-u64" poisson="true">
      <param name="universe" value="5000"/>
      <param name="theta" value="1.1"/>
    </source>
  </sources>
</application>)";

TEST(AppConfigWriter, RoundTripPreservesEverything) {
  const auto& generators = GeneratorRegistry::global();
  auto original = parse_app_config(kConfig, generators);
  ASSERT_TRUE(original.ok()) << original.status().to_string();

  auto text = write_app_config(*original);
  ASSERT_TRUE(text.ok()) << text.status().to_string();
  auto reparsed = parse_app_config(*text, generators);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string() << "\n" << *text;

  EXPECT_EQ(reparsed->application_name, "roundtrip");
  const auto& a = original->pipeline;
  const auto& b = reparsed->pipeline;
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    SCOPED_TRACE(a.stages[i].name);
    EXPECT_EQ(a.stages[i].name, b.stages[i].name);
    EXPECT_EQ(a.stages[i].processor_uri, b.stages[i].processor_uri);
    EXPECT_EQ(a.stages[i].input_capacity, b.stages[i].input_capacity);
    EXPECT_EQ(a.stages[i].placement_hint, b.stages[i].placement_hint);
    EXPECT_NEAR(a.stages[i].cost.per_packet_seconds,
                b.stages[i].cost.per_packet_seconds, 1e-9);
    EXPECT_NEAR(a.stages[i].cost.per_byte_seconds,
                b.stages[i].cost.per_byte_seconds, 1e-9);
    EXPECT_NEAR(a.stages[i].requirement.min_cpu_factor,
                b.stages[i].requirement.min_cpu_factor, 1e-9);
    EXPECT_NEAR(a.stages[i].monitor.expected_length,
                b.stages[i].monitor.expected_length, 1e-6);
    EXPECT_EQ(a.stages[i].monitor.window, b.stages[i].monitor.window);
    EXPECT_NEAR(a.stages[i].monitor.lt2, b.stages[i].monitor.lt2, 1e-6);
    EXPECT_NEAR(a.stages[i].controller.gain, b.stages[i].controller.gain, 1e-6);
    EXPECT_EQ(a.stages[i].properties.all(), b.stages[i].properties.all());
    EXPECT_EQ(a.stages[i].parallelism.mode, b.stages[i].parallelism.mode);
    EXPECT_EQ(a.stages[i].parallelism.replicas,
              b.stages[i].parallelism.replicas);
    EXPECT_EQ(a.stages[i].parallelism.max_replicas,
              b.stages[i].parallelism.max_replicas);
    EXPECT_EQ(a.stages[i].parallelism_key, b.stages[i].parallelism_key);
    EXPECT_EQ(static_cast<bool>(a.stages[i].parallelism.shard_fn),
              static_cast<bool>(b.stages[i].parallelism.shard_fn));
  }
  // The keyed declaration survived: replica-2 keyed pool sharded by stream.
  EXPECT_EQ(b.stages[0].parallelism.mode, core::ParallelismMode::kKeyed);
  EXPECT_EQ(b.stages[0].parallelism_key, "stream");
  // A serial stage stays serial with no <parallelism> element emitted.
  EXPECT_EQ(b.stages[1].parallelism.mode, core::ParallelismMode::kSerial);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  EXPECT_EQ(b.edges[0].from_stage, 0u);
  EXPECT_EQ(b.edges[0].to_stage, 1u);
  EXPECT_EQ(b.edges[0].port, 2u);

  ASSERT_EQ(a.sources.size(), b.sources.size());
  EXPECT_EQ(b.sources[0].name, "s0");
  EXPECT_EQ(b.sources[0].stream, 3u);
  EXPECT_NEAR(b.sources[0].rate_hz, 138.5, 1e-6);
  EXPECT_EQ(b.sources[0].total_packets, 25000u);
  EXPECT_TRUE(b.sources[0].poisson);
  EXPECT_EQ(b.sources[0].generator_type, "zipf-u64");
  EXPECT_EQ(b.sources[0].generator_properties.all(),
            a.sources[0].generator_properties.all());
  EXPECT_TRUE(static_cast<bool>(b.sources[0].generator));
}

TEST(AppConfigWriter, RejectsFactoryOnlyStages) {
  AppConfig config;
  config.application_name = "x";
  core::StageSpec stage;
  stage.name = "s";
  stage.factory = []() -> std::unique_ptr<core::StreamProcessor> {
    return nullptr;
  };
  config.pipeline.stages.push_back(std::move(stage));
  auto text = write_app_config(config);
  ASSERT_FALSE(text.ok());
  EXPECT_EQ(text.status().code(), StatusCode::kFailedPrecondition);
}

TEST(AppConfigWriter, EscapesAttributeValues) {
  AppConfig config;
  config.application_name = "needs <escaping> & \"quotes\"";
  core::StageSpec stage;
  stage.name = "s";
  stage.processor_uri = "builtin://x";
  config.pipeline.stages.push_back(std::move(stage));
  core::SourceSpec src;
  src.name = "src";
  config.pipeline.sources.push_back(src);
  auto text = write_app_config(config);
  ASSERT_TRUE(text.ok());
  auto parsed = parse_app_config(*text, GeneratorRegistry::global());
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->application_name, "needs <escaping> & \"quotes\"");
}

}  // namespace
}  // namespace gates::grid
