// partition_pipeline: the deterministic split of a deployed pipeline into
// per-process sub-pipelines with synthetic egress/ingress endpoints. The
// plan must be a pure function of (spec, placement, processes) — the
// coordinator and every daemon derive it independently — and must preserve
// the bandwidth model (egress on the FROM node, ingress source located at
// the FROM node targeting the TO-node stage).
#include "gates/grid/partition.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gates/core/processor.hpp"

namespace gates::grid {
namespace {

class NullProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter& emitter) override {
    emitter.emit(packet);
  }
  std::string name() const override { return "null"; }
};

core::ProcessorFactory null_factory() {
  return [] { return std::make_unique<NullProcessor>(); };
}

/// chain4 shape: src -> s1 -> s2 -> s3 -> sink, s1/s2 on node 0, s3/sink on
/// node 1 — exactly one cross edge (s2 -> s3).
core::PipelineSpec chain4_spec() {
  core::PipelineSpec spec;
  spec.name = "chain4";
  for (const char* name : {"s1", "s2", "s3", "sink"}) {
    core::StageSpec st;
    st.name = name;
    st.factory = null_factory();
    spec.stages.push_back(std::move(st));
  }
  spec.edges.push_back({0, 1, 0});
  spec.edges.push_back({1, 2, 0});
  spec.edges.push_back({2, 3, 0});
  core::SourceSpec src;
  src.name = "src";
  src.rate_hz = 1000;
  src.total_packets = 10;
  src.target_stage = 0;
  src.location = 0;
  spec.sources.push_back(std::move(src));
  return spec;
}

core::Placement chain4_placement() {
  core::Placement p;
  p.stage_nodes = {0, 0, 1, 1};
  return p;
}

TEST(Partition, ProcessOfNodeIsModulo) {
  EXPECT_EQ(partition_process_of_node(0, 2), 0u);
  EXPECT_EQ(partition_process_of_node(1, 2), 1u);
  EXPECT_EQ(partition_process_of_node(5, 2), 1u);
  EXPECT_EQ(partition_process_of_node(5, 3), 2u);
  EXPECT_EQ(partition_process_of_node(7, 1), 0u);
}

TEST(Partition, SingleProcessKeepsEverythingLocal) {
  auto plan = partition_pipeline(chain4_spec(), chain4_placement(), 1);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->channels.size(), 0u);
  ASSERT_EQ(plan->parts.size(), 1u);
  EXPECT_EQ(plan->parts[0].spec.stages.size(), 4u);
  EXPECT_EQ(plan->parts[0].spec.edges.size(), 3u);
  EXPECT_TRUE(plan->parts[0].egress_channels.empty());
  EXPECT_TRUE(plan->parts[0].ingress_channels.empty());
}

TEST(Partition, Chain4SplitsIntoOneChannel) {
  auto plan = partition_pipeline(chain4_spec(), chain4_placement(), 2);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->channels.size(), 1u);
  const PartitionChannel& ch = plan->channels[0];
  EXPECT_EQ(ch.id, 0u);
  EXPECT_EQ(ch.edge_index, 1u);  // the s2 -> s3 edge
  EXPECT_EQ(ch.from_process, 0u);
  EXPECT_EQ(ch.to_process, 1u);
  EXPECT_EQ(ch.from_node, 0u);
  EXPECT_EQ(ch.to_node, 1u);
  EXPECT_EQ(plan->process_of_stage,
            (std::vector<std::size_t>{0, 0, 1, 1}));

  // Part 0: s1, s2, plus the synthetic egress; the real source.
  const PartitionPart& p0 = plan->parts[0];
  ASSERT_EQ(p0.spec.stages.size(), 3u);
  EXPECT_EQ(p0.spec.stages[0].name, "s1");
  EXPECT_EQ(p0.spec.stages[1].name, "s2");
  EXPECT_EQ(p0.spec.stages[2].name, "__egress:0");
  ASSERT_EQ(p0.spec.sources.size(), 1u);
  EXPECT_EQ(p0.spec.sources[0].name, "src");
  ASSERT_EQ(p0.egress_channels.size(), 1u);
  EXPECT_EQ(p0.egress_channels.at(2), 0u);
  EXPECT_TRUE(p0.ingress_channels.empty());
  // stage_global maps the locals back; the egress is synthetic.
  ASSERT_EQ(p0.stage_global.size(), 3u);
  EXPECT_EQ(p0.stage_global[0], 0u);
  EXPECT_EQ(p0.stage_global[1], 1u);
  EXPECT_EQ(p0.stage_global[2], kSyntheticStage);
  // Both local edges survive: s1->s2 and s2->__egress.
  ASSERT_EQ(p0.spec.edges.size(), 2u);
  EXPECT_EQ(p0.spec.edges[1].from_stage, 1u);
  EXPECT_EQ(p0.spec.edges[1].to_stage, 2u);
  // Bandwidth model: the egress stage sits on the FROM node (loopback push).
  ASSERT_EQ(p0.placement.stage_nodes.size(), 3u);
  EXPECT_EQ(p0.placement.stage_nodes[2], 0u);
  ASSERT_TRUE(p0.spec.validate().is_ok());

  // Part 1: s3, sink; the synthetic ingress source feeds s3 from the FROM
  // node so its push pays the original cross-node throttle gate.
  const PartitionPart& p1 = plan->parts[1];
  ASSERT_EQ(p1.spec.stages.size(), 2u);
  EXPECT_EQ(p1.spec.stages[0].name, "s3");
  EXPECT_EQ(p1.spec.stages[1].name, "sink");
  ASSERT_EQ(p1.spec.sources.size(), 1u);
  EXPECT_EQ(p1.spec.sources[0].name, "__ingress:0");
  EXPECT_EQ(p1.spec.sources[0].target_stage, 0u);
  EXPECT_EQ(p1.spec.sources[0].location, 0u);  // FROM node
  ASSERT_EQ(p1.ingress_channels.size(), 1u);
  EXPECT_EQ(p1.ingress_channels.at(0), 0u);
  EXPECT_TRUE(p1.egress_channels.empty());
  ASSERT_EQ(p1.spec.edges.size(), 1u);  // s3 -> sink stays local
  ASSERT_TRUE(p1.spec.validate().is_ok());
}

TEST(Partition, PlanIsDeterministicAcrossCalls) {
  auto a = partition_pipeline(chain4_spec(), chain4_placement(), 2);
  auto b = partition_pipeline(chain4_spec(), chain4_placement(), 2);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->channels.size(), b->channels.size());
  for (std::size_t i = 0; i < a->channels.size(); ++i) {
    EXPECT_EQ(a->channels[i].id, b->channels[i].id);
    EXPECT_EQ(a->channels[i].edge_index, b->channels[i].edge_index);
    EXPECT_EQ(a->channels[i].from_process, b->channels[i].from_process);
    EXPECT_EQ(a->channels[i].to_process, b->channels[i].to_process);
  }
  EXPECT_EQ(a->process_of_stage, b->process_of_stage);
  for (std::size_t p = 0; p < a->parts.size(); ++p) {
    EXPECT_EQ(a->parts[p].spec.stages.size(), b->parts[p].spec.stages.size());
    EXPECT_EQ(a->parts[p].egress_channels, b->parts[p].egress_channels);
    EXPECT_EQ(a->parts[p].ingress_channels, b->parts[p].ingress_channels);
  }
}

/// A fan-out across the boundary: one upstream feeding two downstream
/// stages in the other process makes two independent channels.
TEST(Partition, FanOutAcrossBoundaryMakesTwoChannels) {
  core::PipelineSpec spec;
  for (const char* name : {"a", "b", "c"}) {
    core::StageSpec st;
    st.name = name;
    st.factory = null_factory();
    spec.stages.push_back(std::move(st));
  }
  spec.edges.push_back({0, 1, 0});  // a -> b crosses
  spec.edges.push_back({0, 2, 0});  // a -> c crosses
  core::SourceSpec src;
  src.target_stage = 0;
  src.total_packets = 1;
  spec.sources.push_back(std::move(src));
  core::Placement placement;
  placement.stage_nodes = {0, 1, 1};

  auto plan = partition_pipeline(spec, placement, 2);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  ASSERT_EQ(plan->channels.size(), 2u);
  EXPECT_EQ(plan->channels[0].edge_index, 0u);
  EXPECT_EQ(plan->channels[1].edge_index, 1u);
  // Sender hosts two egress stages, receiver two ingress sources.
  EXPECT_EQ(plan->parts[0].egress_channels.size(), 2u);
  EXPECT_EQ(plan->parts[1].ingress_channels.size(), 2u);
  ASSERT_TRUE(plan->parts[0].spec.validate().is_ok());
  ASSERT_TRUE(plan->parts[1].spec.validate().is_ok());
}

/// Sources follow their target stage's process, wherever they are located.
TEST(Partition, SourceFollowsTargetStage) {
  core::PipelineSpec spec;
  core::StageSpec st;
  st.name = "only";
  st.factory = null_factory();
  spec.stages.push_back(std::move(st));
  core::SourceSpec src;
  src.location = 0;     // instrument on node 0...
  src.target_stage = 0;  // ...feeding a stage on node 1
  src.total_packets = 1;
  spec.sources.push_back(std::move(src));
  core::Placement placement;
  placement.stage_nodes = {1};

  auto plan = partition_pipeline(spec, placement, 2);
  ASSERT_TRUE(plan.ok()) << plan.status().to_string();
  EXPECT_EQ(plan->channels.size(), 0u);  // no stage edge crosses
  EXPECT_TRUE(plan->parts[0].spec.stages.empty());
  ASSERT_EQ(plan->parts[1].spec.sources.size(), 1u);
  // The source kept its physical location: its push still pays the
  // node0 -> node1 link inside the receiving process.
  EXPECT_EQ(plan->parts[1].spec.sources[0].location, 0u);
}

}  // namespace
}  // namespace gates::grid
