#include "gates/grid/app_config.hpp"

#include <gtest/gtest.h>

namespace gates::grid {
namespace {

const char* kFullConfig = R"(<?xml version="1.0"?>
<application name="count-samps">
  <stages>
    <stage name="summary" code="builtin://count-samps-summary" capacity="150">
      <requirement min-cpu="0.5" min-memory-mb="128"/>
      <cost per-packet="1e-5" per-byte="2e-8" per-record="3e-6"/>
      <param name="emit-every" value="2500"/>
      <param name="track-exact" value="true"/>
      <placement node="1"/>
      <parallelism mode="keyed" replicas="2" max-replicas="4" key="stream"/>
      <monitor expected="15" over="30" under="4" window="8" alpha="0.6"
               p1="0.2" p2="0.3" p3="0.5" lt1="-0.15" lt2="0.15"/>
      <controller gain="0.08" variability="1.5" decay="0.6"/>
    </stage>
    <stage name="sink" code="builtin://count-samps-sink"/>
  </stages>
  <edges>
    <edge from="summary" to="sink" port="0"/>
  </edges>
  <sources>
    <source name="s0" stream="0" rate="138" count="25000" target="summary"
            node="1" type="zipf-u64" poisson="true">
      <param name="universe" value="5000"/>
      <param name="theta" value="1.1"/>
    </source>
  </sources>
</application>)";

TEST(AppConfig, ParsesFullDocument) {
  auto config = parse_app_config(kFullConfig, GeneratorRegistry::global());
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_EQ(config->application_name, "count-samps");
  ASSERT_EQ(config->pipeline.stages.size(), 2u);
  ASSERT_EQ(config->pipeline.edges.size(), 1u);
  ASSERT_EQ(config->pipeline.sources.size(), 1u);

  const auto& stage = config->pipeline.stages[0];
  EXPECT_EQ(stage.name, "summary");
  EXPECT_EQ(stage.processor_uri, "builtin://count-samps-summary");
  EXPECT_EQ(stage.input_capacity, 150u);
  EXPECT_DOUBLE_EQ(stage.monitor.capacity, 150);  // follows capacity
  EXPECT_DOUBLE_EQ(stage.requirement.min_cpu_factor, 0.5);
  EXPECT_DOUBLE_EQ(stage.requirement.min_memory_mb, 128);
  EXPECT_DOUBLE_EQ(stage.cost.per_packet_seconds, 1e-5);
  EXPECT_DOUBLE_EQ(stage.cost.per_byte_seconds, 2e-8);
  EXPECT_DOUBLE_EQ(stage.cost.per_record_seconds, 3e-6);
  EXPECT_EQ(stage.properties.get_int("emit-every", 0), 2500);
  EXPECT_TRUE(stage.properties.get_bool("track-exact", false));
  EXPECT_EQ(stage.placement_hint, 1u);
  EXPECT_DOUBLE_EQ(stage.monitor.expected_length, 15);
  EXPECT_DOUBLE_EQ(stage.monitor.over_threshold, 30);
  EXPECT_EQ(stage.monitor.window, 8);
  EXPECT_DOUBLE_EQ(stage.monitor.alpha, 0.6);
  EXPECT_DOUBLE_EQ(stage.monitor.lt2, 0.15);
  EXPECT_DOUBLE_EQ(stage.controller.gain, 0.08);
  EXPECT_DOUBLE_EQ(stage.controller.variability_weight, 1.5);
  EXPECT_DOUBLE_EQ(stage.controller.exception_decay, 0.6);

  EXPECT_EQ(stage.parallelism.mode, core::ParallelismMode::kKeyed);
  EXPECT_EQ(stage.parallelism.replicas, 2u);
  EXPECT_EQ(stage.parallelism.max_replicas, 4u);
  EXPECT_EQ(stage.parallelism_key, "stream");
  ASSERT_TRUE(static_cast<bool>(stage.parallelism.shard_fn));
  core::Packet probe;
  probe.stream = 7;
  probe.sequence = 3;
  EXPECT_EQ(stage.parallelism.shard_fn(probe), 7u);  // shards by stream

  const auto& sink = config->pipeline.stages[1];
  EXPECT_EQ(sink.placement_hint, kInvalidNode);  // deployer chooses
  EXPECT_EQ(sink.parallelism.mode, core::ParallelismMode::kSerial);
  EXPECT_EQ(sink.parallelism.replicas, 1u);

  const auto& edge = config->pipeline.edges[0];
  EXPECT_EQ(edge.from_stage, 0u);
  EXPECT_EQ(edge.to_stage, 1u);

  const auto& src = config->pipeline.sources[0];
  EXPECT_EQ(src.name, "s0");
  EXPECT_DOUBLE_EQ(src.rate_hz, 138);
  EXPECT_EQ(src.total_packets, 25000u);
  EXPECT_EQ(src.location, 1u);
  EXPECT_TRUE(src.poisson);
  ASSERT_TRUE(static_cast<bool>(src.generator));
  Rng rng(1);
  auto packet = src.generator(0, rng);
  EXPECT_EQ(packet.payload_bytes(), 8u);
}

TEST(AppConfig, MinimalConfigUsesDefaults) {
  const char* minimal = R"(
    <application>
      <stages><stage name="s" code="builtin://x"/></stages>
      <sources><source target="s"/></sources>
    </application>)";
  auto config = parse_app_config(minimal, GeneratorRegistry::global());
  ASSERT_TRUE(config.ok()) << config.status().to_string();
  EXPECT_EQ(config->application_name, "unnamed");
  EXPECT_EQ(config->pipeline.stages[0].input_capacity, 200u);
  EXPECT_FALSE(static_cast<bool>(config->pipeline.sources[0].generator));
}

struct BadConfigCase {
  const char* name;
  const char* xml;
};

class AppConfigRejects : public ::testing::TestWithParam<BadConfigCase> {};

TEST_P(AppConfigRejects, MalformedConfig) {
  auto config =
      parse_app_config(GetParam().xml, GeneratorRegistry::global());
  EXPECT_FALSE(config.ok()) << GetParam().name;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, AppConfigRejects,
    ::testing::Values(
        BadConfigCase{"not_xml", "garbage"},
        BadConfigCase{"wrong_root", "<app/>"},
        BadConfigCase{"no_stages", "<application><sources><source "
                                   "target='s'/></sources></application>"},
        BadConfigCase{"no_sources",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'/></stages></application>"},
        BadConfigCase{"stage_missing_name",
                      "<application><stages><stage code='builtin://x'/>"
                      "</stages><sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"stage_missing_code",
                      "<application><stages><stage name='s'/></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"duplicate_stage",
                      "<application><stages>"
                      "<stage name='s' code='builtin://x'/>"
                      "<stage name='s' code='builtin://x'/>"
                      "</stages><sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"zero_capacity",
                      "<application><stages><stage name='s' "
                      "code='builtin://x' capacity='0'/></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"bad_capacity",
                      "<application><stages><stage name='s' "
                      "code='builtin://x' capacity='abc'/></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"edge_unknown_stage",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'/></stages>"
                      "<edges><edge from='s' to='ghost'/></edges>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"source_unknown_target",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'/></stages>"
                      "<sources><source target='ghost'/></sources>"
                      "</application>"},
        BadConfigCase{"source_bad_poisson",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'/></stages>"
                      "<sources><source target='s' poisson='maybe'/>"
                      "</sources></application>"},
        BadConfigCase{"source_unknown_generator",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'/></stages>"
                      "<sources><source target='s' type='ghost-gen'/>"
                      "</sources></application>"},
        BadConfigCase{"param_missing_value",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'><param name='k'/></stage></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"parallelism_unknown_mode",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'><parallelism mode='magic'/></stage>"
                      "</stages><sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"parallelism_zero_replicas",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'><parallelism mode='stateless' "
                      "replicas='0'/></stage></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"parallelism_ceiling_below_replicas",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'><parallelism mode='stateless' "
                      "replicas='4' max-replicas='2'/></stage></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"parallelism_unknown_key",
                      "<application><stages><stage name='s' "
                      "code='builtin://x'><parallelism mode='keyed' "
                      "key='color'/></stage></stages>"
                      "<sources><source target='s'/></sources>"
                      "</application>"},
        BadConfigCase{"cyclic_edges",
                      "<application><stages>"
                      "<stage name='a' code='builtin://x'/>"
                      "<stage name='b' code='builtin://x'/>"
                      "</stages><edges><edge from='a' to='b'/>"
                      "<edge from='b' to='a'/></edges>"
                      "<sources><source target='a'/></sources>"
                      "</application>"}),
    [](const auto& info) { return info.param.name; });

}  // namespace
}  // namespace gates::grid
