#include "gates/grid/deployer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gates::grid {
namespace {

class DummyProcessor : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet&, core::Emitter&) override {}
  std::string name() const override { return "dummy"; }
};

struct Fixture {
  ResourceDirectory directory;
  RepositoryRegistry repos;
  ProcessorRegistry processors;

  Fixture() {
    (void)processors.add("dummy",
                         [] { return std::make_unique<DummyProcessor>(); });
  }

  core::PipelineSpec pipeline(std::size_t stages) {
    core::PipelineSpec spec;
    for (std::size_t i = 0; i < stages; ++i) {
      core::StageSpec s;
      s.name = "stage" + std::to_string(i);
      s.processor_uri = "builtin://dummy";
      spec.stages.push_back(std::move(s));
    }
    core::SourceSpec src;
    src.location = 1;
    src.target_stage = 0;
    spec.sources = {src};
    for (std::size_t i = 0; i + 1 < stages; ++i) {
      spec.edges.push_back({i, i + 1, 0});
    }
    return spec;
  }
};

TEST(Deployer, PlacesFirstStageNearSource) {
  Fixture f;
  f.directory.register_node("central", {});
  f.directory.register_node("edge", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().to_string();
  EXPECT_EQ(deployment->placement.stage_nodes[0], 1u);  // source node
}

TEST(Deployer, HonorsPlacementPins) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(2);
  spec.stages[1].placement_hint = 0;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  EXPECT_EQ(deployment->placement.stage_nodes[1], 0u);
}

TEST(Deployer, PinToUnqualifiedNodeFails) {
  Fixture f;
  ResourceSpec weak;
  weak.cpu_factor = 0.2;
  f.directory.register_node("weak", weak);
  f.directory.register_node("ok", {});
  auto spec = f.pipeline(1);
  spec.stages[0].placement_hint = 0;
  spec.stages[0].requirement.min_cpu_factor = 1.0;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  EXPECT_EQ(deployment.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Deployer, SpreadsLoadAcrossQualifyingNodes) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("n2", {});
  // Chain of four stages: stage0 near the source (node 1); the rest spread.
  auto spec = f.pipeline(4);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  const auto& nodes = deployment->placement.stage_nodes;
  // Least-loaded policy: after stage0 lands on node 1, the next stages fill
  // nodes 0 and 2; with all nodes equally loaded, ties break to the lowest
  // node id.
  EXPECT_EQ(nodes[0], 1u);
  EXPECT_EQ(nodes[1], 0u);
  EXPECT_EQ(nodes[2], 2u);
  EXPECT_EQ(nodes[3], 0u);
}

TEST(Deployer, RequirementFiltersNodes) {
  Fixture f;
  ResourceSpec weak;
  weak.cpu_factor = 0.5;
  ResourceSpec strong;
  strong.cpu_factor = 4.0;
  f.directory.register_node("weak", weak);   // node 0
  f.directory.register_node("strong", strong);  // node 1
  auto spec = f.pipeline(1);
  spec.sources[0].location = 0;
  spec.stages[0].requirement.min_cpu_factor = 2.0;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  // Source node 0 does not qualify; must fall through to node 1.
  EXPECT_EQ(deployment->placement.stage_nodes[0], 1u);
}

TEST(Deployer, NoQualifyingNodeIsResourceExhausted) {
  Fixture f;
  f.directory.register_node("n0", {});
  auto spec = f.pipeline(1);
  spec.stages[0].requirement.min_cpu_factor = 99;
  Deployer deployer(f.directory, f.repos, f.processors);
  EXPECT_EQ(deployer.deploy(spec).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(Deployer, EmptyDirectoryIsFailedPrecondition) {
  Fixture f;
  auto spec = f.pipeline(1);
  Deployer deployer(f.directory, f.repos, f.processors);
  EXPECT_EQ(deployer.deploy(spec).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Deployer, UnresolvableCodeUriFails) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(1);
  spec.stages[0].processor_uri = "builtin://ghost";
  Deployer deployer(f.directory, f.repos, f.processors);
  EXPECT_EQ(deployer.deploy(spec).status().code(), StatusCode::kNotFound);
}

TEST(Deployer, CreatesContainersAndCustomizedInstances) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  ASSERT_EQ(deployment->instances.size(), 2u);
  for (auto* instance : deployment->instances) {
    ASSERT_NE(instance, nullptr);
    EXPECT_EQ(instance->state(), GatesServiceInstance::State::kCustomized);
  }
  // Spec factories now route through the instances.
  auto processor = spec.stages[0].factory();
  ASSERT_NE(processor, nullptr);
  EXPECT_EQ(deployment->instances[0]->state(),
            GatesServiceInstance::State::kRunning);
  // A second engine instantiation mints a sibling service instance in the
  // same container (migration resume / in-process revive re-runs the
  // factory while the original is RUNNING) — never a failure.
  EXPECT_NE(spec.stages[0].factory(), nullptr);
  const NodeId node = deployment->placement.stage_nodes[0];
  EXPECT_EQ(deployment->containers[node]->instances().size(), 2u);
}

TEST(Deployer, ResolvesThroughNamedRepository) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto repo = f.repos.create("apps");
  ASSERT_TRUE(repo.ok());
  ASSERT_TRUE((*repo)->publish("stages/s", {"dummy", "1", ""}).is_ok());
  auto spec = f.pipeline(1);
  spec.stages[0].processor_uri = "repo://apps/stages/s";
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().to_string();
}

TEST(Deployer, DecisionsAreHumanReadable) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  ASSERT_EQ(deployment->decisions.size(), 2u);
  EXPECT_NE(deployment->decisions[0].find("stage0"), std::string::npos);
}

TEST(Deployer, ReplaceStageMigratesOffTheDeadNode) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("n2", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  const NodeId old_node = deployment->placement.stage_nodes[0];

  auto decision = deployer.replace_stage(spec, *deployment, 0, {old_node});
  ASSERT_TRUE(decision.ok()) << decision.status().to_string();
  EXPECT_NE(decision->node, old_node);
  // Deployment bookkeeping follows the move.
  EXPECT_EQ(deployment->placement.stage_nodes[0], decision->node);
  EXPECT_EQ(deployment->instances[0]->node(), decision->node);
  EXPECT_EQ(deployment->instances[0]->state(),
            GatesServiceInstance::State::kCustomized);
  // The decision's factory yields a working replacement processor.
  ASSERT_TRUE(decision->factory);
  auto processor = decision->factory();
  ASSERT_NE(processor, nullptr);
  EXPECT_EQ(processor->name(), "dummy");
}

TEST(Deployer, ReplaceStagePrefersTheLeastLoadedSurvivor) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("n2", {});
  // Four stages: nodes 1, 0, 2, 0 under the least-loaded policy.
  auto spec = f.pipeline(4);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  ASSERT_EQ(deployment->placement.stage_nodes[0], 1u);

  // Node 1 dies. Survivors host: node 0 two stages, node 2 one stage.
  auto decision = deployer.replace_stage(spec, *deployment, 0, {1});
  ASSERT_TRUE(decision.ok());
  EXPECT_EQ(decision->node, 2u);
}

TEST(Deployer, ReplaceStageWithNoSurvivorIsResourceExhausted) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(1);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  auto decision = deployer.replace_stage(spec, *deployment, 0, {0, 1});
  EXPECT_EQ(decision.status().code(), StatusCode::kResourceExhausted);
}

TEST(Deployer, ReplacementProviderAdaptsReplaceStage) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("n2", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  auto provider = make_replacement_provider(deployer, spec, *deployment);

  const NodeId old_node = deployment->placement.stage_nodes[1];
  auto decision = provider(1, {old_node});
  ASSERT_TRUE(decision.has_value());
  EXPECT_NE(decision->node, old_node);

  // All nodes excluded: matchmaking failure surfaces as nullopt (the
  // engine's retry policy takes it from there).
  EXPECT_FALSE(provider(1, {0, 1, 2}).has_value());
}

TEST(Deployer, MigrateStagePinnedTargetMovesTheDeployment) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("n2", {});
  auto spec = f.pipeline(2);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  const NodeId old_node = deployment->placement.stage_nodes[0];
  ASSERT_NE(old_node, 2u);

  auto decision = deployer.migrate_stage(spec, *deployment, 0, /*target=*/2);
  ASSERT_TRUE(decision.ok()) << decision.status().to_string();
  EXPECT_EQ(decision->node, 2u);
  // Deployment bookkeeping follows the move, exactly like replace_stage:
  // placement, a fresh CUSTOMIZED instance, and a live factory.
  EXPECT_EQ(deployment->placement.stage_nodes[0], 2u);
  EXPECT_EQ(deployment->instances[0]->node(), 2u);
  EXPECT_EQ(deployment->instances[0]->state(),
            GatesServiceInstance::State::kCustomized);
  ASSERT_TRUE(decision->factory);
  EXPECT_NE(decision->factory(), nullptr);
}

TEST(Deployer, MigrateStageDirectoryChoiceNeedsAStrictImprovement) {
  Fixture f;
  ResourceSpec slow, fast;
  slow.cpu_factor = 1.0;
  fast.cpu_factor = 4.0;
  f.directory.register_node("n0", slow);
  f.directory.register_node("n1", slow);  // the source node: stage0 lands here
  f.directory.register_node("n2", fast);
  auto spec = f.pipeline(1);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  ASSERT_EQ(deployment->placement.stage_nodes[0], 1u);

  // kInvalidNode: the directory proposes the strictly faster node 2.
  auto up = deployer.migrate_stage(spec, *deployment, 0, kInvalidNode);
  ASSERT_TRUE(up.ok()) << up.status().to_string();
  EXPECT_EQ(up->node, 2u);
  // Already on the top node: no improvement exists, the migration must
  // abort in place rather than bounce between equals.
  auto again = deployer.migrate_stage(spec, *deployment, 0, kInvalidNode);
  EXPECT_EQ(again.status().code(), StatusCode::kResourceExhausted);
}

TEST(Deployer, MigrateStageRejectsBadTargets) {
  Fixture f;
  ResourceSpec weak;
  weak.cpu_factor = 0.2;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  f.directory.register_node("weak", weak);
  auto spec = f.pipeline(1);
  spec.stages[0].requirement.min_cpu_factor = 1.0;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  const NodeId current = deployment->placement.stage_nodes[0];

  // Pinned to a node that fails the requirement.
  auto weak_target = deployer.migrate_stage(spec, *deployment, 0, 2);
  EXPECT_EQ(weak_target.status().code(), StatusCode::kFailedPrecondition);
  // Pinned to where it already runs.
  auto same = deployer.migrate_stage(spec, *deployment, 0, current);
  EXPECT_EQ(same.status().code(), StatusCode::kInvalidArgument);
  // Bad stage index.
  auto oob = deployer.migrate_stage(spec, *deployment, 9, kInvalidNode);
  EXPECT_EQ(oob.status().code(), StatusCode::kInvalidArgument);
  // Placement untouched by the failed attempts.
  EXPECT_EQ(deployment->placement.stage_nodes[0], current);
}

TEST(Deployer, MigrationProviderAdaptsMigrateStage) {
  Fixture f;
  ResourceSpec slow, fast;
  slow.cpu_factor = 1.0;
  fast.cpu_factor = 4.0;
  f.directory.register_node("n0", slow);
  f.directory.register_node("n1", slow);
  f.directory.register_node("n2", fast);
  auto spec = f.pipeline(1);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  auto provider = make_migration_provider(deployer, spec, *deployment);

  auto decision = provider(0, kInvalidNode);
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->node, 2u);
  // No further improvement: matchmaking failure surfaces as nullopt, which
  // the engine turns into an in-place abort (or fallback, post-quiesce).
  EXPECT_FALSE(provider(0, kInvalidNode).has_value());
}

TEST(Deployer, PooledStageFactoryMintsOneInstancePerReplica) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(2);
  spec.stages[0].parallelism.mode = core::ParallelismMode::kStateless;
  spec.stages[0].parallelism.replicas = 2;
  spec.stages[0].parallelism.max_replicas = 3;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().to_string();

  // An engine calls a pooled stage's factory once per replica slot; each
  // call past the first gets a sibling service instance, so none fails.
  for (int slot = 0; slot < 3; ++slot) {
    EXPECT_NE(spec.stages[0].factory(), nullptr) << "slot " << slot;
  }
  const NodeId pool_node = deployment->placement.stage_nodes[0];
  const NodeId serial_node = deployment->placement.stage_nodes[1];
  ASSERT_NE(pool_node, serial_node);  // load spreading separates them
  EXPECT_EQ(deployment->containers[pool_node]->instances().size(), 3u)
      << "primary pooled instance + 2 siblings";
  // A serial stage's factory also re-instantiates past the first call —
  // a migration resume (or in-process revive) asks for a fresh processor
  // while the original instance is still RUNNING, so the factory mints a
  // sibling in the same container rather than failing single-shot.
  EXPECT_NE(spec.stages[1].factory(), nullptr);
  EXPECT_NE(spec.stages[1].factory(), nullptr);
  EXPECT_EQ(deployment->containers[serial_node]->instances().size(), 2u)
      << "deploy-time instance + one migration sibling";
}

TEST(Deployer, RecoveryFactoryRestartsPooledStageInPlace) {
  Fixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  auto spec = f.pipeline(1);
  spec.stages[0].parallelism.mode = core::ParallelismMode::kStateless;
  spec.stages[0].parallelism.replicas = 2;
  spec.stages[0].parallelism.max_replicas = 2;
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok()) << deployment.status().to_string();
  for (int slot = 0; slot < 2; ++slot) {
    ASSERT_NE(spec.stages[0].factory(), nullptr);
  }

  // Crash recovery re-instantiates every replica slot through the restarted
  // instance (plus fresh siblings), on the same node.
  auto factory = make_recovery_factory(spec, *deployment, 0);
  ASSERT_TRUE(static_cast<bool>(factory));
  for (int slot = 0; slot < 2; ++slot) {
    EXPECT_NE(factory(), nullptr) << "slot " << slot;
  }
  EXPECT_EQ(deployment->instances[0]->state(),
            GatesServiceInstance::State::kRunning);

  // Out-of-range or missing instances degrade to an empty factory.
  EXPECT_FALSE(static_cast<bool>(make_recovery_factory(spec, *deployment, 7)));
}

TEST(Deployer, HostModelComesFromDirectory) {
  Fixture f;
  ResourceSpec fast;
  fast.cpu_factor = 3.0;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", fast);
  auto spec = f.pipeline(1);
  Deployer deployer(f.directory, f.repos, f.processors);
  auto deployment = deployer.deploy(spec);
  ASSERT_TRUE(deployment.ok());
  EXPECT_DOUBLE_EQ(deployment->hosts.at(1), 3.0);
}

}  // namespace
}  // namespace gates::grid
