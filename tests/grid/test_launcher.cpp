#include "gates/grid/launcher.hpp"

#include <gtest/gtest.h>

#include "gates/apps/registration.hpp"

namespace gates::grid {
namespace {

const char* kConfig = R"(
<application name="mini">
  <stages>
    <stage name="summary" code="builtin://count-samps-summary"/>
    <stage name="sink" code="builtin://count-samps-sink"/>
  </stages>
  <edges><edge from="summary" to="sink"/></edges>
  <sources>
    <source name="s" rate="100" count="100" target="summary" node="1"
            type="zipf-u64"/>
  </sources>
</application>)";

struct Fixture {
  ResourceDirectory directory;
  RepositoryRegistry repos;
  Deployer deployer{directory, repos, ProcessorRegistry::global()};
  Launcher launcher{deployer, GeneratorRegistry::global()};

  Fixture() {
    apps::register_all();
    directory.register_node("central", {});
    directory.register_node("edge", {});
  }
};

TEST(Launcher, LaunchFromText) {
  Fixture f;
  auto app = f.launcher.launch_text(kConfig);
  ASSERT_TRUE(app.ok()) << app.status().to_string();
  EXPECT_EQ(app->name, "mini");
  EXPECT_EQ(app->pipeline.stages.size(), 2u);
  EXPECT_EQ(app->deployment.placement.stage_nodes.size(), 2u);
  // Factories are wired through containers and usable.
  ASSERT_TRUE(static_cast<bool>(app->pipeline.stages[0].factory));
  EXPECT_NE(app->pipeline.stages[0].factory(), nullptr);
}

TEST(Launcher, CustomizerRunsBeforeDeployment) {
  Fixture f;
  auto app = f.launcher.launch_text(
      kConfig, [](core::PipelineSpec& pipeline) {
        pipeline.stages[0].parallelism.mode =
            core::ParallelismMode::kStateless;
        pipeline.stages[0].parallelism.replicas = 2;
        pipeline.stages[0].parallelism.max_replicas = 2;
        return Status::ok();
      });
  ASSERT_TRUE(app.ok()) << app.status().to_string();
  // Deployment saw the customized spec: the pooled stage's factory can be
  // invoked once per replica slot.
  EXPECT_NE(app->pipeline.stages[0].factory(), nullptr);
  EXPECT_NE(app->pipeline.stages[0].factory(), nullptr);
}

TEST(Launcher, CustomizerErrorAbortsLaunch) {
  Fixture f;
  auto app = f.launcher.launch_text(kConfig, [](core::PipelineSpec&) {
    return invalid_argument("no such stage");
  });
  EXPECT_EQ(app.status().code(), StatusCode::kInvalidArgument);
}

TEST(Launcher, LaunchFromHostedUrl) {
  Fixture f;
  f.launcher.host_config("mini", kConfig);
  auto app = f.launcher.launch_url("config://mini");
  ASSERT_TRUE(app.ok()) << app.status().to_string();
  EXPECT_EQ(app->name, "mini");
}

TEST(Launcher, UnknownHostedConfigIsNotFound) {
  Fixture f;
  EXPECT_EQ(f.launcher.launch_url("config://ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(Launcher, WrongUrlSchemeRejected) {
  Fixture f;
  EXPECT_EQ(f.launcher.launch_url("http://x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_FALSE(f.launcher.launch_url("not a url").ok());
}

TEST(Launcher, MalformedConfigSurfacesParserError) {
  Fixture f;
  auto app = f.launcher.launch_text("<application><broken");
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), StatusCode::kInvalidArgument);
}

TEST(Launcher, DeploymentFailureSurfaces) {
  // Directory without nodes: parsing succeeds, deployment fails.
  ResourceDirectory empty_directory;
  RepositoryRegistry repos;
  Deployer deployer(empty_directory, repos, ProcessorRegistry::global());
  Launcher launcher(deployer, GeneratorRegistry::global());
  apps::register_all();
  auto app = launcher.launch_text(kConfig);
  EXPECT_EQ(app.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gates::grid
