// Stage failover: heartbeat-lease failure detection, re-placement on a
// surviving node, and bounded-retention replay of unacknowledged packets.
// The disabled path must degrade exactly like the legacy EOS-on-behalf
// behavior exercised by test_node_failure.cpp.
#include <gtest/gtest.h>

#include <memory>

#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

struct LifecycleCounters {
  int inits = 0;
  int recovers = 0;
  std::uint64_t processed = 0;
};

class CountingProcessor : public StreamProcessor {
 public:
  explicit CountingProcessor(std::shared_ptr<LifecycleCounters> counters =
                                 nullptr,
                             bool forward = true)
      : counters_(std::move(counters)), forward_(forward) {}
  void init(ProcessorContext&) override {
    if (counters_) ++counters_->inits;
  }
  void on_recover(ProcessorContext&) override {
    if (counters_) ++counters_->recovers;
  }
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    if (counters_) ++counters_->processed;
    if (forward_) emitter.emit(packet);
  }
  void finish(Emitter&) override { finished_ = true; }
  std::string name() const override { return "counting"; }

  std::shared_ptr<LifecycleCounters> counters_;
  bool forward_ = true;
  std::uint64_t packets_ = 0;
  bool finished_ = false;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// Two forwarders (nodes 1, 2) into a sink (node 0), one source per
/// forwarder at 100 packets/s for 10 s — the fan-in fixture of
/// test_node_failure.cpp, optionally with lifecycle counters on fwd0.
Built fan_in(std::shared_ptr<LifecycleCounters> fwd0_counters = nullptr) {
  Built b;
  for (int i = 0; i < 2; ++i) {
    StageSpec fwd;
    fwd.name = "fwd" + std::to_string(i);
    if (i == 0 && fwd0_counters) {
      fwd.factory = [fwd0_counters] {
        return std::make_unique<CountingProcessor>(fwd0_counters);
      };
    } else {
      fwd.factory = [] { return std::make_unique<CountingProcessor>(); };
    }
    b.spec.stages.push_back(std::move(fwd));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    return std::make_unique<CountingProcessor>(nullptr, /*forward=*/false);
  };
  b.spec.stages.push_back(std::move(sink));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 2, 0}, {1, 2, 0}};
  for (int i = 0; i < 2; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 100;
    src.total_packets = 1000;
    src.packet_bytes = 16;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    b.spec.sources.push_back(src);
  }
  return b;
}

SimEngine::Config failover_config(std::size_t retention = 256) {
  SimEngine::Config config;
  config.failover.enabled = true;
  config.failover.heartbeat_period = 0.5;
  config.failover.suspicion_beats = 3;
  config.failover.replay_buffer_packets = retention;
  return config;
}

TEST(Failover, FanInCrashRecoversWithinLossWindow) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, failover_config());
  engine.schedule_node_failure(1, 5.0);  // fwd0's node dies mid-stream
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);

  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  EXPECT_EQ(f.outcome, FailureReport::Outcome::kRecovered);
  EXPECT_NE(f.recovered_on, 1u);
  EXPECT_GT(f.packets_replayed, 0u);

  // Sink counts are exact up to the bounded-retention loss window: every
  // packet either reached the sink or was evicted from a retention buffer.
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  EXPECT_EQ(sink.packets_ + f.packets_lost_retention, 2000u);
  // The outage was short and retention generous, so nothing was evicted.
  EXPECT_EQ(f.packets_lost_retention, 0u);
  EXPECT_TRUE(sink.finished_);
}

TEST(Failover, DetectionLatencyIsDeterministicLeaseExpiry) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, failover_config());
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  // Crash at 5.0 with 0.5 s beats and K = 3: the detector declares the
  // node down at 0.5 * (floor(5.0/0.5) + 3) = 6.5.
  EXPECT_DOUBLE_EQ(f.failed_at, 5.0);
  EXPECT_DOUBLE_EQ(f.detected_at, 6.5);
  EXPECT_DOUBLE_EQ(f.detection_latency(), 1.5);
  EXPECT_EQ(f.attempts, 1u);
}

TEST(Failover, TinyRetentionBoundsTheLoss) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   failover_config(/*retention=*/32));
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  EXPECT_EQ(f.outcome, FailureReport::Outcome::kRecovered);
  // ~150 packets arrive during the 1.5 s detection window but only 32 fit
  // the buffer — the excess is the (bounded, accounted) loss.
  EXPECT_GT(f.packets_lost_retention, 0u);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  EXPECT_EQ(sink.packets_ + f.packets_lost_retention, 2000u);
}

TEST(Failover, FreshProcessorGetsInitThenOnRecover) {
  auto counters = std::make_shared<LifecycleCounters>();
  auto b = fan_in(counters);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, failover_config());
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(counters->inits, 2);     // original + replacement
  EXPECT_EQ(counters->recovers, 1);  // replacement only
  // Replay fills the gap: across both incarnations every packet of the
  // stream was processed.
  EXPECT_EQ(counters->processed, 1000u);
}

TEST(Failover, ExhaustedRetriesAbandonTheStage) {
  auto b = fan_in();
  auto config = failover_config();
  config.failover.retry.initial_delay = 0.1;
  config.failover.retry.max_attempts = 2;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, config);
  engine.schedule_node_failure(1, 5.0);
  // Matchmaking that never finds a node: every attempt fails.
  engine.set_replacement_provider(
      [](std::size_t, const std::vector<NodeId>&)
          -> std::optional<ReplacementDecision> { return std::nullopt; });
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);  // degraded, not wedged
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  EXPECT_EQ(f.outcome, FailureReport::Outcome::kAbandoned);
  EXPECT_EQ(f.attempts, 2u);
  // Legacy degradation: the sink got the survivor's stream plus fwd0's
  // pre-crash output.
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  EXPECT_NEAR(static_cast<double>(sink.packets_), 1500, 40);
}

TEST(Failover, RecoveredNodeRejoinsTheCandidatePool) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, failover_config());
  engine.schedule_node_failure(1, 5.0);
  engine.schedule_node_recovery(1, 5.2);  // back before detection at 6.5
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  EXPECT_EQ(f.outcome, FailureReport::Outcome::kRecovered);
  // Node 1 hosts no live stage, so least-loaded matchmaking re-picks it.
  EXPECT_EQ(f.recovered_on, 1u);
}

TEST(Failover, DisabledPathDegradesExactlyLikeLegacy) {
  // With failover off the run must match the legacy EOS-on-behalf
  // behavior bit for bit — same counts as test_node_failure.cpp asserts.
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& f = engine.report().failures[0];
  EXPECT_EQ(f.outcome, FailureReport::Outcome::kEosOnBehalf);
  EXPECT_DOUBLE_EQ(f.detection_latency(), 0.0);  // legacy is omniscient
  auto& fwd0 = dynamic_cast<CountingProcessor&>(engine.processor(0));
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  EXPECT_NEAR(static_cast<double>(fwd0.packets_), 500, 30);
  EXPECT_NEAR(static_cast<double>(sink.packets_),
              static_cast<double>(fwd0.packets_) + 1000, 5);
  EXPECT_FALSE(fwd0.finished_);
}

TEST(Failover, FailingEveryWorkerRecoversBoth) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, failover_config());
  engine.schedule_node_failure(1, 2.0);
  engine.schedule_node_failure(2, 3.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().failures.size(), 2u);
  for (const auto& f : engine.report().failures) {
    EXPECT_EQ(f.outcome, FailureReport::Outcome::kRecovered);
  }
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  std::uint64_t lost = 0;
  for (const auto& f : engine.report().failures) {
    lost += f.packets_lost_retention;
  }
  EXPECT_EQ(sink.packets_ + lost, 2000u);
}

TEST(Failover, RecoverySchedulingAfterRunIsAProgrammingError) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_THROW(engine.schedule_node_recovery(1, 1.0), std::logic_error);
}

}  // namespace
}  // namespace gates::core
