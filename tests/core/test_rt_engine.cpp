// Real-time engine tests use short runs and generous timing tolerances —
// they check plumbing (counts, EOS, backpressure survival), not timing
// precision, which the deterministic SimEngine tests cover.
#include "gates/core/rt_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gates::core {
namespace {

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext& ctx) override {
    forward_ = ctx.properties().get_bool("forward", false);
  }
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    bytes_ += packet.payload_bytes();
    if (forward_) emitter.emit(packet);
  }
  void finish(Emitter&) override { finished_ = true; }
  std::string name() const override { return "counting"; }

  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  bool forward_ = false;
  bool finished_ = false;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

Built chain(std::uint64_t packets, double rate, std::size_t bytes) {
  Built b;
  StageSpec a;
  a.name = "A";
  a.properties.set("forward", "true");
  a.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec sink;
  sink.name = "B";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(a), std::move(sink)};
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = bytes;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  b.hosts.cpu_factor = {1.0, 1.0};
  return b;
}

TEST(RtEngine, AllPacketsFlowThroughAndComplete) {
  auto b = chain(200, 2000, 32);
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& a = dynamic_cast<CountingProcessor&>(engine.processor(0));
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(a.packets_, 200u);
  EXPECT_EQ(sink.packets_, 200u);
  EXPECT_TRUE(sink.finished_);
}

TEST(RtEngine, ThrottledLinkSlowsTransfer) {
  auto b = chain(50, 5000, 100);  // 5 KB of payload
  b.topology.set_pair(0, 1, {10e3, 0.0});  // 10 KB/s
  RtEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  // ~0.5 s of transfer minus the burst allowance; just require a visible
  // slowdown versus the ~25 ms generation time.
  EXPECT_GT(engine.report().execution_time, 0.15);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(sink.packets_, 50u);
}

TEST(RtEngine, BackpressureWithTinyQueuePreservesPackets) {
  auto b = chain(100, 5000, 16);
  b.spec.stages[1].input_capacity = 2;
  b.spec.stages[1].cost.per_packet_seconds = 0.001;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(sink.packets_, 100u);
}

TEST(RtEngine, RunForWindsDownUnboundedSources) {
  auto b = chain(0, 500, 16);  // unbounded
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run_for(0.3).is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_GT(sink.packets_, 20u);
}

TEST(RtEngine, WatchdogForceStopsRunawayRun) {
  auto b = chain(1000000, 10, 16);  // would take ~28 hours
  RtEngine::Config cfg;
  cfg.max_wall_time = 0.3;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_FALSE(engine.report().completed);
}

TEST(RtEngine, InvalidPipelineSurfacesStatus) {
  auto b = chain(10, 100, 16);
  b.spec.edges.push_back({1, 0, 0});
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  EXPECT_FALSE(engine.run().is_ok());
}

TEST(RtEngine, ReportCarriesStageStats) {
  auto b = chain(100, 2000, 32);
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  const auto* a = engine.report().stage("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->packets_processed, 100u);
  EXPECT_EQ(a->packets_emitted, 100u);
}

TEST(RtEngine, AdaptationAdjustsParameterUnderLoad) {
  // A volume parameter on stage A with a deliberately overloaded sink must
  // move down from its initial value.
  class AdaptiveForwarder : public StreamProcessor {
   public:
    void init(ProcessorContext& ctx) override {
      AdjustmentParameter::Spec s;
      s.name = "volume";
      s.initial = 1.0;
      s.min_value = 0.0;
      s.max_value = 1.0;
      s.direction = ParamDirection::kIncreaseSlowsDown;
      param_ = &ctx.specify_parameter(s);
    }
    void process(const Packet& packet, Emitter& emitter) override {
      emitter.emit(packet);
    }
    std::string name() const override { return "adaptive-forwarder"; }
    AdjustmentParameter* param_ = nullptr;
  };

  auto b = chain(0, 300, 16);
  b.spec.stages[0].factory = [] {
    return std::make_unique<AdaptiveForwarder>();
  };
  b.spec.stages[1].cost.per_packet_seconds = 0.02;  // sink keeps ~6x too slow
  b.spec.stages[1].input_capacity = 50;
  b.spec.stages[1].monitor.capacity = 50;
  b.spec.stages[1].monitor.expected_length = 5;
  b.spec.stages[1].monitor.over_threshold = 10;
  b.spec.stages[1].monitor.under_threshold = 2;
  RtEngine::Config cfg;
  cfg.control_period = 0.02;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run_for(1.5).is_ok());
  const auto* a = engine.report().stage("A");
  ASSERT_NE(a, nullptr);
  ASSERT_EQ(a->parameter_trajectories.size(), 1u);
  const auto& trajectory = a->parameter_trajectories[0].second;
  ASSERT_FALSE(trajectory.empty());
  EXPECT_LT(trajectory.back().second, 1.0);
}

// -- zero-copy / batched data path -------------------------------------------

TEST(RtEngineZeroCopy, SteadyStatePathMakesNoPayloadDeepCopies) {
  auto b = chain(2000, 1e9, 64);  // as fast as the pipeline moves
  const std::uint64_t before = ByteBuffer::deep_copies();
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  // Source -> A -> B: every handoff, including A's re-emit, must alias the
  // payload. Any deep copy on the steady-state path is a regression.
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(sink.packets_, 2000u);
}

TEST(RtEngineZeroCopy, RetentionAndFanOutAliasOneAllocation) {
  // Fan-out (A feeds two sinks) with failover retention on: three aliases
  // per packet (two routes + the replay channel) and still zero copies.
  Built b;
  StageSpec a;
  a.name = "A";
  a.properties.set("forward", "true");
  a.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec s1;
  s1.name = "S1";
  s1.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec s2;
  s2.name = "S2";
  s2.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(a), std::move(s1), std::move(s2)};
  b.spec.edges = {{0, 1, 0}, {0, 2, 0}};
  SourceSpec src;
  src.rate_hz = 1e9;
  src.total_packets = 1000;
  src.packet_bytes = 128;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1, 2};
  b.hosts.cpu_factor = {1.0, 1.0, 1.0};
  RtEngine::Config cfg;
  cfg.failover.enabled = true;
  cfg.failover.replay_buffer_packets = 64;
  const std::uint64_t before = ByteBuffer::deep_copies();
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(1)).packets_,
            1000u);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(2)).packets_,
            1000u);
}

TEST(RtEngineBatching, MaxBatchOneMatchesLegacyBehavior) {
  auto b = chain(500, 1e9, 32);
  RtEngine::Config cfg;
  cfg.batching.max_batch = 1;  // per-packet handoff, as before this change
  cfg.batching.spsc = false;   // mutex queue everywhere
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(1)).packets_,
            500u);
  const auto* a = engine.report().stage("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->packets_processed, 500u);
  EXPECT_EQ(a->packets_emitted, 500u);
}

TEST(RtEngineBatching, SlowSourcePacingSurvivesBatching) {
  // 200 Hz source: the inter-arrival gap (5 ms) exceeds max_source_delay
  // (1 ms default), so every packet must flush individually and the run
  // takes ~ packets/rate despite batching being enabled.
  auto b = chain(60, 200, 16);
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_GT(engine.report().execution_time, 0.2);  // >= ~0.3 s nominal
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(1)).packets_,
            60u);
}

}  // namespace
}  // namespace gates::core
