#include "gates/core/sim_engine.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gates/common/serialize.hpp"

namespace gates::core {
namespace {

/// Counts packets/bytes it processes; forwards a configurable fraction.
class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext& ctx) override {
    forward_ = ctx.properties().get_bool("forward", false);
  }
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    bytes_ += packet.payload_bytes();
    last_created_at_ = packet.created_at;
    if (forward_) emitter.emit(packet);
  }
  void finish(Emitter&) override { finished_ = true; }
  std::string name() const override { return "counting"; }

  std::uint64_t packets_ = 0;
  std::uint64_t bytes_ = 0;
  double last_created_at_ = -1;
  bool forward_ = false;
  bool finished_ = false;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// source(node 0) -> stage A(node 0) -> stage B(node 1).
Built chain(std::uint64_t packets, double rate, std::size_t bytes) {
  Built b;
  StageSpec a;
  a.name = "A";
  a.properties.set("forward", "true");
  a.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec sink;
  sink.name = "B";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(a), std::move(sink)};
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = bytes;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  b.hosts.cpu_factor = {1.0, 1.0};
  return b;
}

SimEngine::Config zero_overhead_config() {
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  return cfg;
}

TEST(SimEngine, AllPacketsFlowThroughAndComplete) {
  auto b = chain(100, 100, 64);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& a = dynamic_cast<CountingProcessor&>(engine.processor(0));
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(a.packets_, 100u);
  EXPECT_EQ(sink.packets_, 100u);
  EXPECT_EQ(sink.bytes_, 6400u);
  EXPECT_TRUE(a.finished_);
  EXPECT_TRUE(sink.finished_);
}

TEST(SimEngine, ExecutionTimeIsGenerationBoundWhenNetworkIsFast) {
  auto b = chain(1000, 100, 64);  // 10 seconds of generation
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 10.0, 0.2);
}

TEST(SimEngine, ExecutionTimeIsBandwidthBoundOnSlowLink) {
  auto b = chain(100, 1000, 100);  // 10 KB total, generated in 0.1 s
  b.topology.set_pair(0, 1, {1000.0, 0.0});  // 1 KB/s -> 10 s to drain
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 10.0, 0.5);
}

TEST(SimEngine, ServiceCostDelaysCompletion) {
  auto b = chain(100, 1000, 64);
  b.spec.stages[1].cost.per_packet_seconds = 0.1;  // 10 s of service demand
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 10.0, 0.5);
}

TEST(SimEngine, FasterHostShortensService) {
  auto b = chain(100, 1000, 64);
  b.spec.stages[1].cost.per_packet_seconds = 0.1;
  b.hosts.cpu_factor = {1.0, 4.0};  // node 1 is 4x faster
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 2.5, 0.3);
}

TEST(SimEngine, WireOverheadModelSlowsTransfers) {
  auto b = chain(100, 1000, 4);
  b.topology.set_pair(0, 1, {1000.0, 0.0});
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 96;  // 100 B/packet on the wire
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 10.0, 0.5);
}

TEST(SimEngine, SharedIngressSerializesAllSenders) {
  // Two sources on different nodes feed one sink through a shared ingress.
  Built b;
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(sink)};
  for (int i = 0; i < 2; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 1000;
    src.total_packets = 50;
    src.packet_bytes = 100;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = 0;
    b.spec.sources.push_back(src);
  }
  b.placement.stage_nodes = {0};
  b.topology.set_shared_ingress(0, {1000.0, 0.0});  // 10 KB total -> 10 s
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 10.0, 0.5);
  auto& proc = dynamic_cast<CountingProcessor&>(engine.processor(0));
  EXPECT_EQ(proc.packets_, 100u);
}

TEST(SimEngine, ReportCountsAndStageNames) {
  auto b = chain(50, 100, 64);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  const auto& report = engine.report();
  ASSERT_EQ(report.stages.size(), 2u);
  const auto* a = report.stage("A");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->packets_processed, 50u);
  EXPECT_EQ(a->packets_emitted, 50u);
  EXPECT_EQ(a->node, 0u);
  EXPECT_EQ(report.stage("B")->packets_processed, 50u);
  EXPECT_EQ(report.stage("nope"), nullptr);
  EXPECT_GT(report.events_executed, 100u);
}

TEST(SimEngine, DeterministicAcrossRuns) {
  auto run_once = [] {
    auto b = chain(200, 500, 32);
    b.spec.sources[0].poisson = true;
    SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                     zero_overhead_config());
    EXPECT_TRUE(engine.run().is_ok());
    return engine.report().execution_time;
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(SimEngine, SeedChangesPoissonTimings) {
  auto run_with_seed = [](std::uint64_t seed) {
    auto b = chain(200, 500, 32);
    b.spec.sources[0].poisson = true;
    auto cfg = zero_overhead_config();
    cfg.seed = seed;
    SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
    EXPECT_TRUE(engine.run().is_ok());
    return engine.report().execution_time;
  };
  EXPECT_NE(run_with_seed(1), run_with_seed(2));
}

TEST(SimEngine, InvalidPipelineSurfacesStatus) {
  auto b = chain(10, 100, 64);
  b.spec.edges.push_back({1, 0, 0});  // cycle
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  EXPECT_FALSE(engine.run().is_ok());
}

TEST(SimEngine, MissingFactorySurfacesStatus) {
  auto b = chain(10, 100, 64);
  b.spec.stages[0].factory = nullptr;
  b.spec.stages[0].processor_uri = "builtin://unresolved";
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  auto status = engine.run();
  ASSERT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(SimEngine, PlacementSizeMismatchSurfacesStatus) {
  auto b = chain(10, 100, 64);
  b.placement.stage_nodes = {0};  // two stages
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  EXPECT_FALSE(engine.run().is_ok());
}

TEST(SimEngine, RunForStopsAtHorizonWithUnboundedSource) {
  auto b = chain(0, 100, 64);  // unbounded
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run_for(5.0).is_ok());
  EXPECT_FALSE(engine.report().completed);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_NEAR(static_cast<double>(sink.packets_), 500, 10);
}

TEST(SimEngine, MaxTimeHorizonReportsIncomplete) {
  auto b = chain(1000, 1, 64);  // would need 1000 s
  auto cfg = zero_overhead_config();
  cfg.max_time = 10;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_FALSE(engine.report().completed);
}

TEST(SimEngine, BackpressurePreservesEveryPacket) {
  // Slow sink with a tiny queue: deliveries stall, nothing is lost.
  auto b = chain(300, 1000, 16);
  b.spec.stages[1].input_capacity = 4;
  b.spec.stages[1].cost.per_packet_seconds = 0.01;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_EQ(sink.packets_, 300u);
  EXPECT_TRUE(engine.report().completed);
}

TEST(SimEngine, PacketTimestampsAreMonotoneThroughChain) {
  auto b = chain(50, 100, 16);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   zero_overhead_config());
  ASSERT_TRUE(engine.run().is_ok());
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(1));
  EXPECT_GE(sink.last_created_at_, 0.0);
  EXPECT_LE(sink.last_created_at_, engine.report().execution_time);
}

TEST(SimEngine, ParameterValueAccessor) {
  auto b = chain(10, 100, 16);
  class ParamProcessor : public StreamProcessor {
   public:
    void init(ProcessorContext& ctx) override {
      AdjustmentParameter::Spec s;
      s.name = "knob";
      s.initial = 0.4;
      s.min_value = 0;
      s.max_value = 1;
      ctx.specify_parameter(s);
    }
    void process(const Packet&, Emitter&) override {}
    std::string name() const override { return "param"; }
  };
  b.spec.stages[1].factory = [] { return std::make_unique<ParamProcessor>(); };
  auto cfg = zero_overhead_config();
  cfg.adaptation_enabled = false;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_DOUBLE_EQ(engine.parameter_value(1, "knob"), 0.4);
  EXPECT_THROW(engine.parameter_value(1, "missing"), std::logic_error);
}

}  // namespace
}  // namespace gates::core
