// Output ports (a stage splitting its output across downstream consumers)
// and flow-conservation invariants across the simulated network.
#include <gtest/gtest.h>

#include <memory>

#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

/// Routes even-sequence packets to port 0 and odd to port 1.
class SplitterProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    emitter.emit(packet, packet.sequence % 2);
  }
  std::string name() const override { return "splitter"; }
};

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet&, Emitter&) override { ++packets_; }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
};

TEST(Ports, SplitterRoutesByPort) {
  PipelineSpec spec;
  StageSpec splitter;
  splitter.name = "splitter";
  splitter.factory = [] { return std::make_unique<SplitterProcessor>(); };
  StageSpec even;
  even.name = "even";
  even.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec odd;
  odd.name = "odd";
  odd.factory = [] { return std::make_unique<CountingProcessor>(); };
  spec.stages = {std::move(splitter), std::move(even), std::move(odd)};
  spec.edges = {{0, 1, 0}, {0, 2, 1}};
  SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = 100;
  src.packet_bytes = 8;
  spec.sources = {src};

  Placement placement;
  placement.stage_nodes = {0, 1, 2};
  SimEngine engine(std::move(spec), std::move(placement), {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(1)).packets_, 50u);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(2)).packets_, 50u);
}

TEST(Ports, BroadcastWhenTwoEdgesShareAPort) {
  PipelineSpec spec;
  StageSpec fwd;
  fwd.name = "fwd";
  fwd.factory = [] {
    class Forward : public StreamProcessor {
     public:
      void init(ProcessorContext&) override {}
      void process(const Packet& p, Emitter& e) override { e.emit(p); }
      std::string name() const override { return "forward"; }
    };
    return std::make_unique<Forward>();
  };
  StageSpec a;
  a.name = "a";
  a.factory = [] { return std::make_unique<CountingProcessor>(); };
  StageSpec b;
  b.name = "b";
  b.factory = [] { return std::make_unique<CountingProcessor>(); };
  spec.stages = {std::move(fwd), std::move(a), std::move(b)};
  spec.edges = {{0, 1, 0}, {0, 2, 0}};  // same port: broadcast
  SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = 40;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 0, 0};
  SimEngine engine(std::move(spec), std::move(placement), {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(1)).packets_, 40u);
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(2)).packets_, 40u);
}

TEST(Conservation, LinkDeliversExactlyWhatStagesEmit) {
  // Chain across three nodes; every stage report's emissions must equal the
  // next stage's processed count, and link message stats must match (plus
  // the EOS markers).
  PipelineSpec spec;
  for (const char* name : {"s0", "s1", "s2"}) {
    StageSpec stage;
    stage.name = name;
    stage.factory = [] {
      class Forward : public StreamProcessor {
       public:
        void init(ProcessorContext&) override {}
        void process(const Packet& p, Emitter& e) override { e.emit(p); }
        std::string name() const override { return "forward"; }
      };
      return std::make_unique<Forward>();
    };
    spec.stages.push_back(std::move(stage));
  }
  spec.edges = {{0, 1, 0}, {1, 2, 0}};
  SourceSpec src;
  src.rate_hz = 500;
  src.total_packets = 300;
  src.packet_bytes = 24;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 1, 2};
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 10;
  cfg.wire.per_record_overhead = 0;
  SimEngine engine(std::move(spec), std::move(placement), {}, {}, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const auto& report = engine.report();
  ASSERT_TRUE(report.completed);

  for (int i = 0; i < 3; ++i) {
    const auto* stage = report.stage("s" + std::to_string(i));
    ASSERT_NE(stage, nullptr);
    EXPECT_EQ(stage->packets_processed, 300u);
    EXPECT_EQ(stage->packets_emitted, 300u);
    EXPECT_EQ(stage->packets_dropped, 0u);
  }
  // Two inter-node links, each carrying 300 data packets + 1 EOS.
  ASSERT_EQ(report.links.size(), 2u);
  for (const auto& link : report.links) {
    EXPECT_EQ(link.messages_delivered, 301u);
    // 300 x (24 + 10) data bytes + 10 EOS bytes.
    EXPECT_EQ(link.bytes_delivered, 300u * 34u + 10u);
  }
}

TEST(Conservation, PoissonArrivalsConserveToo) {
  PipelineSpec spec;
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  spec.stages = {std::move(sink)};
  SourceSpec src;
  src.rate_hz = 700;
  src.total_packets = 1234;
  src.poisson = true;
  src.location = 1;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0};
  SimEngine engine(std::move(spec), std::move(placement), {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_EQ(dynamic_cast<CountingProcessor&>(engine.processor(0)).packets_,
            1234u);
}

}  // namespace
}  // namespace gates::core
