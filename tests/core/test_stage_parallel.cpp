// Data-parallel stage replication: order-preserving merge, keyed sharding,
// zero-copy dispatch, failover of a replicated stage, SPSC producer
// accounting, and adaptation-driven scaling on both engines.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "gates/common/byte_buffer.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::core {
namespace {

/// Enables the process-global telemetry singletons for one test and restores
/// their prior state on exit.
struct ScopedTelemetry {
  ScopedTelemetry()
      : trace_was_enabled(obs::TraceBuffer::global().enabled()) {
    obs::TraceBuffer::global().clear();
    obs::TraceBuffer::global().set_enabled(true);
  }
  ~ScopedTelemetry() {
    obs::TraceBuffer::global().set_enabled(trace_was_enabled);
    obs::TraceBuffer::global().clear();
  }
  bool trace_was_enabled;
};

std::vector<obs::TraceEvent> trace_events_of(obs::TraceKind kind,
                                             const std::string& component) {
  std::vector<obs::TraceEvent> out;
  for (const obs::TraceEvent& e : obs::TraceBuffer::global().events()) {
    if (e.kind == kind && e.component == component) out.push_back(e);
  }
  return out;
}

class Forwarder : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    emitter.emit(packet);
  }
  std::string name() const override { return "forwarder"; }
};

/// Forwarder that stalls hard on every 4th sequence: with round-robin
/// dispatch over 4 replicas, one replica becomes the adversarially slow one.
class SkewedForwarder : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    if (packet.sequence % 4 == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    emitter.emit(packet);
  }
  std::string name() const override { return "skewed-forwarder"; }
};

/// Serial sink recording the arrival order of sequence numbers.
class SequenceSink : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter&) override {
    sequences_.push_back(packet.sequence);
  }
  std::string name() const override { return "sequence-sink"; }
  std::vector<std::uint64_t> sequences_;
};

/// Counts packets per shard key; keyed sharding must keep each key's whole
/// history on exactly one replica instance.
class KeyTracker : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    ++per_key_[packet.sequence % 8];
    emitter.emit(packet);
  }
  std::string name() const override { return "key-tracker"; }
  std::map<std::uint64_t, std::uint64_t> per_key_;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// source -> pool (index 0) -> sink (index 1), everything on distinct nodes.
Built pool_chain(std::uint64_t packets, double rate, Parallelism parallelism) {
  Built b;
  StageSpec pool;
  pool.name = "pool";
  pool.factory = [] { return std::make_unique<Forwarder>(); };
  pool.parallelism = std::move(parallelism);
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<SequenceSink>(); };
  b.spec.stages = {std::move(pool), std::move(sink)};
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 32;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  b.hosts.cpu_factor = {1.0, 1.0};
  return b;
}

// -- RtEngine: order, sharding, copies, failover, SPSC accounting ------------

TEST(StageParallelRt, OrderPreservedUnderReplicaSkew) {
  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 4;
  par.max_replicas = 4;
  auto b = pool_chain(400, 1e9, par);
  b.spec.stages[0].factory = [] { return std::make_unique<SkewedForwarder>(); };
  RtEngine::Config cfg;
  cfg.adaptation_enabled = false;
  cfg.max_wall_time = 60;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);
  auto& sink = dynamic_cast<SequenceSink&>(engine.processor(1));
  ASSERT_EQ(sink.sequences_.size(), 400u);
  for (std::uint64_t i = 0; i < 400; ++i) {
    ASSERT_EQ(sink.sequences_[i], i) << "reordered at position " << i;
  }
}

TEST(StageParallelRt, KeyedShardingKeepsEachKeyOnOneReplica) {
  Parallelism par;
  par.mode = ParallelismMode::kKeyed;
  par.replicas = 2;
  par.max_replicas = 2;
  // Sources overwrite packet.stream, so shard by the sequence number.
  par.shard_fn = [](const Packet& p) { return p.sequence % 8; };
  auto b = pool_chain(160, 1e9, par);
  b.spec.stages[0].factory = [] { return std::make_unique<KeyTracker>(); };
  RtEngine::Config cfg;
  cfg.adaptation_enabled = false;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.replica_count(0), 2u);
  auto& r0 = dynamic_cast<KeyTracker&>(engine.replica_processor(0, 0));
  auto& r1 = dynamic_cast<KeyTracker&>(engine.replica_processor(0, 1));
  for (std::uint64_t key = 0; key < 8; ++key) {
    const std::uint64_t c0 = r0.per_key_.count(key) ? r0.per_key_[key] : 0;
    const std::uint64_t c1 = r1.per_key_.count(key) ? r1.per_key_[key] : 0;
    // Every key's 20 packets land whole on exactly one replica — per-key
    // state never splits.
    EXPECT_EQ(c0 + c1, 20u) << "key " << key;
    EXPECT_TRUE(c0 == 0 || c1 == 0) << "key " << key << " split across replicas";
  }
  // The in-order merge holds for keyed dispatch too.
  auto& sink = dynamic_cast<SequenceSink&>(engine.processor(1));
  ASSERT_EQ(sink.sequences_.size(), 160u);
  for (std::uint64_t i = 0; i < 160; ++i) ASSERT_EQ(sink.sequences_[i], i);
}

TEST(StageParallelRt, ShardedDispatchMakesNoPayloadDeepCopies) {
  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 3;
  par.max_replicas = 3;
  auto b = pool_chain(2000, 1e9, par);
  const std::uint64_t before = ByteBuffer::deep_copies();
  RtEngine::Config cfg;
  cfg.adaptation_enabled = false;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  // Dispatch to a replica queue, capture of the re-emit, merge release and
  // downstream handoff must all alias the one payload allocation.
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  auto& sink = dynamic_cast<SequenceSink&>(engine.processor(1));
  EXPECT_EQ(sink.sequences_.size(), 2000u);
}

TEST(StageParallelRt, ReplicatedStageFailoverReplaysAtLeastOnce) {
  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 2;
  par.max_replicas = 2;
  auto b = pool_chain(2000, 5000, par);
  RtEngine::Config cfg;
  cfg.control_period = 0.01;
  cfg.max_wall_time = 60;
  cfg.adaptation_enabled = false;
  cfg.failover.enabled = true;
  cfg.failover.heartbeat_period = 0.05;
  cfg.failover.suspicion_beats = 2;
  cfg.failover.replay_buffer_packets = 4096;  // deep enough: no eviction
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  engine.schedule_node_failure(0, 0.1);  // the pool's node, mid-stream
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& rec = engine.report().failures[0];
  EXPECT_EQ(rec.outcome, FailureReport::Outcome::kRecovered);
  EXPECT_EQ(rec.stage, "pool");
  EXPECT_GT(rec.packets_replayed, 0u);
  // At-least-once across the pool restart: every packet either reached the
  // sink or was evicted from retention (none here); replay bounds the
  // duplicate window.
  auto& sink = dynamic_cast<SequenceSink&>(engine.processor(1));
  const std::uint64_t seen = sink.sequences_.size();
  EXPECT_GE(seen + rec.packets_lost_retention, 2000u);
  EXPECT_LE(seen, 2000u + rec.packets_replayed);
}

TEST(StageParallelRt, DownstreamOfPoolCountsEveryReplicaAsAProducer) {
  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 2;
  par.max_replicas = 2;
  auto b = pool_chain(50, 1e9, par);
  RtEngine::Config cfg;
  cfg.adaptation_enabled = false;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  // Any releaser thread (dispatcher or replica) may push into the sink's
  // inbox, so the single-producer SPSC fast path must not be selected.
  EXPECT_FALSE(engine.stage_inbox_spsc(1));

  // Regression guard for the serial case: one upstream worker, SPSC stays.
  auto serial = pool_chain(50, 1e9, Parallelism{});
  RtEngine serial_engine(serial.spec, serial.placement, serial.hosts,
                         serial.topology, cfg);
  ASSERT_TRUE(serial_engine.run().is_ok());
  EXPECT_TRUE(serial_engine.stage_inbox_spsc(1));
}

TEST(StageParallelRt, OverloadGrowsThePoolAtRuntime) {
  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 1;
  par.max_replicas = 4;
  auto b = pool_chain(0, 300, par);  // unbounded, wound down by run_for
  b.spec.stages[0].cost.per_packet_seconds = 0.005;  // 1.5x oversubscribed
  b.spec.stages[0].input_capacity = 50;
  b.spec.stages[0].monitor.capacity = 50;
  b.spec.stages[0].monitor.expected_length = 5;
  b.spec.stages[0].monitor.over_threshold = 10;
  b.spec.stages[0].monitor.under_threshold = 2;
  RtEngine::Config cfg;
  cfg.control_period = 0.02;
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run_for(1.5).is_ok());
  const auto* pool = engine.report().stage("pool");
  ASSERT_NE(pool, nullptr);
  EXPECT_GT(pool->max_replicas_used, 1u);
  // The middleware-owned replica knob shows up as a parameter trajectory.
  bool found = false;
  for (const auto& [name, trajectory] : pool->parameter_trajectories) {
    if (name == "replicas") {
      found = true;
      EXPECT_FALSE(trajectory.empty());
    }
  }
  EXPECT_TRUE(found);
}

// -- SimEngine: replica pools as multiplied service rate ---------------------

Built sim_adaptive_chain(double rate, double pool_cost,
                         std::size_t max_replicas) {
  // source -> A (declares "volume", the accuracy knob) -> B (scalable pool).
  class AdaptiveForwarder : public StreamProcessor {
   public:
    void init(ProcessorContext& ctx) override {
      AdjustmentParameter::Spec s;
      s.name = "volume";
      s.initial = 1.0;
      s.min_value = 0.0;
      s.max_value = 1.0;
      s.direction = ParamDirection::kIncreaseSlowsDown;
      ctx.specify_parameter(s);
    }
    void process(const Packet& packet, Emitter& emitter) override {
      emitter.emit(packet);
    }
    std::string name() const override { return "adaptive-forwarder"; }
  };

  Built b;
  StageSpec a;
  a.name = "A";
  a.factory = [] { return std::make_unique<AdaptiveForwarder>(); };
  StageSpec pool;
  pool.name = "B";
  pool.factory = [] { return std::make_unique<Forwarder>(); };
  pool.cost.per_packet_seconds = pool_cost;
  pool.parallelism.mode = ParallelismMode::kStateless;
  pool.parallelism.replicas = 1;
  pool.parallelism.max_replicas = max_replicas;
  pool.input_capacity = 50;
  pool.monitor.capacity = 50;
  pool.monitor.expected_length = 5;
  pool.monitor.over_threshold = 10;
  pool.monitor.under_threshold = 2;
  b.spec.stages = {std::move(a), std::move(pool)};
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = 0;  // unbounded
  src.packet_bytes = 32;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  b.hosts.cpu_factor = {1.0, 1.0};
  return b;
}

TEST(StageParallelSim, ReplicasMultiplyServiceRate) {
  // 1000 packets at 0.004 s each: service-bound at 1 replica (~4 s), the
  // same pipeline with 4 replicas is generation-bound (~1 s).
  auto serial = pool_chain(1000, 1000, Parallelism{});
  serial.spec.stages[0].cost.per_packet_seconds = 0.004;
  SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  SimEngine one(serial.spec, serial.placement, serial.hosts, serial.topology,
                cfg);
  ASSERT_TRUE(one.run().is_ok());

  Parallelism par;
  par.mode = ParallelismMode::kStateless;
  par.replicas = 4;
  par.max_replicas = 4;
  auto pooled = pool_chain(1000, 1000, par);
  pooled.spec.stages[0].cost.per_packet_seconds = 0.004;
  SimEngine four(pooled.spec, pooled.placement, pooled.hosts, pooled.topology,
                 cfg);
  ASSERT_TRUE(four.run().is_ok());

  EXPECT_GT(one.report().execution_time, 3.5);
  EXPECT_LT(four.report().execution_time, 1.5);
  EXPECT_EQ(four.replica_count(0), 4u);
}

TEST(StageParallelSim, ScalesUpBeforeDegradingAccuracy) {
  ScopedTelemetry telemetry;
  // 1 replica is 1.9x oversubscribed, 2 replicas cope; the budget (4) is
  // never exhausted, so B's overload must be absorbed by scaling and A's
  // accuracy knob must never move. At t=15 the host becomes 10x faster:
  // sustained underload must retire the extra replica again.
  auto b = sim_adaptive_chain(100, 0.019, 4);
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  engine.schedule_cpu_change(1, 15.0, 10.0);
  ASSERT_TRUE(engine.run_for(30.0).is_ok());

  const auto ups =
      trace_events_of(obs::TraceKind::kReplicaScaleUp, "B");
  const auto downs =
      trace_events_of(obs::TraceKind::kReplicaScaleDown, "B");
  ASSERT_FALSE(ups.empty());
  ASSERT_FALSE(downs.empty());
  EXPECT_EQ(ups.front().value_old, 1.0);
  EXPECT_EQ(ups.front().value_new, 2.0);
  // Scale-up happened strictly before any scale-down.
  EXPECT_LT(ups.front().time, downs.front().time);
  // Load subsided -> the pool is back at its floor.
  EXPECT_EQ(engine.replica_count(1), 1u);

  // The upstream accuracy parameter never degraded: scaling absorbed every
  // overload exception before Eq. 4 could trade accuracy for speed.
  const auto* a = engine.report().stage("A");
  ASSERT_NE(a, nullptr);
  for (const auto& [name, trajectory] : a->parameter_trajectories) {
    if (name != "volume") continue;
    for (const auto& [t, v] : trajectory) {
      ASSERT_DOUBLE_EQ(v, 1.0) << "volume degraded at t=" << t;
    }
  }
}

TEST(StageParallelSim, ExhaustedBudgetPropagatesAndDegradesAccuracy) {
  ScopedTelemetry telemetry;
  // Even 2 replicas (the ceiling) stay 2.5x oversubscribed: the scaler runs
  // out of cores and the exception must propagate upstream, moving A's
  // volume down — the §4 degradation as the last resort, not the first.
  auto b = sim_adaptive_chain(100, 0.05, 2);
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run_for(25.0).is_ok());

  EXPECT_EQ(engine.replica_count(1), 2u);
  const auto* a = engine.report().stage("A");
  ASSERT_NE(a, nullptr);
  bool volume_degraded = false;
  for (const auto& [name, trajectory] : a->parameter_trajectories) {
    if (name == "volume" && !trajectory.empty() &&
        trajectory.back().second < 1.0) {
      volume_degraded = true;
    }
  }
  EXPECT_TRUE(volume_degraded);
  const auto* pool = engine.report().stage("B");
  ASSERT_NE(pool, nullptr);
  EXPECT_EQ(pool->final_replicas, 2u);
  EXPECT_EQ(pool->max_replicas_used, 2u);
}

}  // namespace
}  // namespace gates::core
