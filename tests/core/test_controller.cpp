#include "gates/core/adapt/controller.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "gates/common/rng.hpp"

namespace gates::core::adapt {
namespace {

AdjustmentParameter::Spec volume_spec() {
  AdjustmentParameter::Spec s;
  s.name = "sampling-rate";
  s.initial = 0.5;
  s.min_value = 0.0;
  s.max_value = 1.0;
  s.direction = ParamDirection::kIncreaseSlowsDown;
  return s;
}

AdjustmentParameter::Spec speed_spec() {
  AdjustmentParameter::Spec s;
  s.name = "skip-factor";
  s.initial = 0.5;
  s.min_value = 0.0;
  s.max_value = 1.0;
  s.direction = ParamDirection::kIncreaseSpeedsUp;
  return s;
}

TEST(ParameterController, VolumeParamDropsOnOwnOverload) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});
  c.update(0.8);
  EXPECT_LT(p.suggested_value(), 0.5);
}

TEST(ParameterController, SpeedParamRisesOnOwnOverload) {
  AdjustmentParameter p(speed_spec());
  ParameterController c(p, {});
  c.update(0.8);
  EXPECT_GT(p.suggested_value(), 0.5);
}

TEST(ParameterController, VolumeParamDropsOnDownstreamOverload) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});
  c.report_downstream_exception(LoadSignal::kOverload);
  c.update(0.0);
  EXPECT_LT(p.suggested_value(), 0.5);
}

TEST(ParameterController, SpeedParamDropsOnDownstreamOverload) {
  // "If the load at C is higher ... we want to slow down the rate at which
  // B sends data to C. Therefore, we will like to decrease the value of
  // P_B" (§4.2) — the downstream drive never flips with direction.
  AdjustmentParameter p(speed_spec());
  ParameterController c(p, {});
  c.report_downstream_exception(LoadSignal::kOverload);
  c.update(0.0);
  EXPECT_LT(p.suggested_value(), 0.5);
}

TEST(ParameterController, VolumeParamRisesOnDownstreamUnderload) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});
  c.report_downstream_exception(LoadSignal::kUnderload);
  c.update(0.0);
  EXPECT_GT(p.suggested_value(), 0.5);
}

TEST(ParameterController, BalancedSystemHolds) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});
  for (int i = 0; i < 20; ++i) c.update(0.0);
  EXPECT_DOUBLE_EQ(p.suggested_value(), 0.5);
  EXPECT_DOUBLE_EQ(c.last_delta(), 0.0);
}

TEST(ParameterController, IdleStageDefersToCongestedDownstream) {
  // An idle volume stage (own nd < 0) must not push more data while the
  // downstream is overloaded.
  AdjustmentParameter p(volume_spec());
  ControllerConfig cfg;
  cfg.underload_discount = 1.0;  // make the two drives symmetric
  ParameterController c(p, cfg);
  c.report_downstream_exception(LoadSignal::kOverload);
  c.update(-1.0);
  EXPECT_LT(p.suggested_value(), 0.5);
}

TEST(ParameterController, OverloadOutweighsEqualUnderload) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});  // default underload_discount < 1
  c.report_downstream_exception(LoadSignal::kOverload);
  c.report_downstream_exception(LoadSignal::kUnderload);
  c.update(0.0);
  EXPECT_LT(p.suggested_value(), 0.5);
}

TEST(ParameterController, ExceptionsDecayOverTime) {
  AdjustmentParameter p(volume_spec());
  ControllerConfig cfg;
  cfg.exception_decay = 0.5;
  ParameterController c(p, cfg);
  c.report_downstream_exception(LoadSignal::kOverload);
  c.update(0.0);
  EXPECT_GT(c.t1(), 0.0);
  for (int i = 0; i < 20; ++i) c.update(0.0);
  EXPECT_LT(c.t1(), 1e-3);
}

TEST(ParameterController, StepsAreCappedPerPeriod) {
  AdjustmentParameter p(volume_spec());
  ControllerConfig cfg;
  cfg.gain = 100;  // absurd gain
  cfg.max_step_fraction = 0.1;
  ParameterController c(p, cfg);
  c.update(1.0);
  EXPECT_GE(p.suggested_value(), 0.5 - 0.1 - 1e-9);
}

TEST(ParameterController, ValueStaysInRangeUnderRandomDrive) {
  AdjustmentParameter p(volume_spec());
  ParameterController c(p, {});
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    if (rng.next_bool(0.3)) c.report_downstream_exception(LoadSignal::kOverload);
    if (rng.next_bool(0.3)) c.report_downstream_exception(LoadSignal::kUnderload);
    const double v = c.update(rng.uniform(-1, 1));
    ASSERT_GE(v, 0.0);
    ASSERT_LE(v, 1.0);
  }
}

TEST(ParameterController, AccuracyRecoversSlowerThanItConcedes) {
  AdjustmentParameter up(volume_spec());
  AdjustmentParameter down(volume_spec());
  ControllerConfig cfg;
  cfg.accuracy_gain_fraction = 0.25;
  ParameterController cu(up, cfg), cd(down, cfg);
  cu.report_downstream_exception(LoadSignal::kUnderload);
  cu.update(0.0);
  cd.report_downstream_exception(LoadSignal::kOverload);
  cd.update(0.0);
  const double rise = up.suggested_value() - 0.5;
  const double fall = 0.5 - down.suggested_value();
  EXPECT_GT(rise, 0);
  EXPECT_GT(fall, 0);
  EXPECT_LT(rise, fall);
}

TEST(ParameterController, VariabilityAmplifiesSteps) {
  // Steady drive vs oscillating drive of the same magnitude: sigma should
  // make the unsteady one take larger steps (§4.2: "if the values ... are
  // unsteady, we want dP to be large").
  AdjustmentParameter steady_p(volume_spec()), wild_p(volume_spec());
  ControllerConfig cfg;
  cfg.variability_weight = 3.0;
  ParameterController steady(steady_p, cfg), wild(wild_p, cfg);
  double steady_step = 0, wild_step = 0;
  for (int i = 0; i < 10; ++i) {
    steady.update(0.5);
    steady_step = std::abs(steady.last_delta());
    wild.update(i % 2 ? 0.5 : -0.5);
    if (i % 2 == 0) wild_step = std::abs(wild.last_delta());
  }
  EXPECT_GT(wild_step, steady_step);
}

// Closed-loop property: a toy M/D/1-ish queue whose arrival rate equals the
// parameter value and whose service rate is fixed at mu. The controller
// must settle the parameter near mu (the highest "accuracy" the constraint
// allows) from any starting point.
class ClosedLoopConvergence : public ::testing::TestWithParam<double> {};

TEST_P(ClosedLoopConvergence, SettlesNearServiceRate) {
  const double mu = GetParam();
  AdjustmentParameter::Spec s = volume_spec();
  s.initial = 0.02;
  AdjustmentParameter p(s);
  ParameterController c(p, {});
  QueueMonitorConfig mon_cfg;
  QueueMonitor monitor(mon_cfg);

  double queue = 0;
  double sum_late = 0;
  int late_samples = 0;
  const int kPeriods = 800;
  for (int i = 0; i < kPeriods; ++i) {
    // 100 arrival opportunities per period.
    queue += 100.0 * (p.suggested_value() - mu);
    queue = std::clamp(queue, 0.0, mon_cfg.capacity);
    const LoadSignal signal = monitor.observe(queue);
    c.report_downstream_exception(signal);
    c.update(0.0);
    if (i >= kPeriods * 3 / 4) {
      sum_late += p.suggested_value();
      ++late_samples;
    }
  }
  const double settled = sum_late / late_samples;
  EXPECT_NEAR(settled, mu, 0.25) << "mu=" << mu;
}

INSTANTIATE_TEST_SUITE_P(ServiceRates, ClosedLoopConvergence,
                         ::testing::Values(0.2, 0.4, 0.6, 0.8));

TEST(ControllerConfig, ValidationCatchesBadConfigs) {
  auto check_bad = [](auto mutate) {
    ControllerConfig cfg;
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::logic_error);
  };
  check_bad([](auto& c) { c.gain = 0; });
  check_bad([](auto& c) { c.variability_window = 1; });
  check_bad([](auto& c) { c.exception_decay = 1.0; });
  check_bad([](auto& c) { c.max_step_fraction = 0; });
  check_bad([](auto& c) { c.underload_discount = 0; });
  check_bad([](auto& c) { c.accuracy_gain_fraction = 1.5; });
}

// -- replica scaler (scale-before-degrade) -----------------------------------

TEST(ReplicaScaler, ScalesUpAfterConsecutiveOverloadsOnly) {
  ReplicaScalerConfig config;
  config.cooldown = 3;  // outlasts the streak rebuild, so it's observable
  ReplicaScaler scaler(1, 4, config);
  // One overloaded period is not a trend.
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 1),
            ReplicaScaler::Decision::kNone);
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 1),
            ReplicaScaler::Decision::kScaleUp);
  // Cooldown: the monitor needs time to see the new service rate, so the
  // streak alone (period 4) is not enough; one more period is.
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kNone);
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kNone);
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kScaleUp);
}

TEST(ReplicaScaler, QuietPeriodResetsTheStreak) {
  ReplicaScaler scaler(1, 4, {});
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 1),
            ReplicaScaler::Decision::kNone);
  EXPECT_EQ(scaler.observe(LoadSignal::kNone, 1),
            ReplicaScaler::Decision::kNone);
  // The earlier overload no longer counts toward the streak.
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 1),
            ReplicaScaler::Decision::kNone);
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 1),
            ReplicaScaler::Decision::kScaleUp);
}

TEST(ReplicaScaler, PropagatesWhenBudgetExhausted) {
  ReplicaScaler scaler(1, 2, {});
  // At the core budget the exception goes upstream immediately — Eq. 4 is
  // the fallback, not blocked behind a streak.
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kPropagate);
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kPropagate);
}

TEST(ReplicaScaler, ScalesDownSlowerAndStopsAtFloor) {
  ReplicaScalerConfig config;
  config.cooldown = 0;
  ReplicaScaler scaler(1, 4, config);
  for (std::size_t i = 0; i < config.down_after - 1; ++i) {
    EXPECT_EQ(scaler.observe(LoadSignal::kUnderload, 3),
              ReplicaScaler::Decision::kNone);
  }
  EXPECT_EQ(scaler.observe(LoadSignal::kUnderload, 3),
            ReplicaScaler::Decision::kScaleDown);
  // At the floor, underload propagates so upstream can recover accuracy.
  EXPECT_EQ(scaler.observe(LoadSignal::kUnderload, 1),
            ReplicaScaler::Decision::kPropagate);
}

TEST(ReplicaScaler, OpposingSignalsResetEachOther) {
  ReplicaScalerConfig config;
  config.cooldown = 0;
  ReplicaScaler scaler(1, 4, config);
  for (std::size_t i = 0; i < config.down_after - 1; ++i) {
    scaler.observe(LoadSignal::kUnderload, 2);
  }
  // A single overload wipes the underload streak.
  EXPECT_EQ(scaler.observe(LoadSignal::kOverload, 2),
            ReplicaScaler::Decision::kNone);
  for (std::size_t i = 0; i < config.down_after - 1; ++i) {
    EXPECT_EQ(scaler.observe(LoadSignal::kUnderload, 2),
              ReplicaScaler::Decision::kNone);
  }
  EXPECT_EQ(scaler.observe(LoadSignal::kUnderload, 2),
            ReplicaScaler::Decision::kScaleDown);
}

TEST(ReplicaScaler, ValidationCatchesBadConfigs) {
  ReplicaScalerConfig bad;
  bad.up_after = 0;
  EXPECT_THROW(ReplicaScaler(1, 4, bad), std::logic_error);
  ReplicaScalerConfig bad2;
  bad2.down_after = 0;
  EXPECT_THROW(ReplicaScaler(1, 4, bad2), std::logic_error);
  EXPECT_THROW(ReplicaScaler(3, 2, {}), std::logic_error);
}

}  // namespace
}  // namespace gates::core::adapt
