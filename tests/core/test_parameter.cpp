#include "gates/core/parameter.hpp"

#include <gtest/gtest.h>

namespace gates::core {
namespace {

AdjustmentParameter::Spec spec(double init, double lo, double hi,
                               double increment = 0) {
  AdjustmentParameter::Spec s;
  s.name = "p";
  s.initial = init;
  s.min_value = lo;
  s.max_value = hi;
  s.increment = increment;
  return s;
}

TEST(AdjustmentParameter, InitialValueApplied) {
  AdjustmentParameter p(spec(0.13, 0.01, 1.0));
  EXPECT_DOUBLE_EQ(p.suggested_value(), 0.13);
}

TEST(AdjustmentParameter, InitialValueClampedIntoRange) {
  AdjustmentParameter p(spec(5.0, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(p.suggested_value(), 1.0);
}

TEST(AdjustmentParameter, SetValueClamps) {
  AdjustmentParameter p(spec(0.5, 0.0, 1.0));
  EXPECT_DOUBLE_EQ(p.set_value(2.0), 1.0);
  EXPECT_DOUBLE_EQ(p.set_value(-2.0), 0.0);
}

TEST(AdjustmentParameter, IncrementQuantizes) {
  AdjustmentParameter p(spec(0.0, 0.0, 1.0, 0.25));
  EXPECT_DOUBLE_EQ(p.set_value(0.3), 0.25);
  EXPECT_DOUBLE_EQ(p.set_value(0.4), 0.5);
  EXPECT_DOUBLE_EQ(p.set_value(0.99), 1.0);
}

TEST(AdjustmentParameter, QuantizationAnchorsAtMin) {
  AdjustmentParameter p(spec(10, 10, 240, 1));
  EXPECT_DOUBLE_EQ(p.set_value(99.6), 100);
}

TEST(AdjustmentParameter, ZeroIncrementMeansContinuous) {
  AdjustmentParameter p(spec(0.0, 0.0, 1.0, 0.0));
  EXPECT_DOUBLE_EQ(p.set_value(0.123456), 0.123456);
}

TEST(AdjustmentParameter, TrajectoryRecordsTimeValuePairs) {
  AdjustmentParameter p(spec(0.2, 0.0, 1.0));
  p.record(1.0);
  p.set_value(0.4);
  p.record(2.0);
  ASSERT_EQ(p.trajectory().size(), 2u);
  EXPECT_DOUBLE_EQ(p.trajectory()[0].second, 0.2);
  EXPECT_DOUBLE_EQ(p.trajectory()[1].first, 2.0);
  EXPECT_DOUBLE_EQ(p.trajectory()[1].second, 0.4);
}

TEST(AdjustmentParameter, InvalidSpecRejected) {
  EXPECT_THROW(AdjustmentParameter(spec(0, 1, 0)), std::logic_error);
  auto bad = spec(0, 0, 1);
  bad.increment = -0.1;
  EXPECT_THROW(AdjustmentParameter{bad}, std::logic_error);
}

TEST(AdjustmentParameter, DegenerateRangeIsAllowed) {
  AdjustmentParameter p(spec(5, 5, 5));
  EXPECT_DOUBLE_EQ(p.set_value(100), 5);
}

}  // namespace
}  // namespace gates::core
