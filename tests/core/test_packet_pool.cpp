#include "gates/core/packet_pool.hpp"

#include <gtest/gtest.h>

namespace gates::core {
namespace {

TEST(PacketPool, AcquireSizesPayloadFromArena) {
  auto& pool = PacketPool::global();
  const ArenaStats before = pool.stats();
  Packet packet = pool.acquire(128);
  EXPECT_EQ(packet.payload.size(), 128u);
  EXPECT_EQ(pool.stats().acquired, before.acquired + 1);
}

TEST(PacketPool, ZeroByteAcquireHasNoPayload) {
  auto& pool = PacketPool::global();
  const ArenaStats before = pool.stats();
  Packet packet = pool.acquire(0);
  EXPECT_EQ(packet.payload.size(), 0u);
  EXPECT_EQ(pool.stats().acquired, before.acquired);
}

TEST(PacketPool, SteadyStateAcquireDropRecycles) {
  auto& pool = PacketPool::global();
  // Warm the calling thread's cache, then churn: no heap growth and near-
  // perfect recycle over the window.
  { Packet warm = pool.acquire(512); }
  const ArenaStats before = pool.stats();
  constexpr std::uint64_t kChurn = 5000;
  for (std::uint64_t i = 0; i < kChurn; ++i) {
    Packet packet = pool.acquire(512);
    packet.sequence = i;
  }
  const ArenaStats after = pool.stats();
  EXPECT_EQ(after.acquired, before.acquired + kChurn);
  EXPECT_EQ(after.recycled, before.recycled + kChurn);
  EXPECT_EQ(after.heap_allocations(), before.heap_allocations());
}

}  // namespace
}  // namespace gates::core
