#include "gates/core/adapt/queue_monitor.hpp"

#include <gtest/gtest.h>

#include "gates/common/rng.hpp"

namespace gates::core::adapt {
namespace {

QueueMonitorConfig test_config() {
  QueueMonitorConfig cfg;
  cfg.capacity = 100;
  cfg.expected_length = 20;
  cfg.over_threshold = 40;
  cfg.under_threshold = 5;
  cfg.window = 10;
  cfg.alpha = 0.5;
  cfg.p1 = 0.2;
  cfg.p2 = 0.3;
  cfg.p3 = 0.5;
  cfg.lt1 = -0.2;
  cfg.lt2 = 0.2;
  cfg.dbar_window = 4;
  return cfg;
}

TEST(QueueMonitor, SustainedOverloadSignalsUpstream) {
  QueueMonitor m(test_config());
  LoadSignal last = LoadSignal::kNone;
  for (int i = 0; i < 20; ++i) last = m.observe(90);
  EXPECT_EQ(last, LoadSignal::kOverload);
  EXPECT_GT(m.overload_signals(), 0u);
  EXPECT_GT(m.normalized_dtilde(), 0.2);
}

TEST(QueueMonitor, SustainedUnderloadSignalsUpstream) {
  QueueMonitor m(test_config());
  LoadSignal last = LoadSignal::kNone;
  for (int i = 0; i < 20; ++i) last = m.observe(0);
  EXPECT_EQ(last, LoadSignal::kUnderload);
  EXPECT_LT(m.normalized_dtilde(), -0.2);
}

TEST(QueueMonitor, BalancedLoadStaysQuiet) {
  QueueMonitor m(test_config());
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(m.observe(20), LoadSignal::kNone);  // exactly the expectation
  }
  EXPECT_EQ(m.overload_signals(), 0u);
  EXPECT_EQ(m.underload_signals(), 0u);
}

TEST(QueueMonitor, DtildeBoundedByCapacityProperty) {
  auto cfg = test_config();
  QueueMonitor m(cfg);
  Rng rng(11);
  for (int i = 0; i < 5000; ++i) {
    m.observe(rng.uniform(0, cfg.capacity * 1.5));
    ASSERT_GE(m.dtilde(), -cfg.capacity - 1e-9);
    ASSERT_LE(m.dtilde(), cfg.capacity + 1e-9);
  }
}

TEST(QueueMonitor, ClassificationCountersTrackThresholds) {
  QueueMonitor m(test_config());
  m.observe(50);  // over
  m.observe(41);  // over
  m.observe(20);  // normal
  m.observe(2);   // under
  EXPECT_EQ(m.t1(), 2u);
  EXPECT_EQ(m.t2(), 1u);
  EXPECT_EQ(m.w(), 1);  // +1 +1 0 -1
}

TEST(QueueMonitor, WindowEvictsOldClassifications) {
  auto cfg = test_config();
  cfg.window = 3;
  QueueMonitor m(cfg);
  m.observe(50);
  m.observe(50);
  m.observe(50);
  EXPECT_EQ(m.w(), 3);
  m.observe(0);
  m.observe(0);
  m.observe(0);
  EXPECT_EQ(m.w(), -3);  // overloads fell out of the window
  EXPECT_EQ(m.t1(), 3u);  // lifetime counters remember them
}

TEST(QueueMonitor, PhiValuesExposedAndInRange) {
  QueueMonitor m(test_config());
  for (int i = 0; i < 10; ++i) m.observe(70);
  EXPECT_GT(m.last_phi1(), 0);
  EXPECT_GT(m.last_phi2(), 0);
  EXPECT_GT(m.last_phi3(), 0);
  EXPECT_LE(m.last_phi1(), 1.0);
  EXPECT_LE(m.last_phi2(), 1.0);
  EXPECT_LE(m.last_phi3(), 1.0);
}

TEST(QueueMonitor, AlphaSmoothsResponse) {
  auto fast_cfg = test_config();
  fast_cfg.alpha = 0.1;
  auto slow_cfg = test_config();
  slow_cfg.alpha = 0.9;
  QueueMonitor fast(fast_cfg), slow(slow_cfg);
  for (int i = 0; i < 3; ++i) {
    fast.observe(90);
    slow.observe(90);
  }
  EXPECT_GT(fast.dtilde(), slow.dtilde());
}

TEST(QueueMonitor, TrendGatingSuppressesSignalWhileDraining) {
  auto cfg = test_config();
  QueueMonitor m(cfg);
  for (int i = 0; i < 10; ++i) m.observe(90);
  // Queue now clearly draining: d well below the recent average.
  const LoadSignal signal = m.observe(30);
  EXPECT_EQ(signal, LoadSignal::kNone);
  EXPECT_GT(m.normalized_dtilde(), cfg.lt2);  // pressure reading still high
}

TEST(QueueMonitor, TrendGatingDisabledKeepsSignalling) {
  auto cfg = test_config();
  cfg.trend_gating = false;
  QueueMonitor m(cfg);
  for (int i = 0; i < 10; ++i) m.observe(90);
  EXPECT_EQ(m.observe(30), LoadSignal::kOverload);
}

TEST(QueueMonitor, GatedDtildeZeroWhileDraining) {
  QueueMonitor m(test_config());
  for (int i = 0; i < 10; ++i) m.observe(90);
  m.observe(10);
  EXPECT_DOUBLE_EQ(m.normalized_dtilde_gated(), 0);
  EXPECT_GT(m.normalized_dtilde(), 0);
}

TEST(QueueMonitor, ResetClearsState) {
  QueueMonitor m(test_config());
  for (int i = 0; i < 10; ++i) m.observe(90);
  m.reset();
  EXPECT_EQ(m.t1(), 0u);
  EXPECT_EQ(m.t2(), 0u);
  EXPECT_EQ(m.w(), 0);
  EXPECT_DOUBLE_EQ(m.dtilde(), 0);
  EXPECT_EQ(m.observations(), 0u);
}

TEST(QueueMonitorConfig, ValidationCatchesBadConfigs) {
  auto check_bad = [](auto mutate) {
    auto cfg = test_config();
    mutate(cfg);
    EXPECT_THROW(cfg.validate(), std::logic_error);
  };
  check_bad([](auto& c) { c.capacity = 0; });
  check_bad([](auto& c) { c.expected_length = 0; });
  check_bad([](auto& c) { c.expected_length = c.capacity; });
  check_bad([](auto& c) { c.over_threshold = c.under_threshold; });
  check_bad([](auto& c) { c.window = 0; });
  check_bad([](auto& c) { c.alpha = 0; });
  check_bad([](auto& c) { c.alpha = 1; });
  check_bad([](auto& c) { c.p1 = 0.9; });  // weights no longer sum to 1
  check_bad([](auto& c) { c.lt1 = c.lt2; });
  check_bad([](auto& c) { c.dbar_window = 0; });
}

TEST(QueueMonitor, DbarIsWindowedMean) {
  auto cfg = test_config();
  cfg.dbar_window = 2;
  QueueMonitor m(cfg);
  m.observe(10);
  m.observe(20);
  m.observe(30);
  EXPECT_DOUBLE_EQ(m.dbar(), 25);  // mean of last two
}

}  // namespace
}  // namespace gates::core::adapt
