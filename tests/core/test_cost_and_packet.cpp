#include <gtest/gtest.h>

#include "gates/core/cost_model.hpp"
#include "gates/core/packet.hpp"

namespace gates::core {
namespace {

TEST(CostModel, CombinesAllComponents) {
  CostModel cost;
  cost.per_packet_seconds = 0.5;
  cost.per_byte_seconds = 0.01;
  cost.per_record_seconds = 0.1;
  Packet p;
  p.payload.resize(10);
  p.records = 3;
  EXPECT_DOUBLE_EQ(cost.service_time(p), 0.5 + 0.1 + 0.3);
}

TEST(CostModel, EosIsFree) {
  CostModel cost;
  cost.per_packet_seconds = 100;
  EXPECT_DOUBLE_EQ(cost.service_time(Packet::eos(0, 0)), 0);
}

TEST(CostModel, DefaultIsFree) {
  Packet p;
  p.payload.resize(1000);
  EXPECT_DOUBLE_EQ(CostModel{}.service_time(p), 0);
}

TEST(Packet, EosFactoryAndPredicate) {
  Packet p = Packet::eos(7, 3.5);
  EXPECT_TRUE(p.is_eos());
  EXPECT_EQ(p.stream, 7u);
  EXPECT_DOUBLE_EQ(p.created_at, 3.5);
  EXPECT_EQ(p.records, 0u);
  EXPECT_EQ(p.payload_bytes(), 0u);

  Packet data;
  EXPECT_FALSE(data.is_eos());
  EXPECT_EQ(data.kind, kPacketKindData);
}

TEST(Packet, PayloadBytesTracksPayload) {
  Packet p;
  EXPECT_EQ(p.payload_bytes(), 0u);
  p.payload.resize(17);
  EXPECT_EQ(p.payload_bytes(), 17u);
}

}  // namespace
}  // namespace gates::core
