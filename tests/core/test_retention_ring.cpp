#include "gates/core/retention_ring.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "gates/common/byte_buffer.hpp"
#include "gates/core/packet.hpp"

namespace gates::core {
namespace {

Packet data_packet(std::uint64_t sequence, const char* text = "payload") {
  Packet p;
  p.sequence = sequence;
  p.payload = ByteBuffer::from_string(text);
  return p;
}

std::vector<std::uint64_t> unacked_seqs(const RetentionRing& ring) {
  std::vector<std::uint64_t> out;
  ring.for_each_unacked([&](std::uint64_t seq, const Packet&) {
    out.push_back(seq);
  });
  return out;
}

TEST(RetentionRing, RetainAssignsMonotonicSeqs) {
  RetentionRing ring(8);
  EXPECT_EQ(ring.retain(data_packet(0)), 0u);
  EXPECT_EQ(ring.retain(data_packet(1)), 1u);
  EXPECT_EQ(ring.retain(data_packet(2)), 2u);
  EXPECT_EQ(ring.data_retained(), 3u);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{0, 1, 2}));
}

TEST(RetentionRing, OverCapacityEvictsOldestData) {
  RetentionRing ring(3);
  for (std::uint64_t i = 0; i < 5; ++i) ring.retain(data_packet(i));
  EXPECT_EQ(ring.data_retained(), 3u);
  EXPECT_EQ(ring.evicted(), 2u);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{2, 3, 4}));
}

TEST(RetentionRing, ExactAckReleasesOnlyThatSeq) {
  RetentionRing ring(8);
  for (std::uint64_t i = 0; i < 4; ++i) ring.retain(data_packet(i));
  ring.ack_exact(2);  // a replayed tail interleaves: 2 landed, 0/1 did not
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{0, 1, 3}));
  EXPECT_EQ(ring.data_retained(), 3u);
  // Idempotent and range-checked.
  ring.ack_exact(2);
  ring.ack_exact(99);
  EXPECT_EQ(ring.data_retained(), 3u);
}

TEST(RetentionRing, CumulativeAckReleasesPrefix) {
  RetentionRing ring(8);
  for (std::uint64_t i = 0; i < 5; ++i) ring.retain(data_packet(i));
  ring.ack_cumulative(2);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{3, 4}));
  EXPECT_EQ(ring.data_retained(), 2u);
  ring.ack_cumulative(100);
  EXPECT_TRUE(unacked_seqs(ring).empty());
  EXPECT_EQ(ring.data_retained(), 0u);
}

TEST(RetentionRing, EosIsPinnedAcrossEvictions) {
  RetentionRing ring(2);
  ring.retain(data_packet(0));
  const std::uint64_t eos_seq = ring.retain(Packet::eos(0, 0.0));
  for (std::uint64_t i = 0; i < 10; ++i) ring.retain(data_packet(i));
  // Data was evicted down to capacity, but the EOS survived.
  bool eos_alive = false;
  ring.for_each_unacked([&](std::uint64_t seq, const Packet& p) {
    if (seq == eos_seq) eos_alive = p.is_eos();
  });
  EXPECT_TRUE(eos_alive);
  EXPECT_EQ(ring.data_retained(), 2u);
}

TEST(RetentionRing, ZeroCapacityRetainsOnlyEos) {
  RetentionRing ring(0);
  for (std::uint64_t i = 0; i < 100; ++i) ring.retain(data_packet(i));
  const std::uint64_t eos_seq = ring.retain(Packet::eos(0, 0.0));
  EXPECT_EQ(ring.evicted(), 100u);
  EXPECT_EQ(ring.data_retained(), 0u);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{eos_seq}));
  // Seq assignment stays monotonic across the unstored stretch.
  EXPECT_EQ(ring.next_seq(), 101u);
}

TEST(RetentionRing, SlotFootprintStaysBoundedNearCapacity) {
  RetentionRing ring(64);
  // Steady state: retain far more than capacity; eviction + the advancing
  // base must keep the slot array near the capacity, not near the volume.
  for (std::uint64_t i = 0; i < 100000; ++i) ring.retain(data_packet(i));
  EXPECT_EQ(ring.data_retained(), 64u);
  EXPECT_LE(ring.slot_count(), 256u);
}

TEST(RetentionRing, AckedPrefixKeepsWindowDense) {
  RetentionRing ring(1024);
  // FIFO retain/ack in lockstep: the window never grows past a handful of
  // slots even though seqs run far beyond the initial slot count.
  for (std::uint64_t i = 0; i < 50000; ++i) {
    ring.retain(data_packet(i));
    ring.ack_cumulative(i);
  }
  EXPECT_EQ(ring.data_retained(), 0u);
  EXPECT_EQ(ring.slot_count(), 16u);  // never grew past the initial array
}

TEST(RetentionRing, RetainedPayloadAliasesSender) {
  RetentionRing ring(8);
  Packet p = data_packet(0, "shared-bytes");
  const std::uint64_t before = ByteBuffer::deep_copies();
  ring.retain(p);
  EXPECT_EQ(ByteBuffer::deep_copies(), before);  // refcount bump, no copy
  ring.for_each_unacked([&](std::uint64_t, const Packet& kept) {
    EXPECT_TRUE(kept.payload.shares_storage(p.payload));
  });
}

TEST(RetentionRing, CowProtectsRetainedCopyFromSenderMutation) {
  RetentionRing ring(8);
  Packet p = data_packet(0, "original");
  ring.retain(p);
  // The sender recycles its buffer after handing the packet off; the
  // retained copy must still replay the original bytes.
  p.payload.data()[0] = 'X';
  ring.for_each_unacked([&](std::uint64_t, const Packet& kept) {
    EXPECT_EQ(kept.payload.as_string_view(), "original");
    EXPECT_FALSE(kept.payload.shares_storage(p.payload));
  });
}

TEST(RetentionRing, ExactAckDrainsToTheEosBarrier) {
  // Migration quiesces at the ack barrier base_seq() == next_seq(); a
  // pinned EOS at the base must hold the barrier open until it is itself
  // acked, no matter the order the data acks arrive in.
  RetentionRing ring(16);
  for (std::uint64_t i = 0; i < 4; ++i) ring.retain(data_packet(i));
  const std::uint64_t eos_seq = ring.retain(Packet::eos(0, 0.0));
  for (std::uint64_t i = 5; i < 8; ++i) ring.retain(data_packet(i));
  // Scattered exact acks for every data seq, EOS last.
  for (const std::uint64_t seq : {6ull, 0ull, 3ull, 1ull, 7ull, 2ull, 5ull}) {
    ring.ack_exact(seq);
  }
  // Everything but the EOS is released, yet the window has not drained:
  // the pin is exactly what keeps base at the EOS.
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{eos_seq}));
  EXPECT_EQ(ring.base_seq(), eos_seq);
  EXPECT_LT(ring.base_seq(), ring.next_seq());
  EXPECT_EQ(ring.data_retained(), 0u);
  ring.ack_exact(eos_seq);
  // Barrier reached — the checkpoint boundary condition.
  EXPECT_EQ(ring.base_seq(), ring.next_seq());
  EXPECT_TRUE(unacked_seqs(ring).empty());
}

TEST(RetentionRing, EvictionPressureOnAPinnedBaseStaysExact) {
  // The evict-while-pinned edge: the EOS becomes the oldest live entry at
  // the window base, then capacity pressure forces evictions. The cursor
  // must hop over the pin (never tombstoning it, never double-counting
  // data_retained) and exact acks afterwards must release exactly the
  // surviving seqs.
  RetentionRing ring(2);
  ring.retain(data_packet(0));
  const std::uint64_t eos_seq = ring.retain(Packet::eos(0, 0.0));  // seq 1
  ring.ack_exact(0);  // the EOS is now the base of the window
  EXPECT_EQ(ring.base_seq(), eos_seq);
  for (std::uint64_t i = 0; i < 8; ++i) ring.retain(data_packet(10 + i));
  // 8 data retains into capacity 2: six evictions, the pin untouched.
  EXPECT_EQ(ring.data_retained(), 2u);
  EXPECT_EQ(ring.evicted(), 6u);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{eos_seq, 8, 9}));
  // Exact ack of one survivor releases it alone; the pinned base holds.
  ring.ack_exact(8);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{eos_seq, 9}));
  EXPECT_EQ(ring.base_seq(), eos_seq);
  EXPECT_EQ(ring.data_retained(), 1u);
  // Releasing the pin lets the base sweep across the tombstoned span in
  // one advance, landing on the remaining live entry.
  ring.ack_exact(eos_seq);
  EXPECT_EQ(ring.base_seq(), 9u);
  ring.ack_exact(9);
  EXPECT_EQ(ring.base_seq(), ring.next_seq());
  EXPECT_EQ(ring.data_retained(), 0u);
}

TEST(RetentionRing, InterleavedExactAcksThenReplayOrder) {
  RetentionRing ring(16);
  for (std::uint64_t i = 0; i < 8; ++i) ring.retain(data_packet(i));
  ring.ack_exact(1);
  ring.ack_exact(4);
  ring.ack_exact(7);
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{0, 2, 3, 5, 6}));
  ring.ack_exact(0);  // base advances over the acked prefix (0, then 1)
  EXPECT_EQ(unacked_seqs(ring), (std::vector<std::uint64_t>{2, 3, 5, 6}));
}

}  // namespace
}  // namespace gates::core
