#include "gates/core/pipeline.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace gates::core {
namespace {

/// No-op processor for wiring tests.
class NullProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet&, Emitter&) override {}
  std::string name() const override { return "null"; }
};

ProcessorFactory null_factory() {
  return [] { return std::make_unique<NullProcessor>(); };
}

PipelineSpec two_stage_pipeline() {
  PipelineSpec spec;
  StageSpec a;
  a.name = "a";
  a.factory = null_factory();
  StageSpec b;
  b.name = "b";
  b.factory = null_factory();
  spec.stages = {std::move(a), std::move(b)};
  SourceSpec src;
  src.target_stage = 0;
  spec.sources = {src};
  spec.edges = {{0, 1, 0}};
  return spec;
}

TEST(PipelineSpec, ValidTwoStagePasses) {
  EXPECT_TRUE(two_stage_pipeline().validate().is_ok());
}

TEST(PipelineSpec, RejectsEmptyStages) {
  PipelineSpec spec;
  SourceSpec src;
  spec.sources = {src};
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsNoSources) {
  auto spec = two_stage_pipeline();
  spec.sources.clear();
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsSourceTargetOutOfRange) {
  auto spec = two_stage_pipeline();
  spec.sources[0].target_stage = 9;
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsNonPositiveSourceRate) {
  auto spec = two_stage_pipeline();
  spec.sources[0].rate_hz = 0;
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsEdgeOutOfRange) {
  auto spec = two_stage_pipeline();
  spec.edges.push_back({0, 5, 0});
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsSelfLoop) {
  auto spec = two_stage_pipeline();
  spec.edges.push_back({1, 1, 0});
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsCycle) {
  auto spec = two_stage_pipeline();
  spec.edges.push_back({1, 0, 0});
  auto status = spec.validate();
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("cycle"), std::string::npos);
}

TEST(PipelineSpec, RejectsUnreachableStage) {
  auto spec = two_stage_pipeline();
  StageSpec orphan;
  orphan.name = "orphan";
  orphan.factory = null_factory();
  spec.stages.push_back(std::move(orphan));
  auto status = spec.validate();
  ASSERT_FALSE(status.is_ok());
  EXPECT_NE(status.message().find("orphan"), std::string::npos);
}

TEST(PipelineSpec, RejectsZeroCapacity) {
  auto spec = two_stage_pipeline();
  spec.stages[0].input_capacity = 0;
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, RejectsStageWithoutCode) {
  auto spec = two_stage_pipeline();
  spec.stages[0].factory = nullptr;
  spec.stages[0].processor_uri.clear();
  EXPECT_FALSE(spec.validate().is_ok());
}

TEST(PipelineSpec, UriInsteadOfFactoryIsAccepted) {
  auto spec = two_stage_pipeline();
  spec.stages[0].factory = nullptr;
  spec.stages[0].processor_uri = "builtin://something";
  EXPECT_TRUE(spec.validate().is_ok());
}

TEST(PipelineSpec, TopologicalOrderRespectsEdges) {
  PipelineSpec spec;
  for (const char* name : {"d", "c", "b", "a"}) {
    StageSpec s;
    s.name = name;
    s.factory = null_factory();
    spec.stages.push_back(std::move(s));
  }
  // a(3) -> b(2) -> c(1) -> d(0)
  spec.edges = {{3, 2, 0}, {2, 1, 0}, {1, 0, 0}};
  SourceSpec src;
  src.target_stage = 3;
  spec.sources = {src};
  ASSERT_TRUE(spec.validate().is_ok());
  EXPECT_EQ(spec.topological_order(), (std::vector<std::size_t>{3, 2, 1, 0}));
}

TEST(PipelineSpec, FanInCountsSourcesAndEdges) {
  auto spec = two_stage_pipeline();
  SourceSpec extra;
  extra.target_stage = 1;
  spec.sources.push_back(extra);
  EXPECT_EQ(spec.fan_in(0), 1u);  // one source
  EXPECT_EQ(spec.fan_in(1), 2u);  // edge from 0 plus the extra source
}

TEST(PipelineSpec, EdgesFromFiltersBySource) {
  PipelineSpec spec = two_stage_pipeline();
  spec.edges.push_back({0, 1, 3});
  auto edges = spec.edges_from(0);
  EXPECT_EQ(edges.size(), 2u);
  EXPECT_TRUE(spec.edges_from(1).empty());
}

TEST(HostModel, MissingEntriesDefaultToUnitSpeed) {
  HostModel hosts;
  hosts.cpu_factor = {2.0};
  EXPECT_DOUBLE_EQ(hosts.at(0), 2.0);
  EXPECT_DOUBLE_EQ(hosts.at(7), 1.0);
}

}  // namespace
}  // namespace gates::core
