#include "gates/core/adapt/load_factors.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gates::core::adapt {
namespace {

TEST(Phi1, ZeroCountsGiveZero) { EXPECT_DOUBLE_EQ(phi1(0, 0), 0); }

TEST(Phi1, PureOverloadIsOne) { EXPECT_DOUBLE_EQ(phi1(5, 0), 1.0); }

TEST(Phi1, PureUnderloadIsMinusOne) { EXPECT_DOUBLE_EQ(phi1(0, 5), -1.0); }

TEST(Phi1, BalancedIsZero) { EXPECT_DOUBLE_EQ(phi1(7, 7), 0); }

TEST(Phi1, MatchesEquationOne) {
  EXPECT_DOUBLE_EQ(phi1(3, 1), 0.5);
  EXPECT_DOUBLE_EQ(phi1(1, 3), -0.5);
}

TEST(Phi1, AcceptsFractionalCounts) {
  // Decayed exception counts are fractional.
  EXPECT_NEAR(phi1(1.5, 0.5), 0.5, 1e-12);
}

TEST(Phi1, NegativeCountsAreAProgrammingError) {
  EXPECT_THROW(phi1(-1, 0), std::logic_error);
}

class Phi1Range : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(Phi1Range, AlwaysInUnitInterval) {
  auto [t1, t2] = GetParam();
  const double v = phi1(t1, t2);
  EXPECT_GE(v, -1.0);
  EXPECT_LE(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Phi1Range,
                         ::testing::Values(std::pair{0, 0}, std::pair{1, 0},
                                           std::pair{0, 1}, std::pair{100, 3},
                                           std::pair{3, 100},
                                           std::pair{1000000, 1}));

TEST(Phi2, ZeroIsZero) { EXPECT_DOUBLE_EQ(phi2(0, 10), 0); }

TEST(Phi2, SaturatesAtWindow) {
  EXPECT_DOUBLE_EQ(phi2(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(phi2(-10, 10), -1.0);
}

TEST(Phi2, OddSymmetry) {
  for (int w = 1; w <= 10; ++w) {
    EXPECT_DOUBLE_EQ(phi2(w, 10), -phi2(-w, 10));
  }
}

TEST(Phi2, MonotoneIncreasingInW) {
  double prev = phi2(-10, 10);
  for (int w = -9; w <= 10; ++w) {
    const double cur = phi2(w, 10);
    EXPECT_GT(cur, prev);
    prev = cur;
  }
}

TEST(Phi2, RangeBound) {
  for (int window : {1, 5, 12, 100}) {
    for (int w = -window; w <= window; ++w) {
      const double v = phi2(w, window);
      EXPECT_GE(v, -1.0);
      EXPECT_LE(v, 1.0);
    }
  }
}

TEST(Phi2, OutOfWindowIsAProgrammingError) {
  EXPECT_THROW(phi2(11, 10), std::logic_error);
  EXPECT_THROW(phi2(-11, 10), std::logic_error);
  EXPECT_THROW(phi2(0, 0), std::logic_error);
}

TEST(Phi3, AtExpectedIsZero) { EXPECT_DOUBLE_EQ(phi3(20, 20, 100), 0); }

TEST(Phi3, EmptyQueueIsMinusOne) { EXPECT_DOUBLE_EQ(phi3(0, 20, 100), -1.0); }

TEST(Phi3, FullQueueIsOne) { EXPECT_DOUBLE_EQ(phi3(100, 20, 100), 1.0); }

TEST(Phi3, BelowExpectedNormalizedByD) {
  // Equation 3 lower branch: (dbar - D) / D.
  EXPECT_DOUBLE_EQ(phi3(10, 20, 100), -0.5);
}

TEST(Phi3, AboveExpectedNormalizedByHeadroom) {
  // Equation 3 upper branch: (dbar - D) / (C - D).
  EXPECT_DOUBLE_EQ(phi3(60, 20, 100), 0.5);
}

TEST(Phi3, ClampsBeyondCapacity) {
  EXPECT_DOUBLE_EQ(phi3(150, 20, 100), 1.0);
}

TEST(Phi3, InvalidParamsAreProgrammingErrors) {
  EXPECT_THROW(phi3(0, 0, 100), std::logic_error);
  EXPECT_THROW(phi3(0, 100, 100), std::logic_error);
}

class Phi3Range : public ::testing::TestWithParam<double> {};

TEST_P(Phi3Range, AlwaysInUnitInterval) {
  const double v = phi3(GetParam(), 20, 100);
  EXPECT_GE(v, -1.0);
  EXPECT_LE(v, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Phi3Range,
                         ::testing::Values(0.0, 1.0, 19.9, 20.0, 20.1, 50.0,
                                           99.0, 100.0, 500.0));

}  // namespace
}  // namespace gates::core::adapt
