// Node failure injection: crashed stages blackhole traffic, EOS is raised
// on their behalf, and the rest of the pipeline completes with the data
// that made it through.
#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/accuracy.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    if (forward_) emitter.emit(packet);
  }
  void finish(Emitter&) override { finished_ = true; }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
  bool forward_ = true;
  bool finished_ = false;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// Two forwarders (nodes 1, 2) into a sink (node 0), one source per
/// forwarder at 100 packets/s for 10 s.
Built fan_in() {
  Built b;
  for (int i = 0; i < 2; ++i) {
    StageSpec fwd;
    fwd.name = "fwd" + std::to_string(i);
    fwd.factory = [] { return std::make_unique<CountingProcessor>(); };
    b.spec.stages.push_back(std::move(fwd));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    auto p = std::make_unique<CountingProcessor>();
    p->forward_ = false;
    return p;
  };
  b.spec.stages.push_back(std::move(sink));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 2, 0}, {1, 2, 0}};
  for (int i = 0; i < 2; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 100;
    src.total_packets = 1000;
    src.packet_bytes = 16;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    b.spec.sources.push_back(src);
  }
  return b;
}

TEST(NodeFailure, PipelineCompletesWithSurvivorsData) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 5.0);  // kills fwd0 mid-stream
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);

  auto& fwd0 = dynamic_cast<CountingProcessor&>(engine.processor(0));
  auto& fwd1 = dynamic_cast<CountingProcessor&>(engine.processor(1));
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  // fwd0 processed about half its stream before dying.
  EXPECT_NEAR(static_cast<double>(fwd0.packets_), 500, 30);
  EXPECT_EQ(fwd1.packets_, 1000u);
  // The sink saw everything the survivors forwarded.
  EXPECT_NEAR(static_cast<double>(sink.packets_),
              static_cast<double>(fwd0.packets_ + fwd1.packets_), 5);
  EXPECT_TRUE(sink.finished_);
  EXPECT_FALSE(fwd0.finished_);  // crashed stages get no finish() call
}

TEST(NodeFailure, FailureAtTimeZeroStillCompletes) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 0.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& sink = dynamic_cast<CountingProcessor&>(engine.processor(2));
  EXPECT_NEAR(static_cast<double>(sink.packets_), 1000, 5);
}

TEST(NodeFailure, FailingEveryWorkerStillTerminates) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 2.0);
  engine.schedule_node_failure(2, 3.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
}

TEST(NodeFailure, DroppedPacketsAreCounted) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());
  const auto* fwd0 = engine.report().stage("fwd0");
  ASSERT_NE(fwd0, nullptr);
  // ~500 packets generated after the crash were blackholed.
  EXPECT_NEAR(static_cast<double>(fwd0->packets_dropped), 500, 30);
}

TEST(NodeFailure, SchedulingAfterRunIsAProgrammingError) {
  auto b = fan_in();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_THROW(engine.schedule_node_failure(1, 1.0), std::logic_error);
}

TEST(NodeFailure, CountSampsDegradesGracefully) {
  // Distributed count-samps where one summary site dies mid-run: the sink
  // keeps that stream's last shipped summary, so the answer degrades
  // instead of vanishing.
  Built b;
  auto zipf = std::make_shared<ZipfGenerator>(1000, 1.2);
  for (int i = 0; i < 2; ++i) {
    StageSpec summary;
    summary.name = "summary" + std::to_string(i);
    summary.factory = [] {
      return std::make_unique<apps::CountSampsSummaryProcessor>();
    };
    summary.properties.set("emit-every", "500");
    summary.properties.set("track-exact", "true");
    b.spec.stages.push_back(std::move(summary));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    return std::make_unique<apps::CountSampsSinkProcessor>();
  };
  b.spec.stages.push_back(std::move(sink));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 2, 0}, {1, 2, 0}};
  for (int i = 0; i < 2; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 1000;
    src.total_packets = 10000;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    src.generator = [zipf](std::uint64_t, Rng& rng) {
      Packet p;
      Serializer s(p.payload);
      s.write_u64(zipf->next(rng));
      return p;
    };
    b.spec.sources.push_back(std::move(src));
  }

  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  engine.schedule_node_failure(1, 5.0);  // summary0 dies halfway
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  auto& sink_proc =
      dynamic_cast<apps::CountSampsSinkProcessor&>(engine.processor(2));
  // Summaries from the dead site up to the crash survived.
  EXPECT_GE(sink_proc.summaries_received(), 10u);
  EXPECT_FALSE(sink_proc.result().empty());
  // The answer still finds the global heavy hitters (both streams share a
  // distribution, so the surviving stream plus the stale summary cover the
  // top values).
  apps::ExactCounter exact;
  for (int i = 0; i < 2; ++i) {
    auto& summary =
        dynamic_cast<apps::CountSampsSummaryProcessor&>(engine.processor(i));
    exact.merge(*summary.exact());  // exact over what was actually processed
  }
  const auto breakdown =
      apps::top_k_accuracy(sink_proc.result(), exact.top_k(10));
  EXPECT_GT(breakdown.recall, 0.7);
}

}  // namespace
}  // namespace gates::core
