// Dynamic resource variation: CPU and bandwidth changes mid-run, and the
// adaptation tracking them.
#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/scenarios.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

class CountingProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet&, Emitter&) override { ++packets_; }
  std::string name() const override { return "counting"; }
  std::uint64_t packets_ = 0;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

Built single_stage(std::uint64_t packets, double rate) {
  Built b;
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountingProcessor>(); };
  b.spec.stages = {std::move(sink)};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 100;
  src.location = 1;
  b.spec.sources = {src};
  b.placement.stage_nodes = {0};
  b.hosts.cpu_factor = {1.0, 1.0};
  return b;
}

SimEngine::Config zero_wire() {
  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  return cfg;
}

TEST(DynamicResources, CpuSlowdownStretchesExecution) {
  // 100 packets at 0.1 s each = 10 s at full speed. Halving the CPU at t=5
  // makes the second half take twice as long: ~5 + 10 = 15 s.
  auto build = [] {
    auto b = single_stage(100, 1000);
    b.spec.stages[0].cost.per_packet_seconds = 0.1;
    return b;
  };
  auto base = build();
  SimEngine baseline(base.spec, base.placement, base.hosts, base.topology,
                     zero_wire());
  ASSERT_TRUE(baseline.run().is_ok());
  EXPECT_NEAR(baseline.report().execution_time, 10.0, 0.5);

  auto slowed = build();
  SimEngine engine(slowed.spec, slowed.placement, slowed.hosts,
                   slowed.topology, zero_wire());
  engine.schedule_cpu_change(0, 5.0, 0.5);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 15.0, 0.7);
}

TEST(DynamicResources, CpuSpeedupShortensExecution) {
  auto b = single_stage(100, 1000);
  b.spec.stages[0].cost.per_packet_seconds = 0.1;
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  engine.schedule_cpu_change(0, 5.0, 2.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 7.5, 0.5);
}

TEST(DynamicResources, BandwidthDropStretchesTransfer) {
  // 100 x 100 B = 10 KB at 1 KB/s = 10 s; halving bandwidth at t=5 gives
  // ~5 + 10 = 15 s.
  auto b = single_stage(100, 1000);
  b.topology.set_pair(1, 0, {1000.0, 0.0});
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  engine.schedule_bandwidth_change(1, 0, 5.0, 500.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 15.0, 0.7);
}

TEST(DynamicResources, SharedIngressChangeApplies) {
  auto b = single_stage(100, 1000);
  b.topology.set_shared_ingress(0, {1000.0, 0.0});
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  engine.schedule_bandwidth_change(1, 0, 5.0, 2000.0);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_NEAR(engine.report().execution_time, 7.5, 0.5);
}

TEST(DynamicResources, SchedulingAfterRunIsAProgrammingError) {
  auto b = single_stage(10, 1000);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_THROW(engine.schedule_cpu_change(0, 1.0, 2.0), std::logic_error);
  EXPECT_THROW(engine.schedule_bandwidth_change(1, 0, 1.0, 1.0),
               std::logic_error);
}

TEST(DynamicResources, InvalidValuesRejected) {
  auto b = single_stage(10, 1000);
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, zero_wire());
  EXPECT_THROW(engine.schedule_cpu_change(0, 1.0, 0.0), std::logic_error);
  EXPECT_THROW(engine.schedule_bandwidth_change(1, 0, 1.0, -5.0),
               std::logic_error);
}

TEST(DynamicResources, AdaptationTracksLinkDegradation) {
  // Scaled-down version of bench/dynamic_adaptation scenario A.
  apps::scenarios::CompSteerOptions o;
  o.generation_bytes_per_sec = 20e3;
  o.chunk_bytes = 1024;
  o.analyzer_ms_per_byte = 0.01;
  o.link_bw = 10e3;
  o.rate_initial = 0.01;
  o.horizon = 500;
  o.link_bandwidth_changes = {{250, 4e3}};
  const auto r = apps::scenarios::run_comp_steer(o);
  RunningStats before, after;
  for (const auto& [t, v] : r.trajectory) {
    if (t > 125 && t < 250) before.add(v);
    if (t > 375) after.add(v);
  }
  EXPECT_NEAR(before.mean(), 0.5, 0.2);
  EXPECT_NEAR(after.mean(), 0.2, 0.12);
  EXPECT_LT(after.mean(), before.mean());
}

TEST(DynamicResources, AdaptationTracksCpuRecovery) {
  apps::scenarios::CompSteerOptions o;
  o.analyzer_ms_per_byte = 10;
  o.horizon = 500;
  o.analyzer_cpu_changes = {{0.5, 0.5}, {250, 1.0}};  // start slow, recover
  const auto r = apps::scenarios::run_comp_steer(o);
  RunningStats slow_phase, fast_phase;
  for (const auto& [t, v] : r.trajectory) {
    if (t > 125 && t < 250) slow_phase.add(v);
    if (t > 375) fast_phase.add(v);
  }
  EXPECT_GT(fast_phase.mean(), slow_phase.mean() + 0.1);
}

}  // namespace
}  // namespace gates::core
