// Live stage migration (DESIGN.md §10): checkpoint container round trips,
// digest-identical output across a mid-run migration on both engines, the
// kill-at-every-protocol-step fallback matrix, the on_recover() fallback for
// un-checkpointable processors, and per-shard restore on pooled stages.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gates/common/byte_buffer.hpp"
#include "gates/common/serialize.hpp"
#include "gates/core/checkpoint.hpp"
#include "gates/core/migration.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::core {
namespace {

std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Stateful operator whose every output depends on all prior inputs: the
/// chained hash makes any lost, duplicated or re-ordered state transition
/// visible in the downstream digest.
class ChainProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    state_ = mix(state_ ^ packet.sequence);
    ++processed_;
    Packet out = packet;
    ByteBuffer payload;
    Serializer s(payload);
    s.write_u64(packet.sequence);
    s.write_u64(state_);
    out.payload = std::move(payload);
    emitter.emit(std::move(out));
  }
  bool checkpoint(StateWriter& w) override {
    w.write_u64(state_);
    w.write_u64(processed_);
    return true;
  }
  bool restore(StateReader& r) override {
    return r.read_u64(state_).is_ok() && r.read_u64(processed_).is_ok();
  }
  std::string name() const override { return "chain"; }

  std::uint64_t state_ = 0x6a09e667f3bcc908ULL;
  std::uint64_t processed_ = 0;
};

/// As ChainProcessor but un-checkpointable: migration must run the
/// init() + on_recover() fallback on the target.
class StatelessChain : public ChainProcessor {
 public:
  void on_recover(ProcessorContext&) override { ++recovers_; }
  bool checkpoint(StateWriter&) override { return false; }
  bool restore(StateReader&) override { return false; }
  std::string name() const override { return "stateless-chain"; }

  int recovers_ = 0;
};

/// Serial sink folding (sequence, payload) into one order-sensitive digest.
class DigestSink : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter&) override {
    ++count_;
    digest_ = fold(digest_, packet.sequence);
    const std::uint8_t* data = packet.payload.data();
    for (std::size_t i = 0; i < packet.payload.size(); ++i) {
      digest_ = fold(digest_, data[i]);
    }
  }
  std::string name() const override { return "digest-sink"; }

  static std::uint64_t fold(std::uint64_t h, std::uint64_t v) {
    return (h ^ v) * 0x100000001b3ULL;
  }

  std::uint64_t digest_ = 0xcbf29ce484222325ULL;
  std::uint64_t count_ = 0;
};

struct Built {
  PipelineSpec spec;
  Placement placement;
  HostModel hosts;
  net::Topology topology;
};

/// source (node 1) -> chain (node 1) -> sink (node 0); node 2 idle — the
/// migration target.
Built chain_pipeline(std::uint64_t packets = 1000, double rate = 200) {
  Built b;
  StageSpec chain;
  chain.name = "chain";
  chain.factory = [] { return std::make_unique<ChainProcessor>(); };
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<DigestSink>(); };
  b.spec.stages = {std::move(chain), std::move(sink)};
  b.spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = rate;
  src.total_packets = packets;
  src.packet_bytes = 16;
  src.location = 1;
  src.target_stage = 0;
  b.spec.sources = {src};
  b.placement.stage_nodes = {1, 0};
  b.hosts.cpu_factor = {1.0, 1.0, 1.0};
  return b;
}

SimEngine::Config sim_failover_config(std::uint64_t seed = 1) {
  SimEngine::Config config;
  config.seed = seed;
  config.failover.enabled = true;
  config.failover.heartbeat_period = 0.5;
  config.failover.suspicion_beats = 3;
  config.failover.replay_buffer_packets = 4096;
  return config;
}

std::uint64_t sim_baseline_digest() {
  auto b = chain_pipeline();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   sim_failover_config());
  EXPECT_TRUE(engine.run().is_ok());
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1000u);
  return sink.digest_;
}

// -- StageCheckpoint wire form ----------------------------------------------

TEST(StageCheckpoint, EncodeDecodeRoundTrip) {
  StageCheckpoint ckpt;
  ckpt.stage = "chain";
  ckpt.incarnation = 7;
  ByteBuffer r0;
  Serializer s0(r0);
  s0.write_u64(0xdeadbeefULL);
  ckpt.replicas.push_back(std::move(r0));
  ckpt.replicas.emplace_back();  // un-checkpointable replica: empty blob
  ByteBuffer r2;
  Serializer s2(r2);
  s2.write_string("shard-2 state");
  ckpt.replicas.push_back(std::move(r2));

  ByteBuffer wire;
  ckpt.encode(wire);
  StageCheckpoint out;
  ASSERT_TRUE(StageCheckpoint::decode(wire.data(), wire.size(), out));
  EXPECT_EQ(out.stage, "chain");
  EXPECT_EQ(out.incarnation, 7u);
  ASSERT_EQ(out.replicas.size(), 3u);
  EXPECT_EQ(out.replicas[1].size(), 0u);
  EXPECT_EQ(out.total_bytes(), ckpt.total_bytes());
  StateReader r(out.replicas[0]);
  std::uint64_t v = 0;
  ASSERT_TRUE(r.read_u64(v).is_ok());
  EXPECT_EQ(v, 0xdeadbeefULL);
}

TEST(StageCheckpoint, DecodeRejectsTruncation) {
  StageCheckpoint ckpt;
  ckpt.stage = "s";
  ByteBuffer blob;
  Serializer s(blob);
  s.write_u64(1);
  ckpt.replicas.push_back(std::move(blob));
  ByteBuffer wire;
  ckpt.encode(wire);
  StageCheckpoint out;
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    EXPECT_FALSE(StageCheckpoint::decode(wire.data(), cut, out))
        << "accepted a " << cut << "-byte prefix of " << wire.size();
  }
}

// -- SimEngine ---------------------------------------------------------------

TEST(MigrationSim, MidRunMigrationPreservesOutputDigest) {
  const std::uint64_t baseline = sim_baseline_digest();
  auto b = chain_pipeline();
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   sim_failover_config());
  engine.schedule_migration(0, 2.5, /*target=*/2);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kCompleted);
  EXPECT_EQ(m.stage, "chain");
  EXPECT_EQ(m.from, 1u);
  EXPECT_EQ(m.to, 2u);
  EXPECT_TRUE(m.checkpointed);
  EXPECT_GT(m.checkpoint_bytes, 0u);
  EXPECT_GE(m.downtime, 0.0);
  EXPECT_TRUE(engine.report().failures.empty());

  // Byte-identical output: same packet count, same order-sensitive digest
  // over every (sequence, payload) the sink consumed.
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1000u);
  EXPECT_EQ(sink.digest_, baseline);
}

TEST(MigrationSim, WithoutFailoverAbortsInPlace) {
  const std::uint64_t baseline = sim_baseline_digest();
  auto b = chain_pipeline();
  SimEngine::Config config;  // failover disabled: no retention to cover a gap
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology, config);
  engine.schedule_migration(0, 2.5, 2);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kAborted);
  EXPECT_EQ(m.failed_step, MigrationStep::kQuiesce);
  // The stage never stopped: the run is indistinguishable from an
  // unmigrated one.
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1000u);
  EXPECT_EQ(sink.digest_, baseline);
}

TEST(MigrationSim, UncheckpointableProcessorFallsBackToOnRecover) {
  auto b = chain_pipeline();
  b.spec.stages[0].factory = [] { return std::make_unique<StatelessChain>(); };
  SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                   sim_failover_config());
  engine.schedule_migration(0, 2.5, 2);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kCompleted);
  EXPECT_FALSE(m.checkpointed);
  auto& moved = dynamic_cast<StatelessChain&>(engine.processor(0));
  EXPECT_EQ(moved.recovers_, 1);
  // At-least-once, not byte-identical: state restarted mid-stream, but every
  // packet still reached the sink.
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1000u);
}

/// Kill-the-target drill: force-fail each protocol step across 25 seeds.
/// A quiesce failure aborts in place (stage never stopped); any later step
/// degrades to crash-failover — and in every case the run completes with
/// all packets accounted for.
TEST(MigrationSim, KillAtEveryProtocolStepSoak) {
  const MigrationStep steps[] = {MigrationStep::kQuiesce,
                                 MigrationStep::kCapture,
                                 MigrationStep::kTransfer,
                                 MigrationStep::kResume};
  for (const MigrationStep step : steps) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
      auto b = chain_pipeline();
      SimEngine engine(b.spec, b.placement, b.hosts, b.topology,
                       sim_failover_config(seed));
      engine.schedule_migration(0, 2.5, 2);
      engine.set_migration_fault_injector(
          [step](MigrationStep s) { return s == step; });
      ASSERT_TRUE(engine.run().is_ok())
          << migration_step_name(step) << " seed " << seed;
      EXPECT_TRUE(engine.report().completed)
          << migration_step_name(step) << " seed " << seed;
      ASSERT_EQ(engine.report().migrations.size(), 1u);
      const MigrationRecord& m = engine.report().migrations[0];
      EXPECT_EQ(m.failed_step, step);
      if (step == MigrationStep::kQuiesce) {
        EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kAborted);
        EXPECT_TRUE(engine.report().failures.empty());
      } else {
        EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kFellBack);
        ASSERT_EQ(engine.report().failures.size(), 1u)
            << migration_step_name(step) << " seed " << seed;
        EXPECT_EQ(engine.report().failures[0].outcome,
                  FailureReport::Outcome::kRecovered);
      }
      // At-least-once accounting across the degradation: every packet
      // reached the sink or was (accountably) evicted from retention.
      std::uint64_t lost = 0, replayed = 0;
      for (const auto& f : engine.report().failures) {
        lost += f.packets_lost_retention;
        replayed += f.packets_replayed;
      }
      auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
      EXPECT_GE(sink.count_ + lost, 1000u)
          << migration_step_name(step) << " seed " << seed;
      EXPECT_LE(sink.count_, 1000u + replayed);
    }
  }
}

// -- RtEngine ----------------------------------------------------------------

RtEngine::Config rt_failover_config(std::uint64_t seed = 1) {
  RtEngine::Config config;
  config.seed = seed;
  config.adaptation_enabled = false;
  config.control_period = 0.01;
  config.max_wall_time = 60;
  config.failover.enabled = true;
  config.failover.heartbeat_period = 0.05;
  config.failover.suspicion_beats = 2;
  config.failover.replay_buffer_packets = 4096;
  return config;
}

TEST(MigrationRt, MidRunMigrationPreservesOutputDigest) {
  auto base = chain_pipeline(2000, 5000);
  std::uint64_t baseline = 0;
  {
    RtEngine engine(base.spec, base.placement, base.hosts, base.topology,
                    rt_failover_config());
    ASSERT_TRUE(engine.run().is_ok());
    auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
    ASSERT_EQ(sink.count_, 2000u);
    baseline = sink.digest_;
  }
  auto b = chain_pipeline(2000, 5000);
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology,
                  rt_failover_config());
  engine.schedule_migration(0, 0.15, 2);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kCompleted);
  EXPECT_EQ(m.to, 2u);
  EXPECT_TRUE(m.checkpointed);
  // In-process Rt migration keeps the inbox: zero replay, zero duplicates —
  // the sink's stream is byte-identical to the unmigrated run's.
  EXPECT_EQ(m.packets_replayed, 0u);
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 2000u);
  EXPECT_EQ(sink.digest_, baseline);
}

TEST(MigrationRt, KillAtEveryProtocolStepCompletesViaFailover) {
  const MigrationStep steps[] = {MigrationStep::kQuiesce,
                                 MigrationStep::kCapture,
                                 MigrationStep::kTransfer,
                                 MigrationStep::kResume};
  for (const MigrationStep step : steps) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto b = chain_pipeline(2000, 5000);
      RtEngine engine(b.spec, b.placement, b.hosts, b.topology,
                      rt_failover_config(seed));
      engine.schedule_migration(0, 0.15, 2);
      engine.set_migration_fault_injector(
          [step](MigrationStep s) { return s == step; });
      ASSERT_TRUE(engine.run().is_ok())
          << migration_step_name(step) << " seed " << seed;
      EXPECT_TRUE(engine.report().completed);
      ASSERT_EQ(engine.report().migrations.size(), 1u);
      const MigrationRecord& m = engine.report().migrations[0];
      EXPECT_EQ(m.failed_step, step);
      std::uint64_t lost = 0, replayed = 0;
      for (const auto& f : engine.report().failures) {
        lost += f.packets_lost_retention;
        replayed += f.packets_replayed;
      }
      if (step == MigrationStep::kQuiesce) {
        EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kAborted);
      } else {
        EXPECT_EQ(m.outcome, MigrationRecord::Outcome::kFellBack);
        ASSERT_GE(engine.report().failures.size(), 1u);
        EXPECT_EQ(engine.report().failures[0].outcome,
                  FailureReport::Outcome::kRecovered);
      }
      auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
      EXPECT_GE(sink.count_ + lost, 2000u)
          << migration_step_name(step) << " seed " << seed;
      EXPECT_LE(sink.count_, 2000u + replayed);
    }
  }
}

// -- pooled / keyed-sharded stages -------------------------------------------

/// Per-shard counting operator: each replica owns a disjoint key set; the
/// checkpoint is that replica's map in canonical order.
class ShardCounter : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void on_recover(ProcessorContext&) override { ++recovers_; }
  void process(const Packet& packet, Emitter& emitter) override {
    ++per_key_[packet.sequence % 8];
    emitter.emit(packet);
  }
  bool checkpoint(StateWriter& w) override {
    w.write_varint(per_key_.size());
    for (const auto& [key, count] : per_key_) {  // std::map: sorted
      w.write_u64(key);
      w.write_varint(count);
    }
    return true;
  }
  bool restore(StateReader& r) override {
    std::uint64_t n = 0;
    if (!r.read_varint(n).is_ok()) return false;
    std::map<std::uint64_t, std::uint64_t> keys;
    for (std::uint64_t i = 0; i < n; ++i) {
      std::uint64_t key = 0, count = 0;
      if (!r.read_u64(key).is_ok()) return false;
      if (!r.read_varint(count).is_ok()) return false;
      keys[key] = count;
    }
    per_key_ = std::move(keys);
    ++restores_;
    return true;
  }
  std::string name() const override { return "shard-counter"; }

  std::map<std::uint64_t, std::uint64_t> per_key_;
  int recovers_ = 0;
  int restores_ = 0;
};

Built sharded_pipeline(std::uint64_t packets, double rate) {
  Built b = chain_pipeline(packets, rate);
  Parallelism par;
  par.mode = ParallelismMode::kKeyed;
  par.replicas = 2;
  par.max_replicas = 2;
  par.shard_fn = [](const Packet& p) { return p.sequence % 8; };
  b.spec.stages[0].name = "shards";
  b.spec.stages[0].parallelism = std::move(par);
  b.spec.stages[0].factory = [] { return std::make_unique<ShardCounter>(); };
  return b;
}

TEST(MigrationPooled, PerShardStateLandsOnTheCorrectReplica) {
  auto b = sharded_pipeline(1600, 8000);
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology,
                  rt_failover_config());
  engine.schedule_migration(0, 0.1, 2);
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  ASSERT_EQ(m.outcome, MigrationRecord::Outcome::kCompleted);
  EXPECT_TRUE(m.checkpointed);

  ASSERT_EQ(engine.replica_count(0), 2u);
  auto& r0 = dynamic_cast<ShardCounter&>(engine.replica_processor(0, 0));
  auto& r1 = dynamic_cast<ShardCounter&>(engine.replica_processor(0, 1));
  // Each replica restored exactly its own shard's blob, then kept counting:
  // every key's full history sits whole on one replica, never split, and
  // the totals cover the entire stream — nothing lost across the move.
  EXPECT_EQ(r0.restores_, 1);
  EXPECT_EQ(r1.restores_, 1);
  std::uint64_t total = 0;
  for (std::uint64_t key = 0; key < 8; ++key) {
    const std::uint64_t c0 = r0.per_key_.count(key) ? r0.per_key_[key] : 0;
    const std::uint64_t c1 = r1.per_key_.count(key) ? r1.per_key_[key] : 0;
    EXPECT_EQ(c0 + c1, 200u) << "key " << key;
    EXPECT_TRUE(c0 == 0 || c1 == 0) << "key " << key << " split";
    total += c0 + c1;
  }
  EXPECT_EQ(total, 1600u);
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1600u);
}

TEST(MigrationPooled, UncheckpointablePoolRunsOnRecoverPerReplica) {
  auto b = sharded_pipeline(1600, 8000);
  b.spec.stages[0].factory = [] {
    // Keyed counting without checkpoint support: counts restart on the
    // target, but dispatch still keeps each key on one replica.
    class Plain : public ShardCounter {
     public:
      bool checkpoint(StateWriter&) override { return false; }
      bool restore(StateReader&) override { return false; }
    };
    return std::make_unique<Plain>();
  };
  RtEngine engine(b.spec, b.placement, b.hosts, b.topology,
                  rt_failover_config());
  engine.schedule_migration(0, 0.1, 2);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_EQ(engine.report().migrations.size(), 1u);
  const MigrationRecord& m = engine.report().migrations[0];
  ASSERT_EQ(m.outcome, MigrationRecord::Outcome::kCompleted);
  EXPECT_FALSE(m.checkpointed);
  ASSERT_EQ(engine.replica_count(0), 2u);
  std::uint64_t keys_seen = 0;
  for (std::size_t i = 0; i < 2; ++i) {
    auto& r = dynamic_cast<ShardCounter&>(engine.replica_processor(0, i));
    EXPECT_EQ(r.recovers_, 1) << "replica " << i;
    EXPECT_EQ(r.restores_, 0) << "replica " << i;
    for (const auto& [key, count] : r.per_key_) {
      (void)count;
      ++keys_seen;
    }
  }
  // Post-migration dispatch still shards every key to exactly one replica.
  EXPECT_LE(keys_seen, 8u);
  auto& sink = dynamic_cast<DigestSink&>(engine.processor(1));
  EXPECT_EQ(sink.count_, 1600u);
}

}  // namespace
}  // namespace gates::core
