#include "gates/core/stage_inbox.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace gates::core {
namespace {

// Both modes must satisfy the same blocking batch contract; run the shared
// cases against each.
class StageInboxModes : public ::testing::TestWithParam<bool> {
 protected:
  std::unique_ptr<StageInbox<int>> make(std::size_t capacity) {
    auto inbox = std::make_unique<StageInbox<int>>(capacity);
    if (GetParam()) inbox->use_spsc();
    return inbox;
  }
};

TEST_P(StageInboxModes, PushAllDrainRoundTrip) {
  auto inbox_ptr = make(16);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(inbox.push_all(in), 5u);
  EXPECT_TRUE(in.empty());
  std::vector<int> out;
  EXPECT_EQ(inbox.drain(out, 64), 5u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST_P(StageInboxModes, ProducerBlocksOnFullUntilConsumerDrains) {
  auto inbox_ptr = make(4);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> in(64);
  for (int i = 0; i < 64; ++i) in[static_cast<std::size_t>(i)] = i;
  std::thread producer([&] { EXPECT_EQ(inbox.push_all(in), 64u); });
  std::vector<int> out;
  while (out.size() < 64) inbox.drain(out, 8);
  producer.join();
  for (int i = 0; i < 64; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST_P(StageInboxModes, DrainForTimesOutWhenIdle) {
  auto inbox_ptr = make(4);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> out;
  EXPECT_EQ(inbox.drain_for(out, 8, 0.01), 0u);
  EXPECT_FALSE(inbox.closed());
}

TEST_P(StageInboxModes, CloseWakesBlockedConsumer) {
  auto inbox_ptr = make(4);
  StageInbox<int>& inbox = *inbox_ptr;
  std::thread consumer([&] {
    std::vector<int> out;
    EXPECT_EQ(inbox.drain(out, 8), 0u);  // returns once closed and drained
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  inbox.close();
  consumer.join();
}

TEST_P(StageInboxModes, CloseWakesBlockedProducer) {
  auto inbox_ptr = make(2);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> fill = {1, 2};
  ASSERT_EQ(inbox.push_all(fill), 2u);
  std::thread producer([&] {
    std::vector<int> more = {3, 4};
    EXPECT_LT(inbox.push_all(more), 2u);  // unblocked by close, short count
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  inbox.close();
  producer.join();
}

TEST_P(StageInboxModes, AuxItemsArriveAlongsideDataPlane) {
  auto inbox_ptr = make(8);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> in = {1, 2};
  inbox.push_all(in);
  EXPECT_TRUE(inbox.push_aux(100));
  EXPECT_TRUE(inbox.push_aux(101));
  std::vector<int> out;
  while (out.size() < 4) inbox.drain(out, 8);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<int>{1, 2, 100, 101}));
  EXPECT_EQ(inbox.size(), 0u);
}

TEST_P(StageInboxModes, ReopenDiscardsQueuedInput) {
  auto inbox_ptr = make(8);
  StageInbox<int>& inbox = *inbox_ptr;
  std::vector<int> in = {1, 2, 3};
  inbox.push_all(in);
  inbox.push_aux(99);
  inbox.close();
  inbox.reopen();
  EXPECT_FALSE(inbox.closed());
  EXPECT_EQ(inbox.size(), 0u);
  EXPECT_TRUE(inbox.push(7));
  std::vector<int> out;
  EXPECT_EQ(inbox.drain(out, 8), 1u);
  EXPECT_EQ(out, (std::vector<int>{7}));
}

INSTANTIATE_TEST_SUITE_P(MutexAndSpsc, StageInboxModes, ::testing::Bool(),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "Spsc" : "Mutex";
                         });

// try_produce is the zero-move fast path: the fill callback writes the slot
// in place, the consumer sees exactly what was written, and a full or
// non-SPSC inbox refuses without invoking the callback.
TEST(StageInboxSpsc, TryProduceFillsSlotsInPlace) {
  StageInbox<int> inbox(4);
  inbox.use_spsc();
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(inbox.try_produce([&](int& slot) { slot = i * 10; }));
  }
  bool filled = false;
  EXPECT_FALSE(inbox.try_produce([&](int& slot) {
    slot = -1;
    filled = true;
  })) << "full ring must refuse";
  EXPECT_FALSE(filled) << "refused produce must not run the fill callback";
  inbox.wake_consumer();
  std::vector<int> out;
  EXPECT_EQ(inbox.drain(out, 8), 4u);
  EXPECT_EQ(out, (std::vector<int>{0, 10, 20, 30}));
  // Draining freed slots; the fast path works again.
  EXPECT_TRUE(inbox.try_produce([](int& slot) { slot = 99; }));
}

TEST(StageInbox, TryProduceRefusesInMutexModeAndWhenClosed) {
  StageInbox<int> mutex_inbox(4);
  EXPECT_FALSE(mutex_inbox.try_produce([](int& slot) { slot = 1; }));
  StageInbox<int> closed(4);
  closed.use_spsc();
  closed.close();
  EXPECT_FALSE(closed.try_produce([](int& slot) { slot = 1; }));
}

// Cross-thread: producer uses only try_produce + wake_consumer, consumer
// uses blocking drains — the RtEngine direct-route handoff in miniature.
TEST(StageInboxSpsc, TryProduceWakeConsumerRoundTrip) {
  StageInbox<int> inbox(32);
  inbox.use_spsc();
  constexpr int kItems = 20000;
  std::thread consumer([&] {
    std::vector<int> out;
    int expect = 0;
    while (expect < kItems) {
      out.clear();
      inbox.drain(out, 16);
      for (const int v : out) EXPECT_EQ(v, expect++);
    }
  });
  for (int i = 0; i < kItems;) {
    bool produced = false;
    if (inbox.try_produce([&](int& slot) { slot = i; })) {
      ++i;
      produced = true;
    }
    inbox.wake_consumer();
    if (!produced) std::this_thread::yield();
  }
  consumer.join();
}

// SPSC-specific: one producer thread, one consumer thread, a control thread
// injecting aux items — the exact triangle the RtEngine runs. A TSan build
// of this test validates the eventcount-style sleep/wake fences.
TEST(StageInboxSpsc, ProducerConsumerWithAuxInjection) {
  StageInbox<int> inbox(32);
  inbox.use_spsc();
  constexpr int kItems = 100000;
  constexpr int kAux = 500;

  std::thread producer([&] {
    std::vector<int> batch;
    int next = 0;
    while (next < kItems) {
      batch.clear();
      for (int i = 0; i < 16 && next + i < kItems; ++i) {
        batch.push_back(next + i);
      }
      const std::size_t n = batch.size();
      next += static_cast<int>(n);
      ASSERT_EQ(inbox.push_all(batch), n);
    }
  });
  std::thread control([&] {
    for (int i = 0; i < kAux; ++i) {
      ASSERT_TRUE(inbox.push_aux(kItems + i));
      if (i % 50 == 0) std::this_thread::yield();
    }
  });

  long long data_sum = 0;
  int data_count = 0;
  int aux_count = 0;
  int expected_next = 0;
  std::vector<int> got;
  while (data_count < kItems || aux_count < kAux) {
    got.clear();
    inbox.drain_for(got, 16, 0.01);
    for (int v : got) {
      if (v >= kItems) {
        ++aux_count;
      } else {
        // Data-plane order is strict FIFO even with aux interleaving.
        ASSERT_EQ(v, expected_next);
        ++expected_next;
        data_sum += v;
        ++data_count;
      }
    }
  }
  producer.join();
  control.join();
  EXPECT_EQ(data_count, kItems);
  EXPECT_EQ(aux_count, kAux);
  EXPECT_EQ(data_sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

// -- order-preserving merge window -------------------------------------------

/// Drains everything currently releasable, appending to `out`.
void release_all(ReorderMerge<int>& merge, std::vector<int>& out) {
  while (merge.claim_release()) {
    while (auto c = merge.pop_ready()) out.push_back(*c);
    merge.end_release();
  }
}

TEST(ReorderMerge, ReleasesInInputOrderDespiteCompletionOrder) {
  ReorderMerge<int> merge(8);
  for (std::uint64_t seq = 0; seq < 4; ++seq) ASSERT_TRUE(merge.acquire(seq));
  std::vector<int> out;
  merge.complete(2, 2);
  release_all(merge, out);  // head (0) missing: nothing releasable
  EXPECT_TRUE(out.empty());
  merge.complete(0, 0);
  release_all(merge, out);  // 0 ready, 1 missing: releases exactly [0]
  EXPECT_EQ(out, (std::vector<int>{0}));
  merge.complete(3, 3);
  merge.complete(1, 1);
  release_all(merge, out);  // 1..3 now contiguous
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(merge.release_base(), 4u);
}

TEST(ReorderMerge, AcquireBlocksAtWindowBoundaryUntilARelease) {
  ReorderMerge<int> merge(2);
  ASSERT_TRUE(merge.acquire(0));
  ASSERT_TRUE(merge.acquire(1));
  std::atomic<bool> acquired{false};
  std::thread dispatcher([&] {
    EXPECT_TRUE(merge.acquire(2));  // 2 >= base(0) + window(2): must wait
    acquired.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(acquired.load());
  merge.complete(0, 0);
  std::vector<int> out;
  release_all(merge, out);  // frees the head slot -> acquire(2) unblocks
  dispatcher.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(out, (std::vector<int>{0}));
}

TEST(ReorderMerge, CloseUnblocksBlockedAcquire) {
  ReorderMerge<int> merge(1);
  ASSERT_TRUE(merge.acquire(0));
  std::thread dispatcher([&] { EXPECT_FALSE(merge.acquire(1)); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  merge.close();
  dispatcher.join();
}

TEST(ReorderMerge, CompletionDuringClaimIsPickedUpByNextClaim) {
  // The election protocol's re-check: a result that lands after the
  // releaser's last empty pop but before end_release() must be releasable
  // by the *next* claim, not lost.
  ReorderMerge<int> merge(4);
  ASSERT_TRUE(merge.acquire(0));
  ASSERT_TRUE(merge.acquire(1));
  merge.complete(0, 0);
  std::vector<int> out;
  ASSERT_TRUE(merge.claim_release());
  while (auto c = merge.pop_ready()) out.push_back(*c);
  merge.complete(1, 1);  // lands mid-claim
  merge.end_release();
  release_all(merge, out);
  EXPECT_EQ(out, (std::vector<int>{0, 1}));
}

TEST(ReorderMerge, OnlyOneThreadWinsTheReleaseElection) {
  ReorderMerge<int> merge(4);
  ASSERT_TRUE(merge.acquire(0));
  merge.complete(0, 0);
  ASSERT_TRUE(merge.claim_release());
  EXPECT_FALSE(merge.claim_release());  // already claimed
  merge.end_release();
  ASSERT_TRUE(merge.claim_release());  // head still filled, claim reopens
  std::vector<int> out;
  while (auto c = merge.pop_ready()) out.push_back(*c);
  merge.end_release();
  EXPECT_EQ(out, (std::vector<int>{0}));
}

TEST(ReorderMerge, ResetRestartsSequencingFromZero) {
  ReorderMerge<int> merge(2);
  ASSERT_TRUE(merge.acquire(0));
  merge.complete(0, 7);
  merge.close();
  EXPECT_FALSE(merge.acquire(1));
  merge.reset();
  ASSERT_TRUE(merge.acquire(0));
  merge.complete(0, 9);
  std::vector<int> out;
  release_all(merge, out);
  EXPECT_EQ(out, (std::vector<int>{9}));  // the pre-close result is gone
}

TEST(ReorderMerge, ManyCompleterThreadsPreserveOrder) {
  // 4 completer threads race completions and the release election; the
  // released order must still be exactly the acquire order.
  constexpr std::uint64_t kItems = 2000;
  constexpr std::size_t kThreads = 4;
  ReorderMerge<int> merge(64);
  std::vector<int> out;
  std::mutex out_mu;  // release effects are serialized by the election, but
                      // successive releasers are different threads
  std::vector<std::unique_ptr<StageInbox<std::uint64_t>>> queues;
  for (std::size_t i = 0; i < kThreads; ++i) {
    queues.push_back(std::make_unique<StageInbox<std::uint64_t>>(32));
  }
  std::vector<std::thread> workers;
  for (std::size_t i = 0; i < kThreads; ++i) {
    workers.emplace_back([&, i] {
      std::vector<std::uint64_t> batch;
      while (true) {
        batch.clear();
        if (queues[i]->drain(batch, 8) == 0) return;
        for (const std::uint64_t seq : batch) {
          merge.complete(seq, static_cast<int>(seq));
          while (merge.claim_release()) {
            std::lock_guard<std::mutex> lock(out_mu);
            while (auto c = merge.pop_ready()) out.push_back(*c);
            merge.end_release();
          }
        }
      }
    });
  }
  for (std::uint64_t seq = 0; seq < kItems; ++seq) {
    ASSERT_TRUE(merge.acquire(seq));
    ASSERT_TRUE(queues[seq % kThreads]->push(seq));
  }
  for (auto& q : queues) q->close();
  for (auto& w : workers) w.join();
  release_all(merge, out);
  ASSERT_EQ(out.size(), kItems);
  for (std::uint64_t i = 0; i < kItems; ++i) {
    ASSERT_EQ(out[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace gates::core
