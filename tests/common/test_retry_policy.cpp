#include "gates/common/retry_policy.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(RetryPolicy, FirstAttemptIsImmediate) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.delay(0), 0.0);
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy policy;
  policy.initial_delay = 0.5;
  policy.multiplier = 2.0;
  policy.max_delay = 1e9;
  EXPECT_DOUBLE_EQ(policy.delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay(4), 4.0);
}

TEST(RetryPolicy, DelayIsCappedAtMax) {
  RetryPolicy policy;
  policy.initial_delay = 1.0;
  policy.multiplier = 10.0;
  policy.max_delay = 30.0;
  EXPECT_DOUBLE_EQ(policy.delay(2), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 30.0);  // 100 capped
  EXPECT_DOUBLE_EQ(policy.delay(9), 30.0);
}

TEST(RetryPolicy, ExhaustedAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_FALSE(policy.exhausted(0));
  EXPECT_FALSE(policy.exhausted(2));
  EXPECT_TRUE(policy.exhausted(3));
  EXPECT_TRUE(policy.exhausted(4));
}

TEST(RetryPolicy, DefaultsAreSane) {
  RetryPolicy policy;
  EXPECT_GT(policy.initial_delay, 0.0);
  EXPECT_GE(policy.multiplier, 1.0);
  EXPECT_GE(policy.max_delay, policy.initial_delay);
  EXPECT_GE(policy.max_attempts, 1u);
}

}  // namespace
}  // namespace gates
