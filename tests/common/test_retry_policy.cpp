#include "gates/common/retry_policy.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(RetryPolicy, FirstAttemptIsImmediate) {
  RetryPolicy policy;
  EXPECT_DOUBLE_EQ(policy.delay(0), 0.0);
}

TEST(RetryPolicy, BackoffGrowsExponentially) {
  RetryPolicy policy;
  policy.initial_delay = 0.5;
  policy.multiplier = 2.0;
  policy.max_delay = 1e9;
  EXPECT_DOUBLE_EQ(policy.delay(1), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(2), 1.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 2.0);
  EXPECT_DOUBLE_EQ(policy.delay(4), 4.0);
}

TEST(RetryPolicy, DelayIsCappedAtMax) {
  RetryPolicy policy;
  policy.initial_delay = 1.0;
  policy.multiplier = 10.0;
  policy.max_delay = 30.0;
  EXPECT_DOUBLE_EQ(policy.delay(2), 10.0);
  EXPECT_DOUBLE_EQ(policy.delay(3), 30.0);  // 100 capped
  EXPECT_DOUBLE_EQ(policy.delay(9), 30.0);
}

TEST(RetryPolicy, ExhaustedAfterMaxAttempts) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  EXPECT_FALSE(policy.exhausted(0));
  EXPECT_FALSE(policy.exhausted(2));
  EXPECT_TRUE(policy.exhausted(3));
  EXPECT_TRUE(policy.exhausted(4));
}

TEST(RetryPolicy, JitteredDelayStaysInsideDistributionBounds) {
  // Full jitter (the default): uniform over [0, base]. Every draw must stay
  // inside the bounds, and the spread must actually be used — a degenerate
  // "jitter" that always returns base would re-synchronize replicas that
  // failed together.
  RetryPolicy policy;
  policy.initial_delay = 1.0;
  policy.multiplier = 2.0;
  policy.max_delay = 1e9;
  policy.jitter = 1.0;
  Rng rng(42);
  for (std::size_t attempt = 1; attempt <= 4; ++attempt) {
    const Duration base = policy.delay(attempt);
    Duration lo = base, hi = 0, sum = 0;
    constexpr int kDraws = 2000;
    for (int i = 0; i < kDraws; ++i) {
      const Duration d = policy.delay(attempt, rng);
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, base);
      lo = std::min(lo, d);
      hi = std::max(hi, d);
      sum += d;
    }
    // Uniform[0, base]: mean base/2 (loose 10% band), and the draws span
    // most of the interval.
    EXPECT_NEAR(sum / kDraws, base / 2, base * 0.1);
    EXPECT_LT(lo, base * 0.05);
    EXPECT_GT(hi, base * 0.95);
  }
}

TEST(RetryPolicy, PartialJitterNarrowsTheWindow) {
  // jitter = 0.25 draws uniformly from [0.75*base, base].
  RetryPolicy policy;
  policy.initial_delay = 2.0;
  policy.jitter = 0.25;
  Rng rng(7);
  for (int i = 0; i < 500; ++i) {
    const Duration d = policy.delay(1, rng);
    EXPECT_GE(d, 1.5);
    EXPECT_LE(d, 2.0);
  }
}

TEST(RetryPolicy, ZeroJitterIsDeterministicEvenWithRng) {
  RetryPolicy policy;
  policy.initial_delay = 0.5;
  policy.jitter = 0.0;
  Rng rng(9);
  EXPECT_DOUBLE_EQ(policy.delay(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(1, rng), 0.5);
  EXPECT_DOUBLE_EQ(policy.delay(0, rng), 0.0);  // attempt 0 stays immediate
}

TEST(RetryPolicy, JitteredDelayIsReproduciblePerSeed) {
  RetryPolicy policy;
  Rng a(1234), b(1234);
  for (std::size_t attempt = 0; attempt < 6; ++attempt) {
    EXPECT_DOUBLE_EQ(policy.delay(attempt, a), policy.delay(attempt, b));
  }
}

TEST(RetryPolicy, DefaultsAreSane) {
  RetryPolicy policy;
  EXPECT_GT(policy.initial_delay, 0.0);
  EXPECT_GE(policy.multiplier, 1.0);
  EXPECT_GE(policy.max_delay, policy.initial_delay);
  EXPECT_GE(policy.max_attempts, 1u);
}

}  // namespace
}  // namespace gates
