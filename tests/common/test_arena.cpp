#include "gates/common/arena.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace gates {
namespace {

// Instance arenas (no thread caches — depot path only) keep these tests
// hermetic: the global() arena's counters are polluted by every other test
// in the binary.

TEST(Arena, SizeClassRoundingAndBlockShape) {
  PayloadArena arena;
  struct Case {
    std::size_t bytes;
    std::size_t capacity;
  };
  for (const Case c : {Case{1, 64}, Case{64, 64}, Case{65, 256},
                       Case{1000, 1024}, Case{65536, 65536}}) {
    PayloadBlock* block = arena.acquire(c.bytes, false);
    ASSERT_NE(block, nullptr);
    EXPECT_EQ(block->size, c.bytes);
    EXPECT_EQ(block->capacity, c.capacity);
    EXPECT_EQ(block->refs.load(), 1u);
    EXPECT_NE(block->size_class, PayloadArena::kHeapClass);
    arena.release(block);
  }
  EXPECT_EQ(arena.stats().heap_fallback, 0u);
}

TEST(Arena, OversizeRequestFallsBackToHeap) {
  PayloadArena arena;
  PayloadBlock* block = arena.acquire(65537, false);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->size_class, PayloadArena::kHeapClass);
  EXPECT_GE(block->capacity, 65537u);
  block->data()[65536] = 0xAB;  // the whole payload is writable
  arena.release(block);
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.heap_fallback, 1u);
  EXPECT_EQ(stats.released, 1u);
  EXPECT_EQ(stats.slab_allocs, 0u);
}

TEST(Arena, ByteLimitExhaustionFallsBackToHeapGracefully) {
  PayloadArena arena;
  arena.set_byte_limit(1);  // forbid even the first slab carve
  PayloadBlock* block = arena.acquire(64, false);
  ASSERT_NE(block, nullptr);
  EXPECT_EQ(block->size_class, PayloadArena::kHeapClass);
  std::memset(block->data(), 0x5A, block->size);
  arena.release(block);
  ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.heap_fallback, 1u);
  EXPECT_EQ(stats.slab_allocs, 0u);
  EXPECT_EQ(arena.slab_bytes(), 0u);
  // Lifting the limit restores slab service.
  arena.set_byte_limit(0);
  block = arena.acquire(64, false);
  ASSERT_NE(block, nullptr);
  EXPECT_NE(block->size_class, PayloadArena::kHeapClass);
  arena.release(block);
  stats = arena.stats();
  EXPECT_EQ(stats.heap_fallback, 1u);
  EXPECT_EQ(stats.slab_allocs, 1u);
  EXPECT_GT(arena.slab_bytes(), 0u);
}

TEST(Arena, SteadyStateChurnRecyclesWithoutHeapGrowth) {
  PayloadArena arena;
  // Warm-up: carve the one slab this churn needs.
  arena.release(arena.acquire(256, false));
  const ArenaStats warm = arena.stats();
  for (int i = 0; i < 10000; ++i) {
    PayloadBlock* block = arena.acquire(256, false);
    ASSERT_NE(block, nullptr);
    arena.release(block);
  }
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.heap_allocations(), warm.heap_allocations())
      << "steady-state churn must not touch the heap";
  // >= 99% of all acquires (including the cold-start miss) were recycled.
  EXPECT_GE(stats.hit_rate(), 0.99);
  EXPECT_EQ(stats.acquired, stats.released);
}

TEST(Arena, ZeroFillCleansRecycledBlocks) {
  PayloadArena arena;
  PayloadBlock* block = arena.acquire(64, false);
  std::memset(block->data(), 0xFF, 64);
  arena.release(block);
  block = arena.acquire(64, true);
  for (std::size_t i = 0; i < 64; ++i) {
    ASSERT_EQ(block->data()[i], 0) << "stale byte at " << i;
  }
  arena.release(block);
}

// release() means "the last reference is gone" — the refcount decrement is
// the handle layer's job (ByteBuffer), which calls release() only on the
// 1 -> 0 transition. add_ref is the matching bump for handle copies.
TEST(Arena, AddRefIsHandleLayerBookkeeping) {
  PayloadArena arena;
  PayloadBlock* block = arena.acquire(64, false);
  PayloadArena::add_ref(block);
  EXPECT_EQ(block->refs.load(), 2u);
  EXPECT_EQ(block->refs.fetch_sub(1, std::memory_order_acq_rel), 2u);
  EXPECT_EQ(arena.stats().released, 0u);  // a ref remains; no release yet
  EXPECT_EQ(block->refs.fetch_sub(1, std::memory_order_acq_rel), 1u);
  arena.release(block);
  EXPECT_EQ(arena.stats().released, 1u);
}

// Producer-allocates/consumer-frees: blocks released on one thread must be
// acquirable from another through the depot, not accumulate forever.
TEST(Arena, CrossThreadRecycleThroughDepot) {
  PayloadArena arena;
  constexpr int kRounds = 50;
  constexpr int kBatch = 64;  // spans two slabs of the 64B class
  for (int round = 0; round < kRounds; ++round) {
    std::vector<PayloadBlock*> blocks;
    std::thread producer([&] {
      for (int i = 0; i < kBatch; ++i) {
        blocks.push_back(arena.acquire(64, false));
      }
    });
    producer.join();
    for (PayloadBlock* block : blocks) arena.release(block);
  }
  const ArenaStats stats = arena.stats();
  EXPECT_EQ(stats.acquired, static_cast<std::uint64_t>(kRounds * kBatch));
  EXPECT_EQ(stats.released, stats.acquired);
  // All rounds after the first recycle the first rounds' blocks.
  EXPECT_GE(stats.hit_rate(), 0.95);
  // Slab growth happened only on round one.
  EXPECT_LE(stats.slab_allocs, 2u + 1u);
}

}  // namespace
}  // namespace gates
