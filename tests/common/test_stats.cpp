#include "gates/common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace gates {
namespace {

TEST(RunningStats, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0);
  EXPECT_EQ(s.variance(), 0);
  EXPECT_EQ(s.min(), 0);
  EXPECT_EQ(s.max(), 0);
}

TEST(RunningStats, KnownValues) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // population variance
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0);
  EXPECT_EQ(s.min(), 3.5);
  EXPECT_EQ(s.max(), 3.5);
}

TEST(RunningStats, ResetClears) {
  RunningStats s;
  s.add(1);
  s.add(2);
  s.reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets) {
  RunningStats s;
  const double offset = 1e9;
  for (double x : {offset + 1, offset + 2, offset + 3}) s.add(x);
  EXPECT_NEAR(s.mean(), offset + 2, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-3);
}

TEST(SlidingWindowStats, EvictsOldest) {
  SlidingWindowStats s(3);
  s.add(1);
  s.add(2);
  s.add(3);
  EXPECT_DOUBLE_EQ(s.mean(), 2.0);
  s.add(10);  // evicts the 1
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.size(), 3u);
}

TEST(SlidingWindowStats, FullFlag) {
  SlidingWindowStats s(2);
  EXPECT_FALSE(s.full());
  s.add(1);
  EXPECT_FALSE(s.full());
  s.add(1);
  EXPECT_TRUE(s.full());
}

TEST(SlidingWindowStats, VarianceOfConstantIsZero) {
  SlidingWindowStats s(5);
  for (int i = 0; i < 20; ++i) s.add(7.0);
  EXPECT_NEAR(s.variance(), 0.0, 1e-12);
}

TEST(SlidingWindowStats, VarianceMatchesDirectComputation) {
  SlidingWindowStats s(4);
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0, 6.0}) s.add(x);
  // Window holds {3,4,5,6}: mean 4.5, population variance 1.25.
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_NEAR(s.variance(), 1.25, 1e-12);
}

TEST(SlidingWindowStats, LatestTracksLastSample) {
  SlidingWindowStats s(2);
  EXPECT_EQ(s.latest(), 0);
  s.add(5);
  EXPECT_EQ(s.latest(), 5);
  s.add(9);
  EXPECT_EQ(s.latest(), 9);
}

TEST(SlidingWindowStats, ZeroCapacityRejected) {
  EXPECT_THROW(SlidingWindowStats(0), std::logic_error);
}

TEST(Ewma, FirstSampleInitializes) {
  Ewma e(0.9);
  EXPECT_FALSE(e.initialized());
  e.add(10);
  EXPECT_TRUE(e.initialized());
  EXPECT_DOUBLE_EQ(e.value(), 10);
}

TEST(Ewma, ConvergesTowardConstantInput) {
  Ewma e(0.5);
  e.add(0);
  for (int i = 0; i < 40; ++i) e.add(100);
  EXPECT_NEAR(e.value(), 100, 1e-6);
}

TEST(Ewma, AlphaControlsInertia) {
  Ewma slow(0.9), fast(0.1);
  slow.add(0);
  fast.add(0);
  slow.add(100);
  fast.add(100);
  EXPECT_LT(slow.value(), fast.value());
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0, 10, 10);
  h.add(-5);   // clamps into bucket 0
  h.add(0.5);
  h.add(9.5);
  h.add(15);   // clamps into last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.buckets().front(), 2u);
  EXPECT_EQ(h.buckets().back(), 2u);
}

TEST(Histogram, QuantileOfUniformFill) {
  Histogram h(0, 100, 100);
  for (int i = 0; i < 100; ++i) h.add(i + 0.5);
  EXPECT_NEAR(h.quantile(0.5), 50, 2.0);
  EXPECT_NEAR(h.quantile(0.9), 90, 2.0);
  EXPECT_NEAR(h.quantile(0.0), 0, 2.0);
}

TEST(Histogram, BucketBounds) {
  Histogram h(0, 10, 5);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8);
}

TEST(Histogram, InvalidConstruction) {
  EXPECT_THROW(Histogram(5, 5, 10), std::logic_error);
  EXPECT_THROW(Histogram(0, 10, 0), std::logic_error);
}

}  // namespace
}  // namespace gates
