#include "gates/common/uri.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(Uri, ParsesSchemeHostPath) {
  auto uri = parse_uri("repo://myrepo/stages/summary");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "repo");
  EXPECT_EQ(uri->host, "myrepo");
  EXPECT_EQ(uri->path, "stages/summary");
}

TEST(Uri, HostOnly) {
  auto uri = parse_uri("builtin://count-samps-summary");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "builtin");
  EXPECT_EQ(uri->host, "count-samps-summary");
  EXPECT_EQ(uri->path, "");
}

TEST(Uri, SchemeIsLowercased) {
  auto uri = parse_uri("REPO://r/p");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->scheme, "repo");
}

TEST(Uri, TrimsWhitespace) {
  auto uri = parse_uri("  config://app  ");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->host, "app");
}

TEST(Uri, RoundTripToString) {
  auto uri = parse_uri("repo://r/a/b");
  ASSERT_TRUE(uri.ok());
  EXPECT_EQ(uri->to_string(), "repo://r/a/b");
  auto uri2 = parse_uri("builtin://x");
  EXPECT_EQ(uri2->to_string(), "builtin://x");
}

TEST(Uri, RejectsMissingScheme) {
  EXPECT_FALSE(parse_uri("no-scheme").ok());
  EXPECT_FALSE(parse_uri("://host").ok());
}

TEST(Uri, RejectsMissingHost) {
  EXPECT_FALSE(parse_uri("repo://").ok());
  EXPECT_FALSE(parse_uri("repo:///path").ok());
}

}  // namespace
}  // namespace gates
