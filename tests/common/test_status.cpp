#include "gates/common/status.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.is_ok());
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status s = not_found("thing missing");
  EXPECT_FALSE(s.is_ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "thing missing");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: thing missing");
}

TEST(Status, FactoriesProduceMatchingCodes) {
  EXPECT_EQ(invalid_argument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(already_exists("").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(resource_exhausted("").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(failed_precondition("").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(internal_error("").code(), StatusCode::kInternal);
  EXPECT_EQ(unavailable("").code(), StatusCode::kUnavailable);
}

TEST(StatusOr, HoldsValue) {
  StatusOr<int> v(42);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
}

TEST(StatusOr, HoldsError) {
  StatusOr<int> v(not_found("nope"));
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOr, ValueOnErrorThrows) {
  StatusOr<int> v(internal_error("boom"));
  EXPECT_THROW(v.value(), std::logic_error);
}

TEST(StatusOr, OkStatusConstructionIsAProgrammingError) {
  EXPECT_THROW(StatusOr<int>(Status::ok()), std::logic_error);
}

TEST(StatusOr, MoveOut) {
  StatusOr<std::string> v(std::string("hello"));
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

}  // namespace
}  // namespace gates
