#include "gates/common/rng.hpp"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace gates {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() != b.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, ForkIsDeterministic) {
  Rng root(7);
  Rng f1 = root.fork(3);
  Rng f2 = Rng(7).fork(3);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(f1.next_u64(), f2.next_u64());
  }
}

TEST(Rng, ForksAreIndependentStreams) {
  Rng root(7);
  Rng f1 = root.fork(0);
  Rng f2 = root.fork(1);
  int differences = 0;
  for (int i = 0; i < 100; ++i) {
    if (f1.next_u64() != f2.next_u64()) ++differences;
  }
  EXPECT_GT(differences, 90);
}

TEST(Rng, ForkDoesNotPerturbParent) {
  Rng a(9), b(9);
  (void)a.fork(5);
  for (int i = 0; i < 10; ++i) ASSERT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    double x = rng.next_double();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng rng(12);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(13);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.next_below(bound), bound);
    }
  }
}

TEST(Rng, NextBelowCoversAllResidues) {
  Rng rng(14);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, NextBelowZeroBoundChecks) {
  Rng rng(15);
  EXPECT_THROW(rng.next_below(0), std::logic_error);
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(16);
  const double rate = 4.0;
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(rate);
  EXPECT_NEAR(sum / n, 1.0 / rate, 0.01);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(17);
  EXPECT_THROW(rng.exponential(0), std::logic_error);
  EXPECT_THROW(rng.exponential(-1), std::logic_error);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(18);
  const int n = 100000;
  double sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.normal(2.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(var, 9.0, 0.2);
}

TEST(Rng, BernoulliProbability) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(20);
  for (int i = 0; i < 1000; ++i) {
    double x = rng.uniform(-5, 5);
    ASSERT_GE(x, -5);
    ASSERT_LT(x, 5);
  }
}

TEST(SplitMix64, KnownFirstValueIsStable) {
  SplitMix64 a(42), b(42);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_NE(SplitMix64(1).next(), SplitMix64(2).next());
}

}  // namespace
}  // namespace gates
