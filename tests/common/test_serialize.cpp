#include "gates/common/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "gates/common/rng.hpp"

namespace gates {
namespace {

TEST(Serialize, PrimitiveRoundTrip) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_u8(0xAB);
  s.write_u32(0xDEADBEEF);
  s.write_u64(0x0123456789ABCDEFull);
  s.write_i64(-42);
  s.write_f64(3.14159);
  s.write_string("hello");

  Deserializer d(buffer);
  std::uint8_t u8;
  std::uint32_t u32;
  std::uint64_t u64;
  std::int64_t i64;
  double f64;
  std::string str;
  ASSERT_TRUE(d.read_u8(u8).is_ok());
  ASSERT_TRUE(d.read_u32(u32).is_ok());
  ASSERT_TRUE(d.read_u64(u64).is_ok());
  ASSERT_TRUE(d.read_i64(i64).is_ok());
  ASSERT_TRUE(d.read_f64(f64).is_ok());
  ASSERT_TRUE(d.read_string(str).is_ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(f64, 3.14159);
  EXPECT_EQ(str, "hello");
  EXPECT_TRUE(d.at_end());
}

TEST(Serialize, VarintEdgeCases) {
  const std::uint64_t cases[] = {
      0, 1, 127, 128, 16383, 16384,
      std::numeric_limits<std::uint64_t>::max()};
  for (std::uint64_t v : cases) {
    ByteBuffer buffer;
    Serializer s(buffer);
    s.write_varint(v);
    Deserializer d(buffer);
    std::uint64_t out;
    ASSERT_TRUE(d.read_varint(out).is_ok());
    EXPECT_EQ(out, v);
    EXPECT_TRUE(d.at_end());
  }
}

TEST(Serialize, VarintSmallValuesAreOneByte) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_varint(127);
  EXPECT_EQ(buffer.size(), 1u);
}

TEST(Serialize, TruncatedReadsFail) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_u32(42);
  Deserializer d(buffer);
  std::uint64_t out;
  EXPECT_FALSE(d.read_u64(out).is_ok());
}

TEST(Serialize, TruncatedStringFails) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_varint(100);  // claims 100 bytes follow but none do
  Deserializer d(buffer);
  std::string str;
  auto status = d.read_string(str);
  EXPECT_FALSE(status.is_ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Serialize, MalformedVarintOverflowFails) {
  ByteBuffer buffer;
  for (int i = 0; i < 11; ++i) {
    std::uint8_t byte = 0xFF;
    buffer.append(&byte, 1);
  }
  Deserializer d(buffer);
  std::uint64_t out;
  EXPECT_FALSE(d.read_varint(out).is_ok());
}

TEST(Serialize, EmptyString) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_string("");
  Deserializer d(buffer);
  std::string str = "junk";
  ASSERT_TRUE(d.read_string(str).is_ok());
  EXPECT_EQ(str, "");
}

TEST(Serialize, SpanConstructorReadsSameData) {
  ByteBuffer buffer;
  Serializer s(buffer);
  s.write_u64(99);
  Deserializer d(buffer.data(), buffer.size());
  std::uint64_t out;
  ASSERT_TRUE(d.read_u64(out).is_ok());
  EXPECT_EQ(out, 99u);
}

TEST(Serialize, RandomizedVarintRoundTrip) {
  Rng rng(77);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t v = rng.next_u64() >> (rng.next_below(64));
    ByteBuffer buffer;
    Serializer s(buffer);
    s.write_varint(v);
    Deserializer d(buffer);
    std::uint64_t out;
    ASSERT_TRUE(d.read_varint(out).is_ok());
    ASSERT_EQ(out, v);
  }
}

TEST(ByteBuffer, FromStringAndView) {
  ByteBuffer b = ByteBuffer::from_string("abc");
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.as_string_view(), "abc");
}

TEST(ByteBuffer, Equality) {
  EXPECT_EQ(ByteBuffer::from_string("x"), ByteBuffer::from_string("x"));
  EXPECT_FALSE(ByteBuffer::from_string("x") == ByteBuffer::from_string("y"));
}

}  // namespace
}  // namespace gates
