#include "gates/common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gates {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop().value(), i);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MultiProducerMultiConsumerConservesItems) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2000;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(q.push(p * kItemsEach + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long total = kProducers * kItemsEach;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(BoundedQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedQueue<int>(0), std::logic_error);
}

TEST(BoundedQueue, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(7)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

}  // namespace
}  // namespace gates
