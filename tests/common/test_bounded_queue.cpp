#include "gates/common/bounded_queue.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace gates {
namespace {

TEST(BoundedQueue, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(q.try_push(i));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.try_pop().value(), i);
}

TEST(BoundedQueue, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.size(), 2u);
}

TEST(BoundedQueue, TryPopEmptyReturnsNullopt) {
  BoundedQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());
}

TEST(BoundedQueue, CloseWakesBlockedPop) {
  BoundedQueue<int> q(2);
  std::thread t([&] {
    auto v = q.pop();
    EXPECT_FALSE(v.has_value());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  t.join();
}

TEST(BoundedQueue, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  q.try_push(1);
  q.try_push(2);
  q.close();
  EXPECT_FALSE(q.try_push(3));
  EXPECT_EQ(q.pop().value(), 1);
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(BoundedQueue, BlockingPushWaitsForSpace) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread t([&] {
    q.push(2);
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.pop().value(), 1);
  t.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueue, MultiProducerMultiConsumerConservesItems) {
  BoundedQueue<int> q(16);
  constexpr int kProducers = 4;
  constexpr int kItemsEach = 2000;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.pop()) {
        sum += *v;
        ++popped;
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kItemsEach; ++i) {
        ASSERT_TRUE(q.push(p * kItemsEach + i));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long total = kProducers * kItemsEach;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

TEST(BoundedQueue, ZeroCapacityRejected) {
  EXPECT_THROW(BoundedQueue<int>(0), std::logic_error);
}

TEST(BoundedQueue, MoveOnlyItems) {
  BoundedQueue<std::unique_ptr<int>> q(2);
  ASSERT_TRUE(q.push(std::make_unique<int>(7)));
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(**v, 7);
}

// -- batch operations --------------------------------------------------------

TEST(BoundedQueueBatch, PushAllThenDrainPreservesOrder) {
  BoundedQueue<int> q(16);
  std::vector<int> in = {1, 2, 3, 4, 5};
  EXPECT_EQ(q.push_all(in), 5u);
  EXPECT_TRUE(in.empty());  // cleared on full success
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 64), 5u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(BoundedQueueBatch, DrainRespectsMaxAndAppends) {
  BoundedQueue<int> q(16);
  std::vector<int> in = {1, 2, 3, 4, 5};
  q.push_all(in);
  std::vector<int> out = {0};
  EXPECT_EQ(q.drain(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.drain(out, 10), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
}

TEST(BoundedQueueBatch, PushAllLargerThanCapacityBlocksUntilDrained) {
  BoundedQueue<int> q(4);
  std::vector<int> in(32);
  for (int i = 0; i < 32; ++i) in[static_cast<std::size_t>(i)] = i;
  std::thread producer([&] { EXPECT_EQ(q.push_all(in), 32u); });
  std::vector<int> out;
  while (out.size() < 32) q.drain(out, 8);
  producer.join();
  for (int i = 0; i < 32; ++i) EXPECT_EQ(out[static_cast<std::size_t>(i)], i);
}

TEST(BoundedQueueBatch, PushAllReturnsShortCountOnClose) {
  BoundedQueue<int> q(2);
  std::vector<int> in = {1, 2, 3, 4};
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    q.close();
  });
  EXPECT_EQ(q.push_all(in), 2u);  // filled to capacity, then closed
  closer.join();
}

TEST(BoundedQueueBatch, DrainForTimesOutEmptyHanded) {
  BoundedQueue<int> q(4);
  std::vector<int> out;
  EXPECT_EQ(q.drain_for(out, 8, 0.01), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_FALSE(q.closed());
}

TEST(BoundedQueueBatch, DrainReturnsZeroWhenClosedAndEmpty) {
  BoundedQueue<int> q(4);
  q.close();
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 8), 0u);
}

// Regression for the notify-hygiene fix: an empty-handed drain/try_pop must
// not wake a producer blocked on a still-full queue (it would only re-check
// and sleep again). Asserts the observable contract: the blocked producer
// stays blocked until space actually frees, then proceeds promptly.
TEST(BoundedQueueBatch, BlockedProducerOnlyWakesWhenSpaceFrees) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.try_push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(q.push(2));
    pushed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  std::vector<int> out;
  EXPECT_EQ(q.drain(out, 4), 1u);  // frees a slot -> producer proceeds
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(out, (std::vector<int>{1}));
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(BoundedQueueBatch, BatchedMpmcStressConservesItems) {
  BoundedQueue<int> q(32);
  constexpr int kProducers = 4;
  constexpr int kBatches = 200;
  constexpr int kBatchSize = 16;
  std::atomic<long long> sum{0};
  std::atomic<int> popped{0};

  std::vector<std::thread> consumers;
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      std::vector<int> got;
      while (true) {
        got.clear();
        if (q.drain(got, 8) == 0) break;
        for (int v : got) sum += v;
        popped += static_cast<int>(got.size());
      }
    });
  }
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      std::vector<int> batch;
      for (int b = 0; b < kBatches; ++b) {
        batch.clear();
        for (int i = 0; i < kBatchSize; ++i) {
          batch.push_back(p * kBatches * kBatchSize + b * kBatchSize + i);
        }
        ASSERT_EQ(q.push_all(batch), static_cast<std::size_t>(kBatchSize));
      }
    });
  }
  for (auto& t : producers) t.join();
  q.close();
  for (auto& t : consumers) t.join();

  const long long total = kProducers * kBatches * kBatchSize;
  EXPECT_EQ(popped.load(), total);
  EXPECT_EQ(sum.load(), total * (total - 1) / 2);
}

}  // namespace
}  // namespace gates
