#include "gates/common/string_util.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(Split, BasicAndEmptyFields) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a,,b", ','), (std::vector<std::string>{"a", "", "b"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(Trim, Whitespace) {
  EXPECT_EQ(trim("  abc  "), "abc");
  EXPECT_EQ(trim("\t\nabc"), "abc");
  EXPECT_EQ(trim("abc"), "abc");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StartsEndsWith, Basics) {
  EXPECT_TRUE(starts_with("hello", "he"));
  EXPECT_FALSE(starts_with("hello", "el"));
  EXPECT_TRUE(starts_with("x", ""));
  EXPECT_FALSE(starts_with("", "x"));
  EXPECT_TRUE(ends_with("hello", "lo"));
  EXPECT_FALSE(ends_with("hello", "he"));
}

TEST(ToLower, AsciiOnly) {
  EXPECT_EQ(to_lower("AbC-12"), "abc-12");
}

TEST(Join, Basics) {
  EXPECT_EQ(join({"a", "b"}, ", "), "a, b");
  EXPECT_EQ(join({}, ","), "");
  EXPECT_EQ(join({"x"}, ","), "x");
}

TEST(ParseDouble, ValidAndInvalid) {
  double v;
  EXPECT_TRUE(parse_double("3.5", v));
  EXPECT_DOUBLE_EQ(v, 3.5);
  EXPECT_TRUE(parse_double("  -2e3 ", v));
  EXPECT_DOUBLE_EQ(v, -2000);
  EXPECT_FALSE(parse_double("abc", v));
  EXPECT_FALSE(parse_double("1.5x", v));
  EXPECT_FALSE(parse_double("", v));
}

TEST(ParseInt, ValidAndInvalid) {
  long long v;
  EXPECT_TRUE(parse_int("42", v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(parse_int(" -7 ", v));
  EXPECT_EQ(v, -7);
  EXPECT_FALSE(parse_int("4.2", v));
  EXPECT_FALSE(parse_int("x", v));
  EXPECT_FALSE(parse_int("", v));
}

TEST(ParseBool, Variants) {
  bool v;
  EXPECT_TRUE(parse_bool("true", v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(parse_bool("FALSE", v));
  EXPECT_FALSE(v);
  EXPECT_TRUE(parse_bool("1", v));
  EXPECT_TRUE(v);
  EXPECT_TRUE(parse_bool(" no ", v));
  EXPECT_FALSE(v);
  EXPECT_FALSE(parse_bool("maybe", v));
}

TEST(ParseCoreList, SinglesRangesAndSorting) {
  std::vector<int> cores;
  EXPECT_TRUE(parse_core_list("0", cores));
  EXPECT_EQ(cores, (std::vector<int>{0}));
  EXPECT_TRUE(parse_core_list("0,2,4-7", cores));
  EXPECT_EQ(cores, (std::vector<int>{0, 2, 4, 5, 6, 7}));
  // Out-of-order input is normalized to ascending.
  EXPECT_TRUE(parse_core_list(" 5 , 1-3 ", cores));
  EXPECT_EQ(cores, (std::vector<int>{1, 2, 3, 5}));
  // A one-core range is just that core.
  EXPECT_TRUE(parse_core_list("3-3", cores));
  EXPECT_EQ(cores, (std::vector<int>{3}));
}

TEST(ParseCoreList, RejectsMalformedAndClearsOut) {
  std::vector<int> cores;
  for (const char* bad :
       {"", "  ", "a", "1,b", "-1", "0,-2", "7-4", "1-", "-",
        "1,2,2", "0-3,2", "1..4"}) {
    EXPECT_FALSE(parse_core_list(bad, cores)) << "accepted '" << bad << "'";
    EXPECT_TRUE(cores.empty()) << "left residue for '" << bad << "'";
  }
}

TEST(StrFormat, FormatsLikePrintf) {
  EXPECT_EQ(str_format("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(str_format("%.2f", 1.234), "1.23");
  EXPECT_EQ(str_format("plain"), "plain");
}

}  // namespace
}  // namespace gates
