#include "gates/common/log.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(Logger, LevelNamesAreStable) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Logger, EnabledFollowsLevel) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(original);
}

TEST(Logger, WarningCountTracksWarnAndAbove) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);  // suppress output, still counts? no:
  const int before = logger.warning_count();
  logger.write(LogLevel::kWarn, "test", "suppressed below level");
  EXPECT_EQ(logger.warning_count(), before);  // below threshold: not counted
  logger.set_level(LogLevel::kError);
  logger.write(LogLevel::kError, "test", "counted");
  EXPECT_EQ(logger.warning_count(), before + 1);
  logger.set_level(original);
}

TEST(Logger, MacroCompilesAndFiltersCheaply) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  GATES_LOG(kInfo, "test") << "value " << expensive();
  // The stream expression must not be evaluated when the level is off.
  EXPECT_EQ(evaluations, 0);
  logger.set_level(original);
}

}  // namespace
}  // namespace gates
