#include "gates/common/log.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace gates {
namespace {

/// Captures formatted lines and restores the logger's level/format/sink on
/// destruction so later tests see the defaults.
struct CapturedLogger {
  CapturedLogger() : original_level(Logger::global().level()) {
    Logger::global().set_level(LogLevel::kTrace);
    Logger::global().set_sink(
        [this](const std::string& line) { lines.push_back(line); });
  }
  ~CapturedLogger() {
    Logger::global().set_sink({});
    Logger::global().set_format(LogFormat::kText);
    Logger::global().set_level(original_level);
  }
  std::vector<std::string> lines;
  LogLevel original_level;
};

TEST(Logger, LevelNamesAreStable) {
  EXPECT_STREQ(log_level_name(LogLevel::kTrace), "TRACE");
  EXPECT_STREQ(log_level_name(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(log_level_name(LogLevel::kInfo), "INFO");
  EXPECT_STREQ(log_level_name(LogLevel::kWarn), "WARN");
  EXPECT_STREQ(log_level_name(LogLevel::kError), "ERROR");
  EXPECT_STREQ(log_level_name(LogLevel::kOff), "OFF");
}

TEST(Logger, EnabledFollowsLevel) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kWarn);
  EXPECT_FALSE(logger.enabled(LogLevel::kInfo));
  EXPECT_TRUE(logger.enabled(LogLevel::kWarn));
  EXPECT_TRUE(logger.enabled(LogLevel::kError));
  logger.set_level(LogLevel::kOff);
  EXPECT_FALSE(logger.enabled(LogLevel::kError));
  logger.set_level(original);
}

TEST(Logger, WarningCountTracksWarnAndAbove) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);  // suppress output, still counts? no:
  const int before = logger.warning_count();
  logger.write(LogLevel::kWarn, "test", "suppressed below level");
  EXPECT_EQ(logger.warning_count(), before);  // below threshold: not counted
  logger.set_level(LogLevel::kError);
  logger.write(LogLevel::kError, "test", "counted");
  EXPECT_EQ(logger.warning_count(), before + 1);
  logger.set_level(original);
}

TEST(Logger, MacroCompilesAndFiltersCheaply) {
  Logger& logger = Logger::global();
  const LogLevel original = logger.level();
  logger.set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  GATES_LOG(kInfo, "test") << "value " << expensive();
  // The stream expression must not be evaluated when the level is off.
  EXPECT_EQ(evaluations, 0);
  logger.set_level(original);
}

TEST(Logger, TextFormatIsTheLegacyLine) {
  CapturedLogger capture;
  GATES_LOG(kInfo, "deployer") << "placed stage 3";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0], "[INFO] deployer: placed stage 3");
}

TEST(Logger, JsonFormatEmitsOneObjectPerLine) {
  CapturedLogger capture;
  Logger::global().set_format(LogFormat::kJson);
  Logger::global().write(LogLevel::kWarn, "engine", "queue \"q\" full");
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0],
            "{\"level\":\"WARN\",\"component\":\"engine\","
            "\"message\":\"queue \\\"q\\\" full\"}");
}

TEST(Logger, EmptySinkRestoresStderrWithoutLosingFilters) {
  CapturedLogger capture;
  Logger::global().set_level(LogLevel::kError);
  GATES_LOG(kInfo, "test") << "filtered out";
  EXPECT_TRUE(capture.lines.empty());
  GATES_LOG(kError, "test") << "captured";
  ASSERT_EQ(capture.lines.size(), 1u);
  EXPECT_EQ(capture.lines[0], "[ERROR] test: captured");
}

}  // namespace
}  // namespace gates
