#include "gates/common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gates {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
  SpscRing<int> r2(8);
  EXPECT_EQ(r2.capacity(), 8u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.try_pop().value(), i);
}

TEST(SpscRing, PushFailsWhenFull) {
  SpscRing<int> r(2);
  EXPECT_TRUE(r.try_push(1));
  EXPECT_TRUE(r.try_push(2));
  EXPECT_FALSE(r.try_push(3));
}

TEST(SpscRing, PopEmptyReturnsNullopt) {
  SpscRing<int> r(2);
  EXPECT_FALSE(r.try_pop().has_value());
  r.try_push(1);
  r.try_pop();
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, WrapsAroundCorrectly) {
  SpscRing<int> r(2);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(r.try_push(round));
    ASSERT_EQ(r.try_pop().value(), round);
  }
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, ThreadedStressConservesSequence) {
  SpscRing<int> r(64);
  constexpr int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });
  long long sum = 0;
  int received = 0;
  int expected_next = 0;
  while (received < kItems) {
    if (auto v = r.try_pop()) {
      ASSERT_EQ(*v, expected_next);  // strict FIFO, no loss, no dup
      ++expected_next;
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(SpscRing, ZeroCapacityRejected) {
  EXPECT_THROW(SpscRing<int>(0), std::logic_error);
}

// -- batch operations --------------------------------------------------------

TEST(SpscRingBatch, PushNTruncatesAtCapacity) {
  SpscRing<int> r(4);  // rounds to 4 slots
  std::vector<int> in = {1, 2, 3, 4, 5, 6};
  EXPECT_EQ(r.try_push_n(in), 4u);
  EXPECT_EQ(r.size(), 4u);
  std::vector<int> out;
  EXPECT_EQ(r.try_pop_n(out, 8), 4u);
  EXPECT_EQ(out, (std::vector<int>{1, 2, 3, 4}));
  // The remainder can go once space freed, via the `from` offset.
  EXPECT_EQ(r.try_push_n(in, 4), 2u);
  out.clear();
  EXPECT_EQ(r.try_pop_n(out, 8), 2u);
  EXPECT_EQ(out, (std::vector<int>{5, 6}));
}

TEST(SpscRingBatch, PopNRespectsMaxAndAppends) {
  SpscRing<int> r(8);
  std::vector<int> in = {1, 2, 3, 4, 5};
  ASSERT_EQ(r.try_push_n(in), 5u);
  std::vector<int> out = {0};
  EXPECT_EQ(r.try_pop_n(out, 2), 2u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(r.try_pop_n(out, 10), 3u);
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(r.try_pop_n(out, 10), 0u);
}

TEST(SpscRingBatch, BatchWrapAround) {
  SpscRing<int> r(4);
  std::vector<int> out;
  for (int round = 0; round < 100; ++round) {
    std::vector<int> in = {round * 3, round * 3 + 1, round * 3 + 2};
    ASSERT_EQ(r.try_push_n(in), 3u);
    out.clear();
    ASSERT_EQ(r.try_pop_n(out, 4), 3u);
    ASSERT_EQ(out[0], round * 3);
    ASSERT_EQ(out[2], round * 3 + 2);
  }
}

// Threaded batch stress: a TSan build of this test validates that the
// single release-store batch publication synchronizes with the consumer's
// acquire loads (no torn or stale slots observed).
TEST(SpscRingBatch, ThreadedBatchStressConservesSequence) {
  SpscRing<int> r(64);
  constexpr int kItems = 200000;
  constexpr int kBatch = 16;
  std::thread producer([&] {
    std::vector<int> batch;
    int next = 0;
    while (next < kItems) {
      batch.clear();
      for (int i = 0; i < kBatch && next + i < kItems; ++i) {
        batch.push_back(next + i);
      }
      std::size_t pushed = 0;
      while (pushed < batch.size()) {
        pushed += r.try_push_n(batch, pushed);
      }
      next += static_cast<int>(batch.size());
    }
  });
  std::vector<int> got;
  int received = 0;
  int expected_next = 0;
  while (received < kItems) {
    got.clear();
    const std::size_t n = r.try_pop_n(got, kBatch);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(got[i], expected_next);  // strict FIFO, no loss, no dup
      ++expected_next;
    }
    received += static_cast<int>(n);
  }
  producer.join();
  EXPECT_EQ(expected_next, kItems);
}

}  // namespace
}  // namespace gates
