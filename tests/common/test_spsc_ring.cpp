#include "gates/common/spsc_ring.hpp"

#include <gtest/gtest.h>

#include <thread>

namespace gates {
namespace {

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  SpscRing<int> r(5);
  EXPECT_EQ(r.capacity(), 8u);
  SpscRing<int> r2(8);
  EXPECT_EQ(r2.capacity(), 8u);
}

TEST(SpscRing, FifoOrder) {
  SpscRing<int> r(4);
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(r.try_push(i));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(r.try_pop().value(), i);
}

TEST(SpscRing, PushFailsWhenFull) {
  SpscRing<int> r(2);
  EXPECT_TRUE(r.try_push(1));
  EXPECT_TRUE(r.try_push(2));
  EXPECT_FALSE(r.try_push(3));
}

TEST(SpscRing, PopEmptyReturnsNullopt) {
  SpscRing<int> r(2);
  EXPECT_FALSE(r.try_pop().has_value());
  r.try_push(1);
  r.try_pop();
  EXPECT_FALSE(r.try_pop().has_value());
}

TEST(SpscRing, WrapsAroundCorrectly) {
  SpscRing<int> r(2);
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(r.try_push(round));
    ASSERT_EQ(r.try_pop().value(), round);
  }
  EXPECT_TRUE(r.empty());
}

TEST(SpscRing, ThreadedStressConservesSequence) {
  SpscRing<int> r(64);
  constexpr int kItems = 200000;
  std::thread producer([&] {
    for (int i = 0; i < kItems;) {
      if (r.try_push(i)) ++i;
    }
  });
  long long sum = 0;
  int received = 0;
  int expected_next = 0;
  while (received < kItems) {
    if (auto v = r.try_pop()) {
      ASSERT_EQ(*v, expected_next);  // strict FIFO, no loss, no dup
      ++expected_next;
      sum += *v;
      ++received;
    }
  }
  producer.join();
  EXPECT_EQ(sum, static_cast<long long>(kItems) * (kItems - 1) / 2);
}

TEST(SpscRing, ZeroCapacityRejected) {
  EXPECT_THROW(SpscRing<int>(0), std::logic_error);
}

}  // namespace
}  // namespace gates
