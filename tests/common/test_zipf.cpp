#include "gates/common/zipf.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gates {
namespace {

TEST(Zipf, ProbabilitiesSumToOne) {
  ZipfGenerator zipf(100, 1.1);
  double sum = 0;
  for (std::uint64_t k = 0; k < 100; ++k) sum += zipf.probability(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Zipf, ProbabilitiesAreMonotoneDecreasing) {
  ZipfGenerator zipf(50, 0.9);
  for (std::uint64_t k = 1; k < 50; ++k) {
    EXPECT_LE(zipf.probability(k), zipf.probability(k - 1));
  }
}

TEST(Zipf, ThetaZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_NEAR(zipf.probability(k), 0.1, 1e-9);
  }
}

TEST(Zipf, EmpiricalFrequenciesMatchProbabilities) {
  ZipfGenerator zipf(20, 1.0);
  Rng rng(99);
  std::vector<int> counts(20, 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[zipf.next(rng)];
  for (std::uint64_t k = 0; k < 5; ++k) {
    EXPECT_NEAR(static_cast<double>(counts[k]) / n, zipf.probability(k), 0.005);
  }
}

TEST(Zipf, DrawsStayInUniverse) {
  ZipfGenerator zipf(7, 1.3);
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) ASSERT_LT(zipf.next(rng), 7u);
}

TEST(Zipf, SingleValueUniverse) {
  ZipfGenerator zipf(1, 1.0);
  Rng rng(1);
  EXPECT_EQ(zipf.next(rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.probability(0), 1.0);
}

TEST(Zipf, InvalidConfigRejected) {
  EXPECT_THROW(ZipfGenerator(0, 1.0), std::logic_error);
  EXPECT_THROW(ZipfGenerator(10, -0.5), std::logic_error);
}

}  // namespace
}  // namespace gates
