#include "gates/common/byte_buffer.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace gates {
namespace {

TEST(ByteBuffer, DefaultIsEmpty) {
  ByteBuffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(ByteBuffer, SizedConstructionZeroFills) {
  ByteBuffer b(8);
  ASSERT_EQ(b.size(), 8u);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(b.data()[i], 0);
}

TEST(ByteBuffer, FromStringRoundTrips) {
  auto b = ByteBuffer::from_string("hello");
  EXPECT_EQ(b.as_string_view(), "hello");
  EXPECT_TRUE(ByteBuffer::from_string("").empty());
}

TEST(ByteBuffer, CopySharesStorage) {
  auto a = ByteBuffer::from_string("shared");
  const std::uint64_t before = ByteBuffer::deep_copies();
  ByteBuffer b = a;
  ByteBuffer c;
  c = a;
  EXPECT_EQ(ByteBuffer::deep_copies(), before);  // copies are refcount bumps
  EXPECT_TRUE(b.shares_storage(a));
  EXPECT_TRUE(c.shares_storage(a));
  // Const access must not detach: both handles expose the same bytes.
  EXPECT_EQ(static_cast<const ByteBuffer&>(b).data(),
            static_cast<const ByteBuffer&>(a).data());
}

TEST(ByteBuffer, MutationDetachesAndPreservesOriginal) {
  auto a = ByteBuffer::from_string("original");
  ByteBuffer b = a;
  const std::uint64_t before = ByteBuffer::deep_copies();
  b.data()[0] = 'X';  // non-const access through a shared handle
  EXPECT_EQ(ByteBuffer::deep_copies(), before + 1);
  EXPECT_EQ(a.as_string_view(), "original");
  EXPECT_EQ(b.as_string_view(), "Xriginal");
  EXPECT_FALSE(b.shares_storage(a));
}

// Storage comes from the global PayloadArena: fresh buffers and COW detach
// clones both count as arena acquires, and the last handle dropping returns
// the block (released rises in step). Deltas only — the global arena's
// counters accumulate across the whole test binary.
TEST(ByteBuffer, StorageAndCowDetachDrawFromArena) {
  const ArenaStats before = PayloadArena::global().stats();
  {
    auto a = ByteBuffer::from_string("arena-backed payload");
    ByteBuffer b = a;  // refcount bump, no acquire
    EXPECT_EQ(PayloadArena::global().stats().acquired, before.acquired + 1);
    b.data()[0] = 'A';  // COW detach clones via the arena
    EXPECT_EQ(PayloadArena::global().stats().acquired, before.acquired + 2);
  }
  const ArenaStats after = PayloadArena::global().stats();
  EXPECT_EQ(after.released, before.released + 2);
  EXPECT_EQ(after.heap_fallback, before.heap_fallback);
}

TEST(ByteBuffer, MutatingUniqueHandleDoesNotCopy) {
  auto a = ByteBuffer::from_string("solo");
  const std::uint64_t before = ByteBuffer::deep_copies();
  a.data()[0] = 'S';
  a.append("!", 1);
  a.resize(3);
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  EXPECT_EQ(a.as_string_view(), "Sol");
}

TEST(ByteBuffer, AppendDetachesSharedBuffer) {
  auto a = ByteBuffer::from_string("ab");
  ByteBuffer b = a;
  b.append("c", 1);
  EXPECT_EQ(a.as_string_view(), "ab");
  EXPECT_EQ(b.as_string_view(), "abc");
}

TEST(ByteBuffer, ResizeDetachesSharedBuffer) {
  auto a = ByteBuffer::from_string("abcd");
  ByteBuffer b = a;
  b.resize(2);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_EQ(b.as_string_view(), "ab");
}

TEST(ByteBuffer, ClearDropsReferenceWithoutCopy) {
  auto a = ByteBuffer::from_string("keep");
  ByteBuffer b = a;
  const std::uint64_t before = ByteBuffer::deep_copies();
  b.clear();
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.as_string_view(), "keep");
}

TEST(ByteBuffer, EqualityComparesContents) {
  auto a = ByteBuffer::from_string("same");
  auto b = ByteBuffer::from_string("same");
  ByteBuffer shared = a;
  EXPECT_EQ(a, b);        // distinct allocations, same bytes
  EXPECT_EQ(a, shared);   // aliased allocation
  EXPECT_NE(a, ByteBuffer::from_string("diff"));
  EXPECT_NE(a, ByteBuffer::from_string("sam"));
  EXPECT_EQ(ByteBuffer{}, ByteBuffer{});
}

TEST(ByteBuffer, MoveTransfersWithoutCopy) {
  auto a = ByteBuffer::from_string("moved");
  const std::uint64_t before = ByteBuffer::deep_copies();
  ByteBuffer b = std::move(a);
  EXPECT_EQ(ByteBuffer::deep_copies(), before);
  EXPECT_EQ(b.as_string_view(), "moved");
}

// Many threads copy one buffer, read it, and mutate their private copy.
// Under TSan this validates the COW detach discipline: mutation never
// touches bytes another thread is reading through its own handle.
TEST(ByteBuffer, ConcurrentSharedReadsWithPrivateMutation) {
  auto base = ByteBuffer::from_string("concurrent-payload");
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([base, t] {  // copy = share
      for (int i = 0; i < 1000; ++i) {
        ByteBuffer mine = base;
        ASSERT_EQ(mine.as_string_view(), "concurrent-payload");
        mine.data()[0] = static_cast<std::uint8_t>('A' + t);  // COW detach
        ASSERT_EQ(mine.data()[0], static_cast<std::uint8_t>('A' + t));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(base.as_string_view(), "concurrent-payload");
}

}  // namespace
}  // namespace gates
