#include "gates/common/idle_strategy.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace gates {
namespace {

// These tests construct explicit configs: for_host() adapts to the box it
// runs on, so asserting exact step sequences against it would be flaky
// across machines.

TEST(IdleStrategy, SpinModeNeverParks) {
  IdleConfig config = IdleConfig::spin();
  config.spin_limit = 4;
  IdleStrategy idle(config);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(idle.should_park());
  }
}

TEST(IdleStrategy, BalancedEscalatesSpinYieldPark) {
  IdleConfig config;  // kBalanced
  config.spin_limit = 3;
  config.yield_limit = 2;
  IdleStrategy idle(config);
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(idle.should_park()) << "step " << i;
  }
  EXPECT_TRUE(idle.should_park());
  EXPECT_TRUE(idle.should_park());  // stays parked until progress
  idle.reset();
  EXPECT_FALSE(idle.should_park());
}

TEST(IdleStrategy, BalancedWithZeroSpinSkipsStraightToYields) {
  IdleConfig config;
  config.spin_limit = 0;  // the single-core for_host() shape
  config.yield_limit = 2;
  IdleStrategy idle(config);
  EXPECT_FALSE(idle.should_park());
  EXPECT_FALSE(idle.should_park());
  EXPECT_TRUE(idle.should_park());
}

TEST(IdleStrategy, ParkModeYieldsThenParks) {
  IdleConfig config = IdleConfig::park();  // yield_limit = 1
  IdleStrategy idle(config);
  EXPECT_FALSE(idle.should_park());
  EXPECT_TRUE(idle.should_park());
  idle.reset();
  EXPECT_FALSE(idle.should_park());
}

TEST(IdleStrategy, ForHostIsBalancedAndDropsSpinOnSingleCore) {
  const IdleConfig config = IdleConfig::for_host();
  EXPECT_EQ(config.mode, IdleConfig::kBalanced);
  if (std::thread::hardware_concurrency() <= 1) {
    EXPECT_EQ(config.spin_limit, 0u);
  } else {
    EXPECT_GT(config.spin_limit, 0u);
  }
}

TEST(PreciseSleep, SleepsAtLeastTheRequestedDuration) {
  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  precise_sleep(2e-3);
  const double elapsed =
      std::chrono::duration<double>(clock::now() - start).count();
  EXPECT_GE(elapsed, 2e-3);
  precise_sleep(0);    // must return immediately
  precise_sleep(-1);   // and tolerate negatives
}

}  // namespace
}  // namespace gates
