#include "gates/common/token_bucket.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(TokenBucket, StartsFull) {
  TokenBucket tb(100, 50, 0);
  EXPECT_DOUBLE_EQ(tb.available(0), 50);
  EXPECT_TRUE(tb.try_consume(50, 0));
  EXPECT_FALSE(tb.try_consume(1, 0));
}

TEST(TokenBucket, RefillsAtRate) {
  TokenBucket tb(100, 50, 0);
  ASSERT_TRUE(tb.try_consume(50, 0));
  EXPECT_FALSE(tb.try_consume(10, 0.05));  // only 5 tokens back
  EXPECT_TRUE(tb.try_consume(10, 0.1));    // 10 tokens back
}

TEST(TokenBucket, CapsAtBurst) {
  TokenBucket tb(100, 50, 0);
  EXPECT_DOUBLE_EQ(tb.available(1000), 50);  // never above burst
}

TEST(TokenBucket, TimeAvailableNowWhenEnough) {
  TokenBucket tb(100, 50, 0);
  EXPECT_DOUBLE_EQ(tb.time_available(50, 1.0), 1.0);
}

TEST(TokenBucket, TimeAvailableProjectsRefill) {
  TokenBucket tb(100, 50, 0);
  ASSERT_TRUE(tb.try_consume(50, 0));
  // Needs 20 tokens: 0.2 s at 100/s.
  EXPECT_NEAR(tb.time_available(20, 0), 0.2, 1e-9);
}

TEST(TokenBucket, TimeAvailableDoesNotConsume) {
  TokenBucket tb(100, 50, 0);
  (void)tb.time_available(30, 0);
  EXPECT_TRUE(tb.try_consume(50, 0));
}

TEST(TokenBucket, DebtGoesNegativeAndRecovers) {
  TokenBucket tb(100, 50, 0);
  tb.consume_debt(150, 0);
  EXPECT_DOUBLE_EQ(tb.available(0), -100);
  EXPECT_FALSE(tb.try_consume(1, 0.5));  // only back to -50
  EXPECT_NEAR(tb.time_available(1, 0.5), 1.01, 1e-9);
  EXPECT_TRUE(tb.try_consume(1, 1.02));
}

TEST(TokenBucket, ClockGoingBackwardsIsIgnored) {
  TokenBucket tb(100, 50, 10);
  ASSERT_TRUE(tb.try_consume(50, 10));
  // An earlier timestamp must not mint tokens.
  EXPECT_FALSE(tb.try_consume(1, 5));
}

TEST(TokenBucket, LongRunRateIsHonored) {
  TokenBucket tb(1000, 100, 0);
  double now = 0;
  double sent = 0;
  // Greedy sender: take 100 whenever available over 10 seconds.
  while (now < 10.0) {
    now = tb.time_available(100, now);
    if (now >= 10.0) break;
    tb.consume_debt(100, now);
    sent += 100;
  }
  // 100 burst + ~1000/s * 10 s.
  EXPECT_NEAR(sent, 10100, 200);
}

TEST(TokenBucket, SetRateSettlesAccrualBeforeSwitching) {
  // 1 s at 100/s mints 50 (capped at burst 50 after the drain); switching
  // to 10/s must keep those tokens and only change future accrual.
  TokenBucket tb(100, 50, 0);
  ASSERT_TRUE(tb.try_consume(50, 0));
  tb.set_rate(10, 0.2);              // 20 tokens settled at the old rate
  EXPECT_DOUBLE_EQ(tb.rate(), 10);
  EXPECT_NEAR(tb.available(0.2), 20, 1e-9);
  EXPECT_NEAR(tb.available(1.2), 30, 1e-9);  // +10 over the next second
}

TEST(TokenBucket, SetRateSpeedsUpRecoveryFromDebt) {
  // A link shaper healing mid-run: debt paid at the new, faster rate.
  TokenBucket tb(10, 50, 0);
  tb.consume_debt(100, 0);  // 50 - 100 = -50
  EXPECT_NEAR(tb.time_available(1, 0), 5.1, 1e-9);
  tb.set_rate(1000, 0);
  EXPECT_NEAR(tb.time_available(1, 0), 0.051, 1e-9);
}

TEST(TokenBucket, SetRateRejectsInvalidRate) {
  TokenBucket tb(100, 50, 0);
  EXPECT_THROW(tb.set_rate(0, 1.0), std::logic_error);
  EXPECT_THROW(tb.set_rate(-5, 1.0), std::logic_error);
}

TEST(TokenBucket, InvalidConfigRejected) {
  EXPECT_THROW(TokenBucket(0, 10), std::logic_error);
  EXPECT_THROW(TokenBucket(10, 0), std::logic_error);
}

}  // namespace
}  // namespace gates
