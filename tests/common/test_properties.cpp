#include "gates/common/properties.hpp"

#include <gtest/gtest.h>

namespace gates {
namespace {

TEST(Properties, SetGetContains) {
  Properties p;
  EXPECT_FALSE(p.contains("k"));
  p.set("k", "v");
  EXPECT_TRUE(p.contains("k"));
  EXPECT_EQ(p.get("k").value(), "v");
  EXPECT_FALSE(p.get("missing").has_value());
}

TEST(Properties, OverwriteReplaces) {
  Properties p;
  p.set("k", "1");
  p.set("k", "2");
  EXPECT_EQ(p.get("k").value(), "2");
  EXPECT_EQ(p.size(), 1u);
}

TEST(Properties, TypedAccessorsWithFallbacks) {
  Properties p;
  p.set("d", "2.5");
  p.set("i", "42");
  p.set("b", "true");
  p.set("s", "text");
  EXPECT_DOUBLE_EQ(p.get_double("d", 0), 2.5);
  EXPECT_EQ(p.get_int("i", 0), 42);
  EXPECT_TRUE(p.get_bool("b", false));
  EXPECT_EQ(p.get_string("s", ""), "text");
  EXPECT_DOUBLE_EQ(p.get_double("missing", 9.5), 9.5);
  EXPECT_EQ(p.get_int("missing", -1), -1);
  EXPECT_FALSE(p.get_bool("missing", false));
  EXPECT_EQ(p.get_string("missing", "fb"), "fb");
}

TEST(Properties, MalformedValuesFallBack) {
  Properties p;
  p.set("d", "not-a-number");
  p.set("i", "4.5");
  p.set("b", "maybe");
  EXPECT_DOUBLE_EQ(p.get_double("d", 1.25), 1.25);
  EXPECT_EQ(p.get_int("i", 7), 7);
  EXPECT_TRUE(p.get_bool("b", true));
}

TEST(Properties, AllExposesEntries) {
  Properties p;
  p.set("a", "1");
  p.set("b", "2");
  EXPECT_EQ(p.all().size(), 2u);
  EXPECT_EQ(p.all().at("a"), "1");
}

}  // namespace
}  // namespace gates
