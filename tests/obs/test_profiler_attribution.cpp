// Units for the attribution layer: PhaseClock accumulation, Profiler
// registration/snapshot, the control-tick metrics fold, BottleneckReport
// ranking, the trace-annotation brief, and the PacketTracer sampling head.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "gates/obs/attribution.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/profiler.hpp"
#include "gates/obs/trace_context.hpp"

namespace gates::obs {
namespace {

/// Puts the process-global profiler/metrics/tracer into a clean enabled
/// state for one test and clears them on exit.
struct ScopedAttribution {
  ScopedAttribution() {
    Profiler::global().reset();
    Profiler::global().set_enabled(true);
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
    PacketTracer::global().reset();
  }
  ~ScopedAttribution() {
    Profiler::global().reset();
    MetricsRegistry::global().reset();
    PacketTracer::global().reset();
  }
};

TEST(PhaseClock, AddAccumulatesStoreOverwrites) {
  PhaseClock clock;
  clock.add(Phase::kService, 0.5);
  clock.add(Phase::kService, 0.25);
  clock.add(Phase::kInboxWait, -1.0);  // non-positive charges are dropped
  clock.add_packets(3);
  EXPECT_NEAR(clock.seconds(Phase::kService), 0.75, 1e-9);
  EXPECT_DOUBLE_EQ(clock.seconds(Phase::kInboxWait), 0.0);
  EXPECT_EQ(clock.packets(), 3u);
  clock.store(Phase::kService, 0.1);
  EXPECT_NEAR(clock.seconds(Phase::kService), 0.1, 1e-9);
  clock.store(Phase::kService, -1.0);
  EXPECT_DOUBLE_EQ(clock.seconds(Phase::kService), 0.0);
}

TEST(Profiler, SnapshotSeparatesStagesFromLinksAndHandlesAreStable) {
  ScopedAttribution scoped;
  PhaseClock& s = Profiler::global().stage("analyze");
  PhaseClock& l = Profiler::global().link("wan");
  EXPECT_EQ(&Profiler::global().stage("analyze"), &s);
  s.add(Phase::kService, 1.0);
  l.add(Phase::kShaperDelay, 2.0);
  bool saw_stage = false, saw_link = false;
  for (const ProfileSample& sample : Profiler::global().snapshot()) {
    if (sample.name == "analyze") {
      saw_stage = true;
      EXPECT_FALSE(sample.is_link);
      EXPECT_NEAR(sample.seconds[static_cast<std::size_t>(Phase::kService)],
                  1.0, 1e-9);
    }
    if (sample.name == "wan") {
      saw_link = true;
      EXPECT_TRUE(sample.is_link);
    }
  }
  EXPECT_TRUE(saw_stage);
  EXPECT_TRUE(saw_link);
}

TEST(Fold, PublishesPhaseCountersAndSelfObservationMetrics) {
  ScopedAttribution scoped;
  Profiler::global().stage("A").add(Phase::kInboxWait, 0.002);
  Profiler::global().link("ingress@0").add(Phase::kShaperDelay, 0.5);
  fold_profiler_into_metrics(/*fold_seconds=*/0.000125);

  const std::string text = MetricsRegistry::global().prometheus_text();
  EXPECT_NE(text.find("gates_stage_phase_micros{stage=\"A\","
                      "phase=\"inbox-wait\"} 2000"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("gates_link_phase_micros{link=\"ingress@0\","
                      "phase=\"shaper-delay\"} 500000"),
            std::string::npos)
      << text;
  // The observability layer reports on itself (ISSUE 7 satellites).
  EXPECT_NE(text.find("obs_trace_dropped_total"), std::string::npos);
  EXPECT_NE(text.find("obs_fold_micros 125"), std::string::npos) << text;
}

TEST(Bottleneck, RanksByTotalTimeAndNamesTheDominantPhase) {
  ScopedAttribution scoped;
  Profiler::global().stage("fast").add(Phase::kService, 0.1);
  PhaseClock& slow = Profiler::global().stage("slow");
  slow.add(Phase::kService, 3.0);
  slow.add(Phase::kInboxWait, 1.0);
  slow.add_packets(42);
  Profiler::global().link("wan").add(Phase::kShaperDelay, 2.0);

  const BottleneckReport report = make_bottleneck_report();
  ASSERT_EQ(report.entries.size(), 3u);
  ASSERT_NE(report.top(), nullptr);
  EXPECT_EQ(report.top()->name, "slow");
  EXPECT_EQ(report.top()->dominant(), Phase::kService);
  EXPECT_NEAR(report.top()->dominant_share(), 0.75, 1e-9);
  EXPECT_EQ(report.top()->packets, 42u);
  EXPECT_EQ(report.entries[1].name, "wan");
  EXPECT_TRUE(report.entries[1].is_link);
  EXPECT_EQ(report.entries[2].name, "fast");

  const std::string json = report.to_json();
  EXPECT_NE(json.find("\"name\":\"slow\""), std::string::npos);
  EXPECT_NE(json.find("\"dominant\":\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"kind\":\"link\""), std::string::npos);
  EXPECT_NE(json.find("\"breakdown\":{\"inbox-wait\":1,"), std::string::npos);
  const std::string summary = report.summary();
  EXPECT_EQ(summary.find("stage  slow"), 0u) << summary;
}

TEST(Bottleneck, ReportIsEmptyWhenProfilingDisabled) {
  ScopedAttribution scoped;
  Profiler::global().stage("A").add(Phase::kService, 1.0);
  Profiler::global().set_enabled(false);
  EXPECT_TRUE(make_bottleneck_report().entries.empty());
  EXPECT_EQ(attribution_brief("A"), "");
}

TEST(Bottleneck, BriefSummarizesOneComponentForTraceAnnotations) {
  ScopedAttribution scoped;
  PhaseClock& clock = Profiler::global().stage("join");
  clock.add(Phase::kService, 2.0);
  clock.add(Phase::kInboxWait, 0.5);
  const std::string brief = attribution_brief("join");
  EXPECT_NE(brief.find("service=2s"), std::string::npos) << brief;
  EXPECT_NE(brief.find("inbox-wait=0.5s"), std::string::npos) << brief;
  EXPECT_NE(brief.find("dominant=service"), std::string::npos) << brief;
  // Unknown / idle components yield nothing rather than a noise annotation.
  EXPECT_EQ(attribution_brief("nope"), "");
  EXPECT_EQ(attribution_brief(""), "");
}

TEST(PacketTracer, SamplesExactlyOneInN) {
  ScopedAttribution scoped;
  PacketTracer& tracer = PacketTracer::global();
  EXPECT_FALSE(tracer.active());
  EXPECT_FALSE(tracer.maybe_sample().sampled());

  tracer.set_sample_period(4);
  ASSERT_TRUE(tracer.active());
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 16; ++i) {
    const TraceContext ctx = tracer.maybe_sample();
    if (ctx.sampled()) {
      EXPECT_EQ(ctx.hop, 0u);
      ids.push_back(ctx.trace_id);
    }
  }
  ASSERT_EQ(ids.size(), 4u);
  EXPECT_EQ(tracer.sampled_count(), 4u);
  // Ids are unique and never the "not sampled" sentinel 0.
  for (std::size_t i = 0; i < ids.size(); ++i) {
    EXPECT_NE(ids[i], 0u);
    for (std::size_t j = i + 1; j < ids.size(); ++j) {
      EXPECT_NE(ids[i], ids[j]);
    }
  }
}

}  // namespace
}  // namespace gates::obs
