// IntrospectServer over a real loopback socket: routes, content types,
// provider overrides, error paths and lifecycle. The client is a raw
// blocking socket — the server has no dependencies and neither do its tests.
#include "gates/obs/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "gates/obs/attribution.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/profiler.hpp"

namespace gates::obs {
namespace {

/// One blocking HTTP exchange against 127.0.0.1:port; returns the full
/// response (status line + headers + body), empty on connect failure.
std::string http_get(std::uint16_t port, const std::string& request) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    ::close(fd);
    return "";
  }
  ::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string get_path(std::uint16_t port, const std::string& path) {
  return http_get(port, "GET " + path + " HTTP/1.1\r\nHost: localhost\r\n"
                        "Connection: close\r\n\r\n");
}

struct ScopedObs {
  ScopedObs() {
    MetricsRegistry::global().reset();
    MetricsRegistry::global().set_enabled(true);
    Profiler::global().reset();
    Profiler::global().set_enabled(true);
  }
  ~ScopedObs() {
    MetricsRegistry::global().reset();
    Profiler::global().reset();
  }
};

TEST(Introspect, ServesDefaultRoutesOnAnEphemeralPort) {
  ScopedObs scoped;
  MetricsRegistry::global().counter("gates_test_requests").add(7);
  Profiler::global().stage("hot").add(Phase::kService, 1.5);

  IntrospectServer server;
  ASSERT_TRUE(server.start({}).is_ok());
  ASSERT_NE(server.port(), 0);
  EXPECT_TRUE(server.running());

  const std::string metrics = get_path(server.port(), "/metrics");
  EXPECT_NE(metrics.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(metrics.find("text/plain; version=0.0.4"), std::string::npos);
  EXPECT_NE(metrics.find("gates_test_requests 7"), std::string::npos);

  const std::string attribution = get_path(server.port(), "/attribution");
  EXPECT_NE(attribution.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(attribution.find("application/json"), std::string::npos);
  EXPECT_NE(attribution.find("\"name\":\"hot\""), std::string::npos);
  EXPECT_NE(attribution.find("\"dominant\":\"service\""), std::string::npos);

  const std::string health = get_path(server.port(), "/healthz");
  EXPECT_NE(health.find("{\"stages\":[]}"), std::string::npos);

  const std::string trace = get_path(server.port(), "/trace");
  EXPECT_NE(trace.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(trace.find("application/x-ndjson"), std::string::npos);

  server.stop();
  EXPECT_FALSE(server.running());
  EXPECT_EQ(server.port(), 0);
}

TEST(Introspect, ProviderOverrideWinsOverDefaultRoute) {
  IntrospectServer server;
  server.set_provider("/healthz", [] {
    return std::string("{\"stages\":[{\"name\":\"A\",\"state\":\"alive\"}]}");
  });
  server.set_provider("/custom", [] { return std::string("hello"); });
  ASSERT_TRUE(server.start({}).is_ok());
  EXPECT_NE(get_path(server.port(), "/healthz")
                .find("\"state\":\"alive\""),
            std::string::npos);
  EXPECT_NE(get_path(server.port(), "/custom").find("hello"),
            std::string::npos);
  // Query strings are stripped before route lookup.
  EXPECT_NE(get_path(server.port(), "/custom?x=1").find("hello"),
            std::string::npos);
}

TEST(Introspect, RejectsUnknownRoutesMethodsAndGarbage) {
  IntrospectServer server;
  ASSERT_TRUE(server.start({}).is_ok());
  EXPECT_NE(get_path(server.port(), "/nope").find("HTTP/1.1 404"),
            std::string::npos);
  EXPECT_NE(http_get(server.port(),
                     "POST /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .find("HTTP/1.1 405"),
            std::string::npos);
}

TEST(Introspect, SecondStartFailsAndBusyPortSurfacesAsStatus) {
  IntrospectServer a;
  ASSERT_TRUE(a.start({}).is_ok());
  EXPECT_FALSE(a.start({}).is_ok());
  IntrospectServer b;
  IntrospectServer::Config cfg;
  cfg.port = a.port();
  const Status s = b.start(cfg);
  EXPECT_FALSE(s.is_ok());
  EXPECT_FALSE(b.running());
}

TEST(Introspect, StopIsIdempotentAndSafeWithoutStart) {
  IntrospectServer server;
  server.stop();  // never started
  ASSERT_TRUE(server.start({}).is_ok());
  server.stop();
  server.stop();
  // Restart after stop gets a fresh port and serves again.
  ASSERT_TRUE(server.start({}).is_ok());
  EXPECT_NE(get_path(server.port(), "/healthz").find("200 OK"),
            std::string::npos);
  server.stop();
}

}  // namespace
}  // namespace gates::obs
