// Bottleneck attribution end-to-end (ISSUE 7 acceptance): run real engines
// with a *known* injected bottleneck and check the BottleneckReport ranks it
// first with the correct dominant phase; plus causal trace-context
// propagation through a chain and the RtEngine /healthz payload.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/obs/attribution.hpp"
#include "gates/obs/profiler.hpp"
#include "gates/obs/trace.hpp"
#include "gates/obs/trace_context.hpp"

namespace gates::core {
namespace {

struct ScopedObs {
  ScopedObs()
      : trace_was_enabled(obs::TraceBuffer::global().enabled()) {
    obs::Profiler::global().reset();
    obs::Profiler::global().set_enabled(true);
    obs::PacketTracer::global().reset();
    obs::TraceBuffer::global().clear();
  }
  ~ScopedObs() {
    obs::Profiler::global().reset();
    obs::PacketTracer::global().reset();
    obs::TraceBuffer::global().set_enabled(trace_was_enabled);
    obs::TraceBuffer::global().clear();
  }
  bool trace_was_enabled;
};

class Relay : public StreamProcessor {
 public:
  explicit Relay(bool forward = true) : forward_(forward) {}
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    if (forward_) emitter.emit(packet);
  }
  std::string name() const override { return "relay"; }
  bool forward_;
};

StageSpec relay_stage(const std::string& name, bool forward = true) {
  StageSpec s;
  s.name = name;
  s.factory = [forward] { return std::make_unique<Relay>(forward); };
  return s;
}

TEST(Bottleneck, SlowStageRanksFirstWithServiceDominant) {
  ScopedObs scoped;

  // source -> in -> crunch -> out, all on one node; "crunch" burns 15 ms per
  // packet at 50 pkt/s (75% utilization) while its neighbours are free.
  PipelineSpec spec;
  spec.stages = {relay_stage("in"), relay_stage("crunch"),
                 relay_stage("out", /*forward=*/false)};
  spec.stages[1].cost.per_packet_seconds = 0.015;
  spec.edges = {{0, 1, 0}, {1, 2, 0}};
  SourceSpec src;
  src.rate_hz = 50;
  src.total_packets = 400;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 0, 0};

  SimEngine engine(spec, placement, {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());

  const obs::BottleneckReport& report = engine.report().attribution;
  ASSERT_FALSE(report.entries.empty());
  ASSERT_NE(report.top(), nullptr);
  EXPECT_EQ(report.top()->name, "crunch");
  EXPECT_FALSE(report.top()->is_link);
  EXPECT_EQ(report.top()->dominant(), obs::Phase::kService);
  // 400 packets x 15 ms = 6 s of service, the lion's share of its time.
  EXPECT_NEAR(
      report.top()->seconds[static_cast<std::size_t>(obs::Phase::kService)],
      6.0, 0.5);
  EXPECT_GT(report.top()->dominant_share(), 0.5);
  EXPECT_EQ(report.top()->packets, 400u);
}

TEST(Bottleneck, ShapedLinkRanksFirstWithShaperDelayDominant) {
  ScopedObs scoped;

  // source -> A on node 0, B on node 1; the 0->1 link carries 300 ms of
  // propagation latency while both stages are effectively free.
  PipelineSpec spec;
  spec.stages = {relay_stage("A"), relay_stage("B", /*forward=*/false)};
  spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = 100;
  src.total_packets = 300;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 1};

  net::Topology topology;
  net::LinkSpec slow;
  slow.bandwidth = 1e6;
  slow.latency = 0.3;
  topology.set_pair(0, 1, slow);

  SimEngine engine(spec, placement, {}, topology, {});
  ASSERT_TRUE(engine.run().is_ok());

  const obs::BottleneckReport& report = engine.report().attribution;
  ASSERT_NE(report.top(), nullptr);
  EXPECT_EQ(report.top()->name, "link:0->1");
  EXPECT_TRUE(report.top()->is_link);
  EXPECT_EQ(report.top()->dominant(), obs::Phase::kShaperDelay);
  // 300 packets x ~0.3 s of transit charged to the link.
  EXPECT_GT(report.top()->seconds[static_cast<std::size_t>(
                obs::Phase::kShaperDelay)],
            60.0);
}

TEST(Bottleneck, TraceContextPropagatesHopByHopThroughAChain) {
  ScopedObs scoped;
  obs::TraceBuffer::global().set_enabled(true);
  obs::PacketTracer::global().set_sample_period(1);  // sample everything

  PipelineSpec spec;
  spec.stages = {relay_stage("A"), relay_stage("B"),
                 relay_stage("C", /*forward=*/false)};
  spec.edges = {{0, 1, 0}, {1, 2, 0}};
  SourceSpec src;
  src.rate_hz = 100;
  src.total_packets = 40;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 0, 0};

  SimEngine engine(spec, placement, {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());

  // Every data packet was sampled at the source.
  EXPECT_EQ(obs::PacketTracer::global().sampled_count(), 40u);

  // Reconstruct each sampled packet's journey from the packet-hop events.
  struct Hop {
    std::string component;
    std::string detail;
    std::uint32_t hop;
  };
  std::map<std::uint64_t, std::vector<Hop>> journeys;
  for (const obs::TraceEvent& e : obs::TraceBuffer::global().events()) {
    if (e.kind != obs::TraceKind::kPacketHop) continue;
    ASSERT_NE(e.trace_id, 0u);
    journeys[e.trace_id].push_back({e.component, e.detail, e.hop});
  }
  ASSERT_EQ(journeys.size(), 40u);
  for (const auto& [id, hops] : journeys) {
    // Hop 0 at the source, then service hops 1 (A), 2 (B), 3 (C) — the
    // causal order survives even when virtual timestamps tie.
    ASSERT_FALSE(hops.empty());
    EXPECT_EQ(hops.front().component, "source:0");
    EXPECT_EQ(hops.front().detail, "emit");
    EXPECT_EQ(hops.front().hop, 0u);
    std::map<std::string, std::uint32_t> service_hops;
    for (const Hop& h : hops) {
      if (h.detail == "service") service_hops[h.component] = h.hop;
    }
    ASSERT_EQ(service_hops.size(), 3u) << "trace " << id;
    EXPECT_EQ(service_hops["A"], 1u);
    EXPECT_EQ(service_hops["B"], 2u);
    EXPECT_EQ(service_hops["C"], 3u);
  }
}

TEST(Bottleneck, RtEngineAttributesSlowStageAndReportsHealth) {
  ScopedObs scoped;

  PipelineSpec spec;
  spec.stages = {relay_stage("fast"), relay_stage("slowpoke", false)};
  spec.stages[1].cost.per_packet_seconds = 0.002;
  spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = 400;
  src.total_packets = 300;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 0};

  RtEngine engine(spec, placement, {}, {}, {});
  ASSERT_TRUE(engine.run().is_ok());

  const obs::BottleneckReport& report = engine.report().attribution;
  ASSERT_NE(report.top(), nullptr);
  EXPECT_EQ(report.top()->name, "slowpoke");
  EXPECT_EQ(report.top()->dominant(), obs::Phase::kService);
  EXPECT_EQ(report.top()->packets, 300u);

  // The /healthz payload: every stage finished, queues drained.
  const std::string health = engine.health_json();
  EXPECT_NE(health.find("\"name\":\"fast\""), std::string::npos) << health;
  EXPECT_NE(health.find("\"name\":\"slowpoke\""), std::string::npos);
  EXPECT_EQ(health.find("\"state\":\"alive\""), std::string::npos) << health;
  std::size_t finished = 0;
  for (std::size_t pos = health.find("\"state\":\"finished\"");
       pos != std::string::npos;
       pos = health.find("\"state\":\"finished\"", pos + 1)) {
    ++finished;
  }
  EXPECT_EQ(finished, 2u);
}

}  // namespace
}  // namespace gates::core
