#include "gates/obs/metrics.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace gates::obs {
namespace {

TEST(MetricKey, RendersNameAndLabels) {
  EXPECT_EQ(metric_key("up", {}), "up");
  EXPECT_EQ(metric_key("pkts", {{"stage", "join"}}), "pkts{stage=\"join\"}");
  EXPECT_EQ(metric_key("pkts", {{"stage", "a"}, {"node", "2"}}),
            "pkts{stage=\"a\",node=\"2\"}");
}

TEST(Counter, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter& counter = registry.counter("hits");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (int i = 0; i < kPerThread; ++i) counter.add();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(FixedHistogram, ClampsOutOfRangeIntoEdgeBuckets) {
  FixedHistogram h(0, 10, 5);  // buckets of width 2
  h.observe(-3);               // clamps to bucket 0
  h.observe(1);                // bucket 0
  h.observe(5);                // bucket 2
  h.observe(99);               // clamps to bucket 4
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(2), 1u);
  EXPECT_EQ(h.bucket(4), 1u);
  EXPECT_EQ(h.total(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), -3 + 1 + 5 + 99);
  EXPECT_DOUBLE_EQ(h.upper_bound(0), 2);
  EXPECT_DOUBLE_EQ(h.upper_bound(4), 10);
}

TEST(MetricsRegistry, HandlesAreStableAcrossLookups) {
  MetricsRegistry registry;
  Counter& a = registry.counter("c", {{"stage", "x"}});
  Counter& b = registry.counter("c", {{"stage", "x"}});
  EXPECT_EQ(&a, &b);
  Counter& other = registry.counter("c", {{"stage", "y"}});
  EXPECT_NE(&a, &other);
}

TEST(MetricsRegistry, PrometheusTextGolden) {
  MetricsRegistry registry;
  registry.counter("gates_test_packets", {{"stage", "a"}}).set(3);
  registry.gauge("gates_test_queue").set(2.5);
  FixedHistogram& h =
      registry.histogram("gates_test_lat", 0, 4, 2, {{"stage", "a"}});
  h.observe(1);
  h.observe(3);
  EXPECT_EQ(registry.prometheus_text(),
            "# TYPE gates_test_packets counter\n"
            "gates_test_packets{stage=\"a\"} 3\n"
            "# TYPE gates_test_queue gauge\n"
            "gates_test_queue 2.5\n"
            "# TYPE gates_test_lat histogram\n"
            "gates_test_lat_bucket{stage=\"a\",le=\"2\"} 1\n"
            "gates_test_lat_bucket{stage=\"a\",le=\"4\"} 2\n"
            "gates_test_lat_bucket{stage=\"a\",le=\"+Inf\"} 2\n"
            "gates_test_lat_sum{stage=\"a\"} 4\n"
            "gates_test_lat_count{stage=\"a\"} 2\n");
}

TEST(MetricsRegistry, SnapshotCoversEveryKindInKeyOrder) {
  MetricsRegistry registry;
  registry.counter("b_counter").set(7);
  registry.gauge("a_gauge").set(-1.5);
  registry.histogram("c_hist", 0, 1, 2).observe(0.2);
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].key, "b_counter");
  EXPECT_EQ(snap[0].kind, MetricSample::Kind::kCounter);
  EXPECT_DOUBLE_EQ(snap[0].value, 7);
  EXPECT_EQ(snap[1].key, "a_gauge");
  EXPECT_EQ(snap[1].kind, MetricSample::Kind::kGauge);
  EXPECT_DOUBLE_EQ(snap[1].value, -1.5);
  EXPECT_EQ(snap[2].key, "c_hist");
  EXPECT_EQ(snap[2].kind, MetricSample::Kind::kHistogram);
  EXPECT_DOUBLE_EQ(snap[2].value, 1);  // histogram samples report the count
}

TEST(MetricsRegistry, ResetDropsEverything) {
  MetricsRegistry registry;
  registry.counter("c").add(5);
  registry.reset();
  EXPECT_TRUE(registry.snapshot().empty());
  // Re-registration after reset starts from zero.
  EXPECT_EQ(registry.counter("c").value(), 0u);
}

TEST(MetricsRegistry, EnabledDefaultsOff) {
  MetricsRegistry registry;
  EXPECT_FALSE(registry.enabled());
  registry.set_enabled(true);
  EXPECT_TRUE(registry.enabled());
}

}  // namespace
}  // namespace gates::obs
