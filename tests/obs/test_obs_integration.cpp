// End-to-end telemetry: run real SimEngine pipelines with the global
// TraceBuffer / MetricsRegistry enabled and check that the emitted events
// agree exactly with the engine's own report — in particular that a
// param-adjust event carries the controller's dtilde input (ISSUE PR 2).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::core {
namespace {

/// Enables the process-global telemetry singletons for one test and restores
/// their prior state on exit, so other tests see them untouched.
struct ScopedTelemetry {
  ScopedTelemetry()
      : trace_was_enabled(obs::TraceBuffer::global().enabled()),
        metrics_were_enabled(obs::MetricsRegistry::global().enabled()) {
    obs::TraceBuffer::global().clear();
    obs::TraceBuffer::global().set_enabled(true);
    obs::MetricsRegistry::global().reset();
    obs::MetricsRegistry::global().set_enabled(true);
  }
  ~ScopedTelemetry() {
    obs::TraceBuffer::global().set_enabled(trace_was_enabled);
    obs::TraceBuffer::global().clear();
    obs::MetricsRegistry::global().set_enabled(metrics_were_enabled);
    obs::MetricsRegistry::global().reset();
  }
  bool trace_was_enabled;
  bool metrics_were_enabled;
};

class Relay : public StreamProcessor {
 public:
  explicit Relay(bool forward = true) : forward_(forward) {}
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    if (forward_) emitter.emit(packet);
  }
  std::string name() const override { return "relay"; }
  bool forward_;
};

/// Sink declaring one adjustment parameter so the engine runs a controller.
class KnobProcessor : public StreamProcessor {
 public:
  void init(ProcessorContext& ctx) override {
    AdjustmentParameter::Spec s;
    s.name = "knob";
    s.initial = 0.5;
    s.min_value = 0;
    s.max_value = 1;
    ctx.specify_parameter(s);
  }
  void process(const Packet&, Emitter&) override {}
  std::string name() const override { return "knob-sink"; }
};

TEST(ObsIntegration, ParamAdjustEventsMatchControllerAndReport) {
  ScopedTelemetry telemetry;

  // source(node 0) -> A relay(node 0) -> B knob sink(node 1); B is slow
  // enough that its queue builds and the controller has to steer the knob.
  PipelineSpec spec;
  StageSpec a;
  a.name = "A";
  a.factory = [] { return std::make_unique<Relay>(); };
  StageSpec b;
  b.name = "B";
  b.factory = [] { return std::make_unique<KnobProcessor>(); };
  b.cost.per_packet_seconds = 0.008;
  // With trend gating off, the controller's dtilde input is exactly the
  // monitor's normalized dtilde — the value the report snapshots at the end.
  b.monitor.trend_gating = false;
  spec.stages = {std::move(a), std::move(b)};
  spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = 200;
  src.total_packets = 1000;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 1};

  SimEngine::Config cfg;
  cfg.wire.per_message_overhead = 0;
  cfg.wire.per_record_overhead = 0;
  SimEngine engine(spec, placement, {}, {}, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const RunReport& report = engine.report();
  ASSERT_TRUE(report.completed);

  // Collect the knob's adjustment trajectory out of the trace.
  std::vector<obs::TraceEvent> adjustments;
  bool saw_service_span = false;
  for (const obs::TraceEvent& event : obs::TraceBuffer::global().events()) {
    if (event.kind == obs::TraceKind::kParamAdjust && event.component == "B") {
      EXPECT_EQ(event.detail, "knob");
      adjustments.push_back(event);
    }
    if (event.kind == obs::TraceKind::kServiceSpan && event.component == "B" &&
        event.duration > 0) {
      saw_service_span = true;
    }
  }
  ASSERT_FALSE(adjustments.empty());
  EXPECT_TRUE(saw_service_span);

  // The trajectory chains: each step starts from the previous step's result,
  // beginning at the declared initial value.
  EXPECT_DOUBLE_EQ(adjustments.front().value_old, 0.5);
  for (std::size_t i = 1; i < adjustments.size(); ++i) {
    EXPECT_DOUBLE_EQ(adjustments[i].value_old, adjustments[i - 1].value_new);
    EXPECT_GT(adjustments[i].time, adjustments[i - 1].time);
  }

  // The final event agrees with the engine's own end-of-run state: the knob
  // value the stage holds, and the dtilde the controller consumed (which,
  // with gating off, is the monitor value the report snapshots).
  const obs::TraceEvent& last = adjustments.back();
  EXPECT_DOUBLE_EQ(last.value_new, engine.parameter_value(1, "knob"));
  const StageReport* stage_b = report.stage("B");
  ASSERT_NE(stage_b, nullptr);
  EXPECT_DOUBLE_EQ(last.dtilde, stage_b->final_normalized_dtilde);

  // The report carries the telemetry roll-ups for downstream persistence.
  EXPECT_GT(report.trace_summary.emitted, 0u);
  EXPECT_EQ(report.trace_summary.dropped, 0u);
  bool saw_processed_metric = false;
  for (const obs::MetricSample& sample : report.metrics) {
    if (sample.key == "gates_stage_packets_processed{stage=\"B\"}") {
      saw_processed_metric = true;
      EXPECT_GT(sample.value, 0);
      EXPECT_LE(sample.value, static_cast<double>(stage_b->packets_processed));
    }
  }
  EXPECT_TRUE(saw_processed_metric);
}

// The RtEngine (the only engine with a real allocator on the data path)
// exports the payload-pool counters and fills the report's allocation
// accounting: packets flowed, nothing fell back to the heap, and the
// per-packet heap-allocation figure the perf gate watches is ~0.
TEST(ObsIntegration, RtEngineExportsPoolMetricsAndAllocationReport) {
  ScopedTelemetry telemetry;

  PipelineSpec spec;
  StageSpec a;
  a.name = "A";
  a.factory = [] { return std::make_unique<Relay>(); };
  StageSpec b;
  b.name = "B";
  b.factory = [] { return std::make_unique<Relay>(/*forward=*/false); };
  spec.stages = {std::move(a), std::move(b)};
  spec.edges = {{0, 1, 0}};
  SourceSpec src;
  src.rate_hz = 50000;
  src.total_packets = 2000;
  src.packet_bytes = 64;
  spec.sources = {src};
  Placement placement;
  placement.stage_nodes = {0, 0};

  RtEngine::Config cfg;
  cfg.control_period = 0.02;
  cfg.max_wall_time = 60;
  cfg.adaptation_enabled = false;
  RtEngine engine(spec, std::move(placement), {}, {}, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const RunReport& report = engine.report();
  ASSERT_TRUE(report.completed);

  bool saw_pool_acquired = false;
  bool saw_pool_recycled = false;
  bool saw_pool_fallback = false;
  for (const obs::MetricSample& sample : report.metrics) {
    // Pool counters are absolute arena totals (process-wide), so only
    // presence and non-negativity are assertable here.
    if (sample.key == "gates_pool_acquired_total") saw_pool_acquired = true;
    if (sample.key == "gates_pool_recycled_total") saw_pool_recycled = true;
    if (sample.key == "gates_pool_heap_fallback_total") {
      saw_pool_fallback = true;
      EXPECT_GE(sample.value, 0);
    }
  }
  EXPECT_TRUE(saw_pool_acquired);
  EXPECT_TRUE(saw_pool_recycled);
  EXPECT_TRUE(saw_pool_fallback);

  const AllocationReport& alloc = report.allocation;
  EXPECT_GT(alloc.packets, 0u);
  EXPECT_EQ(alloc.pool_heap_fallback, 0u);
  EXPECT_LT(alloc.allocations_per_packet(), 0.01);
}

TEST(ObsIntegration, NodeFailureEmitsDetectionAndFailoverSpan) {
  ScopedTelemetry telemetry;

  // Fan-in of two forwarders into a sink; forwarder 0's node dies at t=5 s
  // and failover re-places it (the test_failover.cpp fixture).
  PipelineSpec spec;
  Placement placement;
  for (int i = 0; i < 2; ++i) {
    StageSpec fwd;
    fwd.name = "fwd" + std::to_string(i);
    fwd.factory = [] { return std::make_unique<Relay>(); };
    spec.stages.push_back(std::move(fwd));
    placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<Relay>(/*forward=*/false); };
  spec.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);
  spec.edges = {{0, 2, 0}, {1, 2, 0}};
  for (int i = 0; i < 2; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 100;
    src.total_packets = 1000;
    src.packet_bytes = 64;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    spec.sources.push_back(src);
  }
  SimEngine::Config cfg;
  cfg.failover.enabled = true;
  cfg.failover.replay_buffer_packets = 256;
  SimEngine engine(spec, placement, {}, {}, cfg);
  engine.schedule_node_failure(1, 5.0);
  ASSERT_TRUE(engine.run().is_ok());

  bool saw_detection = false;
  bool saw_recovery = false;
  const obs::TraceEvent* failover_span = nullptr;
  std::size_t heartbeats = 0;
  const std::vector<obs::TraceEvent> events =
      obs::TraceBuffer::global().events();
  for (const obs::TraceEvent& event : events) {
    if (event.component != "fwd0") continue;
    switch (event.kind) {
      case obs::TraceKind::kFailureDetected:
        saw_detection = true;
        break;
      case obs::TraceKind::kRecovered:
        saw_recovery = true;
        break;
      case obs::TraceKind::kFailoverSpan:
        failover_span = &event;
        break;
      case obs::TraceKind::kHeartbeat:
        ++heartbeats;
        break;
      default:
        break;
    }
  }
  EXPECT_TRUE(saw_detection);
  EXPECT_TRUE(saw_recovery);
  ASSERT_NE(failover_span, nullptr);
  // The span covers crash -> recovery and carries the replay accounting the
  // report records for the same incident.
  ASSERT_EQ(engine.report().failures.size(), 1u);
  const auto& failure = engine.report().failures.front();
  EXPECT_DOUBLE_EQ(failover_span->time, failure.failed_at);
  EXPECT_NEAR(failover_span->time + failover_span->duration,
              failure.recovered_at, 1e-9);
  EXPECT_DOUBLE_EQ(failover_span->value_old,
                   static_cast<double>(failure.packets_replayed));
  EXPECT_DOUBLE_EQ(failover_span->value_new,
                   static_cast<double>(failure.packets_lost_retention));
  // Heartbeat lifecycle: at least suspect -> dead -> alive transitions.
  EXPECT_GE(heartbeats, 3u);
}

}  // namespace
}  // namespace gates::core
