#include "gates/obs/trace.hpp"

#include <gtest/gtest.h>

namespace gates::obs {
namespace {

TraceEvent crash_at(double t) {
  return TraceEvent{.time = t, .kind = TraceKind::kCrash, .component = "s"};
}

TEST(TraceBuffer, BoundedDropsNewestAndCounts) {
  TraceBuffer buffer(/*capacity=*/4);
  buffer.set_enabled(true);
  for (int i = 0; i < 6; ++i) buffer.emit(crash_at(i));
  const auto events = buffer.events();
  ASSERT_EQ(events.size(), 4u);
  // Drop-newest: the first `capacity` events survive, later ones are counted.
  EXPECT_DOUBLE_EQ(events.front().time, 0);
  EXPECT_DOUBLE_EQ(events.back().time, 3);
  EXPECT_EQ(buffer.dropped(), 2u);
  const TraceSummary summary = buffer.summary();
  EXPECT_EQ(summary.emitted, 4u);
  EXPECT_EQ(summary.dropped, 2u);
}

TEST(TraceBuffer, SummaryCountsByKind) {
  TraceBuffer buffer;
  buffer.set_enabled(true);
  buffer.emit({.kind = TraceKind::kParamAdjust});
  buffer.emit({.kind = TraceKind::kParamAdjust});
  buffer.emit({.kind = TraceKind::kFailoverSpan});
  const TraceSummary summary = buffer.summary();
  ASSERT_EQ(summary.by_kind.size(), 2u);
  EXPECT_EQ(summary.by_kind[0].first, "param-adjust");
  EXPECT_EQ(summary.by_kind[0].second, 2u);
  EXPECT_EQ(summary.by_kind[1].first, "failover");
  EXPECT_EQ(summary.by_kind[1].second, 1u);
}

TEST(TraceBuffer, ClearPreservesEnabledAndCapacity) {
  TraceBuffer buffer(/*capacity=*/2);
  buffer.set_enabled(true);
  for (int i = 0; i < 3; ++i) buffer.emit(crash_at(i));
  buffer.clear();
  EXPECT_TRUE(buffer.enabled());
  EXPECT_EQ(buffer.capacity(), 2u);
  EXPECT_TRUE(buffer.events().empty());
  EXPECT_EQ(buffer.dropped(), 0u);
  EXPECT_EQ(buffer.summary().emitted, 0u);
}

TEST(TraceBuffer, RaisingCapacityAppliesToSubsequentEmits) {
  TraceBuffer buffer(/*capacity=*/1);
  buffer.set_enabled(true);
  buffer.emit(crash_at(0));
  buffer.emit(crash_at(1));
  EXPECT_EQ(buffer.dropped(), 1u);
  buffer.set_capacity(3);
  buffer.emit(crash_at(2));
  EXPECT_EQ(buffer.events().size(), 2u);
}

TEST(TraceMacro, DisabledCostsNoEventConstruction) {
  TraceBuffer& buffer = TraceBuffer::global();
  const bool was_enabled = buffer.enabled();
  buffer.set_enabled(false);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 1.0;
  };
  GATES_TRACE(.time = expensive(), .kind = TraceKind::kCrash);
  EXPECT_EQ(evaluations, 0);
  buffer.set_enabled(true);
  GATES_TRACE(.time = expensive(), .kind = TraceKind::kCrash);
  EXPECT_EQ(evaluations, 1);
  buffer.set_enabled(was_enabled);
  buffer.clear();
}

TEST(TraceKindNames, AreStable) {
  EXPECT_STREQ(trace_kind_name(TraceKind::kPacketDrop), "packet-drop");
  EXPECT_STREQ(trace_kind_name(TraceKind::kParamAdjust), "param-adjust");
  EXPECT_STREQ(trace_kind_name(TraceKind::kServiceSpan), "service");
  EXPECT_STREQ(trace_kind_name(TraceKind::kHeartbeat), "heartbeat");
  EXPECT_STREQ(trace_kind_name(TraceKind::kFailoverSpan), "failover");
  EXPECT_STREQ(trace_kind_name(TraceKind::kStageFinished), "stage-finished");
}

}  // namespace
}  // namespace gates::obs
