#include "gates/obs/exporters.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gates::obs {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      TraceEvent{.time = 1.5,
                 .duration = 0.25,
                 .kind = TraceKind::kServiceSpan,
                 .component = "A"},
      TraceEvent{.time = 2.0,
                 .kind = TraceKind::kParamAdjust,
                 .component = "A",
                 .detail = "rate",
                 .value_old = 0.5,
                 .value_new = 0.75,
                 .dtilde = 0.4,
                 .phi1 = 0.1},
      TraceEvent{.time = 3.0, .kind = TraceKind::kCrash, .component = "B"},
  };
}

TEST(Jsonl, GoldenLines) {
  EXPECT_EQ(
      to_jsonl(sample_events()),
      "{\"t\":1.5,\"kind\":\"service\",\"component\":\"A\",\"detail\":\"\","
      "\"dur\":0.25,\"value_old\":0,\"value_new\":0,\"dtilde\":0,\"phi1\":0}\n"
      "{\"t\":2,\"kind\":\"param-adjust\",\"component\":\"A\",\"detail\":"
      "\"rate\",\"dur\":0,\"value_old\":0.5,\"value_new\":0.75,\"dtilde\":0.4,"
      "\"phi1\":0.1}\n"
      "{\"t\":3,\"kind\":\"crash\",\"component\":\"B\",\"detail\":\"\","
      "\"dur\":0,\"value_old\":0,\"value_new\":0,\"dtilde\":0,\"phi1\":0}\n");
}

TEST(Jsonl, EscapesDetailText) {
  std::vector<TraceEvent> events = {
      TraceEvent{.kind = TraceKind::kDeploy, .detail = "say \"hi\"\n"}};
  const std::string line = to_jsonl(events);
  EXPECT_NE(line.find("\"detail\":\"say \\\"hi\\\"\\n\""), std::string::npos);
}

TEST(ChromeTrace, RebasesToEarliestEventAndAssignsTracks) {
  const std::string trace = to_chrome_trace(sample_events());
  // Valid top-level shape.
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.back(), '}');
  // Thread-name metadata: tid 0 is the middleware track, components follow.
  EXPECT_NE(trace.find("\"name\":\"middleware\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"A\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"B\""), std::string::npos);
  // Service span: complete event, re-based to ts=0, dur in microseconds.
  EXPECT_NE(trace.find("\"name\":\"service\",\"ph\":\"X\",\"ts\":0"),
            std::string::npos);
  EXPECT_NE(trace.find("\"dur\":250000"), std::string::npos);
  // Parameter adjustment renders as a counter event carrying the new value.
  EXPECT_NE(trace.find("\"name\":\"A/rate\",\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"rate\":0.75}"), std::string::npos);
  // Crash renders as a thread-scoped instant at (3.0 - 1.5) s = 1.5e6 us.
  EXPECT_NE(trace.find("\"name\":\"crash\",\"ph\":\"i\",\"ts\":1500000"),
            std::string::npos);
}

TEST(ChromeTrace, EmptyInputIsStillValidJson) {
  const std::string trace = to_chrome_trace({});
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // Only the middleware metadata track, no data events.
  EXPECT_NE(trace.find("\"name\":\"middleware\""), std::string::npos);
}

TEST(ChromeTrace, FailoverSpanCarriesReplayAccounting) {
  std::vector<TraceEvent> events = {
      TraceEvent{.time = 10,
                 .duration = 2,
                 .kind = TraceKind::kFailoverSpan,
                 .component = "join",
                 .detail = "node 3",
                 .value_old = 17,
                 .value_new = 4}};
  const std::string trace = to_chrome_trace(events);
  EXPECT_NE(trace.find("\"name\":\"failover\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"failover\""), std::string::npos);
  EXPECT_NE(
      trace.find(
          "\"args\":{\"replayed\":17,\"lost\":4,\"detail\":\"node 3\"}"),
      std::string::npos);
}

TEST(Jsonl, CausalFieldsAppearOnlyWhenSet) {
  std::vector<TraceEvent> events = {
      TraceEvent{.time = 1.0,
                 .duration = 0.5,
                 .kind = TraceKind::kPacketHop,
                 .component = "A",
                 .detail = "service",
                 .trace_id = 42,
                 .hop = 3},
      TraceEvent{.time = 2.0,
                 .kind = TraceKind::kReplicaScaleUp,
                 .component = "A",
                 .annotation = "inbox-wait=1s dominant=inbox-wait"},
  };
  const std::string lines = to_jsonl(events);
  EXPECT_NE(lines.find("\"kind\":\"packet-hop\""), std::string::npos);
  EXPECT_NE(lines.find("\"trace\":42,\"hop\":3"), std::string::npos);
  EXPECT_NE(
      lines.find("\"annotation\":\"inbox-wait=1s dominant=inbox-wait\""),
      std::string::npos);
  // Legacy events keep their exact golden shape: no trace/hop/annotation
  // keys ever appear on unsampled, unannotated lines.
  const std::string legacy = to_jsonl(sample_events());
  EXPECT_EQ(legacy.find("\"trace\""), std::string::npos);
  EXPECT_EQ(legacy.find("\"hop\""), std::string::npos);
  EXPECT_EQ(legacy.find("\"annotation\""), std::string::npos);
}

TEST(ChromeTrace, PacketHopsRenderAsPhaseSlicesWithCausalFlow) {
  // One sampled packet's journey: source emit (hop 0) -> link transit ->
  // service at stage B (hop 1) — three components, three tracks.
  std::vector<TraceEvent> events = {
      TraceEvent{.time = 1.0,
                 .kind = TraceKind::kPacketHop,
                 .component = "source:0",
                 .detail = "emit",
                 .trace_id = 7,
                 .hop = 0},
      TraceEvent{.time = 1.0,
                 .duration = 0.05,
                 .kind = TraceKind::kPacketHop,
                 .component = "ingress@0",
                 .detail = "link",
                 .trace_id = 7,
                 .hop = 0},
      TraceEvent{.time = 1.05,
                 .duration = 0.01,
                 .kind = TraceKind::kPacketHop,
                 .component = "B",
                 .detail = "service",
                 .trace_id = 7,
                 .hop = 1},
  };
  const std::string trace = to_chrome_trace(events);
  // Slices are named by the phase (detail), complete events in cat "packet",
  // carrying the causal identity in args.
  EXPECT_NE(trace.find("\"name\":\"emit\",\"ph\":\"X\",\"ts\":0"),
            std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"link\",\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"service\",\"ph\":\"X\",\"ts\":50000"),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"packet\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"trace\":7,\"hop\":1}"), std::string::npos);
  // Flow events stitch the hops across tracks: one "s"tart at the source
  // hop, "t" steps downstream, all sharing id = trace id.
  EXPECT_NE(trace.find("\"cat\":\"packet-flow\",\"ph\":\"s\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"packet-flow\",\"ph\":\"t\""),
            std::string::npos);
  std::size_t flow_ids = 0;
  for (std::size_t pos = trace.find("\"id\":7"); pos != std::string::npos;
       pos = trace.find("\"id\":7", pos + 1)) {
    ++flow_ids;
  }
  EXPECT_EQ(flow_ids, 3u);
  // The three components land on three distinct tracks (cross-thread flow):
  // thread-name metadata exists for each.
  EXPECT_NE(trace.find("\"name\":\"source:0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"ingress@0\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"B\""), std::string::npos);
}

TEST(ChromeTrace, AnnotatedInstantCarriesAttributionSnapshot) {
  std::vector<TraceEvent> events = {
      TraceEvent{.time = 4.0,
                 .kind = TraceKind::kReplicaScaleUp,
                 .component = "join",
                 .value_old = 2,
                 .value_new = 3,
                 .annotation = "service=2s dominant=service"}};
  const std::string trace = to_chrome_trace(events);
  EXPECT_NE(trace.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(trace.find("\"annotation\":\"service=2s dominant=service\""),
            std::string::npos);
}

TEST(WriteTextFile, RoundTripsAndReportsBadPath) {
  const std::string path = ::testing::TempDir() + "gates_obs_export_test.txt";
  ASSERT_TRUE(write_text_file(path, "payload\n").is_ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "payload\n");
  std::remove(path.c_str());
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x/y.txt", "z").is_ok());
}

}  // namespace
}  // namespace gates::obs
