#include "gates/obs/exporters.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace gates::obs {
namespace {

std::vector<TraceEvent> sample_events() {
  return {
      TraceEvent{.time = 1.5,
                 .duration = 0.25,
                 .kind = TraceKind::kServiceSpan,
                 .component = "A"},
      TraceEvent{.time = 2.0,
                 .kind = TraceKind::kParamAdjust,
                 .component = "A",
                 .detail = "rate",
                 .value_old = 0.5,
                 .value_new = 0.75,
                 .dtilde = 0.4,
                 .phi1 = 0.1},
      TraceEvent{.time = 3.0, .kind = TraceKind::kCrash, .component = "B"},
  };
}

TEST(Jsonl, GoldenLines) {
  EXPECT_EQ(
      to_jsonl(sample_events()),
      "{\"t\":1.5,\"kind\":\"service\",\"component\":\"A\",\"detail\":\"\","
      "\"dur\":0.25,\"value_old\":0,\"value_new\":0,\"dtilde\":0,\"phi1\":0}\n"
      "{\"t\":2,\"kind\":\"param-adjust\",\"component\":\"A\",\"detail\":"
      "\"rate\",\"dur\":0,\"value_old\":0.5,\"value_new\":0.75,\"dtilde\":0.4,"
      "\"phi1\":0.1}\n"
      "{\"t\":3,\"kind\":\"crash\",\"component\":\"B\",\"detail\":\"\","
      "\"dur\":0,\"value_old\":0,\"value_new\":0,\"dtilde\":0,\"phi1\":0}\n");
}

TEST(Jsonl, EscapesDetailText) {
  std::vector<TraceEvent> events = {
      TraceEvent{.kind = TraceKind::kDeploy, .detail = "say \"hi\"\n"}};
  const std::string line = to_jsonl(events);
  EXPECT_NE(line.find("\"detail\":\"say \\\"hi\\\"\\n\""), std::string::npos);
}

TEST(ChromeTrace, RebasesToEarliestEventAndAssignsTracks) {
  const std::string trace = to_chrome_trace(sample_events());
  // Valid top-level shape.
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  EXPECT_EQ(trace.back(), '}');
  // Thread-name metadata: tid 0 is the middleware track, components follow.
  EXPECT_NE(trace.find("\"name\":\"middleware\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"A\""), std::string::npos);
  EXPECT_NE(trace.find("\"name\":\"B\""), std::string::npos);
  // Service span: complete event, re-based to ts=0, dur in microseconds.
  EXPECT_NE(trace.find("\"name\":\"service\",\"ph\":\"X\",\"ts\":0"),
            std::string::npos);
  EXPECT_NE(trace.find("\"dur\":250000"), std::string::npos);
  // Parameter adjustment renders as a counter event carrying the new value.
  EXPECT_NE(trace.find("\"name\":\"A/rate\",\"ph\":\"C\""), std::string::npos);
  EXPECT_NE(trace.find("\"args\":{\"rate\":0.75}"), std::string::npos);
  // Crash renders as a thread-scoped instant at (3.0 - 1.5) s = 1.5e6 us.
  EXPECT_NE(trace.find("\"name\":\"crash\",\"ph\":\"i\",\"ts\":1500000"),
            std::string::npos);
}

TEST(ChromeTrace, EmptyInputIsStillValidJson) {
  const std::string trace = to_chrome_trace({});
  EXPECT_EQ(trace.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["), 0u);
  // Only the middleware metadata track, no data events.
  EXPECT_NE(trace.find("\"name\":\"middleware\""), std::string::npos);
}

TEST(ChromeTrace, FailoverSpanCarriesReplayAccounting) {
  std::vector<TraceEvent> events = {
      TraceEvent{.time = 10,
                 .duration = 2,
                 .kind = TraceKind::kFailoverSpan,
                 .component = "join",
                 .detail = "node 3",
                 .value_old = 17,
                 .value_new = 4}};
  const std::string trace = to_chrome_trace(events);
  EXPECT_NE(trace.find("\"name\":\"failover\",\"ph\":\"X\""),
            std::string::npos);
  EXPECT_NE(trace.find("\"cat\":\"failover\""), std::string::npos);
  EXPECT_NE(
      trace.find(
          "\"args\":{\"replayed\":17,\"lost\":4,\"detail\":\"node 3\"}"),
      std::string::npos);
}

TEST(WriteTextFile, RoundTripsAndReportsBadPath) {
  const std::string path = ::testing::TempDir() + "gates_obs_export_test.txt";
  ASSERT_TRUE(write_text_file(path, "payload\n").is_ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "payload\n");
  std::remove(path.c_str());
  EXPECT_FALSE(write_text_file("/nonexistent-dir/x/y.txt", "z").is_ok());
}

}  // namespace
}  // namespace gates::obs
