#include "gates/net/topology.hpp"

#include <gtest/gtest.h>

namespace gates::net {
namespace {

TEST(Topology, DefaultLinkApplies) {
  Topology t;
  t.set_default_link({5000, 0.1});
  EXPECT_DOUBLE_EQ(t.between(1, 2).bandwidth, 5000);
  EXPECT_DOUBLE_EQ(t.between(1, 2).latency, 0.1);
}

TEST(Topology, PairOverrideIsDirected) {
  Topology t;
  t.set_default_link({1000, 0});
  t.set_pair(1, 2, {99, 0.5});
  EXPECT_DOUBLE_EQ(t.between(1, 2).bandwidth, 99);
  EXPECT_DOUBLE_EQ(t.between(2, 1).bandwidth, 1000);  // reverse unaffected
}

TEST(Topology, SharedIngressLookup) {
  Topology t;
  EXPECT_FALSE(t.shared_ingress(3).has_value());
  t.set_shared_ingress(3, {100e3, 0});
  ASSERT_TRUE(t.shared_ingress(3).has_value());
  EXPECT_DOUBLE_EQ(t.shared_ingress(3)->bandwidth, 100e3);
  EXPECT_FALSE(t.shared_ingress(4).has_value());
}

TEST(Topology, LoopbackIsEffectivelyInfinite) {
  EXPECT_GE(Topology::loopback().bandwidth, 1e12);
  EXPECT_DOUBLE_EQ(Topology::loopback().latency, 0);
}

}  // namespace
}  // namespace gates::net
