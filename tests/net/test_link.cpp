#include "gates/net/link.hpp"

#include <gtest/gtest.h>

#include <deque>

namespace gates::net {
namespace {

/// Sink recording deliveries, with a switchable capacity for backpressure
/// tests. Refusals leave the message untouched per the sink contract.
class RecordingSink : public MessageSink {
 public:
  explicit RecordingSink(std::size_t capacity = SIZE_MAX)
      : capacity_(capacity) {}

  bool try_deliver(SimMessage&& msg) override {
    if (delivered_.size() >= capacity_) return false;
    delivered_.push_back(std::move(msg));
    return true;
  }

  /// Consumes one delivered message, then lets the link resume.
  void consume_one(SimLink& link) {
    if (!delivered_.empty()) delivered_.pop_front();
    ++capacity_headroom_;
    link.notify_space();
  }

  void raise_capacity(std::size_t capacity, SimLink& link) {
    capacity_ = capacity;
    link.notify_space();
  }

  std::deque<SimMessage> delivered_;
  std::size_t capacity_;
  std::size_t capacity_headroom_ = 0;
};

SimMessage make_msg(std::size_t bytes, MessageSink* sink) {
  SimMessage msg;
  msg.wire_bytes = bytes;
  msg.sink = sink;
  msg.payload = 0;
  return msg;
}

TEST(SimLink, TransmissionTimeMatchesBandwidth) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1000.0, 0.0, SIZE_MAX});
  ASSERT_TRUE(link.send(make_msg(500, &sink)));
  sim.run();
  ASSERT_EQ(sink.delivered_.size(), 1u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.5);  // 500 B at 1000 B/s
}

TEST(SimLink, FifoSerialization) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1000.0, 0.0, SIZE_MAX});
  for (std::size_t bytes : {100u, 200u, 300u}) {
    ASSERT_TRUE(link.send(make_msg(bytes, &sink)));
  }
  sim.run();
  ASSERT_EQ(sink.delivered_.size(), 3u);
  EXPECT_EQ(sink.delivered_[0].wire_bytes, 100u);
  EXPECT_EQ(sink.delivered_[2].wire_bytes, 300u);
  EXPECT_DOUBLE_EQ(sim.now(), 0.6);  // serialized back to back
}

TEST(SimLink, LatencyAddsToDelivery) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1000.0, 0.25, SIZE_MAX});
  ASSERT_TRUE(link.send(make_msg(500, &sink)));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 0.75);
}

TEST(SimLink, LatencyPipelinesWithNextTransmission) {
  sim::Simulation sim;
  std::vector<double> arrival_times;
  class TimeSink : public MessageSink {
   public:
    TimeSink(sim::Simulation& sim, std::vector<double>& times)
        : sim_(sim), times_(times) {}
    bool try_deliver(SimMessage&&) override {
      times_.push_back(sim_.now());
      return true;
    }
    sim::Simulation& sim_;
    std::vector<double>& times_;
  } sink(sim, arrival_times);

  SimLink link(sim, {"l", 1000.0, 1.0, SIZE_MAX});
  link.send(make_msg(100, &sink));
  link.send(make_msg(100, &sink));
  sim.run();
  ASSERT_EQ(arrival_times.size(), 2u);
  // Transmissions at 0.1 and 0.2; arrivals at 1.1 and 1.2 — propagation
  // overlaps the second transmission instead of serializing after it.
  EXPECT_DOUBLE_EQ(arrival_times[0], 1.1);
  EXPECT_DOUBLE_EQ(arrival_times[1], 1.2);
}

TEST(SimLink, SharedSendersInterleaveFifo) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"shared", 100.0, 0.0, SIZE_MAX});
  // Two "senders" both push at t=0; the shared trunk serializes them.
  link.send(make_msg(100, &sink));
  link.send(make_msg(100, &sink));
  sim.run();
  EXPECT_DOUBLE_EQ(sim.now(), 2.0);
  EXPECT_EQ(link.stats().messages_delivered, 2u);
}

TEST(SimLink, BackpressureStallsAndResumes) {
  sim::Simulation sim;
  RecordingSink sink(1);  // room for one message only
  SimLink link(sim, {"l", 1000.0, 0.0, SIZE_MAX});
  link.send(make_msg(100, &sink));
  link.send(make_msg(100, &sink));
  link.send(make_msg(100, &sink));
  sim.run_until(0.5);
  // First delivered, the rest stuck behind the full receiver.
  EXPECT_EQ(sink.delivered_.size(), 1u);
  EXPECT_TRUE(link.stalled());

  // The receiver frees space at t = 1.0; the stall window [0.2, 1.0] must
  // land in stalled_time.
  sim.schedule_at(1.0, [&] { sink.raise_capacity(SIZE_MAX, link); });
  sim.run();
  EXPECT_EQ(sink.delivered_.size(), 3u);
  EXPECT_FALSE(link.stalled());
  EXPECT_NEAR(link.stats().stalled_time, 0.8, 1e-9);
}

TEST(SimLink, QueueBytesTracksOutbound) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1.0, 0.0, SIZE_MAX});  // very slow
  link.send(make_msg(10, &sink));
  link.send(make_msg(20, &sink));
  // First message starts transmitting immediately (leaves the queue count),
  // second waits.
  EXPECT_EQ(link.queue_length(), 2u);
  EXPECT_EQ(link.queue_bytes(), 30u);
  EXPECT_DOUBLE_EQ(link.backlog_seconds(), 30.0);
}

TEST(SimLink, MaxQueueRejectsExcess) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1.0, 0.0, 2});
  EXPECT_TRUE(link.send(make_msg(10, &sink)));
  EXPECT_TRUE(link.send(make_msg(10, &sink)));
  EXPECT_FALSE(link.send(make_msg(10, &sink)));
  EXPECT_EQ(link.stats().messages_rejected, 1u);
}

TEST(SimLink, DrainListenersFirePerCompletedTransmission) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1000.0, 0.0, SIZE_MAX});
  int drained = 0;
  link.add_drain_listener([&] { ++drained; });
  link.send(make_msg(100, &sink));
  link.send(make_msg(100, &sink));
  sim.run();
  EXPECT_EQ(drained, 2);
}

TEST(SimLink, StatsAccumulate) {
  sim::Simulation sim;
  RecordingSink sink;
  SimLink link(sim, {"l", 1000.0, 0.0, SIZE_MAX});
  link.send(make_msg(400, &sink));
  link.send(make_msg(600, &sink));
  sim.run();
  EXPECT_EQ(link.stats().messages_sent, 2u);
  EXPECT_EQ(link.stats().messages_delivered, 2u);
  EXPECT_EQ(link.stats().bytes_delivered, 1000u);
  EXPECT_DOUBLE_EQ(link.stats().busy_time, 1.0);
  EXPECT_NEAR(link.utilization(), 1.0, 1e-9);
  EXPECT_TRUE(link.idle());
}

TEST(SimLink, InvalidConfigRejected) {
  sim::Simulation sim;
  EXPECT_THROW(SimLink(sim, {"l", 0.0, 0.0, SIZE_MAX}), std::logic_error);
  EXPECT_THROW(SimLink(sim, {"l", 1.0, -1.0, SIZE_MAX}), std::logic_error);
}

TEST(SimLink, MessageWithoutSinkIsAProgrammingError) {
  sim::Simulation sim;
  SimLink link(sim, {"l", 1.0, 0.0, SIZE_MAX});
  SimMessage msg;
  msg.wire_bytes = 1;
  EXPECT_THROW(link.send(std::move(msg)), std::logic_error);
}

}  // namespace
}  // namespace gates::net
