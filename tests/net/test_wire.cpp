// Wire framing: encode/decode round trips, byte-level goldens pinning the
// on-wire layout, incremental reassembly at every split offset, and a
// deterministic malformed/truncated-input fuzz (run under ASan/UBSan in CI:
// no decode path may read out of bounds or crash on hostile bytes).
#include "gates/net/wire.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <optional>
#include <vector>

namespace gates::net::wire {
namespace {

ByteBuffer payload_of(const char* text) { return ByteBuffer::from_string(text); }

std::vector<std::uint8_t> gather_to_bytes(const iovec* iovs, int count) {
  std::vector<std::uint8_t> out;
  for (int i = 0; i < count; ++i) {
    const auto* p = static_cast<const std::uint8_t*>(iovs[i].iov_base);
    out.insert(out.end(), p, p + iovs[i].iov_len);
  }
  return out;
}

std::vector<std::uint8_t> encode_batch(std::uint32_t channel,
                                       const std::vector<WirePacket>& batch) {
  DataFrameEncoder enc;
  enc.begin(channel);
  for (const WirePacket& wp : batch) enc.add(wp);
  int n = 0;
  const iovec* iovs = enc.finish(&n);
  std::vector<std::uint8_t> bytes = gather_to_bytes(iovs, n);
  EXPECT_EQ(bytes.size(), enc.total_bytes());
  return bytes;
}

// -- header ------------------------------------------------------------------

TEST(WireHeader, RoundTripsEveryField) {
  FrameHeader h;
  h.type = FrameType::kAck;
  h.flags = 0xBEEF;
  h.channel = 7;
  h.count = 3;
  h.base_seq = 0x1122334455667788ull;
  h.body_bytes = 24;
  std::uint8_t buf[kHeaderBytes];
  encode_header(h, buf);
  FrameHeader d;
  ASSERT_TRUE(decode_header(buf, &d).is_ok());
  EXPECT_EQ(d.version, kVersion);
  EXPECT_EQ(d.type, FrameType::kAck);
  EXPECT_EQ(d.flags, 0xBEEF);
  EXPECT_EQ(d.channel, 7u);
  EXPECT_EQ(d.count, 3u);
  EXPECT_EQ(d.base_seq, 0x1122334455667788ull);
  EXPECT_EQ(d.body_bytes, 24u);
}

/// Byte-level golden: the layout is a cross-process ABI — any change here
/// must bump kVersion, not silently shift fields.
TEST(WireHeader, GoldenBytes) {
  FrameHeader h;
  h.type = FrameType::kEos;
  h.flags = 0x0102;
  h.channel = 0x0A0B0C0D;
  h.count = 0x01020304;
  h.base_seq = 0x1112131415161718ull;
  h.body_bytes = 0x21222324;
  std::uint8_t buf[kHeaderBytes];
  encode_header(h, buf);
  const std::uint8_t golden[kHeaderBytes] = {
      0x47, 0x54, 0x54, 0x53,              // magic "GTTS"
      0x01,                                // version
      0x03,                                // type = kEos
      0x02, 0x01,                          // flags LE
      0x0D, 0x0C, 0x0B, 0x0A,              // channel LE
      0x04, 0x03, 0x02, 0x01,              // count LE
      0x18, 0x17, 0x16, 0x15, 0x14, 0x13, 0x12, 0x11,  // base_seq LE
      0x24, 0x23, 0x22, 0x21,              // body_bytes LE
      0x00, 0x00, 0x00, 0x00,              // reserved
  };
  EXPECT_EQ(std::memcmp(buf, golden, kHeaderBytes), 0);
}

TEST(WireHeader, RejectsBadMagicVersionTypeAndCaps) {
  FrameHeader h;
  std::uint8_t buf[kHeaderBytes];
  encode_header(h, buf);
  FrameHeader d;

  std::uint8_t bad[kHeaderBytes];
  std::memcpy(bad, buf, kHeaderBytes);
  bad[0] ^= 0xFF;
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // magic

  std::memcpy(bad, buf, kHeaderBytes);
  bad[4] = 99;
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // version

  std::memcpy(bad, buf, kHeaderBytes);
  bad[5] = 0;
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // type low
  bad[5] = 8;
  EXPECT_TRUE(decode_header(bad, &d).is_ok());   // CHECKPOINT: highest valid
  bad[5] = 9;
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // type high

  h = FrameHeader{};
  h.body_bytes = kMaxFrameBody + 1;
  encode_header(h, bad);
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // body cap

  h = FrameHeader{};
  h.count = kMaxBatchCount + 1;
  encode_header(h, bad);
  EXPECT_FALSE(decode_header(bad, &d).is_ok());  // count cap
}

// -- data frames -------------------------------------------------------------

TEST(WireData, BatchRoundTripsThroughEncoderAndDecoder) {
  std::vector<WirePacket> batch;
  for (std::uint64_t i = 0; i < 5; ++i) {
    WirePacket wp;
    wp.seq = 100 + i;
    wp.stream = static_cast<std::uint32_t>(i);
    wp.kind = 0;
    wp.records = static_cast<std::uint32_t>(1 + i);
    wp.payload = ByteBuffer::uninitialized(16 * (i + 1));
    for (std::size_t b = 0; b < wp.payload.size(); ++b) {
      wp.payload.data()[b] = static_cast<std::uint8_t>(i * 37 + b);
    }
    batch.push_back(std::move(wp));
  }
  const std::vector<std::uint8_t> bytes = encode_batch(9, batch);

  FrameHeader h;
  ASSERT_TRUE(decode_header(bytes.data(), &h).is_ok());
  EXPECT_EQ(h.type, FrameType::kData);
  EXPECT_EQ(h.channel, 9u);
  EXPECT_EQ(h.count, 5u);
  EXPECT_EQ(h.base_seq, 100u);
  ASSERT_EQ(bytes.size(), kHeaderBytes + h.body_bytes);

  std::vector<WirePacket> decoded;
  ASSERT_TRUE(decode_data_body(bytes.data() + kHeaderBytes, h.body_bytes,
                               h.count, &decoded)
                  .is_ok());
  ASSERT_EQ(decoded.size(), 5u);
  for (std::uint64_t i = 0; i < 5; ++i) {
    EXPECT_EQ(decoded[i].seq, 100 + i);
    EXPECT_EQ(decoded[i].stream, i);
    EXPECT_EQ(decoded[i].records, 1 + i);
    ASSERT_EQ(decoded[i].payload.size(), 16 * (i + 1));
    EXPECT_EQ(std::memcmp(decoded[i].payload.data(), batch[i].payload.data(),
                          decoded[i].payload.size()),
              0);
    // The decode landed in a fresh arena block, not an alias of the source.
    EXPECT_FALSE(decoded[i].payload.shares_storage(batch[i].payload));
  }
}

TEST(WireData, EncoderAliasesPayloadsInsteadOfCopying) {
  WirePacket wp;
  wp.seq = 1;
  wp.payload = payload_of("zero-copy payload bytes");
  DataFrameEncoder enc;
  enc.begin(0);
  enc.add(wp);
  int n = 0;
  const iovec* iovs = enc.finish(&n);
  ASSERT_EQ(n, 2);  // staging + one payload span
  EXPECT_EQ(iovs[1].iov_base, static_cast<const void*>(wp.payload.data()));
  EXPECT_EQ(iovs[1].iov_len, wp.payload.size());
}

TEST(WireData, EmptyBatchAndEmptyPayloadsAreValid) {
  const std::vector<std::uint8_t> empty = encode_batch(3, {});
  FrameHeader h;
  ASSERT_TRUE(decode_header(empty.data(), &h).is_ok());
  EXPECT_EQ(h.count, 0u);
  EXPECT_EQ(h.body_bytes, 0u);

  WirePacket no_payload;
  no_payload.seq = 42;
  const std::vector<std::uint8_t> bytes = encode_batch(3, {no_payload});
  ASSERT_TRUE(decode_header(bytes.data(), &h).is_ok());
  std::vector<WirePacket> decoded;
  ASSERT_TRUE(decode_data_body(bytes.data() + kHeaderBytes, h.body_bytes,
                               h.count, &decoded)
                  .is_ok());
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].seq, 42u);
  EXPECT_TRUE(decoded[0].payload.empty());
}

TEST(WireData, RejectsTruncatedAndOversizedBodies) {
  WirePacket wp;
  wp.seq = 7;
  wp.payload = payload_of("0123456789abcdef");
  const std::vector<std::uint8_t> bytes = encode_batch(0, {wp});
  FrameHeader h;
  ASSERT_TRUE(decode_header(bytes.data(), &h).is_ok());
  const std::uint8_t* body = bytes.data() + kHeaderBytes;
  std::vector<WirePacket> out;
  // Truncated before the metadata records.
  EXPECT_FALSE(decode_data_body(body, kMetaBytes - 1, 1, &out).is_ok());
  // Truncated inside the payload.
  EXPECT_FALSE(decode_data_body(body, h.body_bytes - 1, 1, &out).is_ok());
  // Trailing garbage after the payloads.
  std::vector<std::uint8_t> longer(body, body + h.body_bytes);
  longer.push_back(0xAA);
  EXPECT_FALSE(decode_data_body(longer.data(), longer.size(), 1, &out).is_ok());
}

// -- ack / control / rpc frames ----------------------------------------------

TEST(WireAck, RoundTripsAndValidatesSize) {
  const std::vector<std::uint64_t> seqs{1, 5, 0xFFFFFFFFFFFFFFFFull};
  std::vector<std::uint8_t> bytes;
  encode_ack_frame(4, seqs, &bytes);
  FrameHeader h;
  ASSERT_TRUE(decode_header(bytes.data(), &h).is_ok());
  EXPECT_EQ(h.type, FrameType::kAck);
  EXPECT_EQ(h.count, 3u);
  std::vector<std::uint64_t> out;
  ASSERT_TRUE(decode_ack_body(bytes.data() + kHeaderBytes, h.body_bytes,
                              h.count, &out)
                  .is_ok());
  EXPECT_EQ(out, seqs);
  // count/body mismatch is rejected.
  out.clear();
  EXPECT_FALSE(decode_ack_body(bytes.data() + kHeaderBytes, h.body_bytes,
                               h.count + 1, &out)
                   .is_ok());
}

TEST(WireRpc, RoundTripsMethodAndBody) {
  std::vector<std::uint8_t> bytes;
  encode_rpc_frame(FrameType::kRpcRequest, 0, 77, "deploy",
                   "<deploy a=\"1\"/>", &bytes);
  FrameHeader h;
  ASSERT_TRUE(decode_header(bytes.data(), &h).is_ok());
  EXPECT_EQ(h.type, FrameType::kRpcRequest);
  EXPECT_EQ(h.base_seq, 77u);
  std::string_view method, body;
  ASSERT_TRUE(
      decode_rpc_body(bytes.data() + kHeaderBytes, h.body_bytes, &method, &body)
          .is_ok());
  EXPECT_EQ(method, "deploy");
  EXPECT_EQ(body, "<deploy a=\"1\"/>");
}

TEST(WireRpc, RejectsShortAndLyingBodies) {
  std::string_view method, body;
  const std::uint8_t short_body[3] = {1, 2, 3};
  EXPECT_FALSE(decode_rpc_body(short_body, 3, &method, &body).is_ok());
  // Method length claims more bytes than the body holds.
  std::uint8_t lying[8] = {0xFF, 0xFF, 0xFF, 0x7F, 'a', 'b', 'c', 'd'};
  EXPECT_FALSE(decode_rpc_body(lying, 8, &method, &body).is_ok());
}

// -- incremental reassembly --------------------------------------------------

/// Three frames fed through the assembler split at EVERY byte offset: the
/// reassembled stream must be identical regardless of how the transport
/// fragments it.
TEST(WireAssembler, ReassemblesAcrossEverySplitOffset) {
  std::vector<std::uint8_t> stream;
  {
    WirePacket wp;
    wp.seq = 9;
    wp.payload = payload_of("first frame payload");
    const auto data = encode_batch(2, {wp});
    stream.insert(stream.end(), data.begin(), data.end());
    std::vector<std::uint8_t> ack;
    encode_ack_frame(2, {9}, &ack);
    stream.insert(stream.end(), ack.begin(), ack.end());
    std::vector<std::uint8_t> eos;
    encode_control_frame(FrameType::kEos, 2, 10, &eos);
    stream.insert(stream.end(), eos.begin(), eos.end());
  }
  for (std::size_t split = 0; split <= stream.size(); ++split) {
    FrameAssembler fa;
    ASSERT_TRUE(fa.feed(stream.data(), split).is_ok());
    std::vector<Frame> frames;
    for (;;) {
      auto f = fa.next();
      ASSERT_TRUE(f.ok()) << "split=" << split;
      if (!f.value().has_value()) break;
      frames.push_back(std::move(**f));
    }
    ASSERT_TRUE(fa.feed(stream.data() + split, stream.size() - split).is_ok());
    for (;;) {
      auto f = fa.next();
      ASSERT_TRUE(f.ok()) << "split=" << split;
      if (!f.value().has_value()) break;
      frames.push_back(std::move(**f));
    }
    ASSERT_EQ(frames.size(), 3u) << "split=" << split;
    EXPECT_EQ(frames[0].header.type, FrameType::kData);
    EXPECT_EQ(frames[1].header.type, FrameType::kAck);
    EXPECT_EQ(frames[2].header.type, FrameType::kEos);
    EXPECT_EQ(frames[2].header.base_seq, 10u);
    std::vector<WirePacket> decoded;
    ASSERT_TRUE(decode_data_body(frames[0].body.data(),
                                 frames[0].body.size(), frames[0].header.count,
                                 &decoded)
                    .is_ok());
    ASSERT_EQ(decoded.size(), 1u);
    EXPECT_EQ(decoded[0].seq, 9u);
  }
}

TEST(WireAssembler, PoisonsOnProtocolViolationAndStaysPoisoned) {
  FrameAssembler fa;
  std::vector<std::uint8_t> junk(kHeaderBytes, 0x5A);
  ASSERT_TRUE(fa.feed(junk.data(), junk.size()).is_ok());
  auto f = fa.next();
  EXPECT_FALSE(f.ok());
  // Every later call keeps failing: no resync on an untrusted stream.
  EXPECT_FALSE(fa.next().ok());
  EXPECT_FALSE(fa.feed(junk.data(), 1).is_ok());
}

// -- deterministic fuzz ------------------------------------------------------

/// Splitmix-style LCG: deterministic across platforms, so a CI failure is
/// reproducible from the seed in the assertion message.
struct Lcg {
  std::uint64_t s;
  std::uint64_t next() {
    s = s * 6364136223846793005ull + 1442695040888963407ull;
    return s >> 17;
  }
};

/// Decoders must reject or accept — never crash or over-read — arbitrary
/// mutations of valid frames and pure noise (ASan/UBSan jobs make memory
/// violations fail loudly).
TEST(WireFuzz, MutatedFramesNeverCrashDecoders) {
  WirePacket wp;
  wp.seq = 3;
  wp.records = 2;
  wp.payload = payload_of("payload to be mangled by the fuzzer");
  const std::vector<std::uint8_t> valid = encode_batch(1, {wp});

  Lcg rng{0x9E3779B97F4A7C15ull};
  for (int iter = 0; iter < 2000; ++iter) {
    std::vector<std::uint8_t> bytes = valid;
    // 1-4 random byte mutations.
    const int mutations = 1 + static_cast<int>(rng.next() % 4);
    for (int m = 0; m < mutations; ++m) {
      bytes[rng.next() % bytes.size()] =
          static_cast<std::uint8_t>(rng.next() & 0xFF);
    }
    // Random truncation half the time.
    if ((rng.next() & 1) != 0) bytes.resize(rng.next() % (bytes.size() + 1));

    FrameAssembler fa;
    if (!fa.feed(bytes.data(), bytes.size()).is_ok()) continue;
    for (;;) {
      auto f = fa.next();
      if (!f.ok() || !f.value().has_value()) break;
      const Frame& frame = **f;
      // Whatever frame the header claims, run the matching body decoder.
      std::vector<WirePacket> packets;
      std::vector<std::uint64_t> acks;
      std::string_view method, body;
      switch (frame.header.type) {
        case FrameType::kData:
          (void)decode_data_body(frame.body.data(), frame.body.size(),
                                 frame.header.count, &packets);
          break;
        case FrameType::kAck:
          (void)decode_ack_body(frame.body.data(), frame.body.size(),
                                frame.header.count, &acks);
          break;
        case FrameType::kRpcRequest:
        case FrameType::kRpcResponse:
          (void)decode_rpc_body(frame.body.data(), frame.body.size(), &method,
                                &body);
          break;
        default:
          break;
      }
    }
  }
}

TEST(WireFuzz, PureNoiseStreamsNeverCrashAssembler) {
  Lcg rng{0xD1B54A32D192ED03ull};
  for (int iter = 0; iter < 500; ++iter) {
    std::vector<std::uint8_t> noise(rng.next() % 512);
    for (auto& b : noise) b = static_cast<std::uint8_t>(rng.next() & 0xFF);
    // Occasionally lead with valid magic so the fuzz reaches deeper fields.
    if (noise.size() >= 4 && (rng.next() & 1) != 0) {
      noise[0] = 0x47;
      noise[1] = 0x54;
      noise[2] = 0x54;
      noise[3] = 0x53;
    }
    FrameAssembler fa;
    std::size_t fed = 0;
    while (fed < noise.size()) {
      const std::size_t chunk =
          std::min<std::size_t>(1 + rng.next() % 64, noise.size() - fed);
      if (!fa.feed(noise.data() + fed, chunk).is_ok()) break;
      fed += chunk;
      auto f = fa.next();
      if (!f.ok()) break;
    }
  }
}

}  // namespace
}  // namespace gates::net::wire
