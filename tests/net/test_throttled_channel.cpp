#include "gates/net/throttled_channel.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

namespace gates::net {
namespace {

TEST(ThrottledChannel, PassesItemsInOrder) {
  ThrottledChannel<int> ch({1e9, 8192, 16});
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(ch.push(i, 10));
  for (int i = 0; i < 5; ++i) EXPECT_EQ(ch.pop().value(), i);
}

TEST(ThrottledChannel, CloseUnblocksPop) {
  ThrottledChannel<int> ch({1e9, 8192, 4});
  std::thread t([&] { EXPECT_FALSE(ch.pop().has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ch.close();
  t.join();
}

TEST(ThrottledChannel, ThrottlesToConfiguredBandwidth) {
  // 100 KB/s with a small burst; pushing 30 KB beyond the burst should take
  // roughly 0.25+ seconds. Loose bounds: wall-clock test.
  ThrottledChannel<int> ch({100e3, 1e3, 1024});
  const auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(ch.push(i, 1000));
  const double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  EXPECT_GT(elapsed, 0.15);
  EXPECT_LT(elapsed, 2.0);
  EXPECT_EQ(ch.size(), 30u);
}

TEST(ThrottledChannel, PushOrDropDropsWhenFull) {
  ThrottledChannel<int> ch({1e9, 8192, 2});
  EXPECT_TRUE(ch.push_or_drop(1, 1));
  EXPECT_TRUE(ch.push_or_drop(2, 1));
  EXPECT_FALSE(ch.push_or_drop(3, 1));
  EXPECT_EQ(ch.size(), 2u);
}

TEST(ThrottledChannel, TryPopNonBlocking) {
  ThrottledChannel<int> ch({1e9, 8192, 2});
  EXPECT_FALSE(ch.try_pop().has_value());
  ch.push(7, 1);
  EXPECT_EQ(ch.try_pop().value(), 7);
}

}  // namespace
}  // namespace gates::net
