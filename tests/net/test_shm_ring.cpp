// ShmRing (SPSC byte ring in POSIX shared memory) and ShmRemoteLink: record
// round trips including wraparound, cross-"process" attach semantics (two
// mappings of the same segment in one test process), close propagation, and
// the full RemoteLink frame path over shared memory.
#include "gates/net/shm_link.hpp"
#include "gates/net/shm_ring.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

namespace gates::net {
namespace {

/// Unique-per-process segment names so parallel ctest runs never collide;
/// POSIX shm names must lead with '/'.
std::string ring_name(const char* tag) {
  return "/gates-test-" + std::to_string(::getpid()) + "-" + tag;
}

IdleConfig test_idle() { return IdleConfig::balanced(); }

TEST(ShmRing, CreateAttachRoundTrip) {
  const std::string name = ring_name("rt");
  auto writer = ShmRing::create(name, 4096);
  ASSERT_TRUE(writer.ok()) << writer.status().to_string();
  auto reader = ShmRing::attach(name, 2.0);
  ASSERT_TRUE(reader.ok()) << reader.status().to_string();

  const std::uint8_t msg[] = "hello over shared memory";
  ASSERT_TRUE((*writer)->write(msg, sizeof(msg), test_idle()).is_ok());

  std::vector<std::uint8_t> out;
  auto got = (*reader)->try_read(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  ASSERT_EQ(out.size(), sizeof(msg));
  EXPECT_EQ(std::memcmp(out.data(), msg, sizeof(msg)), 0);

  // Empty ring: false, not an error.
  got = (*reader)->try_read(&out);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(got.value());
}

TEST(ShmRing, CreateFailsOnLiveName) {
  const std::string name = ring_name("dup");
  auto first = ShmRing::create(name, 4096);
  ASSERT_TRUE(first.ok());
  auto second = ShmRing::create(name, 4096);
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists);
}

TEST(ShmRing, RejectsOversizeRecord) {
  const std::string name = ring_name("big");
  auto ring = ShmRing::create(name, 1024);
  ASSERT_TRUE(ring.ok());
  std::vector<std::uint8_t> huge((*ring)->max_record_bytes() + 1, 0xAB);
  EXPECT_FALSE((*ring)->write(huge.data(), huge.size(), test_idle()).is_ok());
}

/// Many variable-size records through a small ring: wraparound markers and
/// the 8-alignment padding must be invisible to the reader.
TEST(ShmRing, WrapAroundPreservesRecordBytes) {
  const std::string name = ring_name("wrap");
  auto writer = ShmRing::create(name, 1024);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmRing::attach(name, 2.0);
  ASSERT_TRUE(reader.ok());

  std::vector<std::uint8_t> out;
  for (int i = 0; i < 500; ++i) {
    std::vector<std::uint8_t> rec(1 + (i * 13) % 200);
    for (std::size_t b = 0; b < rec.size(); ++b) {
      rec[b] = static_cast<std::uint8_t>(i + b);
    }
    ASSERT_TRUE(
        (*writer)->write(rec.data(), rec.size(), test_idle()).is_ok());
    auto got = (*reader)->try_read(&out);
    ASSERT_TRUE(got.ok());
    ASSERT_TRUE(got.value()) << "record " << i;
    ASSERT_EQ(out.size(), rec.size()) << "record " << i;
    EXPECT_EQ(std::memcmp(out.data(), rec.data(), rec.size()), 0)
        << "record " << i;
  }
}

TEST(ShmRing, GatherWriteEqualsContiguousWrite) {
  const std::string name = ring_name("gather");
  auto writer = ShmRing::create(name, 4096);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmRing::attach(name, 2.0);
  ASSERT_TRUE(reader.ok());

  const char* parts[3] = {"header|", "meta-meta-meta|", "payload bytes"};
  iovec iovs[3];
  std::size_t total = 0;
  for (int i = 0; i < 3; ++i) {
    iovs[i].iov_base = const_cast<char*>(parts[i]);
    iovs[i].iov_len = std::strlen(parts[i]);
    total += iovs[i].iov_len;
  }
  ASSERT_TRUE((*writer)->write_gather(iovs, 3, total, test_idle()).is_ok());

  std::vector<std::uint8_t> out;
  auto got = (*reader)->try_read(&out);
  ASSERT_TRUE(got.ok());
  ASSERT_TRUE(got.value());
  const std::string joined = "header|meta-meta-meta|payload bytes";
  ASSERT_EQ(out.size(), joined.size());
  EXPECT_EQ(std::memcmp(out.data(), joined.data(), joined.size()), 0);
}

TEST(ShmRing, BlockedWriterUnblocksWhenReaderDrains) {
  const std::string name = ring_name("bp");
  auto writer = ShmRing::create(name, 1024);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmRing::attach(name, 2.0);
  ASSERT_TRUE(reader.ok());

  // Fill the ring past capacity from another thread; the writer must block
  // (not fail) until the reader catches up.
  std::vector<std::uint8_t> rec(128, 0xCD);
  std::atomic<int> written{0};
  std::thread producer([&] {
    for (int i = 0; i < 64; ++i) {
      if (!(*writer)->write(rec.data(), rec.size(), test_idle()).is_ok()) {
        break;
      }
      written.fetch_add(1);
    }
  });
  std::vector<std::uint8_t> out;
  int read = 0;
  while (read < 64) {
    auto got = (*reader)->try_read(&out);
    ASSERT_TRUE(got.ok());
    if (got.value()) ++read;
  }
  producer.join();
  EXPECT_EQ(written.load(), 64);
}

TEST(ShmRing, CloseUnblocksAndFailsPeerWrites) {
  const std::string name = ring_name("close");
  auto writer = ShmRing::create(name, 1024);
  ASSERT_TRUE(writer.ok());
  auto reader = ShmRing::attach(name, 2.0);
  ASSERT_TRUE(reader.ok());
  (*reader)->close_ring();
  std::vector<std::uint8_t> rec(900, 0);  // larger than free space after fill
  // Writes observe the close (immediately or after the ring fills).
  Status last = Status::ok();
  for (int i = 0; i < 16 && last.is_ok(); ++i) {
    last = (*writer)->write(rec.data(), 128, test_idle());
  }
  EXPECT_FALSE(last.is_ok());
}

// -- ShmRemoteLink ----------------------------------------------------------

TEST(ShmRemoteLink, DataAcksAndEosCrossTheLink) {
  const std::string base = ring_name("link");
  auto server = ShmRemoteLink::serve(base, 5, "srv", 1u << 16, test_idle());
  ASSERT_TRUE(server.ok()) << server.status().to_string();
  auto client = ShmRemoteLink::dial(base, 5, "cli", 2.0, test_idle());
  ASSERT_TRUE(client.ok()) << client.status().to_string();

  std::vector<wire::WirePacket> batch;
  for (std::uint64_t i = 0; i < 8; ++i) {
    wire::WirePacket wp;
    wp.seq = i;
    wp.stream = 1;
    wp.records = 1;
    wp.payload = ByteBuffer::uninitialized(64);
    for (std::size_t b = 0; b < 64; ++b) {
      wp.payload.data()[b] = static_cast<std::uint8_t>(i * 131 + b * 7);
    }
    batch.push_back(std::move(wp));
  }
  std::vector<wire::WirePacket> sent = batch;  // COW aliases for comparison
  ASSERT_TRUE((*client)->send_data(batch).is_ok());
  ASSERT_TRUE((*client)->send_eos(8).is_ok());

  // Server drains data then EOS.
  std::vector<wire::WirePacket> received;
  bool eos = false;
  while (!eos) {
    auto ev = (*server)->recv(1.0);
    ASSERT_TRUE(ev.ok()) << ev.status().to_string();
    if (ev->kind == RecvEvent::Kind::kData) {
      for (auto& wp : ev->packets) received.push_back(std::move(wp));
    } else if (ev->kind == RecvEvent::Kind::kEos) {
      EXPECT_EQ(ev->base_seq, 8u);
      eos = true;
    }
  }
  ASSERT_EQ(received.size(), 8u);
  for (std::uint64_t i = 0; i < 8; ++i) {
    EXPECT_EQ(received[i].seq, i);
    ASSERT_EQ(received[i].payload.size(), 64u);
    EXPECT_EQ(std::memcmp(received[i].payload.data(), sent[i].payload.data(),
                          64),
              0);
  }

  // Acks flow the other way.
  ASSERT_TRUE((*server)->send_acks({0, 1, 2, 3, 4, 5, 6, 7, 8}).is_ok());
  auto ev = (*client)->recv(1.0);
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->kind, RecvEvent::Kind::kAcks);
  EXPECT_EQ(ev->acks.size(), 9u);

  const WireStats& cs = (*client)->stats();
  EXPECT_EQ(cs.packets_out.load(), 8u);
  EXPECT_EQ(cs.acks_in.load(), 9u);
}

/// A batch bigger than a ring slot must be split transparently.
TEST(ShmRemoteLink, OversizeBatchSplitsAcrossFrames) {
  const std::string base = ring_name("split");
  // 16 KiB ring: max record 8 KiB, so 8 x 2 KiB payloads cannot ship as one
  // frame.
  auto server = ShmRemoteLink::serve(base, 0, "srv", 1u << 14, test_idle());
  ASSERT_TRUE(server.ok());
  auto client = ShmRemoteLink::dial(base, 0, "cli", 2.0, test_idle());
  ASSERT_TRUE(client.ok());

  std::thread sender([&] {
    std::vector<wire::WirePacket> batch;
    for (std::uint64_t i = 0; i < 8; ++i) {
      wire::WirePacket wp;
      wp.seq = i;
      wp.payload = ByteBuffer::uninitialized(2048);
      std::memset(wp.payload.data(), static_cast<int>(i), 2048);
      batch.push_back(std::move(wp));
    }
    ASSERT_TRUE((*client)->send_data(batch).is_ok());
  });

  std::size_t got = 0;
  while (got < 8) {
    auto ev = (*server)->recv(2.0);
    ASSERT_TRUE(ev.ok()) << ev.status().to_string();
    if (ev->kind != RecvEvent::Kind::kData) continue;
    for (const auto& wp : ev->packets) {
      ASSERT_EQ(wp.payload.size(), 2048u);
      EXPECT_EQ(wp.payload.data()[0], static_cast<std::uint8_t>(wp.seq));
      ++got;
    }
  }
  sender.join();
}

TEST(ShmRemoteLink, ReconnectIsUnsupported) {
  const std::string base = ring_name("noreconn");
  auto server = ShmRemoteLink::serve(base, 0, "srv", 1u << 14, test_idle());
  ASSERT_TRUE(server.ok());
  EXPECT_FALSE((*server)->reconnect().is_ok());
}

}  // namespace
}  // namespace gates::net
