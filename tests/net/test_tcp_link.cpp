// TcpRemoteLink over loopback: frame round trips through real sockets,
// lazy serve/dial handshakes, reconnect + replay-visible acks, and RPC
// frames on a control-style link. Single process, two link endpoints.
#include "gates/net/tcp_link.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace gates::net {
namespace {

struct LinkPair {
  std::shared_ptr<TcpListener> listener;
  std::shared_ptr<TcpRemoteLink> server;
  std::shared_ptr<TcpRemoteLink> client;
};

LinkPair make_pair(std::uint32_t channel) {
  LinkPair p;
  auto listener = TcpListener::listen(0);
  EXPECT_TRUE(listener.ok()) << listener.status().to_string();
  p.listener = *listener;
  p.server = TcpRemoteLink::serve(p.listener, channel, "srv", 5.0);
  p.client = TcpRemoteLink::dial("127.0.0.1", p.listener->port(), channel,
                                 "cli", 5.0);
  return p;
}

TEST(TcpListener, BindsEphemeralLoopbackPort) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT((*listener)->port(), 0);
  // No pending connection: accept times out as unavailable, not a crash.
  auto fd = (*listener)->accept_fd(0.05);
  EXPECT_FALSE(fd.ok());
  EXPECT_EQ(fd.status().code(), StatusCode::kUnavailable);
}

TEST(TcpRemoteLink, DataEosAndAcksRoundTrip) {
  LinkPair p = make_pair(3);

  std::vector<wire::WirePacket> batch;
  for (std::uint64_t i = 0; i < 16; ++i) {
    wire::WirePacket wp;
    wp.seq = 100 + i;
    wp.stream = 2;
    wp.records = 1;
    wp.payload = ByteBuffer::uninitialized(256);
    for (std::size_t b = 0; b < 256; ++b) {
      wp.payload.data()[b] = static_cast<std::uint8_t>(i * 131 + b * 7);
    }
    batch.push_back(std::move(wp));
  }
  std::vector<wire::WirePacket> sent = batch;
  // The client's first send performs the lazy connect; the server's first
  // recv performs the lazy accept.
  ASSERT_TRUE(p.client->send_data(batch).is_ok());
  ASSERT_TRUE(p.client->send_eos(116).is_ok());

  std::vector<wire::WirePacket> received;
  bool eos = false;
  while (!eos) {
    auto ev = p.server->recv(2.0);
    ASSERT_TRUE(ev.ok()) << ev.status().to_string();
    if (ev->kind == RecvEvent::Kind::kData) {
      for (auto& wp : ev->packets) received.push_back(std::move(wp));
    } else if (ev->kind == RecvEvent::Kind::kEos) {
      EXPECT_EQ(ev->base_seq, 116u);
      eos = true;
    }
  }
  ASSERT_EQ(received.size(), 16u);
  for (std::size_t i = 0; i < 16; ++i) {
    EXPECT_EQ(received[i].seq, sent[i].seq);
    ASSERT_EQ(received[i].payload.size(), 256u);
    EXPECT_EQ(
        std::memcmp(received[i].payload.data(), sent[i].payload.data(), 256),
        0);
  }

  std::vector<std::uint64_t> seqs;
  for (const auto& wp : received) seqs.push_back(wp.seq);
  ASSERT_TRUE(p.server->send_acks(seqs).is_ok());
  auto ev = p.client->recv(2.0);
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->kind, RecvEvent::Kind::kAcks);
  EXPECT_EQ(ev->acks, seqs);

  EXPECT_EQ(p.client->stats().packets_out.load(), 16u);
  EXPECT_EQ(p.server->stats().packets_in.load(), 16u);
}

TEST(TcpRemoteLink, ServerRecvWithNoConnectionIsATimeoutNotAnError) {
  auto listener = TcpListener::listen(0);
  ASSERT_TRUE(listener.ok());
  auto server = TcpRemoteLink::serve(*listener, 0, "srv", 5.0);
  auto ev = server->recv(0.05);
  ASSERT_TRUE(ev.ok()) << ev.status().to_string();
  EXPECT_EQ(ev->kind, RecvEvent::Kind::kNone);
}

TEST(TcpRemoteLink, DialToDeadPortFailsWithinDeadline) {
  // Bind-then-close leaves a port that refuses connections.
  std::uint16_t dead_port;
  {
    auto listener = TcpListener::listen(0);
    ASSERT_TRUE(listener.ok());
    dead_port = (*listener)->port();
  }
  auto client = TcpRemoteLink::dial("127.0.0.1", dead_port, 0, "cli", 0.2);
  std::vector<wire::WirePacket> empty;
  EXPECT_FALSE(client->send_data(empty).is_ok());
}

/// Kill the connection mid-stream; reconnect() must produce a fresh session
/// over the same listener and data must flow again — the transport half of
/// the egress replay discipline.
TEST(TcpRemoteLink, ReconnectRestoresTheStream) {
  LinkPair p = make_pair(1);

  auto send_one = [&](std::uint64_t seq) -> Status {
    std::vector<wire::WirePacket> batch(1);
    batch[0].seq = seq;
    batch[0].payload = ByteBuffer::from_string("x");
    return p.client->send_data(batch);
  };
  ASSERT_TRUE(send_one(1).is_ok());
  auto ev = p.server->recv(2.0);
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->kind, RecvEvent::Kind::kData);

  // Server drops the session; the client's next operation fails.
  p.server->close();
  Status s = Status::ok();
  for (int i = 0; i < 50 && s.is_ok(); ++i) {
    s = send_one(2);  // eventually hits the closed socket
  }
  EXPECT_FALSE(s.is_ok());

  // Client reconnects; a server-side link over the same listener accepts
  // the fresh session.
  auto server2 = TcpRemoteLink::serve(p.listener, 1, "srv2", 5.0);
  ASSERT_TRUE(p.client->reconnect().is_ok());
  ASSERT_TRUE(send_one(3).is_ok());
  ev = server2->recv(2.0);
  ASSERT_TRUE(ev.ok()) << ev.status().to_string();
  ASSERT_EQ(ev->kind, RecvEvent::Kind::kData);
  EXPECT_EQ(ev->packets[0].seq, 3u);
  EXPECT_GE(p.client->stats().reconnects.load(), 1u);
}

TEST(TcpRemoteLink, RpcFramesCarryMethodAndBody) {
  LinkPair p = make_pair(0);
  ASSERT_TRUE(p.client
                  ->send_control(wire::FrameType::kRpcRequest, 42, "deploy",
                                 "<deploy process=\"0\"/>")
                  .is_ok());
  auto ev = p.server->recv(2.0);
  ASSERT_TRUE(ev.ok());
  ASSERT_EQ(ev->kind, RecvEvent::Kind::kRpcRequest);
  EXPECT_EQ(ev->base_seq, 42u);
  EXPECT_EQ(ev->method, "deploy");
  EXPECT_EQ(std::string(reinterpret_cast<const char*>(ev->body.data()),
                        ev->body.size()),
            "<deploy process=\"0\"/>");

  ASSERT_TRUE(p.server
                  ->send_control(wire::FrameType::kRpcResponse, 42, "deploy",
                                 "<deployed/>")
                  .is_ok());
  auto resp = p.client->recv(2.0);
  ASSERT_TRUE(resp.ok());
  ASSERT_EQ(resp->kind, RecvEvent::Kind::kRpcResponse);
  EXPECT_EQ(resp->base_seq, 42u);
}

/// Large batched frames cross intact even when they dwarf socket buffers —
/// exercising the partial-send (sendmsg gather advance) and partial-read
/// (readv scatter) paths.
TEST(TcpRemoteLink, LargeFrameSurvivesPartialSendsAndReads) {
  LinkPair p = make_pair(0);
  std::vector<wire::WirePacket> batch;
  for (std::uint64_t i = 0; i < 64; ++i) {
    wire::WirePacket wp;
    wp.seq = i;
    wp.payload = ByteBuffer::uninitialized(64 * 1024);
    for (std::size_t b = 0; b < wp.payload.size(); b += 1024) {
      wp.payload.data()[b] = static_cast<std::uint8_t>(i + b / 1024);
    }
    batch.push_back(std::move(wp));
  }
  std::vector<wire::WirePacket> sent = batch;  // aliases
  std::thread sender(
      [&] { ASSERT_TRUE(p.client->send_data(batch).is_ok()); });
  std::size_t got = 0;
  while (got < 64) {
    auto ev = p.server->recv(5.0);
    ASSERT_TRUE(ev.ok()) << ev.status().to_string();
    if (ev->kind != RecvEvent::Kind::kData) continue;
    for (const auto& wp : ev->packets) {
      ASSERT_EQ(wp.payload.size(), 64u * 1024u);
      EXPECT_EQ(std::memcmp(wp.payload.data(), sent[wp.seq].payload.data(),
                            wp.payload.size()),
                0)
          << "packet " << wp.seq;
      ++got;
    }
  }
  sender.join();
}

}  // namespace
}  // namespace gates::net
