// LinkShaper: the RtEngine's real-time impairment path. Plans are sampled
// on the caller thread; deliveries release on the shaper thread in FIFO
// order. Delays are kept tiny — these are wall-clock tests.
#include "gates/net/link_shaper.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <mutex>
#include <vector>

namespace gates::net {
namespace {

LinkShaper::Config shaper_config(ImpairmentSpec impair, Duration latency = 0) {
  LinkShaper::Config cfg;
  cfg.name = "test-link";
  cfg.latency = latency;
  cfg.impair = impair;
  cfg.rng = Rng(7);
  return cfg;
}

TEST(LinkShaper, DropModePlansDrops) {
  ImpairmentSpec impair;
  impair.loss = 1.0;
  impair.loss_mode = LossMode::kDrop;
  LinkShaper shaper(shaper_config(impair));
  for (int i = 0; i < 10; ++i) {
    const auto plan = shaper.plan_send();
    EXPECT_TRUE(plan.dropped);
    EXPECT_EQ(plan.retransmissions, 0u);
  }
  EXPECT_EQ(shaper.stats().messages_lost, 10u);
  EXPECT_EQ(shaper.stats().messages_shaped, 10u);
}

TEST(LinkShaper, RetransmitLossNeverDropsAndChargesExtra) {
  ImpairmentSpec impair;
  impair.loss = 0.5;
  impair.loss_mode = LossMode::kRetransmit;
  impair.retransmit_delay = 0.001;
  LinkShaper shaper(shaper_config(impair));
  std::uint32_t retransmissions = 0;
  for (int i = 0; i < 200; ++i) {
    const auto plan = shaper.plan_send();
    EXPECT_FALSE(plan.dropped);
    retransmissions += plan.retransmissions;
    EXPECT_NEAR(plan.extra_delay, plan.retransmissions * 0.001, 1e-9);
  }
  EXPECT_GT(retransmissions, 50u);  // ~1 extra per message at loss 0.5
  EXPECT_EQ(shaper.stats().messages_lost, 0u);
  EXPECT_EQ(shaper.stats().messages_retransmitted, retransmissions);
}

TEST(LinkShaper, RetransmitCapBoundsPathologicalLoss) {
  ImpairmentSpec impair;
  impair.loss = 1.0;  // every transmission attempt fails
  impair.loss_mode = LossMode::kRetransmit;
  LinkShaper::Config cfg = shaper_config(impair);
  cfg.max_retransmits = 4;
  LinkShaper shaper(std::move(cfg));
  const auto plan = shaper.plan_send();
  EXPECT_FALSE(plan.dropped);
  EXPECT_EQ(plan.retransmissions, 4u);
}

TEST(LinkShaper, JitterAddsBoundedDelay) {
  ImpairmentSpec impair;
  impair.jitter = 0.005;
  LinkShaper shaper(shaper_config(impair));
  for (int i = 0; i < 50; ++i) {
    const auto plan = shaper.plan_send();
    EXPECT_GE(plan.extra_delay, 0.0);
    EXPECT_LE(plan.extra_delay, 0.005);
  }
  EXPECT_GT(shaper.stats().messages_jittered, 0u);
}

TEST(LinkShaper, DeliveriesStayFifoDespiteDelaySpread) {
  // A later message with zero extra delay must not overtake an earlier one
  // held back — release times are monotone (per-flow FIFO).
  LinkShaper shaper(shaper_config({}, /*latency=*/0.002));
  std::mutex mu;
  std::vector<int> order;
  auto record = [&](int id) {
    return [&order, &mu, id] {
      std::lock_guard<std::mutex> lock(mu);
      order.push_back(id);
    };
  };
  shaper.deliver_after(0.02, record(1));
  shaper.deliver_after(0.0, record(2));
  shaper.deliver_in_order(record(3));
  shaper.stop();  // drains everything before joining
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(LinkShaper, StopDrainsPendingDeliveries) {
  LinkShaper shaper(shaper_config({}, /*latency=*/0.005));
  std::mutex mu;
  int delivered = 0;
  for (int i = 0; i < 5; ++i) {
    shaper.deliver_after(0.001 * i, [&] {
      std::lock_guard<std::mutex> lock(mu);
      ++delivered;
    });
  }
  shaper.stop();
  EXPECT_EQ(delivered, 5);
}

TEST(LinkShaper, SetSpecSwapsProfileMidRun) {
  LinkShaper shaper(shaper_config({}));
  EXPECT_FALSE(shaper.plan_send().dropped);  // clean profile
  ImpairmentSpec impair;
  impair.loss = 1.0;
  impair.loss_mode = LossMode::kDrop;
  shaper.set_spec(0.0, impair);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(shaper.plan_send().dropped);
  shaper.set_spec(0.0, ImpairmentSpec{});
  EXPECT_FALSE(shaper.plan_send().dropped);
}

TEST(LinkShaper, LatencyDelaysRelease) {
  LinkShaper shaper(shaper_config({}, /*latency=*/0.02));
  const auto start = std::chrono::steady_clock::now();
  std::chrono::steady_clock::time_point released;
  shaper.deliver_after(0.0, [&] { released = std::chrono::steady_clock::now(); });
  shaper.stop();
  EXPECT_GE(std::chrono::duration<double>(released - start).count(), 0.019);
}

}  // namespace
}  // namespace gates::net
