#include "gates/sim/simulation.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace gates::sim {
namespace {

TEST(Simulation, ExecutesInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(3.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(sim.now(), 3.0);
}

TEST(Simulation, TiesBreakByScheduleOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(1.0, [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Simulation, ScheduleAfterUsesCurrentTime) {
  Simulation sim;
  double fired_at = -1;
  sim.schedule_at(5.0, [&] {
    sim.schedule_after(2.5, [&] { fired_at = sim.now(); });
  });
  sim.run();
  EXPECT_DOUBLE_EQ(fired_at, 7.5);
}

TEST(Simulation, SchedulingInThePastIsAnError) {
  Simulation sim;
  sim.schedule_at(5.0, [&] {
    EXPECT_THROW(sim.schedule_at(4.0, [] {}), std::logic_error);
  });
  sim.run();
  EXPECT_THROW(sim.schedule_after(-1, [] {}), std::logic_error);
}

TEST(Simulation, CancelPreventsExecution) {
  Simulation sim;
  bool fired = false;
  auto handle = sim.schedule_at(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.cancel();
  EXPECT_FALSE(handle.pending());
  sim.run();
  EXPECT_FALSE(fired);
}

TEST(Simulation, CancelAfterExecutionIsHarmless) {
  Simulation sim;
  auto handle = sim.schedule_at(1.0, [] {});
  sim.run();
  EXPECT_FALSE(handle.pending());
  handle.cancel();  // no effect
}

TEST(Simulation, DefaultHandleIsSafe) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.cancel();
}

TEST(Simulation, RunUntilAdvancesClockToHorizon) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] { ++fired; });
  sim.schedule_at(10.0, [&] { ++fired; });
  const auto executed = sim.run_until(5.0);
  EXPECT_EQ(executed, 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
  EXPECT_EQ(sim.pending_events(), 1u);
}

TEST(Simulation, RunUntilSkipsCancelledHeadEvent) {
  Simulation sim;
  bool late_fired = false;
  auto head = sim.schedule_at(1.0, [] {});
  sim.schedule_at(2.0, [&] { late_fired = true; });
  head.cancel();
  sim.run_until(3.0);
  EXPECT_TRUE(late_fired);
}

TEST(Simulation, StopHaltsFromWithinCallback) {
  Simulation sim;
  int fired = 0;
  sim.schedule_at(1.0, [&] {
    ++fired;
    sim.stop();
  });
  sim.schedule_at(2.0, [&] { ++fired; });
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.stopped());
}

TEST(Simulation, EventsExecutedCounter) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.schedule_at(i, [] {});
  sim.run();
  EXPECT_EQ(sim.events_executed(), 7u);
}

TEST(Simulation, ClockAdapterTracksVirtualTime) {
  Simulation sim;
  double seen = -1;
  sim.schedule_at(4.5, [&] { seen = sim.clock().now(); });
  sim.run();
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(PeriodicTask, FiresAtPeriodUntilFalse) {
  Simulation sim;
  std::vector<double> fire_times;
  PeriodicTask task(sim, 1.0, [&] {
    fire_times.push_back(sim.now());
    return fire_times.size() < 3;
  });
  sim.run();
  EXPECT_EQ(fire_times, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_FALSE(task.active());
}

TEST(PeriodicTask, CancelStopsFutureFirings) {
  Simulation sim;
  int fired = 0;
  PeriodicTask task(sim, 1.0, [&] {
    ++fired;
    return true;
  });
  sim.schedule_at(2.5, [&] { task.cancel(); });
  sim.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(PeriodicTask, DestructionCancelsSafely) {
  Simulation sim;
  int fired = 0;
  {
    PeriodicTask task(sim, 1.0, [&] {
      ++fired;
      return true;
    });
  }
  sim.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(Simulation, DeterministicTwoRuns) {
  auto run_once = [] {
    Simulation sim;
    std::vector<double> times;
    for (int i = 0; i < 50; ++i) {
      sim.schedule_at(static_cast<double>((i * 37) % 11),
                      [&times, &sim] { times.push_back(sim.now()); });
    }
    sim.run();
    return times;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace gates::sim
