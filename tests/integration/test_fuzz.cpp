// Randomized robustness: random pipeline DAGs must run with exact packet
// conservation; random corruptions of a valid config must never crash the
// parser (only produce a clean error or a different-but-valid document).
#include <gtest/gtest.h>

#include <memory>

#include "gates/core/sim_engine.hpp"
#include "gates/grid/app_config.hpp"
#include "gates/xml/xml.hpp"

namespace gates {
namespace {

/// Forwards everything; counts what passed through.
class RelayCounter : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter& emitter) override {
    ++packets_;
    emitter.emit(packet);
  }
  std::string name() const override { return "relay-counter"; }
  std::uint64_t packets_ = 0;
};

class DagFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DagFuzz, RandomPipelineConservesPackets) {
  Rng rng(GetParam());
  const std::size_t n_stages = 2 + rng.next_below(6);      // 2..7
  const std::size_t n_sources = 1 + rng.next_below(3);     // 1..3
  const std::size_t n_nodes = 1 + rng.next_below(4);       // 1..4

  core::PipelineSpec spec;
  core::Placement placement;
  for (std::size_t i = 0; i < n_stages; ++i) {
    core::StageSpec stage;
    stage.name = "stage" + std::to_string(i);
    stage.factory = [] { return std::make_unique<RelayCounter>(); };
    stage.input_capacity = 4 + rng.next_below(64);
    stage.cost.per_packet_seconds = rng.uniform(0, 2e-4);
    spec.stages.push_back(std::move(stage));
    placement.stage_nodes.push_back(
        static_cast<NodeId>(rng.next_below(n_nodes)));
  }
  // Forward-only random edges keep the graph acyclic; every stage i > 0
  // gets at least one in-edge from an earlier stage so everything is fed.
  for (std::size_t i = 1; i < n_stages; ++i) {
    const std::size_t from = rng.next_below(i);
    spec.edges.push_back({from, i, 0});
    if (rng.next_bool(0.3) && i >= 2) {
      const std::size_t extra = rng.next_below(i);
      if (extra != from) spec.edges.push_back({extra, i, 0});
    }
  }
  std::uint64_t total_generated = 0;
  for (std::size_t s = 0; s < n_sources; ++s) {
    core::SourceSpec src;
    src.stream = static_cast<StreamId>(s);
    src.rate_hz = 200 + rng.uniform(0, 800);
    src.total_packets = 50 + rng.next_below(300);
    src.packet_bytes = 8 + rng.next_below(64);
    src.poisson = rng.next_bool(0.5);
    src.location = static_cast<NodeId>(rng.next_below(n_nodes));
    src.target_stage = 0;  // the root feeds the DAG
    total_generated += src.total_packets;
    spec.sources.push_back(std::move(src));
  }
  ASSERT_TRUE(spec.validate().is_ok());

  net::Topology topology;
  if (rng.next_bool(0.5)) {
    topology.set_default_link({rng.uniform(5e3, 1e6), rng.uniform(0, 0.01)});
  }

  core::SimEngine::Config config;
  config.seed = GetParam() * 7919;
  core::SimEngine engine(spec, placement, {}, topology, config);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed) << "seed " << GetParam();

  // Conservation: stage 0 sees every generated packet; every other stage
  // sees the sum of its upstream emissions (forwarding is 1:1 and edges on
  // the same port broadcast).
  std::vector<std::uint64_t> processed(n_stages);
  for (std::size_t i = 0; i < n_stages; ++i) {
    processed[i] = dynamic_cast<RelayCounter&>(engine.processor(i)).packets_;
  }
  EXPECT_EQ(processed[0], total_generated) << "seed " << GetParam();
  for (std::size_t i = 1; i < n_stages; ++i) {
    std::uint64_t expected = 0;
    for (const auto& edge : spec.edges) {
      if (edge.to_stage == i) expected += processed[edge.from_stage];
    }
    EXPECT_EQ(processed[i], expected)
        << "stage " << i << " seed " << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DagFuzz, ::testing::Range<std::uint64_t>(1, 21));

const char* kValidConfig = R"(
<application name="fuzz">
  <stages>
    <stage name="a" code="builtin://x" capacity="50">
      <param name="k" value="v"/>
      <monitor alpha="0.7" window="12"/>
    </stage>
    <stage name="b" code="builtin://y"/>
  </stages>
  <edges><edge from="a" to="b"/></edges>
  <sources><source target="a" rate="100" count="10" type="zeros"/></sources>
</application>)";

class XmlMutationFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(XmlMutationFuzz, CorruptedConfigNeverCrashes) {
  Rng rng(GetParam());
  std::string text = kValidConfig;
  // Apply 1..4 random mutations: byte flips, deletions, duplications.
  const int mutations = 1 + static_cast<int>(rng.next_below(4));
  for (int m = 0; m < mutations && !text.empty(); ++m) {
    const std::size_t pos = rng.next_below(text.size());
    switch (rng.next_below(3)) {
      case 0:
        text[pos] = static_cast<char>(32 + rng.next_below(95));
        break;
      case 1:
        text.erase(pos, 1 + rng.next_below(5));
        break;
      default:
        text.insert(pos, text.substr(pos, 1 + rng.next_below(8)));
        break;
    }
  }
  // Must not throw or crash; any Status outcome is acceptable.
  auto config =
      grid::parse_app_config(text, grid::GeneratorRegistry::global());
  if (config.ok()) {
    EXPECT_TRUE(config->pipeline.validate().is_ok());
  } else {
    EXPECT_FALSE(config.status().message().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, XmlMutationFuzz,
                         ::testing::Range<std::uint64_t>(1, 41));

}  // namespace
}  // namespace gates
