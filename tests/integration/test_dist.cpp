// Cross-process chain4: the same XML split across two gates_node daemons
// (spawned from the real binary, path injected by CMake as GATES_NODE_BIN)
// must deliver byte-order-identical output to the in-process run — the
// HashSink digest is the oracle. Covers both transports plus the TCP
// kill/respawn drill with retention replay.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>

#include <unistd.h>

#include "gates/apps/registration.hpp"
#include "gates/apps/relay.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/grid/launcher.hpp"
#include "gates/grid/node_remote.hpp"

namespace gates {
namespace {

/// Two-node grid with an effectively unthrottled link: the wire path, not
/// the modeled bandwidth, is what these tests exercise.
const char* kGridXml = R"(
<grid name="two">
  <node id="0" hostname="proc0.local" cpu="1.0" memory-mb="4096"/>
  <node id="1" hostname="proc1.local" cpu="1.0" memory-mb="4096"/>
  <default-link bandwidth="1e9" latency="0"/>
</grid>)";

/// chain4 with s1/s2 on node 0 and s3/sink on node 1: exactly one cross
/// edge (s2 -> s3) when run with two daemons.
std::string chain4_xml(std::size_t count, std::size_t rate) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), R"(
<application name="chain4">
  <stages>
    <stage name="s1" code="builtin://passthrough"><placement node="0"/></stage>
    <stage name="s2" code="builtin://passthrough"><placement node="0"/></stage>
    <stage name="s3" code="builtin://passthrough"><placement node="1"/></stage>
    <stage name="sink" code="builtin://hash-sink"><placement node="1"/></stage>
  </stages>
  <edges>
    <edge from="s1" to="s2"/>
    <edge from="s2" to="s3"/>
    <edge from="s3" to="sink"/>
  </edges>
  <sources>
    <source name="src" stream="0" rate="%zu" count="%zu" target="s1"
            node="0" type="pattern">
      <param name="bytes" value="256"/>
    </source>
  </sources>
</application>)",
                rate, count);
  return buf;
}

struct Digest {
  std::uint64_t value = 0;
  std::uint64_t packets = 0;
};

/// In-process ground truth: launch the same XML through the Launcher and
/// run it on the rt engine, reading the digest straight off the sink.
Digest run_in_process(const std::string& app_xml) {
  grid::ResourceDirectory directory;
  directory.register_node("proc0", {});
  directory.register_node("proc1", {});
  grid::RepositoryRegistry repos;
  grid::Deployer deployer(directory, repos, grid::ProcessorRegistry::global());
  grid::Launcher launcher(deployer, grid::GeneratorRegistry::global());
  auto app = launcher.launch_text(app_xml);
  EXPECT_TRUE(app.ok()) << app.status().to_string();
  if (!app.ok()) return {};

  core::RtEngine engine(app->pipeline, app->deployment.placement,
                        app->deployment.hosts, {}, {});
  EXPECT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& sink = dynamic_cast<apps::HashSinkProcessor&>(engine.processor(3));
  return {sink.digest(), sink.packet_count()};
}

std::string digest_path(const char* tag) {
  return "/tmp/gates-dist-" + std::to_string(::getpid()) + "-" + tag +
         ".digest";
}

/// HashSink's finish() writes "<hex digest> <packet count>\n" to
/// $GATES_DIGEST_FILE — the only channel that works across a process
/// boundary.
Digest read_digest_file(const std::string& path) {
  Digest d;
  std::FILE* f = std::fopen(path.c_str(), "r");
  EXPECT_NE(f, nullptr) << "missing digest file " << path;
  if (!f) return d;
  unsigned long long value = 0, packets = 0;
  EXPECT_EQ(std::fscanf(f, "%llx %llu", &value, &packets), 2);
  std::fclose(f);
  std::remove(path.c_str());
  d.value = value;
  d.packets = packets;
  return d;
}

grid::DistributedOptions base_options(const std::string& app_xml) {
  grid::DistributedOptions opts;
  opts.grid_text = kGridXml;
  opts.app_text = app_xml;
  opts.daemons = 2;
  opts.node_bin = GATES_NODE_BIN;
  opts.max_wall = 60;
  return opts;
}

class DistRun : public ::testing::Test {
 protected:
  void SetUp() override { apps::register_all(); }
  void TearDown() override { ::unsetenv("GATES_DIGEST_FILE"); }
};

TEST_F(DistRun, TcpMatchesInProcessByteForByte) {
  const std::string app_xml = chain4_xml(5000, 50000);
  const Digest local = run_in_process(app_xml);
  ASSERT_EQ(local.packets, 5000u);

  const std::string path = digest_path("tcp");
  ASSERT_EQ(::setenv("GATES_DIGEST_FILE", path.c_str(), 1), 0);
  auto opts = base_options(app_xml);
  opts.transport = "tcp";
  auto result = grid::run_distributed(opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->respawns, 0u);
  ASSERT_EQ(result->daemon_reports.size(), 2u);
  // The merged report records the topology of the run.
  EXPECT_NE(result->merged_report_json.find("\"distributed\": true"),
            std::string::npos);
  EXPECT_NE(result->merged_report_json.find("\"transport\": \"tcp\""),
            std::string::npos);

  const Digest remote = read_digest_file(path);
  EXPECT_EQ(remote.packets, local.packets);
  EXPECT_EQ(remote.value, local.value);
}

TEST_F(DistRun, ShmMatchesInProcessByteForByte) {
  const std::string app_xml = chain4_xml(5000, 50000);
  const Digest local = run_in_process(app_xml);
  ASSERT_EQ(local.packets, 5000u);

  const std::string path = digest_path("shm");
  ASSERT_EQ(::setenv("GATES_DIGEST_FILE", path.c_str(), 1), 0);
  auto opts = base_options(app_xml);
  opts.transport = "shm";
  auto result = grid::run_distributed(opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->completed);

  const Digest remote = read_digest_file(path);
  EXPECT_EQ(remote.packets, local.packets);
  EXPECT_EQ(remote.value, local.value);
}

/// SIGKILL the downstream daemon mid-run; with failover on, the coordinator
/// respawns it on the same ports and the upstream egress replays its
/// unacked retention tail. The restarted sink only sees the tail, so the
/// digest is not comparable — the assertions are completion and exactly one
/// respawn, with every replayed packet accounted for.
TEST_F(DistRun, TcpKillRespawnCompletesWithReplay) {
  const std::string app_xml = chain4_xml(20000, 20000);
  const std::string path = digest_path("kill");
  ASSERT_EQ(::setenv("GATES_DIGEST_FILE", path.c_str(), 1), 0);

  auto opts = base_options(app_xml);
  opts.transport = "tcp";
  opts.failover = true;
  opts.kill_daemon = {{1, 0.35}};
  auto result = grid::run_distributed(opts);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_TRUE(result->completed);
  EXPECT_EQ(result->respawns, 1u);

  // The respawned sink still observed a clean EOS: the digest file exists
  // and counts only the replayed tail (strictly fewer than the source
  // total, strictly more than zero).
  const Digest tail = read_digest_file(path);
  EXPECT_GT(tail.packets, 0u);
  EXPECT_LT(tail.packets, 20000u);
}

}  // namespace
}  // namespace gates
