// Scaled-down versions of the paper's experiments, asserting the orderings
// Section 5 reports (not absolute numbers — those live in the full-size
// bench binaries and EXPERIMENTS.md).
#include <gtest/gtest.h>

#include "gates/apps/scenarios.hpp"

namespace gates::apps::scenarios {
namespace {

CountSampsOptions small_count_samps() {
  CountSampsOptions o;
  o.items_per_source = 5000;
  o.emit_every = 1000;
  return o;
}

TEST(PaperFig5, DistributedFasterWithModestAccuracyLoss) {
  auto centralized = small_count_samps();
  centralized.distributed = false;
  auto rc = run_count_samps(centralized);

  auto distributed = small_count_samps();
  auto rd = run_count_samps(distributed);

  ASSERT_TRUE(rc.completed);
  ASSERT_TRUE(rd.completed);
  // "distributed processing results in faster execution, with only a small
  // loss of accuracy"
  EXPECT_LT(rd.execution_time, rc.execution_time);
  EXPECT_GT(rc.accuracy.score(), 95);
  EXPECT_GT(rd.accuracy.score(), 85);
  EXPECT_LE(rd.accuracy.score(), rc.accuracy.score() + 2);
}

TEST(PaperFig6, TimeGrowsWithSummarySizeAtLowBandwidth) {
  double previous = 0;
  for (double n : {40.0, 80.0, 160.0}) {
    auto o = small_count_samps();
    o.central_ingress_bw = 1e3;
    o.summary_initial = o.summary_min = o.summary_max = n;
    auto r = run_count_samps(o);
    ASSERT_TRUE(r.completed);
    EXPECT_GT(r.execution_time, previous) << "n=" << n;
    previous = r.execution_time;
  }
}

TEST(PaperFig6, TimeShrinksWithBandwidth) {
  double previous = 1e18;
  for (double bw : {1e3, 10e3, 100e3}) {
    auto o = small_count_samps();
    o.central_ingress_bw = bw;
    o.summary_initial = o.summary_min = o.summary_max = 160;
    auto r = run_count_samps(o);
    ASSERT_TRUE(r.completed);
    EXPECT_LE(r.execution_time, previous) << "bw=" << bw;
    previous = r.execution_time;
  }
}

TEST(PaperFig7, AccuracyGrowsWithSummarySize) {
  auto small = small_count_samps();
  small.summary_initial = small.summary_min = small.summary_max = 20;
  auto large = small_count_samps();
  large.summary_initial = large.summary_min = large.summary_max = 160;
  auto r_small = run_count_samps(small);
  auto r_large = run_count_samps(large);
  EXPECT_GT(r_large.accuracy.score(), r_small.accuracy.score());
}

TEST(PaperFig6And7, AdaptiveAvoidsTheWorstOfBothWorlds) {
  // At 1 KB/s the largest fixed version takes far longer than the adaptive
  // one; the adaptive version also completes with usable accuracy.
  auto fixed = small_count_samps();
  fixed.central_ingress_bw = 1e3;
  fixed.summary_initial = fixed.summary_min = fixed.summary_max = 160;
  auto adaptive = small_count_samps();
  adaptive.central_ingress_bw = 1e3;
  adaptive.adaptive = true;
  auto rf = run_count_samps(fixed);
  auto ra = run_count_samps(adaptive);
  ASSERT_TRUE(rf.completed);
  ASSERT_TRUE(ra.completed);
  EXPECT_LT(ra.execution_time, rf.execution_time);
  EXPECT_GT(ra.accuracy.score(), 30);
  // At high bandwidth the adaptive version pushes the parameter up and
  // matches the best fixed accuracy.
  auto adaptive_fast = small_count_samps();
  adaptive_fast.central_ingress_bw = 1e6;
  adaptive_fast.adaptive = true;
  auto raf = run_count_samps(adaptive_fast);
  EXPECT_GT(raf.mean_summary_size, 150);
  EXPECT_GT(raf.accuracy.score(), 85);
}

TEST(PaperFig8, SamplingRateOrderedByProcessingCost) {
  // Heavier post-processing must settle a lower sampling rate; the
  // unconstrained versions converge to 1 (paper: cost 1 and 5 ms/B).
  double previous = 2.0;
  for (double cost : {1.0, 8.0, 20.0}) {
    CompSteerOptions o;
    o.analyzer_ms_per_byte = cost;
    o.horizon = 300;
    auto r = run_comp_steer(o);
    EXPECT_LT(r.converged_rate, previous + 0.05) << "cost=" << cost;
    previous = r.converged_rate;
  }
}

TEST(PaperFig8, UnconstrainedConvergesToFullSampling) {
  CompSteerOptions o;
  o.analyzer_ms_per_byte = 1;
  o.horizon = 300;
  auto r = run_comp_steer(o);
  EXPECT_GT(r.converged_rate, 0.95);
  EXPECT_DOUBLE_EQ(r.final_rate, 1.0);
}

TEST(PaperFig8, ConstrainedSettlesNearTheoreticalOptimum) {
  CompSteerOptions o;
  o.analyzer_ms_per_byte = 20;
  o.horizon = 400;
  auto r = run_comp_steer(o);
  const double optimum = processing_constraint_optimum(o);  // 0.3125
  EXPECT_NEAR(r.converged_rate, optimum, 0.15);
}

TEST(PaperFig9, SamplingRateOrderedByGenerationRate) {
  double previous = 2.0;
  for (double gen : {5e3, 20e3, 80e3}) {
    CompSteerOptions o;
    o.generation_bytes_per_sec = gen;
    o.chunk_bytes = 1024;
    o.analyzer_ms_per_byte = 0.01;
    o.link_bw = 10e3;
    o.rate_initial = 0.01;
    o.horizon = 300;
    auto r = run_comp_steer(o);
    EXPECT_LT(r.converged_rate, previous + 0.05) << "gen=" << gen;
    previous = r.converged_rate;
  }
}

TEST(PaperFig9, RateClimbsFromTinyInitialWhenUnconstrained) {
  CompSteerOptions o;
  o.generation_bytes_per_sec = 5e3;
  o.chunk_bytes = 1024;
  o.analyzer_ms_per_byte = 0.01;
  o.link_bw = 10e3;
  o.rate_initial = 0.01;
  o.horizon = 300;
  auto r = run_comp_steer(o);
  EXPECT_GT(r.converged_rate, 0.9);
}

TEST(PaperFig9, ConstrainedStaysWellBelowFullSampling) {
  CompSteerOptions o;
  o.generation_bytes_per_sec = 80e3;
  o.chunk_bytes = 1024;
  o.analyzer_ms_per_byte = 0.01;
  o.link_bw = 10e3;
  o.rate_initial = 0.01;
  o.horizon = 400;
  auto r = run_comp_steer(o);
  EXPECT_LT(r.converged_rate, 0.45);
  EXPECT_GT(r.converged_rate, 0.03);
}

}  // namespace
}  // namespace gates::apps::scenarios
