// Reproducibility: a SimEngine experiment is a pure function of its
// configuration and seed.
#include <gtest/gtest.h>

#include "gates/apps/scenarios.hpp"

namespace gates::apps::scenarios {
namespace {

TEST(Determinism, CountSampsIdenticalAcrossRuns) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  auto a = run_count_samps(options);
  auto b = run_count_samps(options);
  EXPECT_DOUBLE_EQ(a.execution_time, b.execution_time);
  EXPECT_DOUBLE_EQ(a.accuracy.score(), b.accuracy.score());
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (std::size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]);
  }
  EXPECT_EQ(a.report.events_executed, b.report.events_executed);
}

TEST(Determinism, CountSampsSeedChangesData) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  auto a = run_count_samps(options);
  options.seed = options.seed + 1;
  auto b = run_count_samps(options);
  // Different streams, so the exact top-10 counts differ.
  bool any_difference = a.exact.size() != b.exact.size();
  for (std::size_t i = 0; !any_difference && i < a.exact.size(); ++i) {
    any_difference = !(a.exact[i] == b.exact[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, CompSteerTrajectoriesIdentical) {
  CompSteerOptions options;
  options.analyzer_ms_per_byte = 10;
  options.horizon = 120;
  auto a = run_comp_steer(options);
  auto b = run_comp_steer(options);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trajectory[i].second, b.trajectory[i].second);
  }
}

TEST(Determinism, AdaptiveCountSampsIdenticalAcrossRuns) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  options.adaptive = true;
  options.central_ingress_bw = 5e3;
  auto a = run_count_samps(options);
  auto b = run_count_samps(options);
  EXPECT_DOUBLE_EQ(a.execution_time, b.execution_time);
  EXPECT_DOUBLE_EQ(a.mean_summary_size, b.mean_summary_size);
}

}  // namespace
}  // namespace gates::apps::scenarios
