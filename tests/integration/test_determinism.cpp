// Reproducibility: a SimEngine experiment is a pure function of its
// configuration and seed.
#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/scenarios.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::apps::scenarios {
namespace {

TEST(Determinism, CountSampsIdenticalAcrossRuns) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  auto a = run_count_samps(options);
  auto b = run_count_samps(options);
  EXPECT_DOUBLE_EQ(a.execution_time, b.execution_time);
  EXPECT_DOUBLE_EQ(a.accuracy.score(), b.accuracy.score());
  ASSERT_EQ(a.reported.size(), b.reported.size());
  for (std::size_t i = 0; i < a.reported.size(); ++i) {
    EXPECT_EQ(a.reported[i], b.reported[i]);
  }
  EXPECT_EQ(a.report.events_executed, b.report.events_executed);
}

TEST(Determinism, CountSampsSeedChangesData) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  auto a = run_count_samps(options);
  options.seed = options.seed + 1;
  auto b = run_count_samps(options);
  // Different streams, so the exact top-10 counts differ.
  bool any_difference = a.exact.size() != b.exact.size();
  for (std::size_t i = 0; !any_difference && i < a.exact.size(); ++i) {
    any_difference = !(a.exact[i] == b.exact[i]);
  }
  EXPECT_TRUE(any_difference);
}

TEST(Determinism, CompSteerTrajectoriesIdentical) {
  CompSteerOptions options;
  options.analyzer_ms_per_byte = 10;
  options.horizon = 120;
  auto a = run_comp_steer(options);
  auto b = run_comp_steer(options);
  ASSERT_EQ(a.trajectory.size(), b.trajectory.size());
  for (std::size_t i = 0; i < a.trajectory.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.trajectory[i].second, b.trajectory[i].second);
  }
}

TEST(Determinism, AdaptiveCountSampsIdenticalAcrossRuns) {
  CountSampsOptions options;
  options.items_per_source = 2000;
  options.emit_every = 500;
  options.adaptive = true;
  options.central_ingress_bw = 5e3;
  auto a = run_count_samps(options);
  auto b = run_count_samps(options);
  EXPECT_DOUBLE_EQ(a.execution_time, b.execution_time);
  EXPECT_DOUBLE_EQ(a.mean_summary_size, b.mean_summary_size);
}

// Failover adds detection, retries, migration and replay to the event
// stream — all of it must stay a pure function of the configuration too.
class PassThrough : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter& emitter) override {
    ++packets_;
    emitter.emit(packet);
  }
  std::string name() const override { return "pass"; }
  std::uint64_t packets_ = 0;
};

core::RunReport run_failover_scenario() {
  core::PipelineSpec spec;
  core::Placement placement;
  for (int i = 0; i < 2; ++i) {
    core::StageSpec fwd;
    fwd.name = "fwd" + std::to_string(i);
    fwd.factory = [] { return std::make_unique<PassThrough>(); };
    spec.stages.push_back(std::move(fwd));
    placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<PassThrough>(); };
  spec.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);
  spec.edges = {{0, 2, 0}, {1, 2, 0}};
  for (int i = 0; i < 2; ++i) {
    core::SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 200;
    src.total_packets = 1500;
    src.packet_bytes = 32;
    src.poisson = true;  // randomized inter-arrivals, same seed
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    spec.sources.push_back(src);
  }
  core::SimEngine::Config config;
  config.failover.enabled = true;
  config.failover.replay_buffer_packets = 64;  // force some retention loss
  core::SimEngine engine(spec, placement, {}, {}, config);
  engine.schedule_node_failure(1, 3.0);
  engine.schedule_node_failure(2, 4.0);
  engine.schedule_node_recovery(1, 3.2);
  EXPECT_TRUE(engine.run().is_ok());
  return engine.report();
}

TEST(Determinism, FailoverRunsAreIdentical) {
  auto a = run_failover_scenario();
  auto b = run_failover_scenario();
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.execution_time, b.execution_time);
  EXPECT_EQ(a.events_executed, b.events_executed);
  ASSERT_EQ(a.failures.size(), b.failures.size());
  for (std::size_t i = 0; i < a.failures.size(); ++i) {
    const auto& fa = a.failures[i];
    const auto& fb = b.failures[i];
    EXPECT_EQ(fa.node, fb.node);
    EXPECT_EQ(fa.stage, fb.stage);
    EXPECT_DOUBLE_EQ(fa.failed_at, fb.failed_at);
    EXPECT_DOUBLE_EQ(fa.detected_at, fb.detected_at);
    EXPECT_EQ(fa.outcome, fb.outcome);
    EXPECT_EQ(fa.recovered_on, fb.recovered_on);
    EXPECT_DOUBLE_EQ(fa.recovered_at, fb.recovered_at);
    EXPECT_EQ(fa.attempts, fb.attempts);
    EXPECT_EQ(fa.packets_replayed, fb.packets_replayed);
    EXPECT_EQ(fa.packets_lost_retention, fb.packets_lost_retention);
  }
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (std::size_t i = 0; i < a.stages.size(); ++i) {
    EXPECT_EQ(a.stages[i].packets_processed, b.stages[i].packets_processed);
    EXPECT_EQ(a.stages[i].packets_emitted, b.stages[i].packets_emitted);
    EXPECT_EQ(a.stages[i].packets_dropped, b.stages[i].packets_dropped);
  }
}

}  // namespace
}  // namespace gates::apps::scenarios
