// Failure-path integration: every layer surfaces a useful error instead of
// crashing when its inputs are broken.
#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/registration.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/grid/launcher.hpp"

namespace gates {
namespace {

struct GridFixture {
  grid::ResourceDirectory directory;
  grid::RepositoryRegistry repos;
  grid::Deployer deployer{directory, repos, grid::ProcessorRegistry::global()};
  grid::Launcher launcher{deployer, grid::GeneratorRegistry::global()};

  GridFixture() { apps::register_all(); }
};

const char* config_with_code(const std::string& code) {
  static std::string text;
  text = R"(<application name="x"><stages><stage name="s" code=")" + code +
         R"("/></stages><sources><source target="s" count="10"/></sources></application>)";
  return text.c_str();
}

TEST(FailureInjection, UnknownProcessorUriFailsAtDeployment) {
  GridFixture f;
  f.directory.register_node("n0", {});
  auto app = f.launcher.launch_text(config_with_code("builtin://no-such-stage"));
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), StatusCode::kNotFound);
  EXPECT_NE(app.status().message().find("no-such-stage"), std::string::npos);
}

TEST(FailureInjection, UnknownRepositoryFailsAtDeployment) {
  GridFixture f;
  f.directory.register_node("n0", {});
  auto app = f.launcher.launch_text(config_with_code("repo://ghost/path"));
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), StatusCode::kNotFound);
}

TEST(FailureInjection, InsufficientResourcesFailDeployment) {
  GridFixture f;
  grid::ResourceSpec weak;
  weak.cpu_factor = 0.1;
  f.directory.register_node("weak", weak);
  const char* config = R"(
    <application><stages>
      <stage name="s" code="builtin://count-samps-sink">
        <requirement min-cpu="8.0"/>
      </stage>
    </stages><sources><source target="s" count="10"/></sources></application>)";
  auto app = f.launcher.launch_text(config);
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), StatusCode::kResourceExhausted);
}

TEST(FailureInjection, PinnedNodeOfflineFailsDeployment) {
  GridFixture f;
  f.directory.register_node("n0", {});
  f.directory.register_node("n1", {});
  ASSERT_TRUE(f.directory.set_available(1, false).is_ok());
  const char* config = R"(
    <application><stages>
      <stage name="s" code="builtin://count-samps-sink">
        <placement node="1"/>
      </stage>
    </stages><sources><source target="s" count="10"/></sources></application>)";
  auto app = f.launcher.launch_text(config);
  ASSERT_FALSE(app.ok());
  EXPECT_EQ(app.status().code(), StatusCode::kFailedPrecondition);
}

TEST(FailureInjection, ProcessorThrowingInInitPropagates) {
  class ThrowingProcessor : public core::StreamProcessor {
   public:
    void init(core::ProcessorContext&) override {
      throw std::runtime_error("bad configuration");
    }
    void process(const core::Packet&, core::Emitter&) override {}
    std::string name() const override { return "throwing"; }
  };
  core::PipelineSpec spec;
  core::StageSpec s;
  s.name = "s";
  s.factory = [] { return std::make_unique<ThrowingProcessor>(); };
  spec.stages = {std::move(s)};
  core::SourceSpec src;
  src.total_packets = 1;
  spec.sources = {src};
  core::Placement placement;
  placement.stage_nodes = {0};
  core::SimEngine engine(std::move(spec), std::move(placement), {}, {}, {});
  EXPECT_THROW((void)engine.run(), std::runtime_error);
}

TEST(FailureInjection, SummaryStageRejectsZeroEmitEvery) {
  core::PipelineSpec spec;
  core::StageSpec s;
  s.name = "s";
  s.processor_uri = "builtin://count-samps-summary";
  s.properties.set("emit-every", "0");
  auto factory = grid::ProcessorRegistry::global().lookup(
      "count-samps-summary");
  apps::register_all();
  factory = grid::ProcessorRegistry::global().lookup("count-samps-summary");
  ASSERT_TRUE(factory.ok());
  s.factory = *factory;
  spec.stages = {std::move(s)};
  core::SourceSpec src;
  src.total_packets = 1;
  spec.sources = {src};
  core::Placement placement;
  placement.stage_nodes = {0};
  core::SimEngine engine(std::move(spec), std::move(placement), {}, {}, {});
  EXPECT_THROW((void)engine.run(), std::logic_error);
}

TEST(FailureInjection, DropPolicyCountsLossOnBoundedLinkQueues) {
  // With an explicitly bounded link queue and no backpressure management,
  // emit() drops are counted rather than silently lost.
  class Flooder : public core::StreamProcessor {
   public:
    void init(core::ProcessorContext&) override {}
    void process(const core::Packet& packet, core::Emitter& emitter) override {
      for (int i = 0; i < 50; ++i) emitter.emit(packet);
    }
    std::string name() const override { return "flooder"; }
  };
  core::PipelineSpec spec;
  core::StageSpec flooder;
  flooder.name = "flooder";
  flooder.send_buffer_seconds = 1e9;  // never blocks itself
  flooder.factory = [] { return std::make_unique<Flooder>(); };
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] {
    class Sink : public core::StreamProcessor {
     public:
      void init(core::ProcessorContext&) override {}
      void process(const core::Packet&, core::Emitter&) override {}
      std::string name() const override { return "sink"; }
    };
    return std::make_unique<Sink>();
  };
  spec.stages = {std::move(flooder), std::move(sink)};
  spec.edges = {{0, 1, 0}};
  core::SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = 100;
  src.packet_bytes = 1000;
  spec.sources = {src};
  core::Placement placement;
  placement.stage_nodes = {0, 1};
  net::Topology topology;
  topology.set_pair(0, 1, {100.0, 0.0});  // very slow
  core::SimEngine::Config cfg;
  cfg.max_time = 50;
  // Bench-style runs keep link queues unbounded; here we bound them via a
  // pair link with a tiny message cap by reaching into the topology…
  // SimLink caps are engine-internal, so instead verify the no-loss default:
  core::SimEngine engine(std::move(spec), std::move(placement), {}, topology,
                         cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const auto* report = engine.report().stage("flooder");
  ASSERT_NE(report, nullptr);
  EXPECT_EQ(report->packets_dropped, 0u);  // unbounded queues: no loss
}

TEST(FailureInjection, MalformedXmlGivesLocation) {
  GridFixture f;
  f.directory.register_node("n0", {});
  auto app = f.launcher.launch_text("<application>\n  <stages>\n</wrong>");
  ASSERT_FALSE(app.ok());
  EXPECT_NE(app.status().message().find("line"), std::string::npos);
}

}  // namespace
}  // namespace gates
