// Full middleware path: XML config -> Launcher -> Deployer (resource
// discovery, service containers, code upload) -> SimEngine run -> results.
#include <gtest/gtest.h>

#include "gates/apps/accuracy.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/apps/registration.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/grid/launcher.hpp"

namespace gates {
namespace {

const char* kCountSampsConfig = R"(
<application name="count-samps-demo">
  <stages>
    <stage name="summary0" code="builtin://count-samps-summary">
      <param name="emit-every" value="500"/>
      <param name="track-exact" value="true"/>
      <placement node="1"/>
    </stage>
    <stage name="summary1" code="builtin://count-samps-summary">
      <param name="emit-every" value="500"/>
      <param name="track-exact" value="true"/>
      <placement node="2"/>
    </stage>
    <stage name="merge" code="builtin://count-samps-sink">
      <param name="top-k" value="10"/>
      <placement node="0"/>
    </stage>
  </stages>
  <edges>
    <edge from="summary0" to="merge"/>
    <edge from="summary1" to="merge"/>
  </edges>
  <sources>
    <source name="s0" stream="0" rate="1000" count="4000" target="summary0"
            node="1" type="zipf-u64">
      <param name="universe" value="1000"/>
      <param name="theta" value="1.1"/>
    </source>
    <source name="s1" stream="1" rate="1000" count="4000" target="summary1"
            node="2" type="zipf-u64">
      <param name="universe" value="1000"/>
      <param name="theta" value="1.1"/>
    </source>
  </sources>
</application>)";

struct GridFixture {
  grid::ResourceDirectory directory;
  grid::RepositoryRegistry repos;
  grid::Deployer deployer{directory, repos, grid::ProcessorRegistry::global()};
  grid::Launcher launcher{deployer, grid::GeneratorRegistry::global()};

  GridFixture() {
    apps::register_all();
    directory.register_node("central", {});
    directory.register_node("edge-a", {});
    directory.register_node("edge-b", {});
  }
};

TEST(XmlToRun, CountSampsEndToEnd) {
  GridFixture f;
  f.launcher.host_config("count-samps", kCountSampsConfig);
  auto app = f.launcher.launch_url("config://count-samps");
  ASSERT_TRUE(app.ok()) << app.status().to_string();

  // Placement pins honored.
  EXPECT_EQ(app->deployment.placement.stage_nodes,
            (std::vector<NodeId>{1, 2, 0}));
  EXPECT_EQ(app->deployment.containers.size(), 3u);

  core::SimEngine engine(app->pipeline, app->deployment.placement,
                         app->deployment.hosts, {}, {});
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  // Service instances transitioned to RUNNING when the engine built the
  // processors.
  for (auto* instance : app->deployment.instances) {
    EXPECT_EQ(instance->state(), grid::GatesServiceInstance::State::kRunning);
  }

  auto& sink = dynamic_cast<apps::CountSampsSinkProcessor&>(engine.processor(2));
  EXPECT_EQ(sink.summaries_received(), 18u);  // (8 periodic + 1 final) x 2
  apps::ExactCounter exact;
  for (int i = 0; i < 2; ++i) {
    auto& summary =
        dynamic_cast<apps::CountSampsSummaryProcessor&>(engine.processor(i));
    ASSERT_NE(summary.exact(), nullptr);
    exact.merge(*summary.exact());
  }
  auto breakdown = apps::top_k_accuracy(sink.result(), exact.top_k(10));
  EXPECT_GT(breakdown.score(), 80);
}

TEST(XmlToRun, SameConfigRunsOnBothEngines) {
  // The rt engine consumes the identical launched application.
  GridFixture f;
  auto app = f.launcher.launch_text(kCountSampsConfig);
  ASSERT_TRUE(app.ok());
  // Shrink the workload for wall-clock sanity.
  for (auto& src : app->pipeline.sources) {
    src.total_packets = 500;
    src.rate_hz = 5000;
  }
  core::RtEngine engine(app->pipeline, app->deployment.placement,
                        app->deployment.hosts, {}, {});
  ASSERT_TRUE(engine.run().is_ok());
  EXPECT_TRUE(engine.report().completed);
  auto& sink = dynamic_cast<apps::CountSampsSinkProcessor&>(engine.processor(2));
  EXPECT_GT(sink.summaries_received(), 0u);
}

}  // namespace
}  // namespace gates
