// Real-time engine soak: a wider pipeline on real threads under load, with
// throttled links, tiny queues and adaptation all active at once. The
// assertions are about integrity (no loss, clean shutdown), not timing.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "gates/core/rt_engine.hpp"

namespace gates::core {
namespace {

class RelayCounter : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    emitter.emit(packet);
  }
  std::string name() const override { return "relay-counter"; }
  std::atomic<std::uint64_t> packets_{0};
};

TEST(RtSoak, WideFanInUnderBackpressure) {
  constexpr int kWorkers = 6;
  constexpr std::uint64_t kPacketsEach = 3000;

  PipelineSpec spec;
  Placement placement;
  for (int i = 0; i < kWorkers; ++i) {
    StageSpec worker;
    worker.name = "worker" + std::to_string(i);
    worker.factory = [] { return std::make_unique<RelayCounter>(); };
    worker.input_capacity = 8;  // deliberately tiny: constant backpressure
    spec.stages.push_back(std::move(worker));
    placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<RelayCounter>(); };
  sink.input_capacity = 16;
  spec.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);
  for (int i = 0; i < kWorkers; ++i) {
    spec.edges.push_back({static_cast<std::size_t>(i),
                          static_cast<std::size_t>(kWorkers), 0});
  }
  for (int i = 0; i < kWorkers; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 20000;
    src.total_packets = kPacketsEach;
    src.packet_bytes = 32;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    spec.sources.push_back(src);
  }

  net::Topology topology;
  topology.set_shared_ingress(0, {2e6, 0.0});  // shared, throttled ingress

  RtEngine::Config config;
  config.control_period = 0.01;
  config.max_wall_time = 60;
  config.wire.per_message_overhead = 0;
  config.wire.per_record_overhead = 0;
  RtEngine engine(std::move(spec), std::move(placement), {}, topology, config);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  std::uint64_t forwarded = 0;
  for (int i = 0; i < kWorkers; ++i) {
    auto& worker = dynamic_cast<RelayCounter&>(engine.processor(i));
    EXPECT_EQ(worker.packets_.load(), kPacketsEach);
    forwarded += worker.packets_.load();
  }
  auto& sink_proc = dynamic_cast<RelayCounter&>(engine.processor(kWorkers));
  EXPECT_EQ(sink_proc.packets_.load(), forwarded);  // nothing lost anywhere
  const auto* sink_report = engine.report().stage("sink");
  ASSERT_NE(sink_report, nullptr);
  EXPECT_EQ(sink_report->packets_dropped, 0u);
}

TEST(RtSoak, RepeatedShortRunsShutDownCleanly) {
  // Engine construction/teardown loops: catches leaked threads and races in
  // the shutdown path (the destructor force-stops anything still alive).
  for (int round = 0; round < 5; ++round) {
    PipelineSpec spec;
    StageSpec stage;
    stage.name = "s";
    stage.factory = [] { return std::make_unique<RelayCounter>(); };
    spec.stages.push_back(std::move(stage));
    SourceSpec src;
    src.rate_hz = 5000;
    src.total_packets = 500;
    spec.sources.push_back(src);
    Placement placement;
    placement.stage_nodes = {0};
    RtEngine engine(std::move(spec), std::move(placement), {}, {}, {});
    ASSERT_TRUE(engine.run().is_ok());
    EXPECT_TRUE(engine.report().completed);
  }
}

}  // namespace
}  // namespace gates::core
