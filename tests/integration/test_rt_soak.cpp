// Real-time engine soak: a wider pipeline on real threads under load, with
// throttled links, tiny queues and adaptation all active at once. The
// assertions are about integrity (no loss, clean shutdown), not timing.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include "gates/core/rt_engine.hpp"

namespace gates::core {
namespace {

class RelayCounter : public StreamProcessor {
 public:
  void init(ProcessorContext&) override {}
  void process(const Packet& packet, Emitter& emitter) override {
    ++packets_;
    emitter.emit(packet);
  }
  std::string name() const override { return "relay-counter"; }
  std::atomic<std::uint64_t> packets_{0};
};

TEST(RtSoak, WideFanInUnderBackpressure) {
  constexpr int kWorkers = 6;
  constexpr std::uint64_t kPacketsEach = 3000;

  PipelineSpec spec;
  Placement placement;
  for (int i = 0; i < kWorkers; ++i) {
    StageSpec worker;
    worker.name = "worker" + std::to_string(i);
    worker.factory = [] { return std::make_unique<RelayCounter>(); };
    worker.input_capacity = 8;  // deliberately tiny: constant backpressure
    spec.stages.push_back(std::move(worker));
    placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<RelayCounter>(); };
  sink.input_capacity = 16;
  spec.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);
  for (int i = 0; i < kWorkers; ++i) {
    spec.edges.push_back({static_cast<std::size_t>(i),
                          static_cast<std::size_t>(kWorkers), 0});
  }
  for (int i = 0; i < kWorkers; ++i) {
    SourceSpec src;
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 20000;
    src.total_packets = kPacketsEach;
    src.packet_bytes = 32;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    spec.sources.push_back(src);
  }

  net::Topology topology;
  topology.set_shared_ingress(0, {2e6, 0.0});  // shared, throttled ingress

  RtEngine::Config config;
  config.control_period = 0.01;
  config.max_wall_time = 60;
  config.wire.per_message_overhead = 0;
  config.wire.per_record_overhead = 0;
  RtEngine engine(std::move(spec), std::move(placement), {}, topology, config);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  std::uint64_t forwarded = 0;
  for (int i = 0; i < kWorkers; ++i) {
    auto& worker = dynamic_cast<RelayCounter&>(engine.processor(i));
    EXPECT_EQ(worker.packets_.load(), kPacketsEach);
    forwarded += worker.packets_.load();
  }
  auto& sink_proc = dynamic_cast<RelayCounter&>(engine.processor(kWorkers));
  EXPECT_EQ(sink_proc.packets_.load(), forwarded);  // nothing lost anywhere
  const auto* sink_report = engine.report().stage("sink");
  ASSERT_NE(sink_report, nullptr);
  EXPECT_EQ(sink_report->packets_dropped, 0u);
}

TEST(RtSoak, RepeatedShortRunsShutDownCleanly) {
  // Engine construction/teardown loops: catches leaked threads and races in
  // the shutdown path (the destructor force-stops anything still alive).
  for (int round = 0; round < 5; ++round) {
    PipelineSpec spec;
    StageSpec stage;
    stage.name = "s";
    stage.factory = [] { return std::make_unique<RelayCounter>(); };
    spec.stages.push_back(std::move(stage));
    SourceSpec src;
    src.rate_hz = 5000;
    src.total_packets = 500;
    spec.sources.push_back(src);
    Placement placement;
    placement.stage_nodes = {0};
    RtEngine engine(std::move(spec), std::move(placement), {}, {}, {});
    ASSERT_TRUE(engine.run().is_ok());
    EXPECT_TRUE(engine.report().completed);
  }
}

/// Fan-in fixture shared by the failover soaks: `workers` relay stages on
/// nodes 1..workers feeding a sink on node 0, one bounded source each.
struct FanIn {
  PipelineSpec spec;
  Placement placement;
  std::uint64_t total = 0;

  FanIn(int workers, std::uint64_t packets_each) {
    for (int i = 0; i < workers; ++i) {
      StageSpec worker;
      worker.name = "worker" + std::to_string(i);
      worker.factory = [] { return std::make_unique<RelayCounter>(); };
      spec.stages.push_back(std::move(worker));
      placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
    }
    StageSpec sink;
    sink.name = "sink";
    sink.factory = [] { return std::make_unique<RelayCounter>(); };
    spec.stages.push_back(std::move(sink));
    placement.stage_nodes.push_back(0);
    for (int i = 0; i < workers; ++i) {
      spec.edges.push_back({static_cast<std::size_t>(i),
                            static_cast<std::size_t>(workers), 0});
      SourceSpec src;
      src.stream = static_cast<StreamId>(i);
      src.rate_hz = 5000;
      src.total_packets = packets_each;
      src.packet_bytes = 32;
      src.location = static_cast<NodeId>(i + 1);
      src.target_stage = static_cast<std::size_t>(i);
      spec.sources.push_back(src);
      total += packets_each;
    }
  }
};

RtEngine::Config failover_soak_config() {
  RtEngine::Config config;
  config.control_period = 0.01;
  config.max_wall_time = 60;
  config.failover.enabled = true;
  config.failover.heartbeat_period = 0.05;
  config.failover.suspicion_beats = 2;
  config.failover.replay_buffer_packets = 4096;  // deep enough: no eviction
  return config;
}

TEST(RtSoak, ScheduledNodeFailureRecoversMidRun) {
  FanIn f(3, 2000);
  RtEngine engine(std::move(f.spec), std::move(f.placement), {}, {},
                  failover_soak_config());
  engine.schedule_node_failure(1, 0.1);  // worker0's node, mid-stream
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& rec = engine.report().failures[0];
  EXPECT_EQ(rec.outcome, FailureReport::Outcome::kRecovered);
  EXPECT_EQ(rec.node, 1u);
  EXPECT_GE(rec.detection_latency(), 0.0);

  // At-least-once across the restart: every packet either reached the sink
  // or was evicted from retention (none here, the buffer is deep); replay
  // bounds the duplicate window.
  auto& sink = dynamic_cast<RelayCounter&>(engine.processor(3));
  const std::uint64_t seen = sink.packets_.load();
  EXPECT_GE(seen + rec.packets_lost_retention, f.total);
  EXPECT_LE(seen, f.total + rec.packets_replayed);
}

TEST(RtSoak, KillStageFromAnotherThreadRecovers) {
  FanIn f(2, 2000);
  RtEngine engine(std::move(f.spec), std::move(f.placement), {}, {},
                  failover_soak_config());
  std::thread killer([&engine] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    engine.kill_stage(1);
  });
  Status status = engine.run();
  killer.join();
  ASSERT_TRUE(status.is_ok());
  ASSERT_TRUE(engine.report().completed);

  ASSERT_EQ(engine.report().failures.size(), 1u);
  const FailureReport& rec = engine.report().failures[0];
  EXPECT_EQ(rec.outcome, FailureReport::Outcome::kRecovered);
  EXPECT_EQ(rec.stage, "worker1");

  auto& sink = dynamic_cast<RelayCounter&>(engine.processor(2));
  const std::uint64_t seen = sink.packets_.load();
  EXPECT_GE(seen + rec.packets_lost_retention, f.total);
  EXPECT_LE(seen, f.total + rec.packets_replayed);
}

TEST(RtSoak, DisabledFailoverStillDegradesViaEosOnBehalf) {
  FanIn f(2, 2000);
  RtEngine::Config config;
  config.control_period = 0.01;
  config.max_wall_time = 60;
  RtEngine engine(std::move(f.spec), std::move(f.placement), {}, {}, config);
  engine.schedule_node_failure(1, 0.05);
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);
  ASSERT_EQ(engine.report().failures.size(), 1u);
  EXPECT_EQ(engine.report().failures[0].outcome,
            FailureReport::Outcome::kEosOnBehalf);
  // The survivor's stream arrives whole; the dead worker contributes only
  // its pre-crash output.
  auto& sink = dynamic_cast<RelayCounter&>(engine.processor(2));
  EXPECT_GE(sink.packets_.load(), 2000u);
  EXPECT_LT(sink.packets_.load(), f.total);
}

}  // namespace
}  // namespace gates::core
