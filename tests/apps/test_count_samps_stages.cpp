// count-samps stage processors, exercised through small SimEngine runs.
#include "gates/apps/count_samps.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/scenarios.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::apps {
namespace {

struct Built {
  core::PipelineSpec spec;
  core::Placement placement;
  core::HostModel hosts;
  net::Topology topology;
};

core::PacketGenerator zipf_gen() {
  auto zipf = std::make_shared<ZipfGenerator>(500, 1.2);
  return [zipf](std::uint64_t, Rng& rng) {
    core::Packet p;
    Serializer s(p.payload);
    s.write_u64(zipf->next(rng));
    return p;
  };
}

Built summary_to_sink(std::uint64_t items, std::uint64_t emit_every) {
  Built b;
  core::StageSpec summary;
  summary.name = "summary";
  summary.factory = [] { return std::make_unique<CountSampsSummaryProcessor>(); };
  summary.properties.set("emit-every", std::to_string(emit_every));
  summary.properties.set("track-exact", "true");
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountSampsSinkProcessor>(); };
  b.spec.stages = {std::move(summary), std::move(sink)};
  b.spec.edges = {{0, 1, 0}};
  core::SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = items;
  src.generator = zipf_gen();
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  return b;
}

TEST(CountSampsStages, SummariesFlowAndMerge) {
  auto b = summary_to_sink(5000, 1000);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  auto& summary =
      dynamic_cast<CountSampsSummaryProcessor&>(engine.processor(0));
  auto& sink = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(1));
  // 5 periodic emissions plus the final flush.
  EXPECT_EQ(summary.summaries_emitted(), 6u);
  EXPECT_EQ(sink.summaries_received(), 6u);
  EXPECT_EQ(sink.raw_records_received(), 0u);
  EXPECT_FALSE(sink.result().empty());
}

TEST(CountSampsStages, ReportedTopKMatchesExactOnSkewedStream) {
  auto b = summary_to_sink(20000, 2500);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& summary =
      dynamic_cast<CountSampsSummaryProcessor&>(engine.processor(0));
  auto& sink = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(1));
  ASSERT_NE(summary.exact(), nullptr);
  auto breakdown =
      top_k_accuracy(sink.result(), summary.exact()->top_k(sink.top_k()));
  EXPECT_GT(breakdown.score(), 85.0);
}

TEST(CountSampsStages, SinkHandlesRawDataDirectly) {
  Built b;
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountSampsSinkProcessor>(); };
  sink.properties.set("track-exact", "true");
  b.spec.stages = {std::move(sink)};
  core::SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = 10000;
  src.generator = zipf_gen();
  b.spec.sources = {src};
  b.placement.stage_nodes = {0};
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& proc = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(0));
  EXPECT_EQ(proc.raw_records_received(), 10000u);
  EXPECT_EQ(proc.summaries_received(), 0u);
  ASSERT_NE(proc.exact(), nullptr);
  auto breakdown =
      top_k_accuracy(proc.result(), proc.exact()->top_k(proc.top_k()));
  EXPECT_GT(breakdown.score(), 90.0);
}

TEST(CountSampsStages, SummarySizeParameterBoundsEmittedItems) {
  auto b = summary_to_sink(4000, 1000);
  b.spec.stages[0].properties.set("summary-initial", "25");
  b.spec.stages[0].properties.set("summary-min", "25");
  b.spec.stages[0].properties.set("summary-max", "25");
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const auto* report = engine.report().stage("summary");
  ASSERT_NE(report, nullptr);
  // Each emitted summary carries at most 25 records.
  EXPECT_GT(report->packets_emitted, 0u);
  const auto* sink_report = engine.report().stage("sink");
  EXPECT_LE(sink_report->records_processed,
            report->packets_emitted * 25u);
}

TEST(CountSampsStages, MalformedSummaryIsDroppedNotFatal) {
  // Feed the sink a data-kind packet with garbage and a summary-kind packet
  // with garbage: the first sketches bytes, the second logs and drops.
  Built b;
  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountSampsSinkProcessor>(); };
  b.spec.stages = {std::move(sink)};
  core::SourceSpec src;
  src.rate_hz = 100;
  src.total_packets = 10;
  src.generator = [](std::uint64_t seq, Rng&) {
    core::Packet p;
    p.kind = core::kPacketKindSummary;
    Serializer s(p.payload);
    s.write_u8(static_cast<std::uint8_t>(seq));  // truncated summary
    return p;
  };
  b.spec.sources = {src};
  b.placement.stage_nodes = {0};
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& proc = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(0));
  EXPECT_EQ(proc.summaries_received(), 0u);
  EXPECT_TRUE(proc.result().empty());
}

TEST(CountSampsScenario, DistributedBeatsCentralizedOnSharedIngress) {
  // Scaled-down Fig. 5: the ordering must hold even at 1/10 scale.
  scenarios::CountSampsOptions base;
  base.items_per_source = 2500;
  base.emit_every = 500;
  auto centralized = base;
  centralized.distributed = false;
  auto rc = scenarios::run_count_samps(centralized);
  auto rd = scenarios::run_count_samps(base);
  ASSERT_TRUE(rc.completed);
  ASSERT_TRUE(rd.completed);
  EXPECT_LT(rd.execution_time, rc.execution_time);
  EXPECT_GT(rc.accuracy.score(), 90);
  EXPECT_GT(rd.accuracy.score(), 80);
}

}  // namespace
}  // namespace gates::apps
