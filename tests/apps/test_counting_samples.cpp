#include "gates/apps/counting_samples.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "gates/common/zipf.hpp"

namespace gates::apps {
namespace {

TEST(CountingSamples, ExactWhileUnderFootprint) {
  CountingSamples cs(100, Rng(1));
  for (int i = 0; i < 10; ++i) {
    for (int copy = 0; copy <= i; ++copy) cs.insert(i);
  }
  EXPECT_DOUBLE_EQ(cs.tau(), 1.0);
  for (std::uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(cs.raw_count(i), i + 1);
    EXPECT_DOUBLE_EQ(cs.estimated_count(i), static_cast<double>(i + 1));
  }
  EXPECT_EQ(cs.items_seen(), 55u);
}

TEST(CountingSamples, OverflowRaisesTauAndBoundsFootprint) {
  CountingSamples cs(50, Rng(2));
  for (std::uint64_t v = 0; v < 1000; ++v) cs.insert(v);  // all distinct
  EXPECT_LE(cs.size(), 50u);
  EXPECT_GT(cs.tau(), 1.0);
}

TEST(CountingSamples, AbsentValueHasZeroCount) {
  CountingSamples cs(10, Rng(3));
  cs.insert(1);
  EXPECT_EQ(cs.raw_count(99), 0u);
  EXPECT_DOUBLE_EQ(cs.estimated_count(99), 0);
}

TEST(CountingSamples, TopKOrderedByEstimate) {
  CountingSamples cs(100, Rng(4));
  for (int i = 0; i < 30; ++i) cs.insert(7);
  for (int i = 0; i < 20; ++i) cs.insert(8);
  for (int i = 0; i < 10; ++i) cs.insert(9);
  auto top = cs.top_k(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].value, 7u);
  EXPECT_EQ(top[1].value, 8u);
}

TEST(CountingSamples, TopKTiesBreakByValue) {
  CountingSamples cs(100, Rng(5));
  cs.insert(3);
  cs.insert(1);
  cs.insert(2);
  auto top = cs.top_k(3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].value, 1u);
  EXPECT_EQ(top[1].value, 2u);
  EXPECT_EQ(top[2].value, 3u);
}

TEST(CountingSamples, SetFootprintShrinksSample) {
  CountingSamples cs(200, Rng(6));
  for (std::uint64_t v = 0; v < 200; ++v) cs.insert(v);
  ASSERT_EQ(cs.size(), 200u);
  cs.set_footprint(20);
  EXPECT_LE(cs.size(), 20u);
  EXPECT_GT(cs.tau(), 1.0);
}

TEST(CountingSamples, InvalidConstruction) {
  EXPECT_THROW(CountingSamples(0, Rng(1)), std::logic_error);
  EXPECT_THROW(CountingSamples(10, Rng(1), 1.0), std::logic_error);
}

// Property sweep: on skewed streams, heavy hitters survive the sketch and
// their estimates stay within a tau-scaled error band.
class CountingSamplesAccuracy : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(CountingSamplesAccuracy, HeavyHittersSurviveAndEstimatesAreClose) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  ZipfGenerator zipf(2000, 1.2);
  CountingSamples cs(128, rng.fork(1));
  ExactCounter exact;
  Rng data_rng = rng.fork(2);
  for (int i = 0; i < 50000; ++i) {
    const std::uint64_t v = zipf.next(data_rng);
    cs.insert(v);
    exact.insert(v);
  }
  auto true_top = exact.top_k(5);
  int found = 0;
  for (const auto& t : true_top) {
    const double estimate = cs.estimated_count(t.value);
    if (estimate > 0) {
      ++found;
      // A value's missed-before-entry count is geometric with mean ~tau (the
      // 0.418*tau term only corrects the expectation), so individual
      // estimates can be several tau off; bound loosely by both an absolute
      // tau multiple and a relative error.
      const double tolerance = std::max(8 * cs.tau(), 0.5 * t.count);
      EXPECT_NEAR(estimate, t.count, tolerance)
          << "value " << t.value << " seed " << seed;
    }
  }
  EXPECT_GE(found, 4) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, CountingSamplesAccuracy,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(ExactCounter, CountsAndTopK) {
  ExactCounter c;
  for (int i = 0; i < 5; ++i) c.insert(1);
  for (int i = 0; i < 3; ++i) c.insert(2);
  EXPECT_EQ(c.count(1), 5u);
  EXPECT_EQ(c.count(99), 0u);
  EXPECT_EQ(c.items_seen(), 8u);
  EXPECT_EQ(c.distinct(), 2u);
  auto top = c.top_k(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_EQ(top[0].value, 1u);
  EXPECT_DOUBLE_EQ(top[0].count, 5);
}

TEST(ExactCounter, MergeAddsCounts) {
  ExactCounter a, b;
  a.insert(1);
  a.insert(1);
  b.insert(1);
  b.insert(2);
  a.merge(b);
  EXPECT_EQ(a.count(1), 3u);
  EXPECT_EQ(a.count(2), 1u);
  EXPECT_EQ(a.items_seen(), 4u);
}

TEST(StreamSummary, SerializeRoundTrip) {
  StreamSummary s;
  s.stream = 3;
  s.epoch = 42;
  s.items = {{100, 5.5}, {200, 2.25}};
  auto decoded = StreamSummary::deserialize(s.serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->stream, 3u);
  EXPECT_EQ(decoded->epoch, 42u);
  ASSERT_EQ(decoded->items.size(), 2u);
  EXPECT_EQ(decoded->items[0], (ValueCount{100, 5.5}));
  EXPECT_EQ(decoded->items[1], (ValueCount{200, 2.25}));
}

TEST(StreamSummary, EmptySummaryRoundTrips) {
  StreamSummary s;
  auto decoded = StreamSummary::deserialize(s.serialize());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->items.empty());
}

TEST(StreamSummary, TruncatedBufferRejected) {
  StreamSummary s;
  s.items = {{1, 1.0}};
  ByteBuffer buffer = s.serialize();
  buffer.resize(buffer.size() - 4);
  EXPECT_FALSE(StreamSummary::deserialize(buffer).ok());
}

TEST(StreamSummary, TrailingBytesRejected) {
  StreamSummary s;
  ByteBuffer buffer = s.serialize();
  std::uint8_t junk = 0;
  buffer.append(&junk, 1);
  EXPECT_FALSE(StreamSummary::deserialize(buffer).ok());
}

TEST(SummaryMerger, LatestEpochWinsPerStream) {
  SummaryMerger merger;
  StreamSummary old_summary;
  old_summary.stream = 0;
  old_summary.epoch = 1;
  old_summary.items = {{5, 100.0}};
  StreamSummary new_summary;
  new_summary.stream = 0;
  new_summary.epoch = 2;
  new_summary.items = {{5, 150.0}};
  merger.add(old_summary);
  merger.add(new_summary);
  merger.add(old_summary);  // stale replay ignored
  auto top = merger.top_k(1);
  ASSERT_EQ(top.size(), 1u);
  EXPECT_DOUBLE_EQ(top[0].count, 150.0);  // not 100, not 250
  EXPECT_EQ(merger.streams(), 1u);
}

TEST(SummaryMerger, SumsAcrossStreams) {
  SummaryMerger merger;
  for (std::uint32_t stream = 0; stream < 3; ++stream) {
    StreamSummary s;
    s.stream = stream;
    s.epoch = 1;
    s.items = {{7, 10.0}, {stream + 100, 50.0}};
    merger.add(s);
  }
  auto top = merger.top_k(10);
  // Value 7 appears in all three streams: 30 total.
  auto it = std::find_if(top.begin(), top.end(),
                         [](const ValueCount& v) { return v.value == 7; });
  ASSERT_NE(it, top.end());
  EXPECT_DOUBLE_EQ(it->count, 30.0);
}

// -- checkpoint/restore (live migration) -------------------------------------

TEST(CountingSamples, SaveLoadContinuesTheExactStream) {
  // A restored sketch must be indistinguishable from one that was never
  // interrupted: same sample, same tau, and — because the rng position
  // travels — the same coin flips on every future insert.
  CountingSamples original(64, Rng(11));
  ZipfGenerator zipf(5000, 1.1);
  Rng data_rng(12);
  for (int i = 0; i < 20000; ++i) original.insert(zipf.next(data_rng));
  ASSERT_GT(original.tau(), 1.0);  // overflowed: rng position matters now

  ByteBuffer blob;
  core::StateWriter w(blob);
  original.save(w);
  CountingSamples restored(8, Rng(99));  // wrong everything, pre-load
  core::StateReader r(blob);
  ASSERT_TRUE(restored.load(r));
  ASSERT_TRUE(r.at_end());
  EXPECT_EQ(restored.footprint(), original.footprint());
  EXPECT_DOUBLE_EQ(restored.tau(), original.tau());
  EXPECT_EQ(restored.items_seen(), original.items_seen());
  EXPECT_EQ(restored.top_k(64), original.top_k(64));

  // Exact continuation: identical further input gives identical summaries,
  // including every probabilistic admission and diminishing pass.
  Rng tail_a(13);
  Rng tail_b(13);
  for (int i = 0; i < 20000; ++i) {
    original.insert(zipf.next(tail_a));
    restored.insert(zipf.next(tail_b));
  }
  EXPECT_DOUBLE_EQ(restored.tau(), original.tau());
  EXPECT_EQ(restored.top_k(64), original.top_k(64));
}

TEST(CountingSamples, LoadRejectsMalformedStateUntouched) {
  CountingSamples cs(32, Rng(5));
  for (int i = 0; i < 100; ++i) cs.insert(i % 7);
  const auto before = cs.top_k(32);

  ByteBuffer blob;
  core::StateWriter w(blob);
  cs.save(w);
  // Every truncation must fail cleanly and leave the target untouched
  // (all-or-nothing load — a half-applied sketch would silently corrupt
  // counts after a migration).
  for (std::size_t cut = 0; cut < blob.size(); ++cut) {
    core::StateReader r(blob.data(), cut);
    EXPECT_FALSE(cs.load(r)) << "accepted a " << cut << "-byte prefix";
    EXPECT_EQ(cs.top_k(32), before) << "mutated at cut " << cut;
  }
}

TEST(ExactCounter, SaveLoadRoundTrip) {
  ExactCounter c;
  for (int i = 0; i < 5; ++i) c.insert(1);
  for (int i = 0; i < 3; ++i) c.insert(2);
  ByteBuffer blob;
  core::StateWriter w(blob);
  c.save(w);
  ExactCounter out;
  out.insert(77);  // pre-existing state is overwritten wholesale
  core::StateReader r(blob);
  ASSERT_TRUE(out.load(r));
  EXPECT_EQ(out.count(1), 5u);
  EXPECT_EQ(out.count(2), 3u);
  EXPECT_EQ(out.count(77), 0u);
  EXPECT_EQ(out.items_seen(), 8u);
}

TEST(SummaryMerger, SaveLoadKeepsLatestEpochSemantics) {
  SummaryMerger m;
  m.add({1, 5, {{10, 3.0}}});
  m.add({2, 9, {{10, 2.0}, {20, 4.0}}});
  ByteBuffer blob;
  core::StateWriter w(blob);
  m.save(w);
  SummaryMerger out;
  core::StateReader r(blob);
  ASSERT_TRUE(out.load(r));
  EXPECT_EQ(out.streams(), 2u);
  EXPECT_EQ(out.top_k(8), m.top_k(8));
  // Epoch tracking survived: a stale epoch for stream 2 is still ignored.
  out.add({2, 8, {{99, 100.0}}});
  EXPECT_EQ(out.top_k(8), m.top_k(8));
}

TEST(StreamSummary, PayloadBytesScalesWithItems) {
  EXPECT_GT(StreamSummary::payload_bytes(100),
            StreamSummary::payload_bytes(10));
  // Matches the serialized size closely.
  StreamSummary s;
  for (std::uint64_t i = 0; i < 40; ++i) s.items.push_back({i, 1.0});
  const auto actual = s.serialize().size();
  const auto predicted = StreamSummary::payload_bytes(40);
  EXPECT_NEAR(static_cast<double>(actual), static_cast<double>(predicted), 4);
}

}  // namespace
}  // namespace gates::apps
