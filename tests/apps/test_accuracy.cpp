#include "gates/apps/accuracy.hpp"

#include <gtest/gtest.h>

namespace gates::apps {
namespace {

TEST(Accuracy, PerfectReportScoresHundred) {
  std::vector<ValueCount> exact = {{1, 100}, {2, 50}, {3, 25}};
  auto breakdown = top_k_accuracy(exact, exact);
  EXPECT_DOUBLE_EQ(breakdown.recall, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.frequency_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.score(), 100.0);
}

TEST(Accuracy, EmptyReportScoresZero) {
  std::vector<ValueCount> exact = {{1, 100}};
  auto breakdown = top_k_accuracy({}, exact);
  EXPECT_DOUBLE_EQ(breakdown.recall, 0);
  EXPECT_DOUBLE_EQ(breakdown.frequency_accuracy, 0);
  EXPECT_DOUBLE_EQ(breakdown.score(), 0);
}

TEST(Accuracy, EmptyTruthScoresZero) {
  auto breakdown = top_k_accuracy({{1, 5}}, {});
  EXPECT_DOUBLE_EQ(breakdown.score(), 0);
}

TEST(Accuracy, PartialRecall) {
  std::vector<ValueCount> exact = {{1, 100}, {2, 50}};
  std::vector<ValueCount> reported = {{1, 100}, {99, 40}};
  auto breakdown = top_k_accuracy(reported, exact);
  EXPECT_DOUBLE_EQ(breakdown.recall, 0.5);
  EXPECT_DOUBLE_EQ(breakdown.frequency_accuracy, 1.0);
  EXPECT_DOUBLE_EQ(breakdown.score(), 75.0);
}

TEST(Accuracy, FrequencyErrorReducesScore) {
  std::vector<ValueCount> exact = {{1, 100}};
  std::vector<ValueCount> reported = {{1, 80}};  // 20% off
  auto breakdown = top_k_accuracy(reported, exact);
  EXPECT_DOUBLE_EQ(breakdown.recall, 1.0);
  EXPECT_NEAR(breakdown.frequency_accuracy, 0.8, 1e-12);
}

TEST(Accuracy, OverestimateSymmetricToUnderestimate) {
  std::vector<ValueCount> exact = {{1, 100}};
  auto over = top_k_accuracy({{1, 120}}, exact);
  auto under = top_k_accuracy({{1, 80}}, exact);
  EXPECT_NEAR(over.frequency_accuracy, under.frequency_accuracy, 1e-12);
}

TEST(Accuracy, WildEstimateClampsAtZero) {
  std::vector<ValueCount> exact = {{1, 10}};
  auto breakdown = top_k_accuracy({{1, 10000}}, exact);
  EXPECT_DOUBLE_EQ(breakdown.frequency_accuracy, 0.0);
  EXPECT_DOUBLE_EQ(breakdown.score(), 50.0);  // recall only
}

TEST(Accuracy, ExtraReportedValuesDoNotHurt) {
  std::vector<ValueCount> exact = {{1, 100}};
  std::vector<ValueCount> reported = {{1, 100}, {2, 90}, {3, 80}};
  auto breakdown = top_k_accuracy(reported, exact);
  EXPECT_DOUBLE_EQ(breakdown.score(), 100.0);
}

}  // namespace
}  // namespace gates::apps
