// Multi-level pipelines — the paper's "based upon the number and types of
// streams and the available resources, more than two stages could also be
// required" (§3.1): sites -> regional merges (relay) -> global merge.
#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/accuracy.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::apps {
namespace {

struct Built {
  core::PipelineSpec spec;
  core::Placement placement;
  core::HostModel hosts;
  net::Topology topology;
};

/// 4 sources -> 4 site summaries -> 2 regional merges (relay) -> global.
/// Nodes: 0 global, 1..2 regional, 3..6 edge.
Built three_level(std::uint64_t items_per_source) {
  Built b;
  auto zipf = std::make_shared<ZipfGenerator>(2000, 1.15);

  for (int i = 0; i < 4; ++i) {
    core::StageSpec summary;
    summary.name = "site" + std::to_string(i);
    summary.factory = [] {
      return std::make_unique<CountSampsSummaryProcessor>();
    };
    summary.properties.set("emit-every", "1000");
    summary.properties.set("track-exact", "true");
    b.spec.stages.push_back(std::move(summary));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(3 + i));
  }
  for (int r = 0; r < 2; ++r) {
    core::StageSpec regional;
    regional.name = "regional" + std::to_string(r);
    regional.factory = [] {
      return std::make_unique<CountSampsSinkProcessor>();
    };
    regional.properties.set("relay", "true");
    regional.properties.set("relay-size", "64");
    regional.properties.set("relay-every", "2");
    b.spec.stages.push_back(std::move(regional));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(1 + r));
  }
  core::StageSpec global;
  global.name = "global";
  global.factory = [] { return std::make_unique<CountSampsSinkProcessor>(); };
  b.spec.stages.push_back(std::move(global));
  b.placement.stage_nodes.push_back(0);

  // sites 0,1 -> regional 0 (index 4); sites 2,3 -> regional 1 (index 5);
  // regionals -> global (index 6).
  b.spec.edges = {{0, 4, 0}, {1, 4, 0}, {2, 5, 0}, {3, 5, 0}, {4, 6, 0}, {5, 6, 0}};

  for (int i = 0; i < 4; ++i) {
    core::SourceSpec src;
    src.name = "stream" + std::to_string(i);
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 1000;
    src.total_packets = items_per_source;
    src.location = static_cast<NodeId>(3 + i);
    src.target_stage = static_cast<std::size_t>(i);
    src.generator = [zipf](std::uint64_t, Rng& rng) {
      core::Packet p;
      Serializer s(p.payload);
      s.write_u64(zipf->next(rng));
      return p;
    };
    b.spec.sources.push_back(std::move(src));
  }
  return b;
}

TEST(Hierarchy, ThreeLevelPipelineCompletesAndAnswers) {
  auto b = three_level(5000);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  ASSERT_TRUE(engine.report().completed);

  auto& regional0 =
      dynamic_cast<CountSampsSinkProcessor&>(engine.processor(4));
  auto& regional1 =
      dynamic_cast<CountSampsSinkProcessor&>(engine.processor(5));
  auto& global = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(6));

  // Each site emits 5 periodic + 1 final summary; each regional receives
  // from two sites.
  EXPECT_EQ(regional0.summaries_received(), 12u);
  EXPECT_EQ(regional1.summaries_received(), 12u);
  EXPECT_GT(regional0.summaries_relayed(), 0u);
  // The global merge sees only relayed summaries, one stream per regional.
  EXPECT_EQ(global.summaries_received(),
            regional0.summaries_relayed() + regional1.summaries_relayed());
  EXPECT_FALSE(global.result().empty());
}

TEST(Hierarchy, GlobalAnswerMatchesExactTopK) {
  auto b = three_level(10000);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());

  ExactCounter exact;
  for (int i = 0; i < 4; ++i) {
    auto& site =
        dynamic_cast<CountSampsSummaryProcessor&>(engine.processor(i));
    ASSERT_NE(site.exact(), nullptr);
    exact.merge(*site.exact());
  }
  auto& global = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(6));
  const auto breakdown = top_k_accuracy(global.result(), exact.top_k(10));
  EXPECT_GT(breakdown.score(), 85.0);
}

TEST(Hierarchy, RelayedStreamsUseDistinctIds) {
  auto b = three_level(3000);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  // Stage ids 4 and 5 relay as streams 100004 and 100005; if they collided
  // the global merger would keep only one regional's latest view and lose
  // half the data. Verify both regional relays landed by checking the
  // global answer covers values that are regional-exclusive hot items.
  auto& global = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(6));
  ExactCounter exact;
  for (int i = 0; i < 4; ++i) {
    auto& site =
        dynamic_cast<CountSampsSummaryProcessor&>(engine.processor(i));
    exact.merge(*site.exact());
  }
  // The global top-1 count must be near the full 4-source exact count, not
  // half of it.
  const auto reported = global.result();
  const auto truth = exact.top_k(1);
  ASSERT_FALSE(reported.empty());
  ASSERT_FALSE(truth.empty());
  EXPECT_GT(reported[0].count, 0.7 * truth[0].count);
}

TEST(Hierarchy, RelayDisabledMergesSilently) {
  auto b = three_level(2000);
  b.spec.stages[4].properties.set("relay", "false");
  b.spec.stages[5].properties.set("relay", "false");
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& global = dynamic_cast<CountSampsSinkProcessor&>(engine.processor(6));
  EXPECT_EQ(global.summaries_received(), 0u);
  EXPECT_TRUE(global.result().empty());
}

}  // namespace
}  // namespace gates::apps
