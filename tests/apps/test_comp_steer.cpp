#include "gates/apps/comp_steer.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "gates/apps/scenarios.hpp"
#include "gates/common/serialize.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::apps {
namespace {

struct Built {
  core::PipelineSpec spec;
  core::Placement placement;
  core::HostModel hosts;
  net::Topology topology;
};

core::PacketGenerator values_gen(std::size_t n, double value = 0.5) {
  return [n, value](std::uint64_t, Rng&) {
    core::Packet p;
    Serializer s(p.payload);
    for (std::size_t i = 0; i < n; ++i) s.write_f64(value);
    p.records = n;
    return p;
  };
}

Built sampler_to_analyzer(double rate_fixed, std::uint64_t packets) {
  Built b;
  core::StageSpec sampler;
  sampler.name = "sampler";
  sampler.factory = [] { return std::make_unique<SamplerProcessor>(); };
  sampler.properties.set("rate-initial", std::to_string(rate_fixed));
  sampler.properties.set("rate-min", std::to_string(rate_fixed));
  sampler.properties.set("rate-max", std::to_string(rate_fixed));
  core::StageSpec analyzer;
  analyzer.name = "analyzer";
  analyzer.factory = [] { return std::make_unique<SteeringAnalyzerProcessor>(); };
  b.spec.stages = {std::move(sampler), std::move(analyzer)};
  b.spec.edges = {{0, 1, 0}};
  core::SourceSpec src;
  src.rate_hz = 1000;
  src.total_packets = packets;
  src.generator = values_gen(64);
  b.spec.sources = {src};
  b.placement.stage_nodes = {0, 1};
  return b;
}

TEST(Sampler, ForwardsConfiguredFraction) {
  auto b = sampler_to_analyzer(0.25, 2000);
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  auto& sampler = dynamic_cast<SamplerProcessor&>(engine.processor(0));
  EXPECT_EQ(sampler.values_seen(), 2000u * 64u);
  const double fraction = static_cast<double>(sampler.values_forwarded()) /
                          static_cast<double>(sampler.values_seen());
  EXPECT_NEAR(fraction, 0.25, 0.01);
}

TEST(Sampler, FullRateForwardsEverything) {
  auto b = sampler_to_analyzer(1.0, 500);
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  auto& sampler = dynamic_cast<SamplerProcessor&>(engine.processor(0));
  EXPECT_EQ(sampler.values_forwarded(), sampler.values_seen());
  auto& analyzer =
      dynamic_cast<SteeringAnalyzerProcessor&>(engine.processor(1));
  EXPECT_EQ(analyzer.bytes_analyzed(), 500u * 64u * 8u);
}

TEST(Sampler, TinyRateStillDeliversStatisticallyCorrectFraction) {
  auto b = sampler_to_analyzer(0.01, 5000);
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  auto& sampler = dynamic_cast<SamplerProcessor&>(engine.processor(0));
  const double fraction = static_cast<double>(sampler.values_forwarded()) /
                          static_cast<double>(sampler.values_seen());
  EXPECT_NEAR(fraction, 0.01, 0.005);
}

TEST(Analyzer, TracksFieldStatistics) {
  auto b = sampler_to_analyzer(1.0, 100);
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  auto& analyzer =
      dynamic_cast<SteeringAnalyzerProcessor&>(engine.processor(1));
  EXPECT_EQ(analyzer.field_stats().count(), 100u * 64u);
  EXPECT_NEAR(analyzer.field_stats().mean(), 0.5, 1e-9);
  EXPECT_TRUE(analyzer.actions().empty());  // constant field: no features
}

TEST(Analyzer, DetectsFeatureCrossings) {
  auto b = sampler_to_analyzer(1.0, 200);
  // First half low, second half high: one refine action.
  b.spec.sources[0].generator = [](std::uint64_t seq, Rng&) {
    core::Packet p;
    Serializer s(p.payload);
    const double v = seq < 100 ? 0.2 : 0.95;
    for (int i = 0; i < 64; ++i) s.write_f64(v);
    p.records = 64;
    return p;
  };
  b.spec.stages[1].properties.set("feature-threshold", "0.8");
  b.spec.stages[1].properties.set("window", "64");
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  auto& analyzer =
      dynamic_cast<SteeringAnalyzerProcessor&>(engine.processor(1));
  ASSERT_EQ(analyzer.actions().size(), 1u);
  EXPECT_TRUE(analyzer.actions()[0].refine);
  EXPECT_GT(analyzer.actions()[0].windowed_mean, 0.8);
}

TEST(CompSteerScenario, ProcessingConstraintOrderingHolds) {
  // Scaled-down Fig. 8: heavier analysis cost must settle a lower rate.
  scenarios::CompSteerOptions cheap;
  cheap.analyzer_ms_per_byte = 1;
  cheap.horizon = 250;
  scenarios::CompSteerOptions pricey = cheap;
  pricey.analyzer_ms_per_byte = 20;
  auto r_cheap = scenarios::run_comp_steer(cheap);
  auto r_pricey = scenarios::run_comp_steer(pricey);
  EXPECT_GT(r_cheap.converged_rate, 0.9);  // unconstrained -> near max
  EXPECT_LT(r_pricey.converged_rate, 0.6);
  EXPECT_GT(r_pricey.converged_rate, 0.05);
}

TEST(CompSteerScenario, NetworkConstraintOrderingHolds) {
  // Scaled-down Fig. 9.
  scenarios::CompSteerOptions slow_gen;
  slow_gen.generation_bytes_per_sec = 5e3;
  slow_gen.chunk_bytes = 1024;
  slow_gen.analyzer_ms_per_byte = 0.01;
  slow_gen.link_bw = 10e3;
  slow_gen.rate_initial = 0.01;
  slow_gen.horizon = 250;
  auto fast_gen = slow_gen;
  fast_gen.generation_bytes_per_sec = 80e3;
  auto r_slow = scenarios::run_comp_steer(slow_gen);
  auto r_fast = scenarios::run_comp_steer(fast_gen);
  EXPECT_GT(r_slow.converged_rate, 0.9);  // link not a constraint
  EXPECT_LT(r_fast.converged_rate, 0.5);  // link caps at 0.125 optimum
}

TEST(CompSteerScenario, OptimaFormulas) {
  scenarios::CompSteerOptions o;
  o.generation_bytes_per_sec = 160;
  o.analyzer_ms_per_byte = 20;
  EXPECT_NEAR(scenarios::processing_constraint_optimum(o), 0.3125, 1e-9);
  o.analyzer_ms_per_byte = 1;
  EXPECT_DOUBLE_EQ(scenarios::processing_constraint_optimum(o), 1.0);
  o.link_bw = 10e3;
  o.generation_bytes_per_sec = 40e3;
  EXPECT_DOUBLE_EQ(scenarios::network_constraint_optimum(o), 0.25);
}

}  // namespace
}  // namespace gates::apps
