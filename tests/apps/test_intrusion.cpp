#include "gates/apps/intrusion.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "gates/apps/registration.hpp"
#include "gates/common/serialize.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/grid/registry.hpp"

namespace gates::apps {
namespace {

struct Built {
  core::PipelineSpec spec;
  core::Placement placement;
  core::HostModel hosts;
  net::Topology topology;
};

/// Two sites feeding a central detector; site 0 gets an anomaly burst over
/// packet sequence numbers [burst_start, burst_end).
Built two_site_detector(std::uint64_t packets, std::uint64_t burst_start,
                        std::uint64_t burst_end) {
  Built b;
  grid::GeneratorRegistry generators;
  register_generators(generators);

  for (int site = 0; site < 2; ++site) {
    core::StageSpec features;
    features.name = "site" + std::to_string(site);
    features.factory = [] { return std::make_unique<SiteFeatureProcessor>(); };
    features.properties.set("window", "500");
    b.spec.stages.push_back(std::move(features));
    b.placement.stage_nodes.push_back(static_cast<NodeId>(site + 1));
  }
  core::StageSpec detector;
  detector.name = "detector";
  detector.factory = [] {
    return std::make_unique<IntrusionDetectorProcessor>();
  };
  b.spec.stages.push_back(std::move(detector));
  b.placement.stage_nodes.push_back(0);
  b.spec.edges = {{0, 2, 0}, {1, 2, 0}};

  for (int site = 0; site < 2; ++site) {
    core::SourceSpec src;
    src.name = "logs" + std::to_string(site);
    src.stream = static_cast<StreamId>(site);
    src.rate_hz = 2000;
    src.total_packets = packets;
    src.location = static_cast<NodeId>(site + 1);
    src.target_stage = static_cast<std::size_t>(site);
    Properties props;
    props.set("ports", "256");
    props.set("anomaly-port", "31337");
    props.set("anomaly-prob", "0.7");
    props.set("burst-start", std::to_string(site == 0 ? burst_start : 0));
    props.set("burst-end", std::to_string(site == 0 ? burst_end : 0));
    auto gen = generators.make("connlog", props);
    EXPECT_TRUE(gen.ok());
    src.generator = std::move(*gen);
    b.spec.sources.push_back(std::move(src));
  }
  return b;
}

TEST(Intrusion, BurstOnOneSiteRaisesAlarms) {
  // Burst in the middle of the run, after baselines have formed.
  auto b = two_site_detector(10000, 6000, 8000);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& detector =
      dynamic_cast<IntrusionDetectorProcessor&>(engine.processor(2));
  EXPECT_GT(detector.reports_received(), 0u);
  ASSERT_FALSE(detector.alarms().empty());
  // Every alarm for the anomaly port blames the bursting site.
  bool saw_anomaly_port = false;
  for (const auto& alarm : detector.alarms()) {
    if (alarm.port == 31337) {
      saw_anomaly_port = true;
      EXPECT_EQ(alarm.site, 0u);
      EXPECT_GT(alarm.observed, alarm.baseline_mean);
    }
  }
  EXPECT_TRUE(saw_anomaly_port);
}

TEST(Intrusion, QuietTrafficRaisesNoAnomalyPortAlarms) {
  auto b = two_site_detector(10000, 0, 0);  // no burst anywhere
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& detector =
      dynamic_cast<IntrusionDetectorProcessor&>(engine.processor(2));
  for (const auto& alarm : detector.alarms()) {
    EXPECT_NE(alarm.port, 31337u);
  }
}

TEST(Intrusion, FeatureProcessorWindowsAndReports) {
  auto b = two_site_detector(2600, 0, 0);
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& site0 = dynamic_cast<SiteFeatureProcessor&>(engine.processor(0));
  EXPECT_EQ(site0.records_seen(), 2600u);
  // 5 full windows of 500 plus the final partial flush.
  EXPECT_EQ(site0.reports_emitted(), 6u);
}

TEST(Intrusion, ReportSizeParameterCapsItems) {
  auto b = two_site_detector(3000, 0, 0);
  b.spec.stages[0].properties.set("report-initial", "8");
  b.spec.stages[0].properties.set("report-min", "8");
  b.spec.stages[0].properties.set("report-max", "8");
  core::SimEngine::Config cfg;
  cfg.adaptation_enabled = false;
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, cfg);
  ASSERT_TRUE(engine.run().is_ok());
  const auto* site0 = engine.report().stage("site0");
  ASSERT_NE(site0, nullptr);
  // Emitted summary packets carry at most 8 records each.
  const auto* detector = engine.report().stage("detector");
  ASSERT_NE(detector, nullptr);
  // site1 still uses the default (32); only check the global cap loosely:
  EXPECT_GT(detector->records_processed, 0u);
  EXPECT_LE(detector->records_processed,
            site0->packets_emitted * 8u +
                engine.report().stage("site1")->packets_emitted * 256u);
}

TEST(Intrusion, DetectorIgnoresNonSummaryPackets) {
  Built b;
  core::StageSpec detector;
  detector.name = "detector";
  detector.factory = [] {
    return std::make_unique<IntrusionDetectorProcessor>();
  };
  b.spec.stages = {std::move(detector)};
  core::SourceSpec src;
  src.rate_hz = 100;
  src.total_packets = 10;
  src.packet_bytes = 16;  // plain data packets
  b.spec.sources = {src};
  b.placement.stage_nodes = {0};
  core::SimEngine engine(b.spec, b.placement, b.hosts, b.topology, {});
  ASSERT_TRUE(engine.run().is_ok());
  auto& proc = dynamic_cast<IntrusionDetectorProcessor&>(engine.processor(0));
  EXPECT_EQ(proc.reports_received(), 0u);
  EXPECT_TRUE(proc.alarms().empty());
}

}  // namespace
}  // namespace gates::apps
