// gates_run — the command-line face of the middleware: load a grid
// description and an application configuration, launch through the
// Launcher/Deployer, run on the chosen engine, and print the run report.
//
//   gates_run --grid configs/grid_demo.xml --app configs/count_samps.xml
//   gates_run --grid g.xml --app a.xml --engine rt --horizon 5
//
// Flags:
//   --grid FILE        grid description XML (required)
//   --app FILE         application configuration XML (required)
//   --engine sim|rt    engine selection (default sim)
//   --horizon SECONDS  run_for horizon; 0 = run to completion (default 0)
//   --seed N           RNG seed (default 42)
//   --control-period S adaptation period (default 1.0 sim / 0.05 rt)
//   --wire-message N   per-message wire overhead bytes (default 32)
//   --wire-record N    per-record wire overhead bytes (default 0)
//   --no-adapt         disable parameter adaptation (monitors still run)
//   --failover         enable failure detection + stage failover + replay
//   --retention N      replay retention per flow, in packets (default 256)
//   --kill-node N@T    crash node N at T seconds into the run (repeatable)
//   --recover-node N@T return node N to the candidate pool at T (sim only)
//   --replicas S=N     run stage S as N replica workers (repeatable); a
//                      serial stage is promoted to a stateless pool
//   --link A-B=BW:DELAY:LOSS  override the directed link from node A to node
//                      B (bytes/s, seconds, loss probability in retransmit
//                      mode; repeatable)
//   --chaos NAME       run a chaos scenario against the deployed pipeline's
//                      first inter-node flow (degrade, flap, partition,
//                      asymmetric, slow-start-burst, crash-flap); invariant
//                      verdicts print after the run and failures exit 1
//   --chaos-report FILE  write the chaos RunReport + verdicts as JSON
//   --migrate STAGE@T[:NODE]  live-migrate stage STAGE at T seconds into the
//                      run, to node NODE or the directory's best candidate
//                      (repeatable; requires --failover). The stage is
//                      quiesced at an ack boundary, checkpointed, and
//                      resumed on the target with state intact; an abort at
//                      any step degrades to the crash-failover path
//   --verbose          middleware INFO logging
//
// Multi-process deployment (rt engine only; see grid/node_remote.hpp):
//   --daemons N        split the pipeline across N gates_node daemon
//                      processes (node id % N picks the process) connected
//                      by the wire transports, and run it there
//   --transport T      inter-daemon transport: tcp (default) or shm
//   --node-bin PATH    gates_node binary (default: next to this binary)
//   --kill-daemon K@T  SIGKILL daemon K at T seconds, then respawn it on
//                      the same ports (requires --failover and tcp): the
//                      cross-process failover/replay drill
//
// Telemetry artifacts (each flag enables the subsystem behind it):
//   --metrics-out FILE      Prometheus text dump of the metrics registry
//   --events-out FILE       JSONL trace event log
//   --trace-out FILE        Chrome trace_event JSON (chrome://tracing, Perfetto)
//   --trace-buffer N        trace buffer capacity in events (default 65536)
//   --trace-sample N        causal packet tracing, 1-in-N packets (0 = off;
//                           sampled hops render as Perfetto flows)
//   --attribution-out FILE  bottleneck attribution report as JSON
//   --introspect-port N     serve /metrics /healthz /trace /attribution over
//                           HTTP on 127.0.0.1:N while the run is live
//   --emit-report-json FILE full RunReport as JSON
//   --print-trajectories    print every (t, value) parameter sample
//   --pin                   pin rt-engine threads to cores: the grid's
//                           <node cores="0,2,4-7"> lists when given, else a
//                           contiguous partition of the allowed cores
//   --idle MODE             hot-path wait behavior: spin | balanced | park
//                           (default: balanced, host-adapted)
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>

#include "gates/apps/registration.hpp"
#include "gates/chaos/runner.hpp"
#include "gates/chaos/scenario.hpp"
#include "gates/common/log.hpp"
#include "gates/common/string_util.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/grid/grid_config.hpp"
#include "gates/grid/launcher.hpp"
#include "gates/grid/node_remote.hpp"
#include "gates/obs/exporters.hpp"
#include "gates/obs/introspect.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/profiler.hpp"
#include "gates/obs/trace.hpp"
#include "gates/obs/trace_context.hpp"

namespace {

using namespace gates;

struct Options {
  std::string grid_file;
  std::string app_file;
  std::string engine = "sim";
  double horizon = 0;
  std::uint64_t seed = 42;
  std::optional<double> control_period;
  std::size_t wire_message = 32;
  std::size_t wire_record = 0;
  bool adapt = true;
  bool failover = false;
  std::size_t retention = 256;
  std::vector<std::pair<NodeId, double>> kill_nodes;
  std::vector<std::pair<NodeId, double>> recover_nodes;
  std::vector<std::pair<std::string, std::size_t>> replicas;
  struct LinkOverride {
    NodeId from;
    NodeId to;
    double bandwidth;
    double delay;
    double loss;
  };
  std::vector<LinkOverride> links;
  struct MigrateSpec {
    std::string stage;
    double at = 0;
    NodeId target = kInvalidNode;  // kInvalidNode = directory picks
  };
  std::vector<MigrateSpec> migrations;
  std::string chaos;
  std::string chaos_report;
  /// Multi-process deployment: > 0 runs the pipeline across this many
  /// gates_node daemons instead of in-process.
  std::size_t daemons = 0;
  std::string transport = "tcp";
  std::string node_bin;
  std::optional<std::pair<std::size_t, double>> kill_daemon;
  bool verbose = false;
  std::string metrics_out;
  std::string events_out;
  std::string trace_out;
  std::string attribution_out;
  std::string report_json_out;
  std::size_t trace_buffer = 0;  // 0 = TraceBuffer::kDefaultCapacity
  std::uint64_t trace_sample = 0;  // 0 = causal packet tracing off
  int introspect_port = -1;  // -1 = no endpoint; 0 = ephemeral port
  bool print_trajectories = false;
  /// Thread-to-core pinning (rt engine): stage/source/control threads are
  /// pinned per the grid's <node cores="..."> lists, or a contiguous
  /// partition of the process's allowed cores when no lists are given.
  bool pin = false;
  /// Idle strategy override for hot-path waits ("spin", "balanced",
  /// "park"); empty keeps the host-adapted default.
  std::string idle;
};

/// Parses "STAGE=N", e.g. "detect=4".
bool parse_stage_count(const char* text,
                       std::pair<std::string, std::size_t>& out) {
  const std::string s = text;
  const auto eq = s.find('=');
  if (eq == std::string::npos || eq == 0) return false;
  long long n;
  if (!parse_int(s.substr(eq + 1), n) || n <= 0) return false;
  out = {s.substr(0, eq), static_cast<std::size_t>(n)};
  return true;
}

/// Parses "NODE@TIME", e.g. "2@5.5".
bool parse_node_time(const char* text, std::pair<NodeId, double>& out) {
  const std::string s = text;
  const auto at = s.find('@');
  if (at == std::string::npos) return false;
  long long node;
  double t;
  if (!parse_int(s.substr(0, at), node) || node < 0) return false;
  if (!parse_double(s.substr(at + 1), t) || t < 0) return false;
  out = {static_cast<NodeId>(node), t};
  return true;
}

/// Parses "STAGE@T" or "STAGE@T:NODE", e.g. "count@2.5" / "count@2.5:3".
bool parse_migrate(const char* text, Options::MigrateSpec& out) {
  const std::string s = text;
  const auto at = s.find('@');
  if (at == std::string::npos || at == 0) return false;
  Options::MigrateSpec m;
  m.stage = s.substr(0, at);
  std::string rest = s.substr(at + 1);
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    long long node;
    if (!parse_int(rest.substr(colon + 1), node) || node < 0) return false;
    m.target = static_cast<NodeId>(node);
    rest = rest.substr(0, colon);
  }
  if (!parse_double(rest, m.at) || m.at < 0) return false;
  out = m;
  return true;
}

/// Parses "A-B=BW:DELAY:LOSS", e.g. "1-0=50e3:0.1:0.02".
bool parse_link_override(const char* text, Options::LinkOverride& out) {
  const std::string s = text;
  const auto dash = s.find('-');
  const auto eq = s.find('=');
  if (dash == std::string::npos || eq == std::string::npos || dash > eq)
    return false;
  long long from, to;
  if (!parse_int(s.substr(0, dash), from) || from < 0) return false;
  if (!parse_int(s.substr(dash + 1, eq - dash - 1), to) || to < 0) return false;
  const std::string rest = s.substr(eq + 1);
  const auto c1 = rest.find(':');
  if (c1 == std::string::npos) return false;
  const auto c2 = rest.find(':', c1 + 1);
  if (c2 == std::string::npos) return false;
  Options::LinkOverride lo;
  lo.from = static_cast<NodeId>(from);
  lo.to = static_cast<NodeId>(to);
  if (!parse_double(rest.substr(0, c1), lo.bandwidth) || lo.bandwidth <= 0)
    return false;
  if (!parse_double(rest.substr(c1 + 1, c2 - c1 - 1), lo.delay) || lo.delay < 0)
    return false;
  if (!parse_double(rest.substr(c2 + 1), lo.loss) || lo.loss < 0 ||
      lo.loss > 1)
    return false;
  out = lo;
  return true;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --grid FILE --app FILE [--engine sim|rt] "
               "[--horizon S] [--seed N]\n"
               "       [--control-period S] [--wire-message N] "
               "[--wire-record N] [--no-adapt] [--verbose]\n"
               "       [--failover] [--retention N] [--kill-node N@T] "
               "[--recover-node N@T] [--replicas STAGE=N]\n"
               "       [--link A-B=BW:DELAY:LOSS] [--chaos NAME] "
               "[--chaos-report FILE] [--migrate STAGE@T[:NODE]]\n"
               "       [--metrics-out FILE] [--events-out FILE] "
               "[--trace-out FILE] [--trace-buffer N]\n"
               "       [--trace-sample N] [--attribution-out FILE] "
               "[--introspect-port N]\n"
               "       [--emit-report-json FILE] [--print-trajectories]\n"
               "       [--pin] [--idle spin|balanced|park]\n"
               "       [--daemons N] [--transport tcp|shm] [--node-bin PATH] "
               "[--kill-daemon K@T]\n"
               "chaos scenarios:",
               argv0);
  for (const std::string& name : gates::chaos::scenario_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");
  return 2;
}

/// gates_node is expected to sit next to gates_run unless --node-bin says
/// otherwise.
std::string default_node_bin() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "gates_node";
  buf[n] = '\0';
  const std::string self(buf);
  const auto slash = self.rfind('/');
  if (slash == std::string::npos) return "gates_node";
  return self.substr(0, slash + 1) + "gates_node";
}

/// The multi-process path: hand everything to the coordinator and report.
int run_with_daemons(const Options& options, const std::string& grid_text,
                     const std::string& app_text) {
  if (options.engine != "rt") {
    std::fprintf(stderr, "--daemons requires --engine rt\n");
    return 2;
  }
  if (!options.chaos.empty() || !options.replicas.empty() ||
      !options.kill_nodes.empty() || !options.links.empty()) {
    std::fprintf(stderr,
                 "--chaos/--replicas/--kill-node/--link are not supported "
                 "with --daemons\n");
    return 2;
  }
  grid::DistributedOptions dopts;
  dopts.grid_text = grid_text;
  dopts.app_text = app_text;
  dopts.daemons = options.daemons;
  dopts.transport = options.transport;
  dopts.node_bin =
      options.node_bin.empty() ? default_node_bin() : options.node_bin;
  dopts.seed = options.seed;
  dopts.horizon = options.horizon;
  dopts.adapt = options.adapt;
  dopts.failover = options.failover;
  dopts.retention = options.retention;
  dopts.pin = options.pin;
  dopts.idle = options.idle;
  if (options.control_period) dopts.control_period = *options.control_period;
  dopts.kill_daemon = options.kill_daemon;
  if (!options.migrations.empty()) {
    if (options.migrations.size() > 1) {
      std::fprintf(stderr, "--daemons supports a single --migrate\n");
      return 2;
    }
    dopts.migrate_stage = options.migrations[0].stage;
    dopts.migrate_at = options.migrations[0].at;
    dopts.migrate_target = options.migrations[0].target == kInvalidNode
                               ? static_cast<std::size_t>(-1)
                               : options.migrations[0].target;
  }
  dopts.verbose = options.verbose;
  std::printf("distributed: %zu daemons over %s (%s)\n", dopts.daemons,
              dopts.transport.c_str(), dopts.node_bin.c_str());
  auto result = grid::run_distributed(dopts);
  if (!result.ok()) {
    std::fprintf(stderr, "distributed run: %s\n",
                 result.status().to_string().c_str());
    return 1;
  }
  std::printf("distributed run %s (%zu respawns)\n",
              result->completed ? "completed" : "FAILED", result->respawns);
  if (!options.report_json_out.empty()) {
    if (auto s = obs::write_text_file(options.report_json_out,
                                      result->merged_report_json);
        !s.is_ok()) {
      std::fprintf(stderr, "artifact: %s\n", s.to_string().c_str());
      return 1;
    }
  }
  return result->completed ? 0 : 1;
}

/// Resolves --migrate stage names against the launched pipeline and arms
/// the engine's schedule. Unknown names are a usage error.
template <typename Engine>
bool schedule_migrations(const Options& options,
                         const core::PipelineSpec& pipeline, Engine& engine) {
  for (const auto& m : options.migrations) {
    const auto it =
        std::find_if(pipeline.stages.begin(), pipeline.stages.end(),
                     [&](const core::StageSpec& s) { return s.name == m.stage; });
    if (it == pipeline.stages.end()) {
      std::fprintf(stderr, "--migrate: no stage named '%s'\n",
                   m.stage.c_str());
      return false;
    }
    engine.schedule_migration(
        static_cast<std::size_t>(it - pipeline.stages.begin()), m.at,
        m.target);
    std::printf("  migrate '%s' at t=%.2f%s\n", m.stage.c_str(), m.at,
                m.target == kInvalidNode ? " (directory picks the target)"
                                         : "");
  }
  return true;
}

std::optional<std::string> read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

bool parse_args(int argc, char** argv, Options& options) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--grid") {
      const char* v = next();
      if (!v) return false;
      options.grid_file = v;
    } else if (arg == "--app") {
      const char* v = next();
      if (!v) return false;
      options.app_file = v;
    } else if (arg == "--engine") {
      const char* v = next();
      if (!v) return false;
      options.engine = v;
    } else if (arg == "--horizon") {
      const char* v = next();
      if (!v || !parse_double(v, options.horizon)) return false;
    } else if (arg == "--seed") {
      const char* v = next();
      long long seed;
      if (!v || !parse_int(v, seed) || seed < 0) return false;
      options.seed = static_cast<std::uint64_t>(seed);
    } else if (arg == "--control-period") {
      const char* v = next();
      double period;
      if (!v || !parse_double(v, period) || period <= 0) return false;
      options.control_period = period;
    } else if (arg == "--wire-message") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0) return false;
      options.wire_message = static_cast<std::size_t>(n);
    } else if (arg == "--wire-record") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0) return false;
      options.wire_record = static_cast<std::size_t>(n);
    } else if (arg == "--no-adapt") {
      options.adapt = false;
    } else if (arg == "--failover") {
      options.failover = true;
    } else if (arg == "--retention") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0) return false;
      options.retention = static_cast<std::size_t>(n);
    } else if (arg == "--kill-node") {
      const char* v = next();
      std::pair<NodeId, double> nt;
      if (!v || !parse_node_time(v, nt)) return false;
      options.kill_nodes.push_back(nt);
    } else if (arg == "--recover-node") {
      const char* v = next();
      std::pair<NodeId, double> nt;
      if (!v || !parse_node_time(v, nt)) return false;
      options.recover_nodes.push_back(nt);
    } else if (arg == "--replicas") {
      const char* v = next();
      std::pair<std::string, std::size_t> sc;
      if (!v || !parse_stage_count(v, sc)) return false;
      options.replicas.push_back(sc);
    } else if (arg == "--link") {
      const char* v = next();
      Options::LinkOverride lo;
      if (!v || !parse_link_override(v, lo)) return false;
      options.links.push_back(lo);
    } else if (arg == "--migrate") {
      const char* v = next();
      Options::MigrateSpec m;
      if (!v || !parse_migrate(v, m)) return false;
      options.migrations.push_back(m);
    } else if (arg == "--chaos") {
      const char* v = next();
      if (!v) return false;
      options.chaos = v;
    } else if (arg == "--chaos-report") {
      const char* v = next();
      if (!v) return false;
      options.chaos_report = v;
    } else if (arg == "--daemons") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0) return false;
      options.daemons = static_cast<std::size_t>(n);
    } else if (arg == "--transport") {
      const char* v = next();
      if (!v) return false;
      options.transport = v;
      if (options.transport != "tcp" && options.transport != "shm") {
        std::fprintf(stderr, "--transport must be tcp or shm\n");
        return false;
      }
    } else if (arg == "--node-bin") {
      const char* v = next();
      if (!v) return false;
      options.node_bin = v;
    } else if (arg == "--kill-daemon") {
      const char* v = next();
      std::pair<NodeId, double> nt;
      if (!v || !parse_node_time(v, nt)) return false;
      options.kill_daemon = {static_cast<std::size_t>(nt.first), nt.second};
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--metrics-out") {
      const char* v = next();
      if (!v) return false;
      options.metrics_out = v;
    } else if (arg == "--events-out") {
      const char* v = next();
      if (!v) return false;
      options.events_out = v;
    } else if (arg == "--trace-out") {
      const char* v = next();
      if (!v) return false;
      options.trace_out = v;
    } else if (arg == "--trace-buffer") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n <= 0) return false;
      options.trace_buffer = static_cast<std::size_t>(n);
    } else if (arg == "--trace-sample") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0) return false;
      options.trace_sample = static_cast<std::uint64_t>(n);
    } else if (arg == "--attribution-out") {
      const char* v = next();
      if (!v) return false;
      options.attribution_out = v;
    } else if (arg == "--introspect-port") {
      const char* v = next();
      long long n;
      if (!v || !parse_int(v, n) || n < 0 || n > 65535) return false;
      options.introspect_port = static_cast<int>(n);
    } else if (arg == "--emit-report-json") {
      const char* v = next();
      if (!v) return false;
      options.report_json_out = v;
    } else if (arg == "--print-trajectories") {
      options.print_trajectories = true;
    } else if (arg == "--pin") {
      options.pin = true;
    } else if (arg == "--idle") {
      const char* v = next();
      if (!v) return false;
      options.idle = v;
      if (options.idle != "spin" && options.idle != "balanced" &&
          options.idle != "park") {
        std::fprintf(stderr, "--idle must be spin, balanced or park\n");
        return false;
      }
    } else {
      std::fprintf(stderr, "unknown flag '%s'\n", arg.c_str());
      return false;
    }
  }
  return !options.grid_file.empty() && !options.app_file.empty() &&
         (options.engine == "sim" || options.engine == "rt");
}

void print_report(const core::RunReport& report) {
  std::printf("\nexecution time: %.2f s%s\n", report.execution_time,
              report.completed ? "" : "  (INCOMPLETE: horizon reached)");
  std::printf("%-14s %5s %10s %10s %9s %11s %11s %9s\n", "stage", "node",
              "processed", "emitted", "queue~", "latency~ms", "latencyMax",
              "excpt i/o");
  for (const auto& stage : report.stages) {
    std::printf(
        "%-14s %5u %10llu %10llu %9.1f %11.1f %11.1f %4llu/%llu\n",
        stage.name.c_str(), stage.node,
        static_cast<unsigned long long>(stage.packets_processed),
        static_cast<unsigned long long>(stage.packets_emitted),
        stage.queue_length.mean(), stage.packet_latency.mean() * 1e3,
        stage.packet_latency.max() * 1e3,
        static_cast<unsigned long long>(stage.exceptions_received),
        static_cast<unsigned long long>(stage.overload_exceptions_sent +
                                        stage.underload_exceptions_sent));
    for (const auto& [name, trajectory] : stage.parameter_trajectories) {
      if (trajectory.empty()) continue;
      std::printf("  %-12s %.4g -> %.4g over %zu control periods\n",
                  name.c_str(), trajectory.front().second,
                  trajectory.back().second, trajectory.size());
    }
  }
  if (!report.links.empty()) {
    std::printf("%-24s %10s %12s %8s %9s\n", "link", "messages", "bytes",
                "util", "stalled s");
    for (const auto& link : report.links) {
      std::printf("%-24s %10llu %12llu %7.1f%% %9.1f\n", link.name.c_str(),
                  static_cast<unsigned long long>(link.messages_delivered),
                  static_cast<unsigned long long>(link.bytes_delivered),
                  100 * link.utilization, link.stalled_time);
    }
  }
  if (!report.failures.empty()) {
    std::printf("%-14s %5s %9s %9s %-14s %8s %9s %6s\n", "failed stage",
                "node", "at", "detect s", "outcome", "replayed", "lost", "tries");
    for (const auto& f : report.failures) {
      char where[32] = "";
      if (f.outcome == core::FailureReport::Outcome::kRecovered) {
        std::snprintf(where, sizeof(where), " -> node %u at %.2f",
                      f.recovered_on, f.recovered_at);
      }
      std::printf("%-14s %5u %9.2f %9.2f %-14s %8llu %9llu %6zu%s\n",
                  f.stage.c_str(), f.node, f.failed_at, f.detection_latency(),
                  core::FailureReport::outcome_name(f.outcome),
                  static_cast<unsigned long long>(f.packets_replayed),
                  static_cast<unsigned long long>(f.packets_lost_retention),
                  f.attempts, where);
    }
  }
  if (!report.migrations.empty()) {
    std::printf("%-14s %11s %9s %11s %9s %8s %-10s %s\n", "migrated stage",
                "nodes", "at", "downtime ms", "ckpt B", "replayed", "outcome",
                "detail");
    for (const auto& m : report.migrations) {
      char nodes[24];
      std::snprintf(nodes, sizeof(nodes), "%u -> %u", m.from, m.to);
      std::printf("%-14s %11s %9.2f %11.2f %9llu %8llu %-10s %s\n",
                  m.stage.c_str(), nodes, m.requested_at, m.downtime * 1e3,
                  static_cast<unsigned long long>(m.checkpoint_bytes),
                  static_cast<unsigned long long>(m.packets_replayed),
                  core::MigrationRecord::outcome_name(m.outcome),
                  m.detail.c_str());
    }
  }
}

void print_trajectories(const core::RunReport& report) {
  for (const auto& stage : report.stages) {
    for (const auto& [name, trajectory] : stage.parameter_trajectories) {
      for (const auto& [t, v] : trajectory) {
        std::printf("trajectory %s %s %.6f %.6g\n", stage.name.c_str(),
                    name.c_str(), t, v);
      }
    }
  }
}

/// Persists whatever artifacts the flags asked for. Failures are reported
/// but do not fail the run — the run itself succeeded.
int write_artifacts(const Options& options, const core::RunReport& report) {
  int rc = 0;
  auto persist = [&rc](const std::string& path, const std::string& content) {
    if (auto s = obs::write_text_file(path, content); !s.is_ok()) {
      std::fprintf(stderr, "artifact: %s\n", s.to_string().c_str());
      rc = 1;
    }
  };
  if (options.print_trajectories) print_trajectories(report);
  if (!options.report_json_out.empty()) {
    persist(options.report_json_out, report.to_json() + "\n");
  }
  if (!options.attribution_out.empty()) {
    persist(options.attribution_out, report.attribution.to_json() + "\n");
  }
  if (!report.attribution.entries.empty() &&
      (options.verbose || !options.attribution_out.empty())) {
    std::printf("\nbottleneck attribution:\n%s",
                report.attribution.summary().c_str());
  }
  if (!options.metrics_out.empty()) {
    persist(options.metrics_out,
            obs::MetricsRegistry::global().prometheus_text());
  }
  const auto& buffer = obs::TraceBuffer::global();
  if (!options.events_out.empty()) {
    persist(options.events_out, obs::to_jsonl(buffer.events()));
  }
  if (!options.trace_out.empty()) {
    persist(options.trace_out, obs::to_chrome_trace(buffer.events()));
  }
  if (buffer.enabled() && buffer.dropped() > 0) {
    std::fprintf(stderr,
                 "trace buffer full: %llu events dropped "
                 "(raise --trace-buffer)\n",
                 static_cast<unsigned long long>(buffer.dropped()));
  }
  return rc;
}

/// Prints the invariant verdicts, writes the chaos artifact when asked, and
/// turns a failed invariant into a nonzero exit.
int finish_chaos(const Options& options, const chaos::ChaosScenario& scenario,
                 const char* engine_name, const core::RunReport& report) {
  const auto events = obs::TraceBuffer::global().events();
  const chaos::ChaosReport chaos_report =
      chaos::make_report(scenario, engine_name, options.seed, report, events,
                         /*bounded_run=*/options.horizon <= 0);
  std::printf("\nchaos '%s' invariants:\n", scenario.name.c_str());
  for (const auto& r : chaos_report.invariants) {
    std::printf("  [%s] %-28s %s\n", r.passed ? "PASS" : "FAIL",
                r.name.c_str(), r.detail.c_str());
  }
  int rc = chaos_report.all_passed() ? 0 : 1;
  if (!options.chaos_report.empty()) {
    if (auto s = obs::write_text_file(options.chaos_report,
                                      chaos_report.to_json() + "\n");
        !s.is_ok()) {
      std::fprintf(stderr, "chaos report: %s\n", s.to_string().c_str());
      rc = 1;
    }
  }
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return usage(argv[0]);
  Logger::global().set_level(options.verbose ? LogLevel::kInfo
                                             : LogLevel::kWarn);

  // Telemetry switches: each artifact flag turns on the subsystem feeding it.
  const bool introspect_on = options.introspect_port >= 0;
  if (!options.metrics_out.empty() || !options.report_json_out.empty() ||
      introspect_on) {
    obs::MetricsRegistry::global().set_enabled(true);
  }
  if (!options.events_out.empty() || !options.trace_out.empty() ||
      !options.report_json_out.empty() || !options.chaos.empty() ||
      introspect_on) {
    // Chaos runs always trace: the invariant checkers read the event log.
    // The introspection endpoint traces too, so /trace has something to say.
    obs::TraceBuffer::global().set_enabled(true);
  }
  if (options.trace_buffer > 0) {
    obs::TraceBuffer::global().set_capacity(options.trace_buffer);
  }
  if (!options.attribution_out.empty() || !options.report_json_out.empty() ||
      introspect_on) {
    // Per-stage/link phase attribution (inbox wait, service, merge hold,
    // shaper delay, ack/retention) behind cheap per-batch atomics.
    obs::Profiler::global().set_enabled(true);
    obs::MetricsRegistry::global().set_enabled(true);
  }
  if (options.trace_sample > 0) {
    obs::PacketTracer::global().set_sample_period(options.trace_sample);
  }

  const auto grid_text = read_file(options.grid_file);
  if (!grid_text) {
    std::fprintf(stderr, "cannot read grid file '%s'\n",
                 options.grid_file.c_str());
    return 1;
  }
  const auto app_text = read_file(options.app_file);
  if (!app_text) {
    std::fprintf(stderr, "cannot read app file '%s'\n",
                 options.app_file.c_str());
    return 1;
  }

  auto grid = grid::parse_grid_config(*grid_text);
  if (!grid.ok()) {
    std::fprintf(stderr, "grid config: %s\n", grid.status().to_string().c_str());
    return 1;
  }
  std::printf("grid '%s': %zu nodes\n", grid->name.c_str(),
              grid->directory.size());
  for (const auto& lo : options.links) {
    net::LinkSpec spec = grid->topology.between(lo.from, lo.to);
    spec.bandwidth = lo.bandwidth;
    spec.latency = lo.delay;
    spec.impair.loss = lo.loss;
    spec.impair.loss_mode = net::LossMode::kRetransmit;
    // TCP-flavored RTO: one round trip before the head retries.
    spec.impair.retransmit_delay = 2 * lo.delay;
    grid->topology.set_pair(lo.from, lo.to, spec);
    std::printf("  link %u->%u: bw=%g B/s delay=%gs loss=%g\n", lo.from, lo.to,
                lo.bandwidth, lo.delay, lo.loss);
  }

  apps::register_all();
  if (!options.migrations.empty() && !options.failover) {
    // Migration rides the failover machinery (quiesce gating, retention
    // replay on abort), so the flag combination is required, not implied.
    std::fprintf(stderr, "--migrate requires --failover\n");
    return 2;
  }
  if (options.daemons > 0) {
    return run_with_daemons(options, *grid_text, *app_text);
  }
  grid::RepositoryRegistry repos;
  grid::Deployer deployer(grid->directory, repos,
                          grid::ProcessorRegistry::global());
  grid::Launcher launcher(deployer, grid::GeneratorRegistry::global());
  // Command-line replica overrides win over the app config's <parallelism>.
  // They must land before deployment: the deployer bakes the parallelism
  // declaration into the stage factories (one service instance per replica
  // for pooled stages), so a post-launch rewrite would be ignored.
  const auto apply_replicas = [&options](core::PipelineSpec& pipeline) {
    for (const auto& [name, count] : options.replicas) {
      auto& stages = pipeline.stages;
      const auto it = std::find_if(
          stages.begin(), stages.end(),
          [&](const core::StageSpec& s) { return s.name == name; });
      if (it == stages.end()) {
        return invalid_argument("--replicas: no stage named '" + name + "'");
      }
      if (it->parallelism.mode == core::ParallelismMode::kSerial) {
        it->parallelism.mode = core::ParallelismMode::kStateless;
      }
      it->parallelism.replicas = count;
      if (it->parallelism.max_replicas != 0 &&
          it->parallelism.max_replicas < count) {
        it->parallelism.max_replicas = count;
      }
      std::printf("  stage '%s': %zu replicas (command line)\n", name.c_str(),
                  count);
    }
    return Status::ok();
  };
  auto app = launcher.launch_text(*app_text, apply_replicas);
  if (!app.ok()) {
    std::fprintf(stderr, "launch: %s\n", app.status().to_string().c_str());
    return 1;
  }
  std::printf("application '%s': %zu stages, %zu sources\n", app->name.c_str(),
              app->pipeline.stages.size(), app->pipeline.sources.size());
  for (const auto& decision : app->deployment.decisions) {
    std::printf("  %s\n", decision.c_str());
  }

  chaos::ChaosScenario scenario;
  const bool chaos_on = !options.chaos.empty();
  if (chaos_on) {
    const chaos::ChaosTarget target = chaos::default_target(
        app->pipeline, app->deployment.placement, grid->topology);
    const double horizon = options.horizon > 0 ? options.horizon : 10.0;
    if (!chaos::scenario_by_name(options.chaos, target, horizon, &scenario)) {
      std::fprintf(stderr, "unknown chaos scenario '%s'\n",
                   options.chaos.c_str());
      return usage(argv[0]);
    }
    std::printf("chaos '%s': %zu actions on flow %u->%u over %.1f s\n",
                scenario.name.c_str(), scenario.actions.size(), target.from,
                target.to, horizon);
    if (scenario.has_migrations && !options.failover) {
      std::fprintf(stderr, "chaos '%s' migrates stages: --failover required\n",
                   scenario.name.c_str());
      return 2;
    }
  }

  if (options.engine == "sim") {
    core::SimEngine::Config config;
    config.seed = options.seed;
    config.adaptation_enabled = options.adapt;
    config.wire.per_message_overhead = options.wire_message;
    config.wire.per_record_overhead = options.wire_record;
    if (options.control_period) config.control_period = *options.control_period;
    config.failover.enabled = options.failover;
    config.failover.replay_buffer_packets = options.retention;
    core::SimEngine engine(app->pipeline, app->deployment.placement,
                           app->deployment.hosts, grid->topology, config);
    for (const auto& [node, t] : options.kill_nodes) {
      engine.schedule_node_failure(node, t);
    }
    for (const auto& [node, t] : options.recover_nodes) {
      engine.schedule_node_recovery(node, t);
    }
    if (chaos_on) {
      chaos::apply_to_sim(engine, scenario, app->deployment.placement);
    }
    if (options.failover) {
      engine.set_replacement_provider(grid::make_replacement_provider(
          deployer, app->pipeline, app->deployment));
    }
    if (!options.migrations.empty() || (chaos_on && scenario.has_migrations)) {
      if (!schedule_migrations(options, app->pipeline, engine)) {
        return usage(argv[0]);
      }
      engine.set_migration_provider(grid::make_migration_provider(
          deployer, app->pipeline, app->deployment));
    }
    obs::IntrospectServer introspect;
    if (introspect_on) {
      obs::IntrospectServer::Config icfg;
      icfg.port = static_cast<std::uint16_t>(options.introspect_port);
      if (auto s = introspect.start(icfg); !s.is_ok()) {
        std::fprintf(stderr, "introspect: %s\n", s.to_string().c_str());
        return 1;
      }
      std::printf("introspect: http://127.0.0.1:%u\n", introspect.port());
      std::fflush(stdout);
    }
    const auto status = options.horizon > 0 ? engine.run_for(options.horizon)
                                            : engine.run();
    introspect.stop();
    if (!status.is_ok()) {
      std::fprintf(stderr, "run: %s\n", status.to_string().c_str());
      // Flush whatever telemetry the run accumulated before it failed — a
      // watchdog timeout is exactly when the trace is worth reading.
      write_artifacts(options, engine.report());
      return 1;
    }
    print_report(engine.report());
    int rc = write_artifacts(options, engine.report());
    if (chaos_on) {
      rc |= finish_chaos(options, scenario, "sim", engine.report());
    }
    return rc;
  } else {
    core::RtEngine::Config config;
    config.seed = options.seed;
    config.adaptation_enabled = options.adapt;
    config.wire.per_message_overhead = options.wire_message;
    config.wire.per_record_overhead = options.wire_record;
    if (options.control_period) config.control_period = *options.control_period;
    config.failover.enabled = options.failover;
    config.failover.replay_buffer_packets = options.retention;
    config.thread_placement.pin = options.pin;
    if (options.pin) {
      for (const auto& node : grid->directory.all_nodes()) {
        config.thread_placement.node_cores.push_back(node.resources.cores);
      }
    }
    if (options.idle == "spin") {
      config.idle = IdleConfig::spin();
    } else if (options.idle == "balanced") {
      config.idle = IdleConfig::balanced();
    } else if (options.idle == "park") {
      config.idle = IdleConfig::park();
    }
    core::RtEngine engine(app->pipeline, app->deployment.placement,
                          app->deployment.hosts, grid->topology, config);
    for (const auto& [node, t] : options.kill_nodes) {
      engine.schedule_node_failure(node, t);
    }
    if (!options.recover_nodes.empty()) {
      std::fprintf(stderr, "--recover-node applies to the sim engine only\n");
    }
    if (options.failover) {
      // Grid-deployed factories run through the service-instance lifecycle;
      // restart the crashed stage's instance in place before
      // re-instantiating (pooled stages get one instance per replica slot).
      auto* deployment = &app->deployment;
      auto* pipeline = &app->pipeline;
      engine.set_recovery_factory_provider(
          [deployment, pipeline](std::size_t i) -> core::ProcessorFactory {
            return grid::make_recovery_factory(*pipeline, *deployment, i);
          });
    }
    if (!options.migrations.empty() || (chaos_on && scenario.has_migrations)) {
      if (!schedule_migrations(options, app->pipeline, engine)) {
        return usage(argv[0]);
      }
      engine.set_migration_provider(grid::make_migration_provider(
          deployer, app->pipeline, app->deployment));
    }
    std::optional<chaos::RtChaosDriver> driver;
    if (chaos_on) {
      chaos::prepare_rt(engine, scenario);
      driver.emplace(engine, scenario);
      driver->start();
    }
    obs::IntrospectServer introspect;
    if (introspect_on) {
      obs::IntrospectServer::Config icfg;
      icfg.port = static_cast<std::uint16_t>(options.introspect_port);
      introspect.set_provider("/healthz",
                              [&engine] { return engine.health_json(); });
      if (auto s = introspect.start(icfg); !s.is_ok()) {
        std::fprintf(stderr, "introspect: %s\n", s.to_string().c_str());
        return 1;
      }
      std::printf("introspect: http://127.0.0.1:%u\n", introspect.port());
      std::fflush(stdout);
    }
    const auto status = options.horizon > 0 ? engine.run_for(options.horizon)
                                            : engine.run();
    if (driver) driver->finish();
    introspect.stop();
    if (!status.is_ok()) {
      std::fprintf(stderr, "run: %s\n", status.to_string().c_str());
      // Flush whatever telemetry the run accumulated before it failed — a
      // watchdog timeout is exactly when the trace is worth reading.
      write_artifacts(options, engine.report());
      return 1;
    }
    print_report(engine.report());
    int rc = write_artifacts(options, engine.report());
    if (chaos_on) {
      rc |= finish_chaos(options, scenario, "rt", engine.report());
    }
    return rc;
  }
}
