// gates_node — one grid-service daemon process. The coordinator
// (gates_run --daemons N) spawns these, drives the control phases over the
// RPC frames of gates::net::wire, and the daemon runs its partition of the
// pipeline on a real-time engine with RemoteLink transports to its peers.
//
//   gates_node --port-file /tmp/node0.port
//   gates_node --control-port 7001 --verbose
//
// Flags:
//   --control-port N   control listener port (default 0 = ephemeral)
//   --port-file FILE   write the bound control port here (coordinator polls)
//   --verbose          middleware INFO logging
#include <cstdio>
#include <cstring>
#include <string>

#include "gates/apps/registration.hpp"
#include "gates/common/log.hpp"
#include "gates/common/string_util.hpp"
#include "gates/grid/node_remote.hpp"

int main(int argc, char** argv) {
  gates::grid::NodeDaemon::Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--control-port") {
      const char* v = next();
      long long n;
      if (!v || !gates::parse_int(v, n) || n < 0 || n > 65535) {
        std::fprintf(stderr, "bad --control-port\n");
        return 2;
      }
      options.control_port = static_cast<std::uint16_t>(n);
    } else if (arg == "--port-file") {
      const char* v = next();
      if (!v) {
        std::fprintf(stderr, "--port-file needs a path\n");
        return 2;
      }
      options.port_file = v;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--control-port N] [--port-file FILE] "
                   "[--verbose]\n",
                   argv[0]);
      return 2;
    }
  }
  gates::Logger::global().set_level(options.verbose ? gates::LogLevel::kInfo
                                                    : gates::LogLevel::kWarn);
  // Same registries as gates_run: deterministic deployment depends on the
  // daemon resolving the identical builtin:// processor set.
  gates::apps::register_all();
  const auto status = gates::grid::NodeDaemon::run(options);
  if (!status.is_ok()) {
    std::fprintf(stderr, "gates_node: %s\n", status.to_string().c_str());
    return 1;
  }
  return 0;
}
