// The same middleware on real threads: the RtEngine runs one thread per
// source and stage, throttles inter-node flows to wall-clock bandwidth, and
// drives the identical Section-4 adaptation from a control thread.
//
// A short (seconds of wall time) count-samps run: two sources, two summary
// stages, a merge sink behind a throttled shared ingress.
#include <cstdio>

#include "gates/apps/accuracy.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/apps/registration.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"
#include "gates/core/rt_engine.hpp"

int main() {
  using namespace gates;

  core::PipelineSpec pipeline;
  pipeline.name = "rt-count-samps";
  core::Placement placement;

  for (int i = 0; i < 2; ++i) {
    core::StageSpec summary;
    summary.name = "summary" + std::to_string(i);
    summary.factory = [] {
      return std::make_unique<apps::CountSampsSummaryProcessor>();
    };
    summary.properties.set("emit-every", "1000");
    summary.properties.set("track-exact", "true");
    pipeline.stages.push_back(std::move(summary));
    placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
  }
  core::StageSpec merge;
  merge.name = "merge";
  merge.factory = [] {
    return std::make_unique<apps::CountSampsSinkProcessor>();
  };
  pipeline.stages.push_back(std::move(merge));
  placement.stage_nodes.push_back(0);
  pipeline.edges = {{0, 2, 0}, {1, 2, 0}};

  auto zipf = std::make_shared<ZipfGenerator>(1000, 1.2);
  for (int i = 0; i < 2; ++i) {
    core::SourceSpec src;
    src.name = "stream" + std::to_string(i);
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = 4000;       // wall-clock: ~2.5 s of generation
    src.total_packets = 10000;
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = static_cast<std::size_t>(i);
    src.generator = [zipf](std::uint64_t, Rng& rng) {
      core::Packet p;
      Serializer s(p.payload);
      s.write_u64(zipf->next(rng));
      return p;
    };
    pipeline.sources.push_back(std::move(src));
  }

  net::Topology topology;
  topology.set_shared_ingress(0, {50e3, 0.0});  // 50 KB/s into the merge node

  core::RtEngine::Config config;
  config.control_period = 0.05;
  config.max_wall_time = 60;
  core::RtEngine engine(std::move(pipeline), std::move(placement), {},
                        topology, config);

  std::printf("running on real threads (a few seconds of wall time)...\n");
  if (auto status = engine.run(); !status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.to_string().c_str());
    return 1;
  }

  const auto& report = engine.report();
  std::printf("completed=%d in %.2f s wall time\n", report.completed,
              report.execution_time);
  for (const auto& stage : report.stages) {
    std::printf("  stage %-9s processed %6llu packets, emitted %4llu, queue "
                "mean %.1f\n",
                stage.name.c_str(),
                static_cast<unsigned long long>(stage.packets_processed),
                static_cast<unsigned long long>(stage.packets_emitted),
                stage.queue_length.mean());
  }

  auto& sink = dynamic_cast<apps::CountSampsSinkProcessor&>(engine.processor(2));
  apps::ExactCounter exact;
  for (int i = 0; i < 2; ++i) {
    auto& summary =
        dynamic_cast<apps::CountSampsSummaryProcessor&>(engine.processor(i));
    if (summary.exact() != nullptr) exact.merge(*summary.exact());
  }
  const auto accuracy = apps::top_k_accuracy(sink.result(), exact.top_k(10));
  std::printf("top-10 accuracy vs exact: %.1f\n", accuracy.score());
  return 0;
}
