// Quickstart: write a StreamProcessor with an adjustment parameter, build a
// two-stage pipeline programmatically, and run it on the deterministic
// simulation engine.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// The pipeline mirrors the paper's Sampler example (§3.3): a source
// generates readings; a sampler stage forwards a middleware-tuned fraction
// of them; a sink averages what arrives. The sink is deliberately slow, so
// the middleware lowers the sampling rate until the sink keeps up.
#include <cmath>
#include <cstdio>
#include <memory>

#include "gates/common/serialize.hpp"
#include "gates/core/processor.hpp"
#include "gates/core/sim_engine.hpp"

namespace {

using namespace gates;

/// Forwards a fraction of each packet's readings. The fraction is the
/// middleware-controlled adjustment parameter, exactly the specifyPara /
/// getSuggestedValue pattern of the paper.
class QuickSampler final : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext& ctx) override {
    core::AdjustmentParameter::Spec spec;
    spec.name = "sampling-rate";
    spec.initial = 1.0;   // start fully accurate
    spec.min_value = 0.05;
    spec.max_value = 1.0;
    spec.increment = 0.01;
    spec.direction = ParamDirection::kIncreaseSlowsDown;
    rate_ = &ctx.specify_parameter(spec);
  }

  void process(const core::Packet& packet, core::Emitter& emitter) override {
    const double rate = rate_->suggested_value();  // poll each iteration
    const std::size_t values = packet.payload_bytes() / 8;
    const auto keep = static_cast<std::size_t>(values * rate);
    if (keep == 0) return;
    core::Packet out = packet;
    out.payload.resize(keep * 8);
    out.records = keep;
    emitter.emit(std::move(out));
  }

  std::string name() const override { return "quick-sampler"; }

 private:
  core::AdjustmentParameter* rate_ = nullptr;
};

/// Averages every reading it manages to process.
class QuickSink final : public core::StreamProcessor {
 public:
  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter&) override {
    Deserializer d(packet.payload);
    double value = 0;
    while (d.remaining() >= 8 && d.read_f64(value).is_ok()) {
      sum_ += value;
      ++count_;
    }
  }
  std::string name() const override { return "quick-sink"; }

  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0; }
  std::uint64_t count() const { return count_; }

 private:
  double sum_ = 0;
  std::uint64_t count_ = 0;
};

}  // namespace

int main() {
  using namespace gates;

  core::PipelineSpec pipeline;
  pipeline.name = "quickstart";

  core::StageSpec sampler;
  sampler.name = "sampler";
  sampler.factory = [] { return std::make_unique<QuickSampler>(); };
  pipeline.stages.push_back(std::move(sampler));

  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<QuickSink>(); };
  // The sink can only consume ~800 readings/second; the source produces
  // 3200/s. Without adaptation its queue would saturate.
  sink.cost.per_record_seconds = 1.0 / 800.0;
  pipeline.stages.push_back(std::move(sink));
  pipeline.edges.push_back({0, 1, 0});

  core::SourceSpec source;
  source.name = "instrument";
  source.rate_hz = 100;       // 100 packets/s x 32 readings = 3200 readings/s
  source.total_packets = 0;   // unbounded; we run for a fixed horizon
  source.generator = [](std::uint64_t seq, Rng& rng) {
    core::Packet p;
    Serializer s(p.payload);
    for (int i = 0; i < 32; ++i) {
      s.write_f64(0.5 + 0.1 * std::sin(0.01 * static_cast<double>(seq)) +
                  0.02 * rng.normal());
    }
    p.records = 32;
    return p;
  };
  pipeline.sources.push_back(std::move(source));

  core::Placement placement;
  placement.stage_nodes = {0, 0};  // both stages on one node

  core::SimEngine engine(std::move(pipeline), std::move(placement), {}, {}, {});
  if (auto status = engine.run_for(120.0); !status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.to_string().c_str());
    return 1;
  }

  const auto& report = engine.report();
  auto& sink_proc = dynamic_cast<QuickSink&>(engine.processor(1));
  std::printf("quickstart: 120 s of virtual time\n");
  std::printf("  sink processed %llu readings (mean %.3f)\n",
              static_cast<unsigned long long>(sink_proc.count()),
              sink_proc.mean());
  const auto* sampler_report = report.stage("sampler");
  for (const auto& [name, trajectory] : sampler_report->parameter_trajectories) {
    double settled = 0;
    const std::size_t start = trajectory.size() / 2;
    for (std::size_t i = start; i < trajectory.size(); ++i) {
      settled += trajectory[i].second;
    }
    settled /= static_cast<double>(trajectory.size() - start);
    std::printf("  parameter '%s': start %.2f -> settled ~%.2f (target ~0.25: "
                "sink consumes 800 of 3200 readings/s)\n",
                name.c_str(), trajectory.front().second, settled);
  }
  const auto* sink_report = report.stage("sink");
  std::printf("  sink queue: mean %.1f, max %.0f (capacity %d)\n",
              sink_report->queue_length.mean(), sink_report->queue_length.max(),
              200);
  std::printf("  exceptions: sink sent %llu overload / %llu underload\n",
              static_cast<unsigned long long>(
                  sink_report->overload_exceptions_sent),
              static_cast<unsigned long long>(
                  sink_report->underload_exceptions_sent));
  return 0;
}
