// Distributed top-k over the full middleware path — the application-user
// experience from the paper (§3.2): the developer has published stage code
// into a repository and hosted an XML configuration; the user passes the
// config URL to the Launcher and runs the launched application.
//
// Grid: one central node and four edge nodes. Each edge node receives a
// Zipf-skewed integer sub-stream; a summary stage near each source ships
// top-n summaries over a shared 100 KB/s ingress to the central sink, which
// answers "top 10 most frequent values" continuously.
#include <cstdio>

#include "gates/apps/accuracy.hpp"
#include "gates/common/log.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/apps/registration.hpp"
#include "gates/core/sim_engine.hpp"
#include "gates/grid/launcher.hpp"

namespace {

const char* kConfig = R"(<?xml version="1.0"?>
<application name="dist-topk">
  <stages>
    <stage name="summary0" code="repo://demo-apps/stages/summary">
      <param name="emit-every" value="2500"/>
      <param name="track-exact" value="true"/>
      <placement node="1"/>
    </stage>
    <stage name="summary1" code="repo://demo-apps/stages/summary">
      <param name="emit-every" value="2500"/>
      <param name="track-exact" value="true"/>
      <placement node="2"/>
    </stage>
    <stage name="summary2" code="repo://demo-apps/stages/summary">
      <param name="emit-every" value="2500"/>
      <param name="track-exact" value="true"/>
      <placement node="3"/>
    </stage>
    <stage name="summary3" code="repo://demo-apps/stages/summary">
      <param name="emit-every" value="2500"/>
      <param name="track-exact" value="true"/>
      <placement node="4"/>
    </stage>
    <stage name="merge" code="repo://demo-apps/stages/merge">
      <param name="top-k" value="10"/>
      <requirement min-cpu="1.0" min-memory-mb="512"/>
    </stage>
  </stages>
  <edges>
    <edge from="summary0" to="merge"/>
    <edge from="summary1" to="merge"/>
    <edge from="summary2" to="merge"/>
    <edge from="summary3" to="merge"/>
  </edges>
  <sources>
    <source name="s0" stream="0" rate="138" count="25000" target="summary0"
            node="1" type="zipf-u64">
      <param name="universe" value="5000"/><param name="theta" value="1.1"/>
    </source>
    <source name="s1" stream="1" rate="138" count="25000" target="summary1"
            node="2" type="zipf-u64">
      <param name="universe" value="5000"/><param name="theta" value="1.1"/>
    </source>
    <source name="s2" stream="2" rate="138" count="25000" target="summary2"
            node="3" type="zipf-u64">
      <param name="universe" value="5000"/><param name="theta" value="1.1"/>
    </source>
    <source name="s3" stream="3" rate="138" count="25000" target="summary3"
            node="4" type="zipf-u64">
      <param name="universe" value="5000"/><param name="theta" value="1.1"/>
    </source>
  </sources>
</application>)";

}  // namespace

int main() {
  using namespace gates;
  Logger::global().set_level(LogLevel::kInfo);

  // -- developer side: register code, publish it to a repository ------------
  apps::register_all();
  grid::RepositoryRegistry repos;
  auto repo = repos.create("demo-apps");
  if (!repo.ok()) return 1;
  (void)(*repo)->publish("stages/summary",
                         {apps::CountSampsSummaryProcessor::kRegistryName,
                          "1.0", "per-site counting-samples summary"});
  (void)(*repo)->publish("stages/merge",
                         {apps::CountSampsSinkProcessor::kRegistryName, "1.0",
                          "central summary merger"});

  // -- grid side: nodes register with the resource directory ----------------
  grid::ResourceDirectory directory;
  grid::ResourceSpec central;
  central.cpu_factor = 2.0;
  central.memory_mb = 8192;
  directory.register_node("central.grid.example", central);   // node 0
  for (int i = 1; i <= 4; ++i) {
    grid::ResourceSpec edge;
    edge.cpu_factor = 1.0;
    edge.memory_mb = 1024;
    directory.register_node("edge" + std::to_string(i) + ".grid.example",
                            edge);
  }

  // -- user side: pass the config URL to the Launcher -----------------------
  grid::Deployer deployer(directory, repos, grid::ProcessorRegistry::global());
  grid::Launcher launcher(deployer, grid::GeneratorRegistry::global());
  launcher.host_config("dist-topk", kConfig);
  auto app = launcher.launch_url("config://dist-topk");
  if (!app.ok()) {
    std::fprintf(stderr, "launch failed: %s\n", app.status().to_string().c_str());
    return 1;
  }

  std::printf("deployment decisions:\n");
  for (const auto& decision : app->deployment.decisions) {
    std::printf("  - %s\n", decision.c_str());
  }

  // -- run on the simulation engine -----------------------------------------
  net::Topology topology;
  topology.set_shared_ingress(0, {100e3, 0.0});  // 100 KB/s into central
  core::SimEngine::Config config;
  config.wire.per_message_overhead = 32;
  config.wire.per_record_overhead = 220;  // Java object-stream model
  core::SimEngine engine(app->pipeline, app->deployment.placement,
                         app->deployment.hosts, topology, config);
  if (auto status = engine.run(); !status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.to_string().c_str());
    return 1;
  }

  const auto merge_index = app->pipeline.stages.size() - 1;
  auto& sink =
      dynamic_cast<apps::CountSampsSinkProcessor&>(engine.processor(merge_index));
  apps::ExactCounter exact;
  for (std::size_t i = 0; i + 1 < app->pipeline.stages.size(); ++i) {
    auto& summary =
        dynamic_cast<apps::CountSampsSummaryProcessor&>(engine.processor(i));
    if (summary.exact() != nullptr) exact.merge(*summary.exact());
  }

  std::printf("\nexecution time: %.1f s (virtual)\n",
              engine.report().execution_time);
  std::printf("top-10 most frequent values (reported vs exact):\n");
  const auto reported = sink.result();
  const auto truth = exact.top_k(10);
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const bool hit = i < reported.size();
    std::printf("  #%2zu exact: value %5llu x%-6.0f   reported: %s\n", i + 1,
                static_cast<unsigned long long>(truth[i].value), truth[i].count,
                hit ? (std::string("value ") + std::to_string(reported[i].value) +
                       " ~" + std::to_string(static_cast<long long>(
                                  reported[i].count)))
                          .c_str()
                    : "(missing)");
  }
  const auto accuracy = apps::top_k_accuracy(reported, truth);
  std::printf("accuracy: %.1f (recall %.2f, frequency accuracy %.2f)\n",
              accuracy.score(), accuracy.recall, accuracy.frequency_accuracy);
  return 0;
}
