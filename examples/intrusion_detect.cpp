// Online network intrusion detection (§2): connection-request logs at three
// sites are summarized locally (windowed per-port counts, report size is an
// adjustment parameter) and analyzed centrally for unusual patterns. Site 1
// suffers a port-scan burst midway through the run.
#include <cstdio>

#include "gates/apps/intrusion.hpp"
#include "gates/apps/registration.hpp"
#include "gates/core/sim_engine.hpp"

int main() {
  using namespace gates;

  grid::GeneratorRegistry generators;
  apps::register_generators(generators);

  core::PipelineSpec pipeline;
  pipeline.name = "intrusion-detect";
  core::Placement placement;

  constexpr int kSites = 3;
  for (int site = 0; site < kSites; ++site) {
    core::StageSpec features;
    features.name = "site" + std::to_string(site);
    features.factory = [] {
      return std::make_unique<apps::SiteFeatureProcessor>();
    };
    features.properties.set("window", "1000");
    pipeline.stages.push_back(std::move(features));
    placement.stage_nodes.push_back(static_cast<NodeId>(site + 1));
  }
  core::StageSpec detector;
  detector.name = "detector";
  detector.factory = [] {
    return std::make_unique<apps::IntrusionDetectorProcessor>();
  };
  detector.properties.set("deviation-factor", "4.0");
  pipeline.stages.push_back(std::move(detector));
  placement.stage_nodes.push_back(0);
  for (std::size_t site = 0; site < kSites; ++site) {
    pipeline.edges.push_back({site, kSites, 0});
  }

  for (int site = 0; site < kSites; ++site) {
    core::SourceSpec logs;
    logs.name = "connlog" + std::to_string(site);
    logs.stream = static_cast<StreamId>(site);
    logs.rate_hz = 500;
    logs.total_packets = 30000;
    logs.location = static_cast<NodeId>(site + 1);
    logs.target_stage = static_cast<std::size_t>(site);
    Properties props;
    props.set("ports", "1024");
    if (site == 1) {
      // Port-scan burst toward 31337 between packets 15k and 20k.
      props.set("burst-start", "15000");
      props.set("burst-end", "20000");
      props.set("anomaly-port", "31337");
      props.set("anomaly-prob", "0.5");
    }
    auto generator = generators.make("connlog", props);
    if (!generator.ok()) {
      std::fprintf(stderr, "%s\n", generator.status().to_string().c_str());
      return 1;
    }
    logs.generator = std::move(*generator);
    pipeline.sources.push_back(std::move(logs));
  }

  core::SimEngine engine(std::move(pipeline), std::move(placement), {}, {}, {});
  if (auto status = engine.run(); !status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.to_string().c_str());
    return 1;
  }

  auto& det = dynamic_cast<apps::IntrusionDetectorProcessor&>(
      engine.processor(kSites));
  std::printf("intrusion detection over %d sites, %.0f s of virtual time\n",
              kSites, engine.report().execution_time);
  std::printf("reports received: %llu; alarms: %zu\n",
              static_cast<unsigned long long>(det.reports_received()),
              det.alarms().size());
  for (const auto& alarm : det.alarms()) {
    std::printf(
        "  ALARM t=%6.1fs site %u port %5llu: %0.0f connections vs baseline "
        "%.1f%s\n",
        alarm.time, alarm.site,
        static_cast<unsigned long long>(alarm.port), alarm.observed,
        alarm.baseline_mean, alarm.port == 31337 ? "  <-- injected scan" : "");
  }
  return 0;
}
