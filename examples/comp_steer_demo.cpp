// Computational-steering demo (§2, §5.4): a simulated mesh computation
// streams field values; a sampler forwards a middleware-tuned fraction to a
// remote analyzer whose post-processing costs 10 ms/byte; the analyzer
// derives steering actions (refine/coarsen) from the sampled field.
//
// Watch the sampling factor climb from 0.13 toward the highest rate the
// analyzer sustains, and the analyzer flag mesh regions for refinement.
#include <cstdio>

#include "gates/apps/comp_steer.hpp"
#include "gates/apps/registration.hpp"
#include "gates/core/sim_engine.hpp"

int main() {
  using namespace gates;

  core::PipelineSpec pipeline;
  pipeline.name = "comp-steer-demo";

  core::StageSpec sampler;
  sampler.name = "sampler";
  sampler.factory = [] { return std::make_unique<apps::SamplerProcessor>(); };
  sampler.properties.set("rate-initial", "0.13");
  pipeline.stages.push_back(std::move(sampler));

  core::StageSpec analyzer;
  analyzer.name = "analyzer";
  analyzer.factory = [] {
    return std::make_unique<apps::SteeringAnalyzerProcessor>();
  };
  analyzer.properties.set("feature-threshold", "0.85");
  analyzer.properties.set("window", "128");
  analyzer.cost.per_byte_seconds = 0.010;  // 10 ms/byte post-processing
  pipeline.stages.push_back(std::move(analyzer));
  pipeline.edges.push_back({0, 1, 0});

  // The simulation emits 10 chunks/second of 16 bytes (160 B/s) from the
  // registered mesh-f64 generator.
  grid::GeneratorRegistry generators;
  apps::register_generators(generators);
  Properties mesh_props;
  mesh_props.set("values", "2");
  mesh_props.set("drift", "0.05");
  auto generator = generators.make("mesh-f64", mesh_props);
  if (!generator.ok()) {
    std::fprintf(stderr, "%s\n", generator.status().to_string().c_str());
    return 1;
  }

  core::SourceSpec simulation;
  simulation.name = "mesh-simulation";
  simulation.rate_hz = 10;
  simulation.total_packets = 0;  // steering runs continuously
  simulation.generator = std::move(*generator);
  simulation.location = 0;
  pipeline.sources.push_back(std::move(simulation));

  core::Placement placement;
  placement.stage_nodes = {0, 1};  // sampler with the simulation, analyzer remote

  core::SimEngine::Config config;
  config.wire.per_message_overhead = 0;
  config.wire.per_record_overhead = 0;
  core::SimEngine engine(std::move(pipeline), std::move(placement), {}, {},
                         config);
  if (auto status = engine.run_for(600.0); !status.is_ok()) {
    std::fprintf(stderr, "run failed: %s\n", status.to_string().c_str());
    return 1;
  }

  const auto* sampler_report = engine.report().stage("sampler");
  std::printf("sampling-factor trajectory (10 ms/byte analyzer, 160 B/s "
              "generation, optimum ~0.625):\n");
  for (const auto& [name, trajectory] : sampler_report->parameter_trajectories) {
    for (std::size_t i = 0; i < trajectory.size(); i += 60) {
      std::printf("  t=%4.0fs  %s = %.2f\n", trajectory[i].first, name.c_str(),
                  trajectory[i].second);
    }
  }

  auto& analyzer_proc =
      dynamic_cast<apps::SteeringAnalyzerProcessor&>(engine.processor(1));
  std::printf("\nanalyzer: %llu bytes analyzed, field mean %.3f\n",
              static_cast<unsigned long long>(analyzer_proc.bytes_analyzed()),
              analyzer_proc.field_stats().mean());
  std::printf("steering actions (windowed mean crossing 0.85):\n");
  std::size_t shown = 0;
  for (const auto& action : analyzer_proc.actions()) {
    std::printf("  t=%6.1fs  %s region (windowed mean %.3f)\n", action.time,
                action.refine ? "REFINE " : "COARSEN", action.windowed_mean);
    if (++shown == 12) {
      std::printf("  ... %zu more\n", analyzer_proc.actions().size() - shown);
      break;
    }
  }
  if (analyzer_proc.actions().empty()) {
    std::printf("  (none this run)\n");
  }
  return 0;
}
