#include "gates/chaos/invariants.hpp"

#include <algorithm>
#include <cstdio>

#include "gates/common/json.hpp"

namespace gates::chaos {
namespace {

std::string format_count(const char* what, std::uint64_t n) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%s=%llu", what,
                static_cast<unsigned long long>(n));
  return buf;
}

InvariantResult check_completed(const core::RunReport& report,
                                bool bounded_run) {
  InvariantResult r;
  r.name = "run-completed";
  if (!bounded_run && !report.completed) {
    r.passed = true;
    r.detail = "vacuous: run_for horizon cuts the run off by design";
    return r;
  }
  r.passed = report.completed;
  r.detail = report.completed ? "pipeline reached EOS"
                              : "run hit the time horizon before EOS";
  return r;
}

InvariantResult check_loss_accounting(const ChaosScenario& scenario,
                                      const core::RunReport& report) {
  InvariantResult r;
  r.name = "no-unaccounted-loss";
  std::uint64_t lost = 0;
  std::uint64_t retransmitted = 0;
  for (const core::LinkReport& l : report.links) {
    lost += l.messages_lost;
    retransmitted += l.messages_retransmitted;
  }
  if (scenario.lossy_drop) {
    // Permanent loss was injected: it is legal, but it must be visible on
    // the link accounting rather than silently vanishing.
    r.passed = true;
    r.detail = format_count("accounted messages_lost", lost);
    return r;
  }
  r.passed = lost == 0;
  r.detail = format_count("messages_lost", lost) + ", " +
             format_count("messages_retransmitted", retransmitted) +
             (r.passed ? "" : " — retransmit-mode impairments must not lose");
  return r;
}

InvariantResult check_no_false_failover(const ChaosScenario& scenario,
                                        const core::RunReport& report) {
  InvariantResult r;
  r.name = "heartbeat-no-false-positive";
  if (scenario.has_kills) {
    r.passed = true;
    r.detail = "vacuous: scenario injects crashes";
    return r;
  }
  r.passed = report.failures.empty();
  if (r.passed) {
    r.detail = "no failure declared under pure delay/loss";
  } else {
    r.detail = "failure detector fired with no crash injected: stage '" +
               report.failures.front().stage + "' at t=" +
               std::to_string(report.failures.front().detected_at);
  }
  return r;
}

InvariantResult check_crashes_detected(const ChaosScenario& scenario,
                                       const core::RunReport& report) {
  InvariantResult r;
  r.name = "injected-crashes-detected";
  if (!scenario.has_kills) {
    r.passed = true;
    r.detail = "vacuous: scenario injects no crashes";
    return r;
  }
  std::vector<NodeId> missing;
  for (NodeId node : scenario.expected_failed_nodes) {
    const bool seen = std::any_of(
        report.failures.begin(), report.failures.end(),
        [node](const core::FailureReport& f) { return f.node == node; });
    if (!seen) missing.push_back(node);
  }
  // Rt-driven kills land as kill_stage: the failure record carries the
  // stage's placement node, which the expected_failed_nodes list names too,
  // so the node check covers both engines.
  r.passed = missing.empty();
  if (r.passed) {
    r.detail = format_count("failures detected",
                            static_cast<std::uint64_t>(report.failures.size()));
  } else {
    r.detail = "crashed node(s) never detected:";
    for (NodeId node : missing) r.detail += " " + std::to_string(node);
  }
  return r;
}

InvariantResult check_eq4_reconverges(
    const ChaosScenario& scenario,
    const std::vector<obs::TraceEvent>& events) {
  InvariantResult r;
  r.name = "eq4-adapts-after-transition";
  bool any_adjust = false;
  bool after = false;
  double last_adjust = 0;
  for (const obs::TraceEvent& e : events) {
    if (e.kind != obs::TraceKind::kParamAdjust &&
        e.kind != obs::TraceKind::kReplicaScaleUp &&
        e.kind != obs::TraceKind::kReplicaScaleDown) {
      continue;
    }
    any_adjust = true;
    last_adjust = std::max(last_adjust, e.time);
    if (e.time > scenario.last_transition) after = true;
  }
  if (!any_adjust) {
    r.passed = true;
    r.detail = "vacuous: no adaptive parameters adjusted during the run";
    return r;
  }
  r.passed = after;
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "last adjustment t=%.3f, last transition t=%.3f", last_adjust,
                scenario.last_transition);
  r.detail = buf;
  return r;
}

}  // namespace

std::vector<InvariantResult> evaluate_invariants(
    const ChaosScenario& scenario, const core::RunReport& report,
    const std::vector<obs::TraceEvent>& events, bool bounded_run) {
  std::vector<InvariantResult> results;
  results.push_back(check_completed(report, bounded_run));
  results.push_back(check_loss_accounting(scenario, report));
  results.push_back(check_no_false_failover(scenario, report));
  results.push_back(check_crashes_detected(scenario, report));
  results.push_back(check_eq4_reconverges(scenario, events));
  return results;
}

bool ChaosReport::all_passed() const {
  return std::all_of(invariants.begin(), invariants.end(),
                     [](const InvariantResult& r) { return r.passed; });
}

std::string ChaosReport::to_json() const {
  JsonWriter w;
  w.begin_object()
      .kv("scenario", scenario)
      .kv("engine", engine)
      .kv("seed", seed)
      .kv("all_passed", all_passed());
  w.key("invariants").begin_array();
  for (const InvariantResult& r : invariants) {
    w.begin_object()
        .kv("name", r.name)
        .kv("passed", r.passed)
        .kv("detail", r.detail)
        .end_object();
  }
  w.end_array();
  w.end_object();
  // Splice the embedded RunReport and the bottleneck attribution (both
  // already valid JSON) before the closing brace — JsonWriter has no
  // raw-value passthrough.
  std::string out = w.str();
  out.insert(out.size() - 1, ",\"run\":" + run.to_json() +
                                 ",\"attribution\":" + run.attribution.to_json());
  return out;
}

}  // namespace gates::chaos
