// Chaos runner: replays one ChaosScenario against either engine.
//
// SimEngine: every action becomes a scheduled event before run() — the whole
// soak is deterministic and replayable from (config, seed, scenario).
// RtEngine: crash injections are scheduled pre-run; link transitions are
// driven by a timer thread (RtChaosDriver) calling apply_link_change /
// kill_stage while run() blocks, after a prepare pass registered every
// touched flow so its shaper exists.
#pragma once

#include <condition_variable>
#include <mutex>
#include <thread>

#include "gates/chaos/invariants.hpp"
#include "gates/chaos/scenario.hpp"
#include "gates/core/rt_engine.hpp"
#include "gates/core/sim_engine.hpp"

namespace gates::chaos {

/// Picks the flow a scenario should impair from a deployed pipeline: the
/// first inter-node stage edge, else the first source->stage flow, with the
/// flow's configured spec as the restore point. victim_node/victim_stage are
/// filled from the last pipeline stage (crash scenarios recover everything
/// upstream of the sink by replay).
ChaosTarget default_target(const core::PipelineSpec& spec,
                           const core::Placement& placement,
                           const net::Topology& topology);

/// Schedules every action into the DES before run(). kKillStage actions are
/// mapped to node failures of the stage's placement node.
void apply_to_sim(core::SimEngine& engine, const ChaosScenario& scenario,
                  const core::Placement& placement);

/// Pre-run pass for the RtEngine: registers every link the scenario touches
/// (prepare_link_change, so clean flows still get shapers) and schedules
/// crash injections. Must precede run().
void prepare_rt(core::RtEngine& engine, const ChaosScenario& scenario);

/// Timer thread driving the runtime half of a scenario against a live
/// RtEngine. Usage:
///   prepare_rt(engine, scenario);
///   RtChaosDriver driver(engine, scenario);
///   driver.start();              // immediately before run()
///   Status s = engine.run();
///   driver.finish();             // joins; safe if actions remain
class RtChaosDriver {
 public:
  RtChaosDriver(core::RtEngine& engine, ChaosScenario scenario);
  ~RtChaosDriver();
  RtChaosDriver(const RtChaosDriver&) = delete;
  RtChaosDriver& operator=(const RtChaosDriver&) = delete;

  void start();
  void finish();

 private:
  void run();

  core::RtEngine& engine_;
  ChaosScenario scenario_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Assembles the chaos artifact from a finished run: evaluates every
/// invariant against the report and the global trace buffer's event log.
ChaosReport make_report(const ChaosScenario& scenario, const char* engine,
                        std::uint64_t seed, const core::RunReport& report,
                        const std::vector<obs::TraceEvent>& events,
                        bool bounded_run = true);

}  // namespace gates::chaos
