#include "gates/chaos/runner.hpp"

#include <chrono>

#include "gates/common/check.hpp"

namespace gates::chaos {

ChaosTarget default_target(const core::PipelineSpec& spec,
                           const core::Placement& placement,
                           const net::Topology& topology) {
  ChaosTarget target;
  bool found = false;
  for (const core::EdgeSpec& edge : spec.edges) {
    const NodeId from = placement.stage_nodes[edge.from_stage];
    const NodeId to = placement.stage_nodes[edge.to_stage];
    if (from != to) {
      target.from = from;
      target.to = to;
      found = true;
      break;
    }
  }
  if (!found) {
    for (const core::SourceSpec& src : spec.sources) {
      const NodeId to = placement.stage_nodes[src.target_stage];
      if (src.location != to) {
        target.from = src.location;
        target.to = to;
        found = true;
        break;
      }
    }
  }
  if (!found && !spec.sources.empty()) {
    // Fully co-located pipeline: impair the first source flow anyway (the
    // loopback stays clean, but bandwidth transitions still apply).
    target.from = spec.sources.front().location;
    target.to = placement.stage_nodes[spec.sources.front().target_stage];
  }
  if (auto ingress = topology.shared_ingress(target.to)) {
    target.base = *ingress;
  } else {
    target.base = topology.between(target.from, target.to);
  }
  if (!spec.stages.empty()) {
    // Crash a mid-pipeline stage: upstream retention replays it, downstream
    // observes the recovery — the interesting failover path.
    target.victim_stage = spec.stages.size() > 1 ? spec.stages.size() / 2 : 0;
    target.victim_node = placement.stage_nodes[target.victim_stage];
    // Migrate a different stage than the crash victim so the crash
    // invariants keyed to the victim's original node still hold after the
    // move. The first stage usually sits on an edge node, so a faster
    // (central) target tends to exist and the scenario exercises the
    // completed-migration path, not just the no-candidate fallback.
    target.migrate_stage =
        target.victim_stage == 0 ? spec.stages.size() - 1 : 0;
  }
  return target;
}

void apply_to_sim(core::SimEngine& engine, const ChaosScenario& scenario,
                  const core::Placement& placement) {
  for (const ChaosAction& a : scenario.actions) {
    switch (a.kind) {
      case ChaosAction::Kind::kLinkChange:
        engine.schedule_link_change(a.from, a.to, a.time, a.spec);
        break;
      case ChaosAction::Kind::kNodeFailure:
        engine.schedule_node_failure(a.node, a.time);
        break;
      case ChaosAction::Kind::kNodeRecovery:
        engine.schedule_node_recovery(a.node, a.time);
        break;
      case ChaosAction::Kind::kKillStage:
        // The DES has no per-stage kill; the stage's hosting node fails.
        engine.schedule_node_failure(placement.stage_nodes[a.stage_index],
                                     a.time);
        break;
      case ChaosAction::Kind::kMigrateStage:
        engine.schedule_migration(a.stage_index, a.time, a.node);
        break;
    }
  }
}

void prepare_rt(core::RtEngine& engine, const ChaosScenario& scenario) {
  for (const ChaosAction& a : scenario.actions) {
    switch (a.kind) {
      case ChaosAction::Kind::kLinkChange:
        engine.prepare_link_change(a.from, a.to);
        break;
      case ChaosAction::Kind::kNodeFailure:
        engine.schedule_node_failure(a.node, a.time);
        break;
      case ChaosAction::Kind::kNodeRecovery:
        // Rt failover restarts a killed stage in place — recovery needs no
        // scheduling.
        break;
      case ChaosAction::Kind::kKillStage:
      case ChaosAction::Kind::kMigrateStage:
        // Injected live by the driver thread.
        break;
    }
  }
}

RtChaosDriver::RtChaosDriver(core::RtEngine& engine, ChaosScenario scenario)
    : engine_(engine), scenario_(std::move(scenario)) {}

RtChaosDriver::~RtChaosDriver() { finish(); }

void RtChaosDriver::start() {
  GATES_CHECK(!thread_.joinable());
  thread_ = std::thread([this] { run(); });
}

void RtChaosDriver::finish() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void RtChaosDriver::run() {
  const auto start = std::chrono::steady_clock::now();
  for (const ChaosAction& a : scenario_.actions) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      const auto deadline =
          start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(a.time));
      if (cv_.wait_until(lock, deadline, [this] { return stop_; })) return;
    }
    switch (a.kind) {
      case ChaosAction::Kind::kLinkChange:
        engine_.apply_link_change(a.from, a.to, a.spec);
        break;
      case ChaosAction::Kind::kKillStage:
        engine_.kill_stage(a.stage_index);
        break;
      case ChaosAction::Kind::kMigrateStage:
        engine_.request_migration(a.stage_index, a.node);
        break;
      case ChaosAction::Kind::kNodeFailure:
      case ChaosAction::Kind::kNodeRecovery:
        // Scheduled pre-run by prepare_rt (failures) or a no-op (recovery).
        break;
    }
  }
}

ChaosReport make_report(const ChaosScenario& scenario, const char* engine,
                        std::uint64_t seed, const core::RunReport& report,
                        const std::vector<obs::TraceEvent>& events,
                        bool bounded_run) {
  ChaosReport out;
  out.scenario = scenario.name;
  out.engine = engine;
  out.seed = seed;
  out.run = report;
  out.invariants = evaluate_invariants(scenario, report, events, bounded_run);
  return out;
}

}  // namespace gates::chaos
