#include "gates/chaos/scenario.hpp"

#include <algorithm>

namespace gates::chaos {
namespace {

/// Degraded variant of a base spec: quarter bandwidth, +200 ms propagation,
/// 20 ms jitter, 5% retransmit loss — a congested WAN path.
net::LinkSpec degraded_spec(const net::LinkSpec& base) {
  net::LinkSpec spec = base;
  spec.bandwidth = std::max(base.bandwidth / 4, 1.0);
  spec.latency = base.latency + 0.2;
  spec.impair.jitter = 0.02;
  spec.impair.loss = 0.05;
  spec.impair.loss_mode = net::LossMode::kRetransmit;
  spec.impair.retransmit_delay = 0.02;
  return spec;
}

net::LinkSpec partitioned_spec(const net::LinkSpec& base) {
  net::LinkSpec spec = base;
  spec.impair.loss = 1.0;
  spec.impair.loss_mode = net::LossMode::kRetransmit;
  // The RTO bounds the DES event rate while the head message retries; on
  // heal the backlog drains normally.
  spec.impair.retransmit_delay = 0.05;
  return spec;
}

ChaosAction link_change(TimePoint t, const ChaosTarget& target,
                        net::LinkSpec spec) {
  ChaosAction a;
  a.kind = ChaosAction::Kind::kLinkChange;
  a.time = t;
  a.from = target.from;
  a.to = target.to;
  a.spec = spec;
  return a;
}

void finish(ChaosScenario& s) {
  std::stable_sort(s.actions.begin(), s.actions.end(),
                   [](const ChaosAction& a, const ChaosAction& b) {
                     return a.time < b.time;
                   });
  for (const ChaosAction& a : s.actions) {
    s.last_transition = std::max(s.last_transition, a.time);
    if (a.kind == ChaosAction::Kind::kNodeFailure) {
      s.has_kills = true;
      s.expected_failed_nodes.push_back(a.node);
    }
    if (a.kind == ChaosAction::Kind::kKillStage) {
      s.has_kills = true;
      s.expected_killed_stages.push_back(a.stage_index);
    }
    if (a.kind == ChaosAction::Kind::kMigrateStage) {
      s.has_migrations = true;
    }
    if (a.kind == ChaosAction::Kind::kLinkChange &&
        a.spec.impair.loss_mode == net::LossMode::kDrop &&
        a.spec.impair.lossy()) {
      s.lossy_drop = true;
    }
  }
}

}  // namespace

ChaosScenario degrade(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s;
  s.name = "degrade";
  s.horizon = horizon;
  s.actions.push_back(
      link_change(horizon * 0.25, target, degraded_spec(target.base)));
  s.actions.push_back(link_change(horizon * 0.75, target, target.base));
  finish(s);
  return s;
}

ChaosScenario flap(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s;
  s.name = "flap";
  s.horizon = horizon;
  const Duration step = horizon / 8;
  for (int i = 1; i <= 6; ++i) {
    s.actions.push_back(link_change(
        step * i, target,
        i % 2 == 1 ? degraded_spec(target.base) : target.base));
  }
  finish(s);
  return s;
}

ChaosScenario partition(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s;
  s.name = "partition";
  s.horizon = horizon;
  s.actions.push_back(
      link_change(horizon * 0.25, target, partitioned_spec(target.base)));
  s.actions.push_back(link_change(horizon * 0.5, target, target.base));
  finish(s);
  return s;
}

ChaosScenario asymmetric(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s;
  s.name = "asymmetric";
  s.horizon = horizon;
  s.actions.push_back(
      link_change(horizon * 0.25, target, degraded_spec(target.base)));
  // Reverse path: same nodes swapped, delay only — the asymmetry the
  // heartbeat/lease budget has to absorb.
  ChaosAction reverse = link_change(horizon * 0.25, target, target.base);
  reverse.from = target.to;
  reverse.to = target.from;
  reverse.spec.latency = target.base.latency + 0.05;
  s.actions.push_back(reverse);
  s.actions.push_back(link_change(horizon * 0.75, target, target.base));
  ChaosAction reverse_heal = reverse;
  reverse_heal.time = horizon * 0.75;
  reverse_heal.spec = target.base;
  s.actions.push_back(reverse_heal);
  finish(s);
  return s;
}

ChaosScenario slow_start_burst(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s;
  s.name = "slow-start-burst";
  s.horizon = horizon;
  // Burst-loss regime at 1/8 bandwidth, then ramp back up in doubling steps
  // (slow start) with the burst channel easing off.
  net::LinkSpec burst = target.base;
  burst.bandwidth = std::max(target.base.bandwidth / 8, 1.0);
  burst.impair.burst = true;
  burst.impair.p_good_bad = 0.05;
  burst.impair.p_bad_good = 0.3;
  burst.impair.loss_good = 0.0;
  burst.impair.loss_bad = 0.8;
  burst.impair.loss_mode = net::LossMode::kRetransmit;
  burst.impair.retransmit_delay = 0.01;
  s.actions.push_back(link_change(horizon * 0.2, target, burst));
  net::LinkSpec ramp = burst;
  for (int i = 1; i <= 3; ++i) {
    ramp.bandwidth = std::min(target.base.bandwidth, ramp.bandwidth * 2);
    ramp.impair.loss_bad *= 0.5;
    s.actions.push_back(
        link_change(horizon * (0.2 + 0.15 * i), target, ramp));
  }
  s.actions.push_back(link_change(horizon * 0.8, target, target.base));
  finish(s);
  return s;
}

ChaosScenario crash_flap(const ChaosTarget& target, Duration horizon) {
  ChaosScenario s = flap(target, horizon);
  s.name = "crash-flap";
  // Crash mid-flap, recover the node for the tail of the run. When driven
  // against an RtEngine the failure maps to kill_stage(victim_stage).
  ChaosAction crash;
  crash.kind = ChaosAction::Kind::kNodeFailure;
  crash.time = horizon * 0.4;
  crash.node = target.victim_node;
  crash.stage_index = target.victim_stage;
  s.actions.push_back(crash);
  ChaosAction recover;
  recover.kind = ChaosAction::Kind::kNodeRecovery;
  recover.time = horizon * 0.6;
  recover.node = target.victim_node;
  s.actions.push_back(recover);
  s.last_transition = 0;
  s.expected_failed_nodes.clear();
  s.expected_killed_stages.clear();
  s.has_kills = false;
  finish(s);
  return s;
}

ChaosScenario migrate_under_impairment(const ChaosTarget& target,
                                       Duration horizon) {
  ChaosScenario s = crash_flap(target, horizon);
  s.name = "migrate-under-impairment";
  // Migrate between the crash (0.4h) and the recovery (0.6h): the stage
  // moves while failover is replaying the victim and the link is degraded.
  // The migrated stage is distinct from the crash victim (see
  // ChaosTarget::migrate_stage) so the injected-crashes-detected checker's
  // node match is unaffected by the move. Target node kInvalidNode lets the
  // directory pick the best candidate at migration time.
  ChaosAction migrate;
  migrate.kind = ChaosAction::Kind::kMigrateStage;
  migrate.time = horizon * 0.5;
  migrate.stage_index = target.migrate_stage;
  migrate.node = kInvalidNode;
  s.actions.push_back(migrate);
  s.last_transition = 0;
  s.expected_failed_nodes.clear();
  s.expected_killed_stages.clear();
  s.has_kills = false;
  s.has_migrations = false;
  finish(s);
  return s;
}

bool scenario_by_name(const std::string& name, const ChaosTarget& target,
                      Duration horizon, ChaosScenario* out) {
  if (name == "degrade") *out = degrade(target, horizon);
  else if (name == "flap") *out = flap(target, horizon);
  else if (name == "partition") *out = partition(target, horizon);
  else if (name == "asymmetric") *out = asymmetric(target, horizon);
  else if (name == "slow-start-burst") *out = slow_start_burst(target, horizon);
  else if (name == "crash-flap") *out = crash_flap(target, horizon);
  else if (name == "migrate-under-impairment")
    *out = migrate_under_impairment(target, horizon);
  else return false;
  return true;
}

std::vector<std::string> scenario_names() {
  return {"degrade",         "flap",       "partition",
          "asymmetric",      "slow-start-burst", "crash-flap",
          "migrate-under-impairment"};
}

}  // namespace gates::chaos
