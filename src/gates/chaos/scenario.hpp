// Chaos scenarios: timed sequences of link-impairment transitions and crash
// injections, replayed identically against either engine.
//
// A scenario is pure data — (time, action) pairs — so the same scenario is
// scheduled into the SimEngine's event queue (deterministic replay) or
// driven against a live RtEngine by a timer thread (runner.hpp). The
// builders below cover the soak matrix ISSUE 6 calls for: degrade, flap,
// partition, asymmetric paths, slow-start bursts, and the composed
// flapping-link + stage-crash case.
#pragma once

#include <string>
#include <vector>

#include "gates/common/types.hpp"
#include "gates/net/topology.hpp"

namespace gates::chaos {

struct ChaosAction {
  enum class Kind : std::uint8_t {
    kLinkChange,    // apply `spec` to the flow from -> to
    kNodeFailure,   // crash-stop every stage on `node`
    kNodeRecovery,  // return `node` to the replacement candidate pool (Sim)
    kKillStage,     // crash-stop one stage by index (Rt kill_stage)
    kMigrateStage,  // live-migrate `stage_index` to `node` (kInvalidNode =
                    // let the directory pick); aborts degrade to failover
  };
  Kind kind = Kind::kLinkChange;
  TimePoint time = 0;
  // kLinkChange
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  net::LinkSpec spec;
  // kNodeFailure / kNodeRecovery; kMigrateStage target placement
  NodeId node = kInvalidNode;
  // kKillStage / kMigrateStage
  std::size_t stage_index = 0;
};

/// Which flow a scenario impairs and who it crashes; builders fill in the
/// schedule around it.
struct ChaosTarget {
  NodeId from = 0;
  NodeId to = 1;
  /// The flow's configured (healthy) spec — restores return to it.
  net::LinkSpec base;
  /// Node crashed by composed scenarios (crash-flap); kInvalidNode = none.
  NodeId victim_node = kInvalidNode;
  /// Stage killed by composed scenarios when driving an RtEngine.
  std::size_t victim_stage = 0;
  /// Stage live-migrated by migrate-under-impairment. Defaults to the
  /// victim_stage; runner::default_target points it at a different stage
  /// (the sink) so the crash-injection invariants stay keyed to the
  /// victim's original placement.
  std::size_t migrate_stage = 0;
};

struct ChaosScenario {
  std::string name;
  std::vector<ChaosAction> actions;  // sorted by time
  /// Suggested run horizon: transitions all land well inside it.
  Duration horizon = 30;
  /// Latest transition time — Eq. 4 convergence is checked after this.
  TimePoint last_transition = 0;
  /// True when the scenario injects crashes (failures are then expected).
  bool has_kills = false;
  /// True when the scenario requests live migrations (requires failover to
  /// be enabled; without it migrations abort harmlessly).
  bool has_migrations = false;
  /// True when any action uses kDrop loss (permanent link loss is then
  /// accounted, not forbidden).
  bool lossy_drop = false;
  /// Nodes the scenario deliberately takes down.
  std::vector<NodeId> expected_failed_nodes;
  /// Stage indices the scenario deliberately kills.
  std::vector<std::size_t> expected_killed_stages;
};

// -- the soak matrix ---------------------------------------------------------
/// Bandwidth/latency degrade at t=h/4, restore at t=3h/4.
ChaosScenario degrade(const ChaosTarget& target, Duration horizon = 30);
/// Link alternates degraded/healthy every horizon/8.
ChaosScenario flap(const ChaosTarget& target, Duration horizon = 30);
/// Full partition (loss 1.0, retransmit mode: traffic blocks, nothing is
/// lost) for horizon/4, then heal.
ChaosScenario partition(const ChaosTarget& target, Duration horizon = 30);
/// Forward path degrades hard while the reverse path only picks up delay.
ChaosScenario asymmetric(const ChaosTarget& target, Duration horizon = 30);
/// Gilbert-Elliott burst loss plus a slow-start bandwidth ramp back up.
ChaosScenario slow_start_burst(const ChaosTarget& target,
                               Duration horizon = 30);
/// The acceptance-criteria composition: flapping link + a node crash (and
/// recovery) mid-flap. Requires target.victim_node.
ChaosScenario crash_flap(const ChaosTarget& target, Duration horizon = 30);
/// Live migration racing link degradation and a crash-flap: the link flaps,
/// target.victim_node crashes mid-flap (recovering later), and
/// target.migrate_stage is live-migrated between the crash and the
/// recovery — the worst window, with failover and migration contending for
/// the directory. Requires failover; migration aborts degrade to the
/// crash-failover path, so the existing invariant checkers apply unchanged.
ChaosScenario migrate_under_impairment(const ChaosTarget& target,
                                       Duration horizon = 30);

/// Builder lookup for --chaos NAME; returns false for unknown names.
bool scenario_by_name(const std::string& name, const ChaosTarget& target,
                      Duration horizon, ChaosScenario* out);
/// Names accepted by scenario_by_name, for usage text and CI matrices.
std::vector<std::string> scenario_names();

}  // namespace gates::chaos
