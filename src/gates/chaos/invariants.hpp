// Invariant checkers: what must stay true about a run regardless of how its
// links were impaired, evaluated from the RunReport + trace event log after
// the run ends. A chaos soak is only as strong as these checks — the
// scenario schedule produces stress, the invariants decide pass/fail.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/chaos/scenario.hpp"
#include "gates/core/report.hpp"
#include "gates/obs/trace.hpp"

namespace gates::chaos {

struct InvariantResult {
  std::string name;
  bool passed = false;
  /// What was observed (violation specifics, or pass context like
  /// "vacuous: pipeline has no adaptive parameters").
  std::string detail;
};

/// Runs every checker against the finished run:
///  - run-completed: the pipeline reached EOS inside the horizon. Vacuous
///    when `bounded_run` is false (run_for cuts the run off by design).
///  - no-unaccounted-loss: kRetransmit impairments lose nothing; kDrop loss
///    appears on LinkReport::messages_lost, never silently.
///  - heartbeat-no-false-positive: with no injected crashes, pure delay and
///    loss must not trip failure detection — report.failures stays empty.
///  - injected-crashes-detected: every deliberately crashed node shows up in
///    report.failures (only when the scenario injects crashes).
///  - eq4-adapts-after-transition: a kParamAdjust or kReplicaScale* trace
///    event lands after the scenario's last transition — the Section-4
///    controller re-converges on the post-chaos link. Vacuously passes (with
///    detail) when the pipeline has no adaptive parameters at all.
std::vector<InvariantResult> evaluate_invariants(
    const ChaosScenario& scenario, const core::RunReport& report,
    const std::vector<obs::TraceEvent>& events, bool bounded_run = true);

/// The chaos artifact: scenario + engine + seed + full run report + verdicts.
struct ChaosReport {
  std::string scenario;
  std::string engine;  // "sim" | "rt"
  std::uint64_t seed = 0;
  core::RunReport run;
  std::vector<InvariantResult> invariants;

  bool all_passed() const;
  /// JSON artifact for CI upload (chaos-smoke job) and offline triage.
  std::string to_json() const;
};

}  // namespace gates::chaos
