// Causal packet tracing: a sampled trace context stamped on 1-in-N packets
// at the source and carried by the Packet itself, so it survives every hop —
// StageInbox handoff, replica dispatch/ReorderMerge, LinkShaper holds,
// retention and failover replay (the replayed copy carries the original
// context, so Perfetto renders the re-delivery on the same flow id).
//
// Sampling discipline: PacketTracer::maybe_sample() is the only per-packet
// cost when tracing is configured — one relaxed load, and for the 1-in-N
// selected packets two more relaxed RMWs. With the default period 0 the
// tracer is inert and the engines keep their legacy behaviour (per-packet
// service spans whenever the TraceBuffer is enabled). With a period >= 1 the
// engines emit kPacketHop spans *only* for sampled packets, which is what
// makes tracing affordable at millions of packets per second.
#pragma once

#include <atomic>
#include <cstdint>

namespace gates::obs {

/// Rides on every Packet (16 bytes). trace_id == 0 means "not sampled" —
/// the overwhelmingly common case; hop counts causal steps from the source
/// (hop 0 = source emission) so exporters can order a packet's journey even
/// when wall-clock timestamps tie.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;

  bool sampled() const { return trace_id != 0; }
};

/// Process-wide sampling head. Engines consult it where packets are born
/// (SourceWorker / SourceRuntime); everything downstream just propagates the
/// stamped context.
class PacketTracer {
 public:
  static PacketTracer& global() {
    static PacketTracer tracer;
    return tracer;
  }

  /// 0 (default) disables packet-level tracing; N >= 1 samples one packet
  /// in N at every source.
  void set_sample_period(std::uint64_t period) {
    period_.store(period, std::memory_order_relaxed);
  }
  std::uint64_t sample_period() const {
    return period_.load(std::memory_order_relaxed);
  }
  bool active() const { return sample_period() != 0; }

  /// Stamps the next packet: a fresh context for 1-in-period packets, the
  /// null context for the rest (and always when inactive).
  TraceContext maybe_sample() {
    const std::uint64_t period = period_.load(std::memory_order_relaxed);
    if (period == 0) return {};
    const std::uint64_t n = seen_.fetch_add(1, std::memory_order_relaxed);
    if (n % period != 0) return {};
    return {next_id_.fetch_add(1, std::memory_order_relaxed) + 1, 0};
  }

  /// Source-thread fast path: the caller keeps a thread-local 1-in-period
  /// countdown and calls this only for the packets it actually samples, so
  /// unsampled packets (the 1023-in-1024 common case) touch no shared
  /// counter at all. Semantics match maybe_sample() with one head per
  /// source: the first packet is sampled, then every period-th.
  TraceContext sample_now() {
    return {next_id_.fetch_add(1, std::memory_order_relaxed) + 1, 0};
  }

  std::uint64_t sampled_count() const {
    return next_id_.load(std::memory_order_relaxed);
  }

  /// Test isolation: back to inactive with fresh ids.
  void reset() {
    period_.store(0, std::memory_order_relaxed);
    seen_.store(0, std::memory_order_relaxed);
    next_id_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> period_{0};
  std::atomic<std::uint64_t> seen_{0};
  std::atomic<std::uint64_t> next_id_{0};
};

}  // namespace gates::obs
