// IntrospectServer — a tiny dependency-free HTTP/1.1 server exposing the
// observability state of a *running* engine for live scraping:
//
//   GET /metrics       Prometheus text (MetricsRegistry exposition)
//   GET /healthz       JSON per-stage heartbeat/lease state (engine-provided)
//   GET /trace         JSONL dump of the TraceBuffer (same format as
//                      --events-out)
//   GET /attribution   JSON BottleneckReport (same shape as --attribution-out)
//
// Design: one blocking accept loop on its own thread, one short-lived
// request per connection (Connection: close), loopback by default. This is
// an operator/debug endpoint, not a serving path — simplicity and zero
// dependencies beat throughput. The obs library stays independent of core:
// engine-specific routes (/healthz) are injected as provider callbacks.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "gates/common/status.hpp"

namespace gates::obs {

class IntrospectServer {
 public:
  /// Returns the response body for one GET of the route.
  using Provider = std::function<std::string()>;

  struct Config {
    /// TCP port to listen on; 0 binds an ephemeral port (tests), readable
    /// from port() after start().
    std::uint16_t port = 0;
    /// Loopback only by default; set to "0.0.0.0" to expose beyond the host.
    std::string bind_address = "127.0.0.1";
  };

  IntrospectServer() = default;
  ~IntrospectServer();
  IntrospectServer(const IntrospectServer&) = delete;
  IntrospectServer& operator=(const IntrospectServer&) = delete;

  /// Registers/overrides a route ("/healthz" -> engine health provider).
  /// The default routes (/metrics, /trace, /attribution, /healthz stub) are
  /// installed by start(); call set_provider before or after start() — the
  /// route table is mutex-guarded.
  void set_provider(const std::string& path, Provider provider);

  /// Binds, listens and spawns the accept thread. Fails (Status) on bind
  /// errors — a busy port is an operator mistake worth surfacing, not a
  /// crash.
  Status start(const Config& config);

  /// The bound port (resolves port 0), 0 before start().
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Unblocks the accept loop and joins. Safe to call twice / without start.
  void stop();

 private:
  void accept_loop();
  void handle_client(int client_fd);
  std::string respond(const std::string& path);

  std::mutex mu_;  // guards providers_
  std::map<std::string, Provider> providers_;
  std::atomic<bool> running_{false};
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

}  // namespace gates::obs
