// Bottleneck attribution: ranks the Profiler's per-component time breakdown
// so "where is this pipeline slow?" has a one-line answer. The report is
// served live by IntrospectServer (/attribution), embedded in RunReport /
// ChaosReport JSON, and summarized into the annotation field of every Eq. 4
// adjustment and ReplicaScaler trace event so each decision records the
// attribution snapshot that triggered it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "gates/obs/profiler.hpp"

namespace gates {
class JsonWriter;
}

namespace gates::obs {

struct AttributionEntry {
  std::string name;
  bool is_link = false;
  /// Accumulated packet-seconds per Phase (indexed by Phase).
  double seconds[kPhaseCount] = {};
  std::uint64_t packets = 0;

  double total_seconds() const;
  /// The phase holding the largest share of this component's time.
  Phase dominant() const;
  /// dominant's fraction of total_seconds(); 0 when nothing accumulated.
  double dominant_share() const;
};

/// Components ranked by total accumulated packet-seconds, descending — the
/// top entry is where the pipeline's latency budget goes.
struct BottleneckReport {
  std::vector<AttributionEntry> entries;

  const AttributionEntry* top() const {
    return entries.empty() ? nullptr : &entries.front();
  }

  /// {"entries":[{"name":...,"kind":"stage|link","total_seconds":...,
  ///   "dominant":...,"dominant_share":...,"packets":...,
  ///   "breakdown":{"inbox-wait":...,...}}, ...]}
  std::string to_json() const;
  void write_json(JsonWriter& w) const;

  /// One line per entry for terminal output.
  std::string summary() const;
};

/// Snapshot + rank of Profiler::global(); empty when profiling is disabled.
BottleneckReport make_bottleneck_report();

/// Compact one-component snapshot for trace-event annotations, e.g.
/// "inbox-wait=0.12s service=2.31s merge-hold=0s shaper-delay=0s
///  ack-retention=0.01s dominant=service". Empty string when the profiler is
/// disabled or the component has accumulated nothing.
std::string attribution_brief(const std::string& component);

}  // namespace gates::obs
