// Exporters for the telemetry artifacts gates_run and the benches persist:
//
//  * to_jsonl        — one JSON object per line per trace event; the
//                      grep/jq-able event log (EXPERIMENTS.md shows how to
//                      regenerate a Fig. 6-style curve from it).
//  * to_chrome_trace — Chrome trace_event JSON, loadable in chrome://tracing
//                      or https://ui.perfetto.dev: one track per stage/link
//                      with service slices, exception instants, parameter
//                      counters and failover spans.
//  * Prometheus text comes from MetricsRegistry::prometheus_text().
#pragma once

#include <string>
#include <vector>

#include "gates/common/status.hpp"
#include "gates/obs/trace.hpp"

namespace gates::obs {

std::string to_jsonl(const std::vector<TraceEvent>& events);

std::string to_chrome_trace(const std::vector<TraceEvent>& events);

/// Writes `content` to `path`, overwriting; plain-filesystem error reporting.
Status write_text_file(const std::string& path, const std::string& content);

}  // namespace gates::obs
