// TraceBuffer — a bounded, process-wide buffer of structured telemetry
// events: the signals §4's self-adaptation runs on (queue pressure, exception
// traffic, parameter trajectories) and the fault-tolerance lifecycle, so a
// run can be diagnosed from its artifact instead of re-run under kTrace
// logging.
//
// Cost model: every emission site is wrapped in GATES_TRACE, which compiles
// to one relaxed atomic load and a predicted branch when tracing is disabled
// (the same discipline as GATES_LOG). Event construction and the buffer
// mutex are only reached when enabled. The buffer is bounded: once full,
// new events are counted in dropped() and discarded — the trace never grows
// without limit and never blocks an engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gates::obs {

enum class TraceKind : std::uint8_t {
  kPacketDrop = 0,       // value_new = packets dropped; detail = reason
  kOverloadException,    // dtilde at signal time; component = stage or link
  kUnderloadException,   //   "
  kParamAdjust,          // detail = parameter; value_old -> value_new;
                         // dtilde/phi1 = the Eq. 4 inputs that drove the step
  kServiceSpan,          // duration = service time; component = stage
  kDeploy,               // detail = placement decision text
  kReplacement,          // detail = matchmaking decision; value_new = node
  kHeartbeat,            // heartbeat state transition; detail = alive|suspect|dead
  kCrash,                // stage crash-stopped
  kFailureDetected,      // lease expired; value_old = failed_at
  kRecovered,            // value_new = replacement node
  kAbandoned,            // failover gave up; EOS on behalf
  kFailoverSpan,         // duration = failure -> resolution;
                         // value_old = packets replayed, value_new = packets lost
  kStageFinished,        // EOS propagated
  kReplicaScaleUp,       // value_old -> value_new = replica counts;
                         // dtilde = the overload signal that drove it
  kReplicaScaleDown,     //   " (underload signal)
  kLinkDegrade,          // impairment/bandwidth transition worsened a link;
                         // component = link; detail = new spec description
  kLinkRestore,          // link returned to (at least) its configured spec
  kPartition,            // transition with effective loss >= 1.0
  kPacketHop,            // one phase of a sampled packet's journey:
                         // component = stage/link, detail = phase name,
                         // duration = time in the phase, trace_id/hop =
                         // causal identity (see obs/trace_context.hpp)
};
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kPacketHop) + 1;

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  /// Engine time: virtual seconds (SimEngine) or wall seconds (RtEngine; the
  /// Chrome exporter re-bases to the earliest event).
  double time = 0;
  /// Span kinds only (kServiceSpan, kFailoverSpan); 0 = instant event.
  double duration = 0;
  TraceKind kind = TraceKind::kPacketDrop;
  /// Stage or link the event belongs to ("" = middleware-global).
  std::string component;
  /// Kind-specific text (parameter name, decision, reason).
  std::string detail;
  // Kind-specific numeric payload — see the enum comments.
  double value_old = 0;
  double value_new = 0;
  double dtilde = 0;
  double phi1 = 0;
  /// Causal identity for kPacketHop spans (0 = not part of a packet trace);
  /// exporters join hops with equal trace_id into one Perfetto flow.
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;
  /// Free-form context: adjustment/scaling events carry the bottleneck-
  /// attribution snapshot that triggered them.
  std::string annotation;
};

/// What RunReport embeds: volume per kind plus the drop count, so a report
/// records whether its trace artifact is complete.
struct TraceSummary {
  std::uint64_t emitted = 0;  // accepted into the buffer
  std::uint64_t dropped = 0;  // rejected because the buffer was full
  std::vector<std::pair<std::string, std::uint64_t>> by_kind;  // kinds seen
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  /// Process-wide buffer used by the GATES_TRACE macro.
  static TraceBuffer& global();

  explicit TraceBuffer(std::size_t capacity = kDefaultCapacity);

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  /// Applies to subsequent emits; existing events beyond the new capacity
  /// are kept (capacity bounds growth, it is not a truncation).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  void emit(TraceEvent event);

  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const;
  TraceSummary summary() const;
  /// Clears events and counters; enabled/capacity are preserved.
  void clear();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::size_t capacity_;
  std::vector<TraceEvent> events_;
  std::uint64_t dropped_ = 0;
  std::uint64_t by_kind_[kTraceKindCount] = {};
};

}  // namespace gates::obs

/// Usage (designated initializers, any subset of TraceEvent's fields):
///   GATES_TRACE(.time = now, .kind = obs::TraceKind::kCrash,
///               .component = stage_name);
/// Disabled cost: one relaxed atomic load + predicted branch; the event
/// expression is not evaluated.
#define GATES_TRACE(...)                                          \
  do {                                                            \
    if (::gates::obs::TraceBuffer::global().enabled()) {          \
      ::gates::obs::TraceBuffer::global().emit(                   \
          ::gates::obs::TraceEvent{__VA_ARGS__});                 \
    }                                                             \
  } while (0)
