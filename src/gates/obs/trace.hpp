// TraceBuffer — a bounded, process-wide buffer of structured telemetry
// events: the signals §4's self-adaptation runs on (queue pressure, exception
// traffic, parameter trajectories) and the fault-tolerance lifecycle, so a
// run can be diagnosed from its artifact instead of re-run under kTrace
// logging.
//
// Cost model: every emission site is wrapped in GATES_TRACE, which compiles
// to one relaxed atomic load and a predicted branch when tracing is disabled
// (the same discipline as GATES_LOG). Event construction and the buffer
// mutex are only reached when enabled. The buffer is bounded: once full,
// new events are counted in dropped() and discarded — the trace never grows
// without limit and never blocks an engine.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gates::obs {

enum class TraceKind : std::uint8_t {
  kPacketDrop = 0,       // value_new = packets dropped; detail = reason
  kOverloadException,    // dtilde at signal time; component = stage or link
  kUnderloadException,   //   "
  kParamAdjust,          // detail = parameter; value_old -> value_new;
                         // dtilde/phi1 = the Eq. 4 inputs that drove the step
  kServiceSpan,          // duration = service time; component = stage
  kDeploy,               // detail = placement decision text
  kReplacement,          // detail = matchmaking decision; value_new = node
  kHeartbeat,            // heartbeat state transition; detail = alive|suspect|dead
  kCrash,                // stage crash-stopped
  kFailureDetected,      // lease expired; value_old = failed_at
  kRecovered,            // value_new = replacement node
  kAbandoned,            // failover gave up; EOS on behalf
  kFailoverSpan,         // duration = failure -> resolution;
                         // value_old = packets replayed, value_new = packets lost
  kStageFinished,        // EOS propagated
  kReplicaScaleUp,       // value_old -> value_new = replica counts;
                         // dtilde = the overload signal that drove it
  kReplicaScaleDown,     //   " (underload signal)
  kLinkDegrade,          // impairment/bandwidth transition worsened a link;
                         // component = link; detail = new spec description
  kLinkRestore,          // link returned to (at least) its configured spec
  kPartition,            // transition with effective loss >= 1.0
  kPacketHop,            // one phase of a sampled packet's journey:
                         // component = stage/link, detail = phase name,
                         // duration = time in the phase, trace_id/hop =
                         // causal identity (see obs/trace_context.hpp)
  kMigrateStart,         // migration requested; component = stage,
                         // detail = "from -> to"
  kMigrateTransfer,      // checkpoint captured + shipped; value_new =
                         // checkpoint bytes; duration = capture+transfer
  kMigrateResume,        // stage resumed on target; duration = downtime,
                         // value_old = packets replayed
  kMigrateAbort,         // migration aborted; detail = step + reason
};
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kMigrateAbort) + 1;

const char* trace_kind_name(TraceKind kind);

struct TraceEvent {
  /// Engine time: virtual seconds (SimEngine) or wall seconds (RtEngine; the
  /// Chrome exporter re-bases to the earliest event).
  double time = 0;
  /// Span kinds only (kServiceSpan, kFailoverSpan); 0 = instant event.
  double duration = 0;
  TraceKind kind = TraceKind::kPacketDrop;
  /// Stage or link the event belongs to ("" = middleware-global).
  std::string component;
  /// Kind-specific text (parameter name, decision, reason).
  std::string detail;
  // Kind-specific numeric payload — see the enum comments.
  double value_old = 0;
  double value_new = 0;
  double dtilde = 0;
  double phi1 = 0;
  /// Causal identity for kPacketHop spans (0 = not part of a packet trace);
  /// exporters join hops with equal trace_id into one Perfetto flow.
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;
  /// Free-form context: adjustment/scaling events carry the bottleneck-
  /// attribution snapshot that triggered them.
  std::string annotation;
};

/// What RunReport embeds: volume per kind plus the drop count, so a report
/// records whether its trace artifact is complete.
struct TraceSummary {
  std::uint64_t emitted = 0;  // accepted into the buffer
  std::uint64_t dropped = 0;  // rejected because the buffer was full
  std::vector<std::pair<std::string, std::uint64_t>> by_kind;  // kinds seen
};

class TraceBuffer {
 public:
  static constexpr std::size_t kDefaultCapacity = 65536;

  /// Process-wide buffer used by the GATES_TRACE macro. Constant-initialized
  /// (constinit in trace.cpp) so the per-packet enabled() check compiles to
  /// a bare load — a function-local static would re-check its init guard on
  /// every GATES_TRACE site on the hot path.
  static TraceBuffer& global();

  constexpr explicit TraceBuffer(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity) {}

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Enabling allocates the slot array lazily (a disabled buffer costs no
  /// memory beyond the object itself).
  void set_enabled(bool on);
  /// Applies to subsequent emits; existing events beyond the new capacity
  /// are kept (capacity bounds growth, it is not a truncation).
  void set_capacity(std::size_t capacity);
  std::size_t capacity() const;

  /// Lock-free: a relaxed ticket fetch_add admits the event into its slot
  /// (or counts it dropped once the buffer is full), then a release store
  /// publishes the slot to readers. Events from several threads never
  /// serialize on a mutex — under causal packet sampling every pipeline
  /// thread emits for the same sampled packet within microseconds, and the
  /// futex convoy the old mutex produced there cost more than the rest of
  /// the packet's journey.
  void emit(TraceEvent event);

  /// Published events in emission (ticket) order. Safe against concurrent
  /// emits (the introspection endpoint reads a live buffer): an event still
  /// being written is simply not visible yet.
  std::vector<TraceEvent> events() const;
  std::uint64_t dropped() const;
  TraceSummary summary() const;
  /// Clears events and counters; enabled/capacity are preserved. Unlike
  /// emit()/events() this must not race in-flight emits — callers clear
  /// between runs, never during one.
  void clear();

 private:
  struct Slot {
    std::atomic<bool> ready{false};
    TraceEvent event;
  };

  /// Ensures the slot array covers `capacity_`; admin_mu_ held.
  void grow_slots_locked(std::size_t needed);

  std::atomic<bool> enabled_{false};
  /// Admission threshold (can shrink below the array size; never above).
  std::atomic<std::size_t> capacity_;
  /// Next emission ticket; tickets >= capacity_ are dropped.
  std::atomic<std::uint64_t> next_{0};
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> by_kind_[kTraceKindCount] = {};
  /// Published slot array (null until first enable). Readers and writers
  /// load it without admin_mu_; grow retires the old array instead of
  /// freeing it so stragglers never touch freed memory.
  std::atomic<Slot*> slots_{nullptr};
  std::atomic<std::size_t> slot_count_{0};
  mutable std::mutex admin_mu_;
  std::vector<std::unique_ptr<Slot[]>> arrays_;  // current + retired
};

}  // namespace gates::obs

/// Usage (designated initializers, any subset of TraceEvent's fields):
///   GATES_TRACE(.time = now, .kind = obs::TraceKind::kCrash,
///               .component = stage_name);
/// Disabled cost: one relaxed atomic load + predicted branch; the event
/// expression is not evaluated.
#define GATES_TRACE(...)                                          \
  do {                                                            \
    if (::gates::obs::TraceBuffer::global().enabled()) {          \
      ::gates::obs::TraceBuffer::global().emit(                   \
          ::gates::obs::TraceEvent{__VA_ARGS__});                 \
    }                                                             \
  } while (0)
