#include "gates/obs/profiler.hpp"

#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::obs {

const char* phase_name(Phase phase) {
  switch (phase) {
    case Phase::kInboxWait: return "inbox-wait";
    case Phase::kService: return "service";
    case Phase::kMergeHold: return "merge-hold";
    case Phase::kShaperDelay: return "shaper-delay";
    case Phase::kAckRetention: return "ack-retention";
    case Phase::kSerialize: return "serialize";
    case Phase::kDeserialize: return "deserialize";
  }
  return "?";
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

PhaseClock& Profiler::stage(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = stages_[name];
  if (!slot) slot = std::make_unique<PhaseClock>();
  return *slot;
}

PhaseClock& Profiler::link(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = links_[name];
  if (!slot) slot = std::make_unique<PhaseClock>();
  return *slot;
}

std::vector<ProfileSample> Profiler::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ProfileSample> out;
  out.reserve(stages_.size() + links_.size());
  const auto sample = [&out](const std::string& name, const PhaseClock& clock,
                             bool is_link) {
    ProfileSample s;
    s.name = name;
    s.is_link = is_link;
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      s.seconds[i] = clock.seconds(static_cast<Phase>(i));
    }
    s.packets = clock.packets();
    out.push_back(std::move(s));
  };
  for (const auto& [name, clock] : stages_) sample(name, *clock, false);
  for (const auto& [name, clock] : links_) sample(name, *clock, true);
  return out;
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  enabled_.store(false, std::memory_order_relaxed);
  stages_.clear();
  links_.clear();
}

void fold_profiler_into_metrics(double fold_seconds) {
  MetricsRegistry& registry = MetricsRegistry::global();
  if (!registry.enabled()) return;
  if (Profiler::global().enabled()) {
    for (const ProfileSample& s : Profiler::global().snapshot()) {
      const char* scope = s.is_link ? "link" : "stage";
      const char* family =
          s.is_link ? "gates_link_phase_micros" : "gates_stage_phase_micros";
      for (std::size_t i = 0; i < kPhaseCount; ++i) {
        registry
            .counter(family, {{scope, s.name},
                              {"phase", phase_name(static_cast<Phase>(i))}})
            .set(static_cast<std::uint64_t>(s.seconds[i] * 1e6));
      }
    }
  }
  // The observability layer observes itself: trace-buffer drops and the wall
  // cost of this very sampling pass.
  registry.counter("obs_trace_dropped_total")
      .set(TraceBuffer::global().dropped());
  registry.gauge("obs_fold_micros").set(fold_seconds * 1e6);
}

}  // namespace gates::obs
