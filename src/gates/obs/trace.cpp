#include "gates/obs/trace.hpp"

namespace gates::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPacketDrop: return "packet-drop";
    case TraceKind::kOverloadException: return "overload-exception";
    case TraceKind::kUnderloadException: return "underload-exception";
    case TraceKind::kParamAdjust: return "param-adjust";
    case TraceKind::kServiceSpan: return "service";
    case TraceKind::kDeploy: return "deploy";
    case TraceKind::kReplacement: return "replacement";
    case TraceKind::kHeartbeat: return "heartbeat";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kFailureDetected: return "failure-detected";
    case TraceKind::kRecovered: return "recovered";
    case TraceKind::kAbandoned: return "abandoned";
    case TraceKind::kFailoverSpan: return "failover";
    case TraceKind::kStageFinished: return "stage-finished";
    case TraceKind::kReplicaScaleUp: return "replica-scale-up";
    case TraceKind::kReplicaScaleDown: return "replica-scale-down";
    case TraceKind::kLinkDegrade: return "link-degrade";
    case TraceKind::kLinkRestore: return "link-restore";
    case TraceKind::kPartition: return "partition";
    case TraceKind::kPacketHop: return "packet-hop";
    case TraceKind::kMigrateStart: return "migrate-start";
    case TraceKind::kMigrateTransfer: return "migrate-transfer";
    case TraceKind::kMigrateResume: return "migrate-resume";
    case TraceKind::kMigrateAbort: return "migrate-abort";
  }
  return "?";
}

namespace {
// Constant-initialized (no static-init guard on the hot path) and never
// destroyed (the union's no-op destructor skips the member): engine
// threads may still emit while other statics unwind at exit.
union BufferHolder {
  constexpr BufferHolder() : buffer() {}
  ~BufferHolder() {}
  TraceBuffer buffer;
};
constinit BufferHolder g_trace_buffer;
}  // namespace

TraceBuffer& TraceBuffer::global() { return g_trace_buffer.buffer; }

void TraceBuffer::grow_slots_locked(std::size_t needed) {
  if (slot_count_.load(std::memory_order_relaxed) >= needed) return;
  auto grown = std::make_unique<Slot[]>(needed);
  Slot* old = slots_.load(std::memory_order_relaxed);
  const std::size_t old_count = slot_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < old_count; ++i) {
    if (old[i].ready.load(std::memory_order_acquire)) {
      grown[i].event = std::move(old[i].event);
      grown[i].ready.store(true, std::memory_order_relaxed);
    }
  }
  slots_.store(grown.get(), std::memory_order_release);
  slot_count_.store(needed, std::memory_order_release);
  // The retired array stays alive (see header): an emit that loaded the old
  // pointer may still be writing a slot there; its event is lost, not UB.
  arrays_.push_back(std::move(grown));
}

void TraceBuffer::set_enabled(bool on) {
  if (on) {
    std::lock_guard<std::mutex> lock(admin_mu_);
    grow_slots_locked(capacity_.load(std::memory_order_relaxed));
  }
  enabled_.store(on, std::memory_order_relaxed);
}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(admin_mu_);
  // Shrinking only lowers the admission threshold (events already beyond it
  // are kept); growing needs slots for the newly admissible tickets, but
  // only once the buffer is live (enabled or previously allocated).
  if (slots_.load(std::memory_order_relaxed) != nullptr) {
    grow_slots_locked(capacity);
  }
  capacity_.store(capacity, std::memory_order_relaxed);
}

std::size_t TraceBuffer::capacity() const {
  return capacity_.load(std::memory_order_relaxed);
}

void TraceBuffer::emit(TraceEvent event) {
  const std::uint64_t ticket = next_.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_.load(std::memory_order_relaxed) ||
      ticket >= slot_count_.load(std::memory_order_acquire)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_.load(std::memory_order_relaxed)[ticket];
  by_kind_[static_cast<std::size_t>(event.kind)].fetch_add(
      1, std::memory_order_relaxed);
  accepted_.fetch_add(1, std::memory_order_relaxed);
  slot.event = std::move(event);
  slot.ready.store(true, std::memory_order_release);
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(admin_mu_);
  std::vector<TraceEvent> out;
  Slot* slots = slots_.load(std::memory_order_relaxed);
  const std::size_t count = slot_count_.load(std::memory_order_relaxed);
  out.reserve(accepted_.load(std::memory_order_relaxed));
  for (std::size_t i = 0; i < count; ++i) {
    if (slots[i].ready.load(std::memory_order_acquire)) {
      out.push_back(slots[i].event);
    }
  }
  return out;
}

std::uint64_t TraceBuffer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

TraceSummary TraceBuffer::summary() const {
  TraceSummary s;
  s.emitted = accepted_.load(std::memory_order_relaxed);
  s.dropped = dropped_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kTraceKindCount; ++i) {
    const std::uint64_t n = by_kind_[i].load(std::memory_order_relaxed);
    if (n > 0) {
      s.by_kind.emplace_back(trace_kind_name(static_cast<TraceKind>(i)), n);
    }
  }
  return s;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(admin_mu_);
  Slot* slots = slots_.load(std::memory_order_relaxed);
  const std::size_t count = slot_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    if (slots[i].ready.load(std::memory_order_relaxed)) {
      slots[i].event = TraceEvent{};
      slots[i].ready.store(false, std::memory_order_relaxed);
    }
  }
  next_.store(0, std::memory_order_relaxed);
  dropped_.store(0, std::memory_order_relaxed);
  accepted_.store(0, std::memory_order_relaxed);
  for (auto& n : by_kind_) n.store(0, std::memory_order_relaxed);
}

}  // namespace gates::obs
