#include "gates/obs/trace.hpp"

namespace gates::obs {

const char* trace_kind_name(TraceKind kind) {
  switch (kind) {
    case TraceKind::kPacketDrop: return "packet-drop";
    case TraceKind::kOverloadException: return "overload-exception";
    case TraceKind::kUnderloadException: return "underload-exception";
    case TraceKind::kParamAdjust: return "param-adjust";
    case TraceKind::kServiceSpan: return "service";
    case TraceKind::kDeploy: return "deploy";
    case TraceKind::kReplacement: return "replacement";
    case TraceKind::kHeartbeat: return "heartbeat";
    case TraceKind::kCrash: return "crash";
    case TraceKind::kFailureDetected: return "failure-detected";
    case TraceKind::kRecovered: return "recovered";
    case TraceKind::kAbandoned: return "abandoned";
    case TraceKind::kFailoverSpan: return "failover";
    case TraceKind::kStageFinished: return "stage-finished";
    case TraceKind::kReplicaScaleUp: return "replica-scale-up";
    case TraceKind::kReplicaScaleDown: return "replica-scale-down";
    case TraceKind::kLinkDegrade: return "link-degrade";
    case TraceKind::kLinkRestore: return "link-restore";
    case TraceKind::kPartition: return "partition";
    case TraceKind::kPacketHop: return "packet-hop";
  }
  return "?";
}

TraceBuffer& TraceBuffer::global() {
  static TraceBuffer buffer;
  return buffer;
}

TraceBuffer::TraceBuffer(std::size_t capacity) : capacity_(capacity) {}

void TraceBuffer::set_capacity(std::size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = capacity;
}

std::size_t TraceBuffer::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void TraceBuffer::emit(TraceEvent event) {
  std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  ++by_kind_[static_cast<std::size_t>(event.kind)];
  events_.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

std::uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

TraceSummary TraceBuffer::summary() const {
  std::lock_guard<std::mutex> lock(mu_);
  TraceSummary s;
  s.emitted = events_.size();
  s.dropped = dropped_;
  for (std::size_t i = 0; i < kTraceKindCount; ++i) {
    if (by_kind_[i] > 0) {
      s.by_kind.emplace_back(trace_kind_name(static_cast<TraceKind>(i)),
                             by_kind_[i]);
    }
  }
  return s;
}

void TraceBuffer::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
  for (auto& n : by_kind_) n = 0;
}

}  // namespace gates::obs
