#include "gates/obs/attribution.hpp"

#include <algorithm>
#include <cstdio>

#include "gates/common/json.hpp"

namespace gates::obs {

double AttributionEntry::total_seconds() const {
  double total = 0;
  for (double s : seconds) total += s;
  return total;
}

Phase AttributionEntry::dominant() const {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kPhaseCount; ++i) {
    if (seconds[i] > seconds[best]) best = i;
  }
  return static_cast<Phase>(best);
}

double AttributionEntry::dominant_share() const {
  const double total = total_seconds();
  if (total <= 0) return 0;
  return seconds[static_cast<std::size_t>(dominant())] / total;
}

void BottleneckReport::write_json(JsonWriter& w) const {
  w.begin_object();
  w.key("entries").begin_array();
  for (const AttributionEntry& e : entries) {
    w.begin_object()
        .kv("name", e.name)
        .kv("kind", e.is_link ? "link" : "stage")
        .kv("total_seconds", e.total_seconds())
        .kv("dominant", phase_name(e.dominant()))
        .kv("dominant_share", e.dominant_share())
        .kv("packets", e.packets);
    w.key("breakdown").begin_object();
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      w.kv(phase_name(static_cast<Phase>(i)), e.seconds[i]);
    }
    w.end_object().end_object();
  }
  w.end_array();
  w.end_object();
}

std::string BottleneckReport::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.str();
}

std::string BottleneckReport::summary() const {
  std::string out;
  char line[256];
  for (const AttributionEntry& e : entries) {
    std::snprintf(line, sizeof(line), "%-6s %-20s %9.3f s  %s %.0f%%\n",
                  e.is_link ? "link" : "stage", e.name.c_str(),
                  e.total_seconds(), phase_name(e.dominant()),
                  100 * e.dominant_share());
    out += line;
  }
  return out;
}

BottleneckReport make_bottleneck_report() {
  BottleneckReport report;
  if (!Profiler::global().enabled()) return report;
  for (const ProfileSample& s : Profiler::global().snapshot()) {
    AttributionEntry e;
    e.name = s.name;
    e.is_link = s.is_link;
    for (std::size_t i = 0; i < kPhaseCount; ++i) e.seconds[i] = s.seconds[i];
    e.packets = s.packets;
    report.entries.push_back(std::move(e));
  }
  std::stable_sort(report.entries.begin(), report.entries.end(),
                   [](const AttributionEntry& a, const AttributionEntry& b) {
                     return a.total_seconds() > b.total_seconds();
                   });
  return report;
}

std::string attribution_brief(const std::string& component) {
  if (!Profiler::global().enabled()) return {};
  for (const ProfileSample& s : Profiler::global().snapshot()) {
    if (s.name != component) continue;
    AttributionEntry e;
    for (std::size_t i = 0; i < kPhaseCount; ++i) e.seconds[i] = s.seconds[i];
    if (e.total_seconds() <= 0) return {};
    std::string out;
    char item[64];
    for (std::size_t i = 0; i < kPhaseCount; ++i) {
      std::snprintf(item, sizeof(item), "%s=%.3gs ",
                    phase_name(static_cast<Phase>(i)), e.seconds[i]);
      out += item;
    }
    out += "dominant=";
    out += phase_name(e.dominant());
    return out;
  }
  return {};
}

}  // namespace gates::obs
