// MetricsRegistry — named counters, gauges and fixed-bucket histograms with
// per-stage / per-link label scopes.
//
// Registration (name lookup) takes a mutex and is meant to happen once per
// metric, at setup or on the first control tick; the returned handles are
// stable for the registry's lifetime and every data-path operation on them
// (add/set/observe) is a relaxed atomic — safe against RtEngine's stage
// threads without locks. Engines sample their per-stage counters into the
// registry on the existing control-period tick, so the hot packet path never
// touches the registry at all; the single predicted branch guarding that
// sampling is `enabled()`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace gates::obs {

/// Monotonic (or set-from-source) event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  /// Engines own the authoritative count and publish it each control tick.
  void set(std::uint64_t n) { v_.store(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-observed value (queue length, dtilde, parameter value, ...).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0};
};

/// Fixed-bucket histogram over [lo, hi); out-of-range samples clamp into the
/// edge buckets (same policy as gates::Histogram, but with atomic buckets so
/// concurrent observers need no lock).
class FixedHistogram {
 public:
  FixedHistogram(double lo, double hi, std::size_t buckets);

  void observe(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const {
    return counts_[i].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket i (hi for the last bucket).
  double upper_bound(std::size_t i) const;
  std::uint64_t total() const { return total_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  double lo_, hi_, width_;
  std::vector<std::atomic<std::uint64_t>> counts_;
  std::atomic<std::uint64_t> total_{0};
  std::atomic<double> sum_{0};
};

using Labels = std::vector<std::pair<std::string, std::string>>;

/// Renders `name{k="v",...}` — the registry key and the Prometheus exposition
/// series name. Empty labels render as just `name`.
std::string metric_key(const std::string& name, const Labels& labels);

/// One exported series, embedded into RunReport as the end-of-run snapshot.
struct MetricSample {
  enum class Kind { kCounter, kGauge, kHistogram };
  Kind kind = Kind::kCounter;
  std::string key;     // name{labels}
  double value = 0;    // counter/gauge value; histogram total count
};
using MetricsSnapshot = std::vector<MetricSample>;

class MetricsRegistry {
 public:
  /// Process-wide registry used by the engines and gates_run.
  static MetricsRegistry& global();

  /// Master switch for the control-tick sampling in the engines. Off (the
  /// default) costs one predicted branch per tick.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  FixedHistogram& histogram(const std::string& name, double lo, double hi,
                            std::size_t buckets, const Labels& labels = {});

  /// Prometheus text exposition: `# TYPE` per family, series sorted by key.
  std::string prometheus_text() const;
  MetricsSnapshot snapshot() const;
  /// Drops every registered metric (start of a fresh run / test isolation).
  /// Invalidates previously returned handles.
  void reset();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  // Keyed by metric_key(): deterministic export order for golden tests.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<FixedHistogram>> histograms_;
};

}  // namespace gates::obs
