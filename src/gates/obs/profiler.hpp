// Per-stage / per-link time-breakdown accumulation — where does a packet's
// latency actually go?
//
// The engines charge wall (Rt) or virtual (Sim) seconds to one of five
// phases per component:
//
//   inbox-wait     queued in the stage's input buffer before service
//   service        inside StreamProcessor::process (plus modeled cost)
//   merge-hold     completed by a replica but held by ReorderMerge for
//                  order-preserving release
//   shaper-delay   held by a LinkShaper / SimLink for latency, jitter,
//                  retransmission backoff (charged to the *link* component)
//   ack-retention  sender-side ack bookkeeping and retention maintenance
//
// Accumulation discipline matches MetricsRegistry: component registration
// takes a mutex once (engines resolve PhaseClock handles at setup), every
// data-path add is a relaxed atomic on integer nanoseconds, and the whole
// subsystem is behind one enabled() branch so the default cost is zero. The
// control tick folds the clocks into MetricsRegistry
// (gates_stage_phase_micros / gates_link_phase_micros) and BottleneckReport
// (attribution.hpp) ranks the snapshot.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace gates::obs {

enum class Phase : std::uint8_t {
  kInboxWait = 0,
  kService,
  kMergeHold,
  kShaperDelay,
  kAckRetention,
  kSerialize,    // wire encode + transport send on a remote egress
  kDeserialize,  // wire decode + arena landing on a remote ingress
};
inline constexpr std::size_t kPhaseCount = 7;

const char* phase_name(Phase phase);

/// One component's accumulated breakdown. add() is the data-path entry
/// point; store() overwrites from an authoritative external total (the
/// LinkShaper keeps its own delay ledger under its send mutex).
class PhaseClock {
 public:
  void add(Phase phase, double seconds) {
    if (seconds <= 0) return;
    nanos_[static_cast<std::size_t>(phase)].fetch_add(
        static_cast<std::uint64_t>(seconds * 1e9), std::memory_order_relaxed);
  }
  void store(Phase phase, double seconds) {
    nanos_[static_cast<std::size_t>(phase)].store(
        seconds <= 0 ? 0 : static_cast<std::uint64_t>(seconds * 1e9),
        std::memory_order_relaxed);
  }
  void add_packets(std::uint64_t n) {
    packets_.fetch_add(n, std::memory_order_relaxed);
  }

  double seconds(Phase phase) const {
    return static_cast<double>(nanos_[static_cast<std::size_t>(phase)].load(
               std::memory_order_relaxed)) *
           1e-9;
  }
  std::uint64_t packets() const {
    return packets_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> nanos_[kPhaseCount] = {};
  std::atomic<std::uint64_t> packets_{0};
};

/// One component's snapshot, as read by attribution and the metrics fold.
struct ProfileSample {
  std::string name;
  bool is_link = false;
  double seconds[kPhaseCount] = {};
  std::uint64_t packets = 0;
};

class Profiler {
 public:
  /// Process-wide profiler the engines charge into.
  static Profiler& global();

  /// Master switch; off (default) costs the engines one predicted branch per
  /// batch. gates_run enables it alongside --attribution-out/--introspect.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }

  /// Handle registration (mutex): once per component at engine setup. The
  /// returned reference is stable until reset().
  PhaseClock& stage(const std::string& name);
  PhaseClock& link(const std::string& name);

  std::vector<ProfileSample> snapshot() const;

  /// Drops every component and disables. Invalidates handles (same contract
  /// as MetricsRegistry::reset()).
  void reset();

 private:
  mutable std::mutex mu_;
  std::atomic<bool> enabled_{false};
  std::map<std::string, std::unique_ptr<PhaseClock>> stages_;
  std::map<std::string, std::unique_ptr<PhaseClock>> links_;
};

/// Control-tick fold: publishes every component's phase totals as
/// gates_stage_phase_micros{stage=...,phase=...} /
/// gates_link_phase_micros{link=...,phase=...} counters, plus the
/// observability-self-observation satellites obs_trace_dropped_total and
/// obs_fold_micros (the wall duration of the sampling pass itself, supplied
/// by the caller).
void fold_profiler_into_metrics(double fold_seconds);

}  // namespace gates::obs
