#include "gates/obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "gates/common/check.hpp"
#include "gates/common/json.hpp"

namespace gates::obs {

FixedHistogram::FixedHistogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)),
      counts_(buckets) {
  GATES_CHECK(buckets > 0 && hi > lo);
}

void FixedHistogram::observe(double x) {
  double idx = std::floor((x - lo_) / width_);
  if (idx < 0) idx = 0;
  const auto last = static_cast<double>(counts_.size() - 1);
  if (idx > last) idx = last;
  counts_[static_cast<std::size_t>(idx)].fetch_add(1,
                                                   std::memory_order_relaxed);
  total_.fetch_add(1, std::memory_order_relaxed);
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + x,
                                     std::memory_order_relaxed)) {
  }
}

double FixedHistogram::upper_bound(std::size_t i) const {
  if (i + 1 == counts_.size()) return hi_;
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  std::string key = name + "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) key += ",";
    key += labels[i].first + "=\"" + json_escape(labels[i].second) + "\"";
  }
  key += "}";
  return key;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[metric_key(name, labels)];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name, const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[metric_key(name, labels)];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

FixedHistogram& MetricsRegistry::histogram(const std::string& name, double lo,
                                           double hi, std::size_t buckets,
                                           const Labels& labels) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[metric_key(name, labels)];
  if (!slot) slot = std::make_unique<FixedHistogram>(lo, hi, buckets);
  return *slot;
}

namespace {

/// `name{...}` -> `name`: the Prometheus family a series belongs to.
std::string family_of(const std::string& key) {
  const auto brace = key.find('{');
  return brace == std::string::npos ? key : key.substr(0, brace);
}

/// Splits `name{labels}` into (name, "labels" incl. braces or "").
std::pair<std::string, std::string> split_key(const std::string& key) {
  const auto brace = key.find('{');
  if (brace == std::string::npos) return {key, ""};
  return {key.substr(0, brace), key.substr(brace)};
}

void append_type_line(std::string& out, std::string& last_family,
                      const std::string& key, const char* type) {
  const std::string family = family_of(key);
  if (family != last_family) {
    out += "# TYPE " + family + " " + type + "\n";
    last_family = family;
  }
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  std::string last_family;
  for (const auto& [key, c] : counters_) {
    append_type_line(out, last_family, key, "counter");
    out += key + " " + std::to_string(c->value()) + "\n";
  }
  for (const auto& [key, g] : gauges_) {
    append_type_line(out, last_family, key, "gauge");
    out += key + " " + json_number(g->value()) + "\n";
  }
  for (const auto& [key, h] : histograms_) {
    append_type_line(out, last_family, key, "histogram");
    const auto [name, labels] = split_key(key);
    // Cumulative buckets with `le`, then +Inf, _sum and _count.
    const std::string label_prefix =
        labels.empty() ? "{" : labels.substr(0, labels.size() - 1) + ",";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h->bucket_count(); ++i) {
      cumulative += h->bucket(i);
      out += name + "_bucket" + label_prefix + "le=\"" +
             json_number(h->upper_bound(i)) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += name + "_bucket" + label_prefix + "le=\"+Inf\"} " +
           std::to_string(h->total()) + "\n";
    out += name + "_sum" + labels + " " + json_number(h->sum()) + "\n";
    out += name + "_count" + labels + " " + std::to_string(h->total()) + "\n";
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [key, c] : counters_) {
    out.push_back({MetricSample::Kind::kCounter, key,
                   static_cast<double>(c->value())});
  }
  for (const auto& [key, g] : gauges_) {
    out.push_back({MetricSample::Kind::kGauge, key, g->value()});
  }
  for (const auto& [key, h] : histograms_) {
    out.push_back({MetricSample::Kind::kHistogram, key,
                   static_cast<double>(h->total())});
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  gauges_.clear();
  histograms_.clear();
}

}  // namespace gates::obs
