#include "gates/obs/exporters.hpp"

#include <algorithm>
#include <fstream>
#include <map>

#include "gates/common/json.hpp"

namespace gates::obs {

std::string to_jsonl(const std::vector<TraceEvent>& events) {
  std::string out;
  for (const TraceEvent& e : events) {
    JsonWriter w;
    w.begin_object()
        .kv("t", e.time)
        .kv("kind", trace_kind_name(e.kind))
        .kv("component", e.component)
        .kv("detail", e.detail)
        .kv("dur", e.duration)
        .kv("value_old", e.value_old)
        .kv("value_new", e.value_new)
        .kv("dtilde", e.dtilde)
        .kv("phi1", e.phi1);
    // Causal/annotation fields only when set, keeping legacy lines stable.
    if (e.trace_id != 0) {
      w.kv("trace", e.trace_id).kv("hop", static_cast<std::uint64_t>(e.hop));
    }
    if (!e.annotation.empty()) w.kv("annotation", e.annotation);
    w.end_object();
    out += w.str();
    out += '\n';
  }
  return out;
}

namespace {

/// Chrome's "ts" unit is microseconds.
constexpr double kMicros = 1e6;

void common_fields(JsonWriter& w, const char* name, const char* phase,
                   double ts_us, int tid) {
  w.kv("name", name).kv("ph", phase).kv("ts", ts_us).kv("pid", 0).kv("tid",
                                                                     tid);
}

}  // namespace

std::string to_chrome_trace(const std::vector<TraceEvent>& events) {
  // RtEngine timestamps are absolute wall seconds; re-base everything to the
  // earliest event so both engines produce traces starting near t=0.
  double base = 0;
  if (!events.empty()) {
    base = events.front().time;
    for (const TraceEvent& e : events) base = std::min(base, e.time);
  }

  // One track (tid) per component, in first-appearance order; tid 0 is the
  // middleware-global track ("" components: deploy decisions etc.).
  std::map<std::string, int> tids;
  tids[""] = 0;
  for (const TraceEvent& e : events) {
    tids.emplace(e.component, static_cast<int>(tids.size()));
  }

  JsonWriter w;
  w.begin_object().kv("displayTimeUnit", "ms").key("traceEvents").begin_array();

  for (const auto& [component, tid] : tids) {
    w.begin_object();
    common_fields(w, "thread_name", "M", 0, tid);
    w.key("args").begin_object()
        .kv("name", component.empty() ? std::string("middleware") : component)
        .end_object();
    w.end_object();
  }

  for (const TraceEvent& e : events) {
    const double ts = (e.time - base) * kMicros;
    const int tid = tids[e.component];
    const char* name = trace_kind_name(e.kind);
    w.begin_object();
    switch (e.kind) {
      case TraceKind::kServiceSpan:
        common_fields(w, name, "X", ts, tid);
        w.kv("cat", "service").kv("dur", e.duration * kMicros);
        break;
      case TraceKind::kFailoverSpan:
        common_fields(w, name, "X", ts, tid);
        w.kv("cat", "failover").kv("dur", e.duration * kMicros);
        w.key("args").begin_object()
            .kv("replayed", e.value_old)
            .kv("lost", e.value_new)
            .kv("detail", e.detail)
            .end_object();
        break;
      case TraceKind::kParamAdjust: {
        // Counter events render the parameter trajectory on the timeline.
        const std::string counter = e.component + "/" + e.detail;
        w.kv("name", counter).kv("ph", "C").kv("ts", ts).kv("pid", 0).kv("tid",
                                                                         tid);
        w.key("args").begin_object().kv(e.detail, e.value_new).end_object();
        break;
      }
      case TraceKind::kPacketHop: {
        // One slice per phase of the sampled packet's journey, named by the
        // phase so a packet reads "source / inbox-wait / service / ..."
        // across the component tracks it visited.
        w.kv("name", e.detail.empty() ? name : e.detail.c_str())
            .kv("ph", "X")
            .kv("ts", ts)
            .kv("pid", 0)
            .kv("tid", tid)
            .kv("cat", "packet")
            .kv("dur", e.duration * kMicros);
        w.key("args").begin_object()
            .kv("trace", e.trace_id)
            .kv("hop", static_cast<std::uint64_t>(e.hop))
            .end_object();
        break;
      }
      default:
        common_fields(w, name, "i", ts, tid);
        w.kv("s", "t");
        w.key("args").begin_object()
            .kv("detail", e.detail)
            .kv("value_old", e.value_old)
            .kv("value_new", e.value_new)
            .kv("dtilde", e.dtilde)
            .kv("phi1", e.phi1);
        if (!e.annotation.empty()) w.kv("annotation", e.annotation);
        w.end_object();
        break;
    }
    w.end_object();
    if (e.kind == TraceKind::kPacketHop) {
      // Flow event binding this hop into the packet's cross-track journey:
      // "s"tart at the source hop, "t"(step) everywhere downstream. Perfetto
      // draws arrows between consecutive hops sharing the id.
      w.begin_object()
          .kv("name", "packet")
          .kv("cat", "packet-flow")
          .kv("ph", e.hop == 0 ? "s" : "t")
          .kv("ts", ts)
          .kv("pid", 0)
          .kv("tid", tid)
          .kv("id", e.trace_id)
          .end_object();
    }
  }

  w.end_array().end_object();
  return w.str();
}

Status write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return invalid_argument("cannot open '" + path + "' for writing");
  out << content;
  out.close();
  if (!out) return internal_error("short write to '" + path + "'");
  return Status::ok();
}

}  // namespace gates::obs
