#include "gates/obs/introspect.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "gates/obs/attribution.hpp"
#include "gates/obs/exporters.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::obs {

namespace {

const char* content_type_for(const std::string& path) {
  if (path == "/metrics") return "text/plain; version=0.0.4";
  if (path == "/trace") return "application/x-ndjson";
  return "application/json";
}

std::string http_response(int code, const char* reason,
                          const char* content_type, const std::string& body) {
  std::string out = "HTTP/1.1 " + std::to_string(code) + " " + reason +
                    "\r\nContent-Type: " + content_type +
                    "\r\nContent-Length: " + std::to_string(body.size()) +
                    "\r\nConnection: close\r\n\r\n";
  out += body;
  return out;
}

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      return;  // peer went away; a scrape endpoint just moves on
    }
    sent += static_cast<std::size_t>(n);
  }
}

}  // namespace

IntrospectServer::~IntrospectServer() { stop(); }

void IntrospectServer::set_provider(const std::string& path,
                                    Provider provider) {
  std::lock_guard<std::mutex> lock(mu_);
  providers_[path] = std::move(provider);
}

Status IntrospectServer::start(const Config& config) {
  if (running()) return invalid_argument("introspect server already running");
  {
    // Default routes; engine-specific /healthz overrides via set_provider.
    std::lock_guard<std::mutex> lock(mu_);
    providers_.emplace("/metrics", [] {
      return MetricsRegistry::global().prometheus_text();
    });
    providers_.emplace(
        "/trace", [] { return to_jsonl(TraceBuffer::global().events()); });
    providers_.emplace("/attribution",
                       [] { return make_bottleneck_report().to_json(); });
    providers_.emplace("/healthz",
                       [] { return std::string("{\"stages\":[]}"); });
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return internal_error(std::string("introspect socket: ") +
                          std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config.port);
  if (::inet_pton(AF_INET, config.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return invalid_argument("introspect bind address '" + config.bind_address +
                            "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return internal_error("introspect bind " + config.bind_address + ":" +
                          std::to_string(config.port) + ": " + err);
  }
  if (::listen(listen_fd_, 16) < 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return internal_error("introspect listen: " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    port_ = ntohs(bound.sin_port);
  }

  running_.store(true, std::memory_order_release);
  thread_ = std::thread([this] { accept_loop(); });
  return Status::ok();
}

void IntrospectServer::stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) {
    if (thread_.joinable()) thread_.join();
    return;
  }
  // shutdown() unblocks accept(); close happens after the loop exits so the
  // fd is never reused under the accept thread's feet.
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void IntrospectServer::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    const int client = ::accept(listen_fd_, nullptr, nullptr);
    if (client < 0) {
      if (errno == EINTR) continue;
      // shutdown() during stop() lands here.
      break;
    }
    handle_client(client);
    ::close(client);
  }
}

void IntrospectServer::handle_client(int client_fd) {
  // One short GET per connection: read until the header terminator (or a
  // sane cap) and answer. Malformed input gets a 400 and a closed socket.
  std::string request;
  char buf[2048];
  while (request.find("\r\n\r\n") == std::string::npos &&
         request.size() < 16384) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    request.append(buf, static_cast<std::size_t>(n));
  }
  const auto line_end = request.find("\r\n");
  if (line_end == std::string::npos) {
    send_all(client_fd, http_response(400, "Bad Request", "text/plain",
                                      "malformed request\n"));
    return;
  }
  const std::string line = request.substr(0, line_end);
  if (line.rfind("GET ", 0) != 0) {
    send_all(client_fd,
             http_response(405, "Method Not Allowed", "text/plain",
                           "only GET is supported\n"));
    return;
  }
  std::string path = line.substr(4);
  const auto space = path.find(' ');
  if (space != std::string::npos) path = path.substr(0, space);
  const auto query = path.find('?');
  if (query != std::string::npos) path = path.substr(0, query);
  send_all(client_fd, respond(path));
}

std::string IntrospectServer::respond(const std::string& path) {
  Provider provider;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = providers_.find(path);
    if (it != providers_.end()) provider = it->second;
  }
  if (!provider) {
    return http_response(404, "Not Found", "text/plain",
                         "routes: /metrics /healthz /trace /attribution\n");
  }
  return http_response(200, "OK", content_type_for(path), provider());
}

}  // namespace gates::obs
