#include "gates/apps/count_samps.hpp"

#include <cmath>

#include "gates/common/check.hpp"
#include "gates/common/log.hpp"
#include "gates/common/serialize.hpp"

namespace gates::apps {

void CountSampsSummaryProcessor::init(core::ProcessorContext& ctx) {
  ctx_ = &ctx;
  const auto& props = ctx.properties();
  emit_every_ = static_cast<std::uint64_t>(props.get_int("emit-every", 2500));
  GATES_CHECK_MSG(emit_every_ > 0, "emit-every must be positive");
  // The adjustment parameter is the size of the summary structure
  // MAINTAINED (§1): the sketch footprint tracks the suggested size times
  // this factor, so small summaries really do mean a cruder sketch (higher
  // tau, noisier counts) — that is where the accuracy loss of Fig. 7 comes
  // from.
  footprint_factor_ = props.get_double("footprint-factor", 1.0);
  GATES_CHECK_MSG(footprint_factor_ >= 1.0, "footprint-factor must be >= 1");
  if (props.get_bool("track-exact", false)) exact_.emplace();

  core::AdjustmentParameter::Spec spec;
  spec.name = kParamName;
  spec.initial = props.get_double("summary-initial", 100);
  spec.min_value = props.get_double("summary-min", 10);
  spec.max_value = props.get_double("summary-max", 240);
  spec.increment = 1;
  spec.direction = ParamDirection::kIncreaseSlowsDown;
  size_param_ = &ctx.specify_parameter(spec);

  sketch_ = std::make_unique<CountingSamples>(
      current_footprint(), ctx.rng().fork(7));
}

std::size_t CountSampsSummaryProcessor::current_footprint() const {
  const double n = size_param_->suggested_value();
  return static_cast<std::size_t>(
      std::max(1.0, std::llround(footprint_factor_ * n) * 1.0));
}

void CountSampsSummaryProcessor::process(const core::Packet& packet,
                                         core::Emitter& emitter) {
  Deserializer d(packet.payload);
  std::uint64_t value = 0;
  while (d.remaining() >= 8) {
    if (!d.read_u64(value).is_ok()) break;
    sketch_->insert(value);
    if (exact_) exact_->insert(value);
    ++inserted_;
    if (inserted_ % emit_every_ == 0) {
      emit_summary(emitter, packet.created_at);
    }
  }
  stream_ = packet.stream;
  saw_data_ = true;
}

void CountSampsSummaryProcessor::emit_summary(core::Emitter& emitter,
                                              TimePoint now) {
  // Poll the middleware's suggestion once per emission — the paper's
  // getSuggestedValue() at the end of every iteration — and resize the
  // maintained structure to match.
  const auto n = static_cast<std::size_t>(
      std::llround(size_param_->suggested_value()));
  sketch_->set_footprint(current_footprint());
  StreamSummary summary;
  summary.stream = stream_;
  summary.epoch = ++epoch_;
  summary.items = sketch_->top_k(n);

  core::Packet out;
  out.stream = stream_;
  out.sequence = epoch_;
  out.created_at = now;
  out.kind = core::kPacketKindSummary;
  out.records = summary.items.size();
  out.payload = summary.serialize();
  emitter.emit(std::move(out));
}

void CountSampsSummaryProcessor::finish(core::Emitter& emitter) {
  if (saw_data_) emit_summary(emitter, ctx_->now());
}

bool CountSampsSummaryProcessor::checkpoint(core::StateWriter& w) {
  w.write_u64(inserted_);
  w.write_u64(epoch_);
  w.write_u32(stream_);
  w.write_u8(saw_data_ ? 1 : 0);
  w.write_f64(size_param_->suggested_value());
  sketch_->save(w);
  w.write_u8(exact_ ? 1 : 0);
  if (exact_) exact_->save(w);
  return true;
}

bool CountSampsSummaryProcessor::restore(core::StateReader& r) {
  // init() already ran on the target; overwrite its fresh state wholesale.
  std::uint8_t saw_data = 0, has_exact = 0;
  double param = 0;
  if (!r.read_u64(inserted_).is_ok()) return false;
  if (!r.read_u64(epoch_).is_ok()) return false;
  if (!r.read_u32(stream_).is_ok()) return false;
  if (!r.read_u8(saw_data).is_ok()) return false;
  if (!r.read_f64(param).is_ok()) return false;
  saw_data_ = saw_data != 0;
  size_param_->set_value(param);
  if (!sketch_->load(r)) return false;
  if (!r.read_u8(has_exact).is_ok()) return false;
  if (has_exact != 0) {
    if (!exact_) exact_.emplace();
    if (!exact_->load(r)) return false;
  }
  return true;
}

void CountSampsSinkProcessor::init(core::ProcessorContext& ctx) {
  ctx_ = &ctx;
  const auto& props = ctx.properties();
  const auto footprint =
      static_cast<std::size_t>(props.get_int("footprint", 1024));
  top_k_ = static_cast<std::size_t>(props.get_int("top-k", 10));
  sketch_ = std::make_unique<CountingSamples>(footprint, ctx.rng().fork(11));
  if (props.get_bool("track-exact", false)) exact_.emplace();
  relay_ = props.get_bool("relay", false);
  relay_size_ = static_cast<std::size_t>(props.get_int("relay-size", 64));
  relay_every_ = static_cast<std::uint64_t>(props.get_int("relay-every", 4));
  GATES_CHECK_MSG(relay_every_ > 0, "relay-every must be positive");
}

void CountSampsSinkProcessor::process(const core::Packet& packet,
                                      core::Emitter& emitter) {
  (void)emitter;
  if (packet.kind == core::kPacketKindSummary) {
    auto summary = StreamSummary::deserialize(packet.payload);
    if (!summary.ok()) {
      GATES_LOG(kWarn, "count-samps-sink")
          << "dropping malformed summary: " << summary.status().to_string();
      return;
    }
    merger_.add(std::move(*summary));
    ++summaries_received_;
    if (relay_ && summaries_received_ % relay_every_ == 0) {
      emit_relay(emitter, packet.created_at);
    }
    return;
  }
  Deserializer d(packet.payload);
  std::uint64_t value = 0;
  while (d.remaining() >= 8) {
    if (!d.read_u64(value).is_ok()) break;
    sketch_->insert(value);
    if (exact_) exact_->insert(value);
    ++raw_records_;
  }
}

void CountSampsSinkProcessor::emit_relay(core::Emitter& emitter,
                                         TimePoint now) {
  StreamSummary summary;
  // Relayed streams get ids far above source streams so per-stream
  // latest-epoch tracking at the next merge level stays collision-free.
  summary.stream = 100000 + ctx_->stage_id();
  summary.epoch = ++relay_epoch_;
  summary.items = merged(relay_size_);

  core::Packet out;
  out.stream = summary.stream;
  out.sequence = summary.epoch;
  out.created_at = now;
  out.kind = core::kPacketKindSummary;
  out.records = summary.items.size();
  out.payload = summary.serialize();
  emitter.emit(std::move(out));
}

void CountSampsSinkProcessor::finish(core::Emitter& emitter) {
  if (relay_ && (summaries_received_ > 0 || raw_records_ > 0)) {
    emit_relay(emitter, ctx_->now());
  }
}

bool CountSampsSinkProcessor::checkpoint(core::StateWriter& w) {
  w.write_u64(summaries_received_);
  w.write_u64(raw_records_);
  w.write_u64(relay_epoch_);
  sketch_->save(w);
  merger_.save(w);
  w.write_u8(exact_ ? 1 : 0);
  if (exact_) exact_->save(w);
  return true;
}

bool CountSampsSinkProcessor::restore(core::StateReader& r) {
  std::uint8_t has_exact = 0;
  if (!r.read_u64(summaries_received_).is_ok()) return false;
  if (!r.read_u64(raw_records_).is_ok()) return false;
  if (!r.read_u64(relay_epoch_).is_ok()) return false;
  if (!sketch_->load(r)) return false;
  if (!merger_.load(r)) return false;
  if (!r.read_u8(has_exact).is_ok()) return false;
  if (has_exact != 0) {
    if (!exact_) exact_.emplace();
    if (!exact_->load(r)) return false;
  }
  return true;
}

std::vector<ValueCount> CountSampsSinkProcessor::merged(std::size_t k) const {
  // Merge shipped summaries with the local sketch (only one of the two is
  // populated in each of the paper's configurations, but a hybrid works).
  std::unordered_map<std::uint64_t, double> combined;
  for (const ValueCount& item : merger_.top_k(k * 4)) {
    combined[item.value] += item.count;
  }
  for (const ValueCount& item : sketch_->top_k(k * 4)) {
    combined[item.value] += item.count;
  }
  std::vector<ValueCount> items;
  items.reserve(combined.size());
  for (const auto& [value, count] : combined) items.push_back({value, count});
  std::sort(items.begin(), items.end(),
            [](const ValueCount& a, const ValueCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (items.size() > k) items.resize(k);
  return items;
}

std::vector<ValueCount> CountSampsSinkProcessor::result() const {
  return merged(top_k_);
}

}  // namespace gates::apps
