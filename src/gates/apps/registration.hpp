// One-call registration of the bundled applications' stage code and source
// generators, mirroring a developer "submitting the codes to application
// repositories" (§3.2).
#pragma once

#include "gates/grid/registry.hpp"

namespace gates::apps {

/// Registers all bundled processors in `processors` under their
/// kRegistryName keys:
///   count-samps-summary, count-samps-sink,
///   comp-steer-sampler, comp-steer-analyzer,
///   intrusion-site-features, intrusion-detector.
/// Idempotent: already-registered names are left untouched.
void register_processors(grid::ProcessorRegistry& processors);

/// Registers the bundled source generators in `generators`:
///   mesh-f64   — chunks of `values` (default 128) doubles from a smoothly
///                evolving simulated field with noise; properties:
///                values, drift (0.01), noise (0.05)
///   connlog    — `records` (default 1) destination ports per packet,
///                Zipf over `ports` (1024) common ports with an anomaly
///                burst toward `anomaly-port` between packet sequence
///                numbers [burst-start, burst-end) at probability
///                `anomaly-prob` (0.6)
/// Idempotent.
void register_generators(grid::GeneratorRegistry& generators);

/// Registers the transport-validation generator:
///   pattern    — `bytes` (default 64) of deterministic sequence- and
///                position-dependent bytes, so the hash-sink digest is
///                sensitive to any reorder/corruption along a transport
/// Idempotent.
void register_pattern_generator(grid::GeneratorRegistry& generators);

/// Convenience: both of the above against the global registries.
void register_all();

}  // namespace gates::apps
