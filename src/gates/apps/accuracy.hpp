// Accuracy metric for count-samps, matching the paper's description:
// "how often the top 10 most frequently occurring elements were correctly
// reported, and how correctly their frequency of occurrence was reported"
// (§5.2). We report a 0-100 score averaging top-k recall and relative
// frequency accuracy over the correctly reported values.
#pragma once

#include <vector>

#include "gates/apps/counting_samples.hpp"

namespace gates::apps {

struct AccuracyBreakdown {
  /// |reported ∩ true top-k| / k, in [0,1].
  double recall = 0;
  /// mean over the intersection of max(0, 1 - |est - true| / true), in [0,1];
  /// 1 when the intersection is empty is avoided by scoring 0 then.
  double frequency_accuracy = 0;
  /// 100 * (recall + frequency_accuracy) / 2.
  double score() const { return 100.0 * 0.5 * (recall + frequency_accuracy); }
};

/// Compares a reported top-k against the exact one. `reported` may be
/// shorter than k; the comparison uses the exact list's size as k.
AccuracyBreakdown top_k_accuracy(const std::vector<ValueCount>& reported,
                                 const std::vector<ValueCount>& exact);

}  // namespace gates::apps
