// Online network intrusion detection — one of the paper's motivating
// application classes (§2): connection-request logs at several sites are
// summarized locally and analyzed centrally for unusual patterns.
//
// Pipeline shape: per-site feature extractors count destination-port
// activity over fixed windows and ship the top ports (the report size is an
// adjustment parameter); a central detector keeps per-port baselines and
// raises alarms on large deviations.
#pragma once

#include <map>
#include <unordered_map>
#include <vector>

#include "gates/apps/counting_samples.hpp"
#include "gates/common/stats.hpp"
#include "gates/core/processor.hpp"

namespace gates::apps {

/// Per-site stage: windowed per-port connection counts, periodic top-port
/// reports (reusing the StreamSummary wire format, value = port).
///
/// Properties: window (1000 records), report-initial/-min/-max (32/4/256).
class SiteFeatureProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "intrusion-site-features";
  static constexpr const char* kParamName = "report-size";

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  void finish(core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }

  std::uint64_t records_seen() const { return records_seen_; }
  std::uint64_t reports_emitted() const { return epoch_; }

 private:
  void emit_report(core::Emitter& emitter, TimePoint now);

  core::ProcessorContext* ctx_ = nullptr;
  core::AdjustmentParameter* report_param_ = nullptr;
  std::unordered_map<std::uint64_t, std::uint64_t> window_counts_;
  std::uint64_t window_ = 1000;
  std::uint64_t records_seen_ = 0;
  std::uint64_t in_window_ = 0;
  std::uint64_t epoch_ = 0;
  StreamId stream_ = 0;
};

/// Central stage: per-port deviation detection over the merged reports.
///
/// Properties: deviation-factor (4.0) — alarm when a port's reported count
/// exceeds mean + factor * stddev of its own history (minimum 3 prior
/// reports before a port can alarm).
class IntrusionDetectorProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "intrusion-detector";

  struct Alarm {
    TimePoint time = 0;
    StreamId site = 0;
    std::uint64_t port = 0;
    double observed = 0;
    double baseline_mean = 0;
  };

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }

  const std::vector<Alarm>& alarms() const { return alarms_; }
  std::uint64_t reports_received() const { return reports_received_; }

 private:
  core::ProcessorContext* ctx_ = nullptr;
  double deviation_factor_ = 4.0;
  /// Baseline per (site, port). reports_included tracks how many of the
  /// site's reports the stats cover, so silent reports count as zeros.
  struct Baseline {
    RunningStats stats;
    std::uint64_t reports_included = 0;
  };
  std::map<std::pair<StreamId, std::uint64_t>, Baseline> baselines_;
  std::map<StreamId, std::uint64_t> site_reports_;
  std::vector<Alarm> alarms_;
  std::uint64_t reports_received_ = 0;
};

}  // namespace gates::apps
