#include "gates/apps/scenarios.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "gates/apps/comp_steer.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/common/check.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"

namespace gates::apps::scenarios {
namespace {

core::PacketGenerator zipf_generator(std::uint64_t universe, double theta) {
  auto zipf = std::make_shared<ZipfGenerator>(universe, theta);
  return [zipf](std::uint64_t /*seq*/, Rng& rng) {
    core::Packet p;
    Serializer s(p.payload);
    s.write_u64(zipf->next(rng));
    return p;
  };
}

/// Mean of a parameter trajectory over its second half.
double second_half_mean(
    const std::vector<std::pair<TimePoint, double>>& trajectory) {
  if (trajectory.empty()) return 0;
  const std::size_t start = trajectory.size() / 2;
  double sum = 0;
  for (std::size_t i = start; i < trajectory.size(); ++i) {
    sum += trajectory[i].second;
  }
  return sum / static_cast<double>(trajectory.size() - start);
}

}  // namespace

CountSampsResult run_count_samps(const CountSampsOptions& options) {
  GATES_CHECK(options.num_sources > 0);
  // Node 0 is central; nodes 1..num_sources host one source each.
  core::PipelineSpec pipeline;
  pipeline.name = options.distributed ? "count-samps-distributed"
                                      : "count-samps-centralized";

  core::StageSpec sink;
  sink.name = "sink";
  sink.factory = [] { return std::make_unique<CountSampsSinkProcessor>(); };
  sink.properties.set("footprint", std::to_string(options.sink_footprint));
  sink.properties.set("top-k", std::to_string(options.top_k));
  // Ground truth for the centralized version comes from the sink itself.
  sink.properties.set("track-exact", options.distributed ? "false" : "true");
  sink.cost.per_record_seconds = 2e-5;
  sink.placement_hint = 0;

  core::Placement placement;

  if (options.distributed) {
    for (std::size_t i = 0; i < options.num_sources; ++i) {
      core::StageSpec summary;
      summary.name = "summary" + std::to_string(i);
      summary.factory = [] {
        return std::make_unique<CountSampsSummaryProcessor>();
      };
      summary.properties.set("footprint-factor",
                             std::to_string(options.summary_footprint_factor));
      summary.properties.set("emit-every", std::to_string(options.emit_every));
      // Ground truth for the distributed version merges the per-site exact
      // counters (all data is seen at the edges).
      summary.properties.set("track-exact", "true");
      summary.properties.set("summary-initial",
                             std::to_string(options.summary_initial));
      summary.properties.set("summary-min", std::to_string(options.summary_min));
      summary.properties.set("summary-max", std::to_string(options.summary_max));
      summary.cost.per_record_seconds = 2e-5;
      summary.placement_hint = static_cast<NodeId>(i + 1);
      pipeline.stages.push_back(std::move(summary));
      placement.stage_nodes.push_back(static_cast<NodeId>(i + 1));
    }
  }
  const std::size_t sink_index = pipeline.stages.size();
  pipeline.stages.push_back(std::move(sink));
  placement.stage_nodes.push_back(0);

  for (std::size_t i = 0; i < options.num_sources; ++i) {
    core::SourceSpec src;
    src.name = "stream" + std::to_string(i);
    src.stream = static_cast<StreamId>(i);
    src.rate_hz = options.source_rate_hz;
    src.total_packets = options.items_per_source;
    src.generator = zipf_generator(options.universe, options.zipf_theta);
    src.location = static_cast<NodeId>(i + 1);
    src.target_stage = options.distributed ? i : sink_index;
    pipeline.sources.push_back(std::move(src));
  }
  if (options.distributed) {
    for (std::size_t i = 0; i < options.num_sources; ++i) {
      pipeline.edges.push_back({i, sink_index, 0});
    }
  }

  net::Topology topology;
  topology.set_shared_ingress(0, {options.central_ingress_bw,
                                  options.ingress_latency,
                                  options.ingress_impair});

  core::HostModel hosts;
  hosts.cpu_factor.assign(options.num_sources + 1, 1.0);

  core::SimEngine::Config config;
  config.control_period = options.control_period;
  config.seed = options.seed;
  config.adaptation_enabled = options.adaptive;
  config.max_time = options.max_time;
  config.wire.per_message_overhead = options.wire_per_message;
  config.wire.per_record_overhead = options.wire_per_record;

  core::SimEngine engine(std::move(pipeline), std::move(placement),
                         std::move(hosts), std::move(topology), config);
  auto status = engine.run();
  GATES_CHECK_MSG(status.is_ok(), status.to_string());

  CountSampsResult result;
  result.report = engine.report();
  result.execution_time = result.report.execution_time;
  result.completed = result.report.completed;

  auto& sink_proc =
      dynamic_cast<CountSampsSinkProcessor&>(engine.processor(sink_index));
  result.reported = sink_proc.result();

  ExactCounter exact;
  if (options.distributed) {
    for (std::size_t i = 0; i < options.num_sources; ++i) {
      auto& summary_proc =
          dynamic_cast<CountSampsSummaryProcessor&>(engine.processor(i));
      GATES_CHECK(summary_proc.exact() != nullptr);
      exact.merge(*summary_proc.exact());
    }
  } else {
    GATES_CHECK(sink_proc.exact() != nullptr);
    exact.merge(*sink_proc.exact());
  }
  result.exact = exact.top_k(options.top_k);
  result.accuracy = top_k_accuracy(result.reported, result.exact);

  if (options.distributed) {
    RunningStats sizes;
    for (std::size_t i = 0; i < options.num_sources; ++i) {
      const auto* sr = result.report.stage("summary" + std::to_string(i));
      GATES_CHECK(sr != nullptr);
      for (const auto& [pname, trajectory] : sr->parameter_trajectories) {
        if (pname == CountSampsSummaryProcessor::kParamName) {
          sizes.add(second_half_mean(trajectory));
        }
      }
    }
    result.mean_summary_size = sizes.mean();
  }
  return result;
}

CompSteerResult run_comp_steer(const CompSteerOptions& options) {
  GATES_CHECK(options.chunk_bytes >= 8);
  const double rate_hz = options.generation_bytes_per_sec /
                         static_cast<double>(options.chunk_bytes);

  core::PipelineSpec pipeline;
  pipeline.name = "comp-steer";

  core::StageSpec sampler;
  sampler.name = "sampler";
  sampler.factory = [] { return std::make_unique<SamplerProcessor>(); };
  sampler.properties.set("rate-initial", std::to_string(options.rate_initial));
  sampler.properties.set("rate-min", std::to_string(options.rate_min));
  sampler.properties.set("rate-max", std::to_string(options.rate_max));
  sampler.cost.per_byte_seconds = 1e-7;  // sampling itself is cheap
  sampler.monitor = options.stage_monitor;
  sampler.controller = options.controller;
  pipeline.stages.push_back(std::move(sampler));

  core::StageSpec analyzer;
  analyzer.name = "analyzer";
  analyzer.factory = [] {
    return std::make_unique<SteeringAnalyzerProcessor>();
  };
  analyzer.cost.per_byte_seconds = options.analyzer_ms_per_byte / 1000.0;
  analyzer.monitor = options.stage_monitor;
  analyzer.controller = options.controller;
  pipeline.stages.push_back(std::move(analyzer));

  core::SourceSpec src;
  src.name = "simulation";
  src.stream = 0;
  src.rate_hz = rate_hz;
  src.total_packets = 0;  // unbounded; the horizon ends the run
  src.location = 0;
  src.target_stage = 0;
  {
    const std::size_t values = options.chunk_bytes / 8;
    src.generator = [values](std::uint64_t seq, Rng& rng) {
      core::Packet p;
      Serializer s(p.payload);
      for (std::size_t i = 0; i < values; ++i) {
        s.write_f64(0.5 + 0.5 * std::sin(0.01 * static_cast<double>(seq)) +
                    0.05 * rng.normal());
      }
      p.records = values;
      return p;
    };
  }
  pipeline.sources.push_back(std::move(src));
  pipeline.edges.push_back({0, 1, 0});

  core::Placement placement;
  placement.stage_nodes = {0, 1};

  net::Topology topology;
  topology.set_pair(0, 1, {options.link_bw, 0.0});

  core::HostModel hosts;
  hosts.cpu_factor = {1.0, 1.0};

  core::SimEngine::Config config;
  config.control_period = options.control_period;
  config.seed = options.seed;
  config.adaptation_enabled = true;
  if (options.link_monitor) config.link_monitor = *options.link_monitor;
  // Byte-exact links: fig-9 equilibrium is bandwidth/generation only if the
  // wire adds nothing.
  config.wire.per_message_overhead = 0;
  config.wire.per_record_overhead = 0;

  core::SimEngine engine(std::move(pipeline), std::move(placement),
                         std::move(hosts), std::move(topology), config);
  for (const auto& [time, bandwidth] : options.link_bandwidth_changes) {
    engine.schedule_bandwidth_change(0, 1, time, bandwidth);
  }
  for (const auto& [time, factor] : options.analyzer_cpu_changes) {
    engine.schedule_cpu_change(1, time, factor);
  }
  auto status = engine.run_for(options.horizon);
  GATES_CHECK_MSG(status.is_ok(), status.to_string());

  CompSteerResult result;
  result.report = engine.report();
  const auto* sampler_report = result.report.stage("sampler");
  GATES_CHECK(sampler_report != nullptr);
  for (const auto& [pname, trajectory] : sampler_report->parameter_trajectories) {
    if (pname == SamplerProcessor::kParamName) {
      result.trajectory = trajectory;
    }
  }
  GATES_CHECK(!result.trajectory.empty());
  result.final_rate = result.trajectory.back().second;
  const std::size_t start = result.trajectory.size() * 3 / 4;
  double sum = 0;
  for (std::size_t i = start; i < result.trajectory.size(); ++i) {
    sum += result.trajectory[i].second;
  }
  result.converged_rate =
      sum / static_cast<double>(result.trajectory.size() - start);
  return result;
}

double processing_constraint_optimum(const CompSteerOptions& options) {
  const double consumable = 1000.0 / options.analyzer_ms_per_byte;  // bytes/s
  return std::min(options.rate_max,
                  consumable / options.generation_bytes_per_sec);
}

double network_constraint_optimum(const CompSteerOptions& options) {
  return std::min(options.rate_max,
                  options.link_bw / options.generation_bytes_per_sec);
}

}  // namespace gates::apps::scenarios
