#include "gates/apps/intrusion.hpp"

#include <algorithm>
#include <cmath>

#include "gates/common/check.hpp"
#include "gates/common/log.hpp"
#include "gates/common/serialize.hpp"

namespace gates::apps {

void SiteFeatureProcessor::init(core::ProcessorContext& ctx) {
  ctx_ = &ctx;
  const auto& props = ctx.properties();
  window_ = static_cast<std::uint64_t>(props.get_int("window", 1000));
  GATES_CHECK_MSG(window_ > 0, "window must be positive");

  core::AdjustmentParameter::Spec spec;
  spec.name = kParamName;
  spec.initial = props.get_double("report-initial", 32);
  spec.min_value = props.get_double("report-min", 4);
  spec.max_value = props.get_double("report-max", 256);
  spec.increment = 1;
  spec.direction = ParamDirection::kIncreaseSlowsDown;
  report_param_ = &ctx.specify_parameter(spec);
}

void SiteFeatureProcessor::process(const core::Packet& packet,
                                   core::Emitter& emitter) {
  stream_ = packet.stream;
  Deserializer d(packet.payload);
  std::uint64_t port = 0;
  while (d.remaining() >= 8) {
    if (!d.read_u64(port).is_ok()) break;
    ++window_counts_[port];
    ++records_seen_;
    if (++in_window_ >= window_) {
      emit_report(emitter, packet.created_at);
      window_counts_.clear();
      in_window_ = 0;
    }
  }
}

void SiteFeatureProcessor::emit_report(core::Emitter& emitter, TimePoint now) {
  const auto n =
      static_cast<std::size_t>(std::llround(report_param_->suggested_value()));
  std::vector<ValueCount> items;
  items.reserve(window_counts_.size());
  for (const auto& [port, count] : window_counts_) {
    items.push_back({port, static_cast<double>(count)});
  }
  std::sort(items.begin(), items.end(),
            [](const ValueCount& a, const ValueCount& b) {
              if (a.count != b.count) return a.count > b.count;
              return a.value < b.value;
            });
  if (items.size() > n) items.resize(n);

  StreamSummary report;
  report.stream = stream_;
  report.epoch = ++epoch_;
  report.items = std::move(items);

  core::Packet out;
  out.stream = stream_;
  out.sequence = epoch_;
  out.created_at = now;
  out.kind = core::kPacketKindSummary;
  out.records = report.items.size();
  out.payload = report.serialize();
  emitter.emit(std::move(out));
}

void SiteFeatureProcessor::finish(core::Emitter& emitter) {
  if (in_window_ > 0) emit_report(emitter, ctx_->now());
}

void IntrusionDetectorProcessor::init(core::ProcessorContext& ctx) {
  ctx_ = &ctx;
  deviation_factor_ = ctx.properties().get_double("deviation-factor", 4.0);
}

void IntrusionDetectorProcessor::process(const core::Packet& packet,
                                         core::Emitter& /*emitter*/) {
  if (packet.kind != core::kPacketKindSummary) return;
  auto report = StreamSummary::deserialize(packet.payload);
  if (!report.ok()) {
    GATES_LOG(kWarn, "intrusion-detector")
        << "dropping malformed report: " << report.status().to_string();
    return;
  }
  ++reports_received_;
  const std::uint64_t site_report_index = ++site_reports_[report->stream];
  for (const ValueCount& item : report->items) {
    Baseline& baseline = baselines_[{report->stream, item.value}];
    // A port absent from earlier reports implicitly had count 0 in them —
    // without this, a never-before-seen port (the classic intrusion
    // signature) would have no history to deviate from.
    while (baseline.reports_included + 1 < site_report_index) {
      baseline.stats.add(0);
      ++baseline.reports_included;
    }
    if (baseline.stats.count() >= 3) {
      const double limit = baseline.stats.mean() +
                           deviation_factor_ *
                               std::max(1.0, baseline.stats.stddev());
      if (item.count > limit) {
        alarms_.push_back({ctx_->now(), report->stream, item.value, item.count,
                           baseline.stats.mean()});
      }
    }
    baseline.stats.add(item.count);
    ++baseline.reports_included;
  }
}

}  // namespace gates::apps
