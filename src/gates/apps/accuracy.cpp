#include "gates/apps/accuracy.hpp"

#include <algorithm>
#include <cmath>
#include <unordered_map>

namespace gates::apps {

AccuracyBreakdown top_k_accuracy(const std::vector<ValueCount>& reported,
                                 const std::vector<ValueCount>& exact) {
  AccuracyBreakdown out;
  if (exact.empty()) return out;

  std::unordered_map<std::uint64_t, double> reported_counts;
  for (const ValueCount& r : reported) reported_counts[r.value] = r.count;

  std::size_t hits = 0;
  double freq_sum = 0;
  for (const ValueCount& t : exact) {
    auto it = reported_counts.find(t.value);
    if (it == reported_counts.end()) continue;
    ++hits;
    if (t.count > 0) {
      freq_sum += std::max(0.0, 1.0 - std::abs(it->second - t.count) / t.count);
    }
  }
  out.recall = static_cast<double>(hits) / static_cast<double>(exact.size());
  out.frequency_accuracy = hits ? freq_sum / static_cast<double>(hits) : 0.0;
  return out;
}

}  // namespace gates::apps
