#include "gates/apps/counting_samples.hpp"

#include <algorithm>

#include "gates/common/check.hpp"
#include "gates/common/serialize.hpp"

namespace gates::apps {
namespace {

/// GM compensation constant for occurrences missed before sample entry.
constexpr double kCompensation = 0.418;

void sort_desc(std::vector<ValueCount>& items) {
  std::sort(items.begin(), items.end(), [](const ValueCount& a, const ValueCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.value < b.value;
  });
}

}  // namespace

CountingSamples::CountingSamples(std::size_t footprint, Rng rng, double tau_growth)
    : footprint_(footprint), tau_growth_(tau_growth), rng_(rng) {
  GATES_CHECK(footprint > 0);
  GATES_CHECK(tau_growth > 1.0);
}

void CountingSamples::insert(std::uint64_t value) {
  ++items_seen_;
  auto it = sample_.find(value);
  if (it != sample_.end()) {
    // Occurrences after entry are counted exactly.
    ++it->second;
    return;
  }
  // New values enter with probability 1/tau.
  if (tau_ <= 1.0 || rng_.next_bool(1.0 / tau_)) {
    sample_.emplace(value, 1);
    while (sample_.size() > footprint_) raise_threshold();
  }
}

void CountingSamples::set_footprint(std::size_t footprint) {
  GATES_CHECK(footprint > 0);
  footprint_ = footprint;
  while (sample_.size() > footprint_) raise_threshold();
}

void CountingSamples::raise_threshold() {
  const double old_tau = tau_;
  tau_ *= tau_growth_;
  // Classical diminishing pass: each entry first survives with probability
  // old_tau/new_tau (its entry coin), then sheds count units with repeated
  // 1/new_tau coins, disappearing at zero. Entries are visited in
  // ascending-value order so the coin sequence is a pure function of
  // (rng state, sample contents) — hash-map layout must not leak into the
  // output, or a checkpoint/restore round trip (live migration) would
  // diverge from the uninterrupted run.
  std::vector<std::uint64_t> values;
  values.reserve(sample_.size());
  for (const auto& [value, _] : sample_) values.push_back(value);
  std::sort(values.begin(), values.end());
  for (const std::uint64_t value : values) {
    const auto it = sample_.find(value);
    std::uint64_t count = it->second;
    if (!rng_.next_bool(old_tau / tau_)) {
      --count;
      while (count > 0 && !rng_.next_bool(1.0 / tau_)) --count;
    }
    if (count == 0) {
      sample_.erase(it);
    } else {
      it->second = count;
    }
  }
}

std::uint64_t CountingSamples::raw_count(std::uint64_t value) const {
  auto it = sample_.find(value);
  return it == sample_.end() ? 0 : it->second;
}

double CountingSamples::estimated_count(std::uint64_t value) const {
  auto it = sample_.find(value);
  if (it == sample_.end()) return 0;
  return static_cast<double>(it->second) +
         (tau_ > 1.0 ? kCompensation * tau_ : 0.0);
}

std::vector<ValueCount> CountingSamples::top_k(std::size_t k) const {
  std::vector<ValueCount> items;
  items.reserve(sample_.size());
  for (const auto& [value, _] : sample_) {
    items.push_back({value, estimated_count(value)});
  }
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

void CountingSamples::save(core::StateWriter& w) const {
  w.write_varint(footprint_);
  w.write_f64(tau_growth_);
  w.write_f64(tau_);
  w.write_u64(items_seen_);
  w.write_u64(rng_.seed());
  std::uint64_t state[4];
  rng_.save_state(state);
  for (const std::uint64_t word : state) w.write_u64(word);
  std::vector<std::uint64_t> values;
  values.reserve(sample_.size());
  for (const auto& [value, _] : sample_) values.push_back(value);
  std::sort(values.begin(), values.end());
  w.write_varint(values.size());
  for (const std::uint64_t value : values) {
    w.write_u64(value);
    w.write_varint(sample_.at(value));
  }
}

bool CountingSamples::load(core::StateReader& r) {
  std::uint64_t footprint = 0;
  double tau_growth = 0, tau = 0;
  if (!r.read_varint(footprint).is_ok() || footprint == 0) return false;
  if (!r.read_f64(tau_growth).is_ok() || tau_growth <= 1.0) return false;
  if (!r.read_f64(tau).is_ok() || tau < 1.0) return false;
  std::uint64_t items_seen = 0, seed = 0;
  if (!r.read_u64(items_seen).is_ok()) return false;
  if (!r.read_u64(seed).is_ok()) return false;
  std::uint64_t state[4];
  for (std::uint64_t& word : state) {
    if (!r.read_u64(word).is_ok()) return false;
  }
  std::uint64_t n = 0;
  if (!r.read_varint(n).is_ok()) return false;
  std::unordered_map<std::uint64_t, std::uint64_t> sample;
  sample.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t value = 0, count = 0;
    if (!r.read_u64(value).is_ok()) return false;
    if (!r.read_varint(count).is_ok() || count == 0) return false;
    sample.emplace(value, count);
  }
  footprint_ = static_cast<std::size_t>(footprint);
  tau_growth_ = tau_growth;
  tau_ = tau;
  items_seen_ = items_seen;
  rng_.load_state(seed, state);
  sample_ = std::move(sample);
  return true;
}

std::uint64_t ExactCounter::count(std::uint64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<ValueCount> ExactCounter::top_k(std::size_t k) const {
  std::vector<ValueCount> items;
  items.reserve(counts_.size());
  for (const auto& [value, count] : counts_) {
    items.push_back({value, static_cast<double>(count)});
  }
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

void ExactCounter::merge(const ExactCounter& other) {
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  items_seen_ += other.items_seen_;
}

void ExactCounter::save(core::StateWriter& w) const {
  w.write_u64(items_seen_);
  std::vector<std::uint64_t> values;
  values.reserve(counts_.size());
  for (const auto& [value, _] : counts_) values.push_back(value);
  std::sort(values.begin(), values.end());
  w.write_varint(values.size());
  for (const std::uint64_t value : values) {
    w.write_u64(value);
    w.write_varint(counts_.at(value));
  }
}

bool ExactCounter::load(core::StateReader& r) {
  std::uint64_t items_seen = 0, n = 0;
  if (!r.read_u64(items_seen).is_ok()) return false;
  if (!r.read_varint(n).is_ok()) return false;
  std::unordered_map<std::uint64_t, std::uint64_t> counts;
  counts.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::uint64_t value = 0, count = 0;
    if (!r.read_u64(value).is_ok()) return false;
    if (!r.read_varint(count).is_ok()) return false;
    counts.emplace(value, count);
  }
  items_seen_ = items_seen;
  counts_ = std::move(counts);
  return true;
}

ByteBuffer StreamSummary::serialize() const {
  ByteBuffer out;
  Serializer s(out);
  s.write_u32(stream);
  s.write_u64(epoch);
  s.write_varint(items.size());
  for (const ValueCount& item : items) {
    s.write_u64(item.value);
    s.write_f64(item.count);
  }
  return out;
}

StatusOr<StreamSummary> StreamSummary::deserialize(const ByteBuffer& buffer) {
  Deserializer d(buffer);
  StreamSummary summary;
  if (auto s = d.read_u32(summary.stream); !s.is_ok()) return s;
  if (auto s = d.read_u64(summary.epoch); !s.is_ok()) return s;
  std::uint64_t n = 0;
  if (auto s = d.read_varint(n); !s.is_ok()) return s;
  summary.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ValueCount item;
    if (auto s = d.read_u64(item.value); !s.is_ok()) return s;
    if (auto s = d.read_f64(item.count); !s.is_ok()) return s;
    summary.items.push_back(item);
  }
  if (!d.at_end()) return invalid_argument("trailing bytes after summary");
  return summary;
}

std::size_t StreamSummary::payload_bytes(std::size_t items) {
  // u32 stream + u64 epoch + varint (<=2 in practice) + 16 bytes/item.
  return 4 + 8 + 2 + 16 * items;
}

void SummaryMerger::add(StreamSummary summary) {
  auto it = latest_.find(summary.stream);
  if (it == latest_.end() || it->second.epoch <= summary.epoch) {
    latest_[summary.stream] = std::move(summary);
  }
}

void SummaryMerger::save(core::StateWriter& w) const {
  std::vector<std::uint32_t> streams;
  streams.reserve(latest_.size());
  for (const auto& [stream, _] : latest_) streams.push_back(stream);
  std::sort(streams.begin(), streams.end());
  w.write_varint(streams.size());
  for (const std::uint32_t stream : streams) {
    const StreamSummary& summary = latest_.at(stream);
    w.write_u32(summary.stream);
    w.write_u64(summary.epoch);
    w.write_varint(summary.items.size());
    for (const ValueCount& item : summary.items) {
      w.write_u64(item.value);
      w.write_f64(item.count);
    }
  }
}

bool SummaryMerger::load(core::StateReader& r) {
  std::uint64_t n = 0;
  if (!r.read_varint(n).is_ok()) return false;
  std::unordered_map<std::uint32_t, StreamSummary> latest;
  latest.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    StreamSummary summary;
    if (!r.read_u32(summary.stream).is_ok()) return false;
    if (!r.read_u64(summary.epoch).is_ok()) return false;
    std::uint64_t items = 0;
    if (!r.read_varint(items).is_ok()) return false;
    summary.items.reserve(items);
    for (std::uint64_t j = 0; j < items; ++j) {
      ValueCount item;
      if (!r.read_u64(item.value).is_ok()) return false;
      if (!r.read_f64(item.count).is_ok()) return false;
      summary.items.push_back(item);
    }
    const std::uint32_t stream = summary.stream;
    latest.emplace(stream, std::move(summary));
  }
  latest_ = std::move(latest);
  return true;
}

std::vector<ValueCount> SummaryMerger::top_k(std::size_t k) const {
  std::unordered_map<std::uint64_t, double> merged;
  for (const auto& [_, summary] : latest_) {
    for (const ValueCount& item : summary.items) {
      merged[item.value] += item.count;
    }
  }
  std::vector<ValueCount> items;
  items.reserve(merged.size());
  for (const auto& [value, count] : merged) items.push_back({value, count});
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

}  // namespace gates::apps
