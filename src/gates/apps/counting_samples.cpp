#include "gates/apps/counting_samples.hpp"

#include <algorithm>

#include "gates/common/check.hpp"
#include "gates/common/serialize.hpp"

namespace gates::apps {
namespace {

/// GM compensation constant for occurrences missed before sample entry.
constexpr double kCompensation = 0.418;

void sort_desc(std::vector<ValueCount>& items) {
  std::sort(items.begin(), items.end(), [](const ValueCount& a, const ValueCount& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.value < b.value;
  });
}

}  // namespace

CountingSamples::CountingSamples(std::size_t footprint, Rng rng, double tau_growth)
    : footprint_(footprint), tau_growth_(tau_growth), rng_(rng) {
  GATES_CHECK(footprint > 0);
  GATES_CHECK(tau_growth > 1.0);
}

void CountingSamples::insert(std::uint64_t value) {
  ++items_seen_;
  auto it = sample_.find(value);
  if (it != sample_.end()) {
    // Occurrences after entry are counted exactly.
    ++it->second;
    return;
  }
  // New values enter with probability 1/tau.
  if (tau_ <= 1.0 || rng_.next_bool(1.0 / tau_)) {
    sample_.emplace(value, 1);
    while (sample_.size() > footprint_) raise_threshold();
  }
}

void CountingSamples::set_footprint(std::size_t footprint) {
  GATES_CHECK(footprint > 0);
  footprint_ = footprint;
  while (sample_.size() > footprint_) raise_threshold();
}

void CountingSamples::raise_threshold() {
  const double old_tau = tau_;
  tau_ *= tau_growth_;
  // Classical diminishing pass: each entry first survives with probability
  // old_tau/new_tau (its entry coin), then sheds count units with repeated
  // 1/new_tau coins, disappearing at zero.
  for (auto it = sample_.begin(); it != sample_.end();) {
    std::uint64_t count = it->second;
    if (!rng_.next_bool(old_tau / tau_)) {
      --count;
      while (count > 0 && !rng_.next_bool(1.0 / tau_)) --count;
    }
    if (count == 0) {
      it = sample_.erase(it);
    } else {
      it->second = count;
      ++it;
    }
  }
}

std::uint64_t CountingSamples::raw_count(std::uint64_t value) const {
  auto it = sample_.find(value);
  return it == sample_.end() ? 0 : it->second;
}

double CountingSamples::estimated_count(std::uint64_t value) const {
  auto it = sample_.find(value);
  if (it == sample_.end()) return 0;
  return static_cast<double>(it->second) +
         (tau_ > 1.0 ? kCompensation * tau_ : 0.0);
}

std::vector<ValueCount> CountingSamples::top_k(std::size_t k) const {
  std::vector<ValueCount> items;
  items.reserve(sample_.size());
  for (const auto& [value, _] : sample_) {
    items.push_back({value, estimated_count(value)});
  }
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

std::uint64_t ExactCounter::count(std::uint64_t value) const {
  auto it = counts_.find(value);
  return it == counts_.end() ? 0 : it->second;
}

std::vector<ValueCount> ExactCounter::top_k(std::size_t k) const {
  std::vector<ValueCount> items;
  items.reserve(counts_.size());
  for (const auto& [value, count] : counts_) {
    items.push_back({value, static_cast<double>(count)});
  }
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

void ExactCounter::merge(const ExactCounter& other) {
  for (const auto& [value, count] : other.counts_) counts_[value] += count;
  items_seen_ += other.items_seen_;
}

ByteBuffer StreamSummary::serialize() const {
  ByteBuffer out;
  Serializer s(out);
  s.write_u32(stream);
  s.write_u64(epoch);
  s.write_varint(items.size());
  for (const ValueCount& item : items) {
    s.write_u64(item.value);
    s.write_f64(item.count);
  }
  return out;
}

StatusOr<StreamSummary> StreamSummary::deserialize(const ByteBuffer& buffer) {
  Deserializer d(buffer);
  StreamSummary summary;
  if (auto s = d.read_u32(summary.stream); !s.is_ok()) return s;
  if (auto s = d.read_u64(summary.epoch); !s.is_ok()) return s;
  std::uint64_t n = 0;
  if (auto s = d.read_varint(n); !s.is_ok()) return s;
  summary.items.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    ValueCount item;
    if (auto s = d.read_u64(item.value); !s.is_ok()) return s;
    if (auto s = d.read_f64(item.count); !s.is_ok()) return s;
    summary.items.push_back(item);
  }
  if (!d.at_end()) return invalid_argument("trailing bytes after summary");
  return summary;
}

std::size_t StreamSummary::payload_bytes(std::size_t items) {
  // u32 stream + u64 epoch + varint (<=2 in practice) + 16 bytes/item.
  return 4 + 8 + 2 + 16 * items;
}

void SummaryMerger::add(StreamSummary summary) {
  auto it = latest_.find(summary.stream);
  if (it == latest_.end() || it->second.epoch <= summary.epoch) {
    latest_[summary.stream] = std::move(summary);
  }
}

std::vector<ValueCount> SummaryMerger::top_k(std::size_t k) const {
  std::unordered_map<std::uint64_t, double> merged;
  for (const auto& [_, summary] : latest_) {
    for (const ValueCount& item : summary.items) {
      merged[item.value] += item.count;
    }
  }
  std::vector<ValueCount> items;
  items.reserve(merged.size());
  for (const auto& [value, count] : merged) items.push_back({value, count});
  sort_desc(items);
  if (items.size() > k) items.resize(k);
  return items;
}

}  // namespace gates::apps
