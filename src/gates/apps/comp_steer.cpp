#include "gates/apps/comp_steer.hpp"

#include <cmath>

#include "gates/common/serialize.hpp"

namespace gates::apps {

void SamplerProcessor::init(core::ProcessorContext& ctx) {
  const auto& props = ctx.properties();
  core::AdjustmentParameter::Spec spec;
  spec.name = kParamName;
  spec.initial = props.get_double("rate-initial", 0.13);
  spec.min_value = props.get_double("rate-min", 0.01);
  spec.max_value = props.get_double("rate-max", 1.0);
  spec.increment = props.get_double("rate-increment", 0.01);
  spec.direction = ParamDirection::kIncreaseSlowsDown;
  rate_param_ = &ctx.specify_parameter(spec);
  rng_ = &ctx.rng();
}

void SamplerProcessor::process(const core::Packet& packet,
                               core::Emitter& emitter) {
  const double rate = rate_param_->suggested_value();
  const std::size_t n_values = packet.payload_bytes() / 8;
  values_seen_ += n_values;

  // Keep round(n * rate) values; randomize the fractional remainder so the
  // long-run forwarded fraction equals the rate exactly.
  const double want = static_cast<double>(n_values) * rate;
  std::size_t keep = static_cast<std::size_t>(want);
  if (rng_->next_bool(want - static_cast<double>(keep))) ++keep;
  if (keep == 0) return;
  if (keep > n_values) keep = n_values;

  // Uniform stride over the chunk preserves spatial coverage of the mesh.
  core::Packet out;
  out.stream = packet.stream;
  out.sequence = packet.sequence;
  out.created_at = packet.created_at;
  out.kind = core::kPacketKindData;
  out.records = keep;
  Deserializer d(packet.payload);
  Serializer s(out.payload);
  const double stride = static_cast<double>(n_values) / static_cast<double>(keep);
  std::size_t read_index = 0;
  double value = 0;
  for (std::size_t i = 0; i < keep; ++i) {
    const auto target = static_cast<std::size_t>(static_cast<double>(i) * stride);
    while (read_index <= target) {
      if (!d.read_f64(value).is_ok()) return;
      ++read_index;
    }
    s.write_f64(value);
  }
  values_forwarded_ += keep;
  emitter.emit(std::move(out));
}

void SteeringAnalyzerProcessor::init(core::ProcessorContext& ctx) {
  ctx_ = &ctx;
  const auto& props = ctx.properties();
  feature_threshold_ = props.get_double("feature-threshold", 0.8);
  window_ = static_cast<std::size_t>(props.get_int("window", 256));
  windowed_ = SlidingWindowStats(window_);
}

void SteeringAnalyzerProcessor::process(const core::Packet& packet,
                                        core::Emitter& /*emitter*/) {
  bytes_analyzed_ += packet.payload_bytes();
  Deserializer d(packet.payload);
  double value = 0;
  while (d.remaining() >= 8) {
    if (!d.read_f64(value).is_ok()) break;
    field_stats_.add(value);
    windowed_.add(value);
    const bool now_above = windowed_.full() && windowed_.mean() > feature_threshold_;
    if (now_above != above_) {
      above_ = now_above;
      actions_.push_back({ctx_->now(), windowed_.mean(), now_above});
    }
  }
}

}  // namespace gates::apps
