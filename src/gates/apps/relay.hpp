// Relay stages for transport validation: a byte-exact passthrough and an
// order-sensitive hashing sink. Together they make a pipeline whose final
// digest is a function of the exact packet bytes in the exact delivery
// order, so a distributed run (chain split across gates_node daemons) can
// be checked byte-for-byte against the in-process run — the wire-path
// correctness oracle used by tests, bench/wire_path and the dist-smoke CI
// job.
#pragma once

#include <cstdint>
#include <string>

#include "gates/core/processor.hpp"

namespace gates::apps {

/// Forwards every packet unchanged (a ByteBuffer reference bump, not a
/// copy). Stands in for any intermediate stage when the experiment is about
/// the transport, not the computation.
class PassthroughProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "passthrough";

  void init(core::ProcessorContext&) override {}
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }
};

/// Terminal stage folding every payload byte (plus per-packet framing of
/// stream id and record count) into one order-sensitive FNV-1a digest.
///
/// Properties:
///   digest-file   where finish() writes "<hex digest> <packet count>\n"
///                 (optional; the digest is also queryable in process)
class HashSinkProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "hash-sink";

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  void finish(core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }

  std::uint64_t digest() const { return digest_; }
  std::uint64_t packet_count() const { return packets_; }

 private:
  std::uint64_t digest_ = 14695981039346656037ull;  // FNV-1a offset basis
  std::uint64_t packets_ = 0;
  std::string digest_file_;
};

}  // namespace gates::apps
