// Counting samples — the Gibbons–Matias approximate frequent-values summary
// the paper's count-samps application builds on [18].
//
// The summary holds at most `footprint` (value, count) pairs. A value
// already in the sample has its count incremented exactly; a new value
// enters with probability 1/tau. When the sample overflows, tau is raised
// and every entry is probabilistically diminished so the sample looks as if
// it had been collected at the higher threshold all along (the classical
// coin-flipping procedure). Reported counts add the GM compensation term
// 0.418 * tau for the occurrences missed before a value entered the sample.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "gates/common/byte_buffer.hpp"
#include "gates/common/rng.hpp"
#include "gates/common/status.hpp"
#include "gates/core/checkpoint.hpp"

namespace gates::apps {

/// One reported frequent value.
struct ValueCount {
  std::uint64_t value = 0;
  double count = 0;

  friend bool operator==(const ValueCount& a, const ValueCount& b) {
    return a.value == b.value && a.count == b.count;
  }
};

class CountingSamples {
 public:
  /// `footprint`: maximum entries retained. `tau_growth`: multiplicative
  /// threshold increase on overflow (> 1).
  CountingSamples(std::size_t footprint, Rng rng, double tau_growth = 1.3);

  void insert(std::uint64_t value);

  /// Shrinks or grows the footprint at runtime — the paper's adaptation of
  /// the "size of the summary structure maintained". Shrinking raises tau
  /// (diminishing entries) until the sample fits.
  void set_footprint(std::size_t footprint);

  /// Current threshold tau (1 until the first overflow).
  double tau() const { return tau_; }
  std::size_t size() const { return sample_.size(); }
  std::size_t footprint() const { return footprint_; }
  std::uint64_t items_seen() const { return items_seen_; }

  /// Raw in-sample count (occurrences since entry); 0 if absent.
  std::uint64_t raw_count(std::uint64_t value) const;

  /// GM-compensated estimate: raw + 0.418 * tau, or 0 if absent.
  double estimated_count(std::uint64_t value) const;

  /// The k largest values by estimated count (descending; ties by ascending
  /// value for determinism). Fewer than k if the sample is smaller.
  std::vector<ValueCount> top_k(std::size_t k) const;

  /// Checkpoint/restore (live migration): the whole sketch — threshold,
  /// rng stream position, and the sample in canonical (sorted) order — so
  /// a restored sketch continues the exact sequence the original would
  /// have produced. load() overwrites *this; false = malformed state.
  void save(core::StateWriter& w) const;
  bool load(core::StateReader& r);

 private:
  void raise_threshold();

  std::size_t footprint_;
  double tau_growth_;
  double tau_ = 1.0;
  std::uint64_t items_seen_ = 0;
  std::unordered_map<std::uint64_t, std::uint64_t> sample_;
  Rng rng_;
};

/// Exact frequency counter — the ground-truth baseline.
class ExactCounter {
 public:
  void insert(std::uint64_t value) { ++counts_[value]; ++items_seen_; }
  std::uint64_t count(std::uint64_t value) const;
  std::uint64_t items_seen() const { return items_seen_; }
  std::size_t distinct() const { return counts_.size(); }
  std::vector<ValueCount> top_k(std::size_t k) const;

  /// Merges another counter's contents into this one.
  void merge(const ExactCounter& other);

  void save(core::StateWriter& w) const;
  bool load(core::StateReader& r);

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> counts_;
  std::uint64_t items_seen_ = 0;
};

/// A transmitted summary: the top values of one sub-stream at one epoch.
struct StreamSummary {
  std::uint32_t stream = 0;
  std::uint64_t epoch = 0;
  std::vector<ValueCount> items;

  /// Wire encoding used in summary packets.
  ByteBuffer serialize() const;
  static StatusOr<StreamSummary> deserialize(const ByteBuffer& buffer);

  /// Payload bytes a summary of n items occupies (12 bytes/item + header).
  static std::size_t payload_bytes(std::size_t items);
};

/// Combines the latest summary from each sub-stream into a global top-k:
/// counts for the same value add across streams (each stream contributes
/// its most recent epoch only, so periodic re-summaries never double count).
class SummaryMerger {
 public:
  void add(StreamSummary summary);
  std::vector<ValueCount> top_k(std::size_t k) const;
  std::size_t streams() const { return latest_.size(); }

  void save(core::StateWriter& w) const;
  bool load(core::StateReader& r);

 private:
  std::unordered_map<std::uint32_t, StreamSummary> latest_;
};

}  // namespace gates::apps
