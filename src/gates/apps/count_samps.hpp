// count-samps — the paper's first application template (§5.1): distributed
// counting samples. Sub-streams of integers arrive at different sites; a
// summary stage near each source maintains a Gibbons–Matias sample and
// periodically ships its current top-n values to a central sink, which
// merges the latest summary from every stream. The number of values shipped
// (n) is the adjustment parameter.
#pragma once

#include <memory>
#include <optional>

#include "gates/apps/counting_samples.hpp"
#include "gates/core/processor.hpp"

namespace gates::apps {

/// Stage-1: per-site summary builder.
///
/// Properties:
///   footprint-factor  sketch capacity as a multiple of the current summary
///                     size (default 1.0): the adjustment parameter sizes
///                     the summary structure MAINTAINED, so smaller
///                     summaries mean noisier counts — the paper's accuracy
///                     trade-off
///   emit-every      records between summary emissions (default 2500)
///   track-exact     also keep exact counts for ground truth (default false)
///   summary-initial / summary-min / summary-max  adjustment parameter range
///                   (defaults 100 / 10 / 240), direction -1: shipping more
///                   values costs more bandwidth.
class CountSampsSummaryProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "count-samps-summary";
  static constexpr const char* kParamName = "summary-size";

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  void finish(core::Emitter& emitter) override;
  /// Live migration: the sketch (with rng position), the epoch/insert
  /// counters, and the current adjustment-parameter value all travel, so a
  /// migrated stage's summary stream is byte-identical to an unmigrated
  /// run's.
  bool checkpoint(core::StateWriter& w) override;
  bool restore(core::StateReader& r) override;
  std::string name() const override { return kRegistryName; }

  const CountingSamples& sketch() const { return *sketch_; }
  const ExactCounter* exact() const { return exact_ ? &*exact_ : nullptr; }
  std::uint64_t summaries_emitted() const { return epoch_; }

 private:
  void emit_summary(core::Emitter& emitter, TimePoint now);
  std::size_t current_footprint() const;

  core::ProcessorContext* ctx_ = nullptr;
  core::AdjustmentParameter* size_param_ = nullptr;
  std::unique_ptr<CountingSamples> sketch_;
  std::optional<ExactCounter> exact_;
  double footprint_factor_ = 1.0;
  std::uint64_t emit_every_ = 2500;
  std::uint64_t inserted_ = 0;
  std::uint64_t epoch_ = 0;
  StreamId stream_ = 0;
  bool saw_data_ = false;
};

/// Merge stage: combines per-stream summaries and/or processes raw data
/// packets directly with its own sketch (the centralized version forwards
/// all data here). With relay enabled it also re-emits its merged view
/// upward as a summary, so merges compose into the multi-level pipelines
/// the paper anticipates ("more than two stages could also be required",
/// §3.1) — e.g. sites -> regional merges -> global merge.
///
/// Properties:
///   footprint     sketch capacity for raw data (default 1024)
///   top-k         answer size (default 10)
///   track-exact   keep exact counts of raw data (default false)
///   relay         re-emit merged summaries downstream (default false)
///   relay-size    values per relayed summary (default 64)
///   relay-every   inbound summaries between relays (default 4)
class CountSampsSinkProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "count-samps-sink";

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  void finish(core::Emitter& emitter) override;
  /// Live migration: local sketch, per-stream latest summaries, and the
  /// receive counters travel with the stage.
  bool checkpoint(core::StateWriter& w) override;
  bool restore(core::StateReader& r) override;
  std::string name() const override { return kRegistryName; }

  /// Current global top-k answer, merging shipped summaries with any
  /// locally sketched raw data.
  std::vector<ValueCount> result() const;
  std::size_t top_k() const { return top_k_; }
  const ExactCounter* exact() const { return exact_ ? &*exact_ : nullptr; }
  std::uint64_t summaries_received() const { return summaries_received_; }
  std::uint64_t raw_records_received() const { return raw_records_; }
  std::uint64_t summaries_relayed() const { return relay_epoch_; }

 private:
  std::vector<ValueCount> merged(std::size_t k) const;
  void emit_relay(core::Emitter& emitter, TimePoint now);

  core::ProcessorContext* ctx_ = nullptr;
  std::unique_ptr<CountingSamples> sketch_;
  SummaryMerger merger_;
  std::optional<ExactCounter> exact_;
  std::size_t top_k_ = 10;
  bool relay_ = false;
  std::size_t relay_size_ = 64;
  std::uint64_t relay_every_ = 4;
  std::uint64_t relay_epoch_ = 0;
  std::uint64_t summaries_received_ = 0;
  std::uint64_t raw_records_ = 0;
};

}  // namespace gates::apps
