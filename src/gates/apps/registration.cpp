#include "gates/apps/registration.hpp"

#include <cmath>
#include <memory>

#include "gates/apps/comp_steer.hpp"
#include "gates/apps/count_samps.hpp"
#include "gates/apps/intrusion.hpp"
#include "gates/apps/relay.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/zipf.hpp"

namespace gates::apps {
namespace {

template <typename T>
void add_processor(grid::ProcessorRegistry& registry) {
  if (registry.contains(T::kRegistryName)) return;
  auto status = registry.add(T::kRegistryName,
                             [] { return std::make_unique<T>(); });
  (void)status;  // contains() pre-check makes AlreadyExists unreachable
}

}  // namespace

void register_processors(grid::ProcessorRegistry& processors) {
  add_processor<CountSampsSummaryProcessor>(processors);
  add_processor<CountSampsSinkProcessor>(processors);
  add_processor<SamplerProcessor>(processors);
  add_processor<SteeringAnalyzerProcessor>(processors);
  add_processor<SiteFeatureProcessor>(processors);
  add_processor<IntrusionDetectorProcessor>(processors);
  add_processor<PassthroughProcessor>(processors);
  add_processor<HashSinkProcessor>(processors);
}

void register_generators(grid::GeneratorRegistry& generators) {
  if (!generators.contains("mesh-f64")) {
    (void)generators.add(
        "mesh-f64",
        [](const Properties& props) -> StatusOr<core::PacketGenerator> {
          const auto values =
              static_cast<std::size_t>(props.get_int("values", 128));
          const double drift = props.get_double("drift", 0.01);
          const double noise = props.get_double("noise", 0.05);
          if (values == 0) {
            return invalid_argument("mesh-f64: values must be > 0");
          }
          return core::PacketGenerator(
              [values, drift, noise](std::uint64_t seq, Rng& rng) {
                core::Packet p;
                Serializer s(p.payload);
                // A slowly drifting field with hot spots: the analyzer's
                // feature detection has something real to find.
                const double phase = drift * static_cast<double>(seq);
                for (std::size_t i = 0; i < values; ++i) {
                  const double x = 0.1 * static_cast<double>(i);
                  const double field =
                      0.5 + 0.5 * std::sin(phase + x) * std::cos(0.3 * phase);
                  s.write_f64(field + noise * rng.normal());
                }
                p.records = values;
                return p;
              });
        });
  }
  if (!generators.contains("connlog")) {
    (void)generators.add(
        "connlog",
        [](const Properties& props) -> StatusOr<core::PacketGenerator> {
          const auto records =
              static_cast<std::size_t>(props.get_int("records", 1));
          const auto ports =
              static_cast<std::uint64_t>(props.get_int("ports", 1024));
          const auto anomaly_port =
              static_cast<std::uint64_t>(props.get_int("anomaly-port", 31337));
          const double anomaly_prob = props.get_double("anomaly-prob", 0.6);
          const auto burst_start =
              static_cast<std::uint64_t>(props.get_int("burst-start", 0));
          const auto burst_end =
              static_cast<std::uint64_t>(props.get_int("burst-end", 0));
          if (records == 0 || ports == 0) {
            return invalid_argument("connlog: records and ports must be > 0");
          }
          auto zipf = std::make_shared<ZipfGenerator>(ports, 1.0);
          return core::PacketGenerator([=](std::uint64_t seq, Rng& rng) {
            core::Packet p;
            Serializer s(p.payload);
            const bool in_burst = seq >= burst_start && seq < burst_end;
            for (std::size_t i = 0; i < records; ++i) {
              if (in_burst && rng.next_bool(anomaly_prob)) {
                s.write_u64(anomaly_port);
              } else {
                s.write_u64(zipf->next(rng));
              }
            }
            p.records = records;
            return p;
          });
        });
  }
}

void register_pattern_generator(grid::GeneratorRegistry& generators) {
  if (generators.contains("pattern")) return;
  // Deterministic position- and sequence-dependent bytes: any reorder,
  // truncation or corruption anywhere in a transport chain changes the
  // hash-sink digest. The wire-path validation generator.
  (void)generators.add(
      "pattern", [](const Properties& props) -> StatusOr<core::PacketGenerator> {
        const auto bytes = static_cast<std::size_t>(props.get_int("bytes", 64));
        if (bytes == 0) return invalid_argument("pattern: bytes must be > 0");
        return core::PacketGenerator([bytes](std::uint64_t seq, Rng&) {
          core::Packet p;
          p.payload = ByteBuffer::uninitialized(bytes);
          std::uint8_t* out = p.payload.data();
          for (std::size_t i = 0; i < bytes; ++i) {
            out[i] = static_cast<std::uint8_t>(seq * 131 + i * 7);
          }
          p.records = 1;
          return p;
        });
      });
}

void register_all() {
  register_processors(grid::ProcessorRegistry::global());
  register_generators(grid::GeneratorRegistry::global());
  register_pattern_generator(grid::GeneratorRegistry::global());
}

}  // namespace gates::apps
