#include "gates/apps/relay.hpp"

#include <cstdio>
#include <cstdlib>

#include "gates/common/log.hpp"

namespace gates::apps {
namespace {

constexpr std::uint64_t kFnvPrime = 1099511628211ull;

inline std::uint64_t fnv1a(std::uint64_t h, const std::uint8_t* p,
                           std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xFF;
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

void PassthroughProcessor::process(const core::Packet& packet,
                                   core::Emitter& emitter) {
  emitter.emit(packet);
}

void HashSinkProcessor::init(core::ProcessorContext& ctx) {
  digest_file_ = ctx.properties().get_string("digest-file", "");
  if (digest_file_.empty()) {
    // Environment fallback so one config file serves many runs (daemons
    // inherit the coordinator's environment across fork/exec).
    if (const char* env = std::getenv("GATES_DIGEST_FILE")) digest_file_ = env;
  }
}

void HashSinkProcessor::process(const core::Packet& packet, core::Emitter&) {
  digest_ = fnv1a_u64(digest_, packet.stream);
  digest_ = fnv1a_u64(digest_, packet.records);
  digest_ = fnv1a(digest_, packet.payload.data(), packet.payload.size());
  ++packets_;
}

void HashSinkProcessor::finish(core::Emitter&) {
  if (digest_file_.empty()) return;
  std::FILE* f = std::fopen(digest_file_.c_str(), "w");
  if (!f) {
    GATES_LOG(kWarn, "hash-sink")
        << "cannot write digest file '" << digest_file_ << "'";
    return;
  }
  std::fprintf(f, "%016llx %llu\n",
               static_cast<unsigned long long>(digest_),
               static_cast<unsigned long long>(packets_));
  std::fclose(f);
}

}  // namespace gates::apps
