// comp-steer — the paper's second application template (§5.1): data-stream
// processing for computational steering. A simulation emits chunks of mesh
// values; a sampler forwards a fraction of them (the sampling rate is the
// adjustment parameter); an analyzer consumes them at a configured cost per
// byte and derives steering feedback.
#pragma once

#include <vector>

#include "gates/common/stats.hpp"
#include "gates/core/processor.hpp"

namespace gates::apps {

/// Sampler stage. Forwards round(n * rate) of each packet's values, where
/// rate is the "sampling-rate" adjustment parameter.
///
/// Properties: rate-initial (0.13), rate-min (0.01), rate-max (1.0),
/// rate-increment (0.01) — the paper's specifyPara example.
class SamplerProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "comp-steer-sampler";
  static constexpr const char* kParamName = "sampling-rate";

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }

  std::uint64_t values_seen() const { return values_seen_; }
  std::uint64_t values_forwarded() const { return values_forwarded_; }
  double current_rate() const { return rate_param_->suggested_value(); }

 private:
  core::AdjustmentParameter* rate_param_ = nullptr;
  Rng* rng_ = nullptr;
  std::uint64_t values_seen_ = 0;
  std::uint64_t values_forwarded_ = 0;
};

/// Analyzer / steering stage. Tracks field statistics and records steering
/// actions whenever the windowed mean crosses the feature threshold. Its
/// per-byte processing cost is the *stage's* CostModel (set per experiment:
/// the paper's 1..20 ms/byte), not a property here.
///
/// Properties: feature-threshold (0.8), window (256 values).
class SteeringAnalyzerProcessor final : public core::StreamProcessor {
 public:
  static constexpr const char* kRegistryName = "comp-steer-analyzer";

  struct SteeringAction {
    TimePoint time = 0;
    double windowed_mean = 0;
    /// true = refine the mesh region, false = coarsen.
    bool refine = false;
  };

  void init(core::ProcessorContext& ctx) override;
  void process(const core::Packet& packet, core::Emitter& emitter) override;
  std::string name() const override { return kRegistryName; }

  const RunningStats& field_stats() const { return field_stats_; }
  const std::vector<SteeringAction>& actions() const { return actions_; }
  std::uint64_t bytes_analyzed() const { return bytes_analyzed_; }

 private:
  core::ProcessorContext* ctx_ = nullptr;
  double feature_threshold_ = 0.8;
  std::size_t window_ = 256;
  RunningStats field_stats_;
  SlidingWindowStats windowed_{256};
  bool above_ = false;
  std::vector<SteeringAction> actions_;
  std::uint64_t bytes_analyzed_ = 0;
};

}  // namespace gates::apps
