#include <sstream>

#include "gates/common/string_util.hpp"
#include "gates/xml/xml.hpp"

namespace gates::xml {
namespace {

void write_element(std::ostringstream& os, const Element& e, int depth) {
  std::string indent(static_cast<std::size_t>(depth) * 2, ' ');
  os << indent << '<' << e.name();
  for (const auto& [k, v] : e.attrs()) {
    os << ' ' << k << "=\"" << escape(v) << '"';
  }
  std::string text(trim(e.text()));
  if (e.children().empty() && text.empty()) {
    os << "/>\n";
    return;
  }
  os << '>';
  if (e.children().empty()) {
    os << escape(text) << "</" << e.name() << ">\n";
    return;
  }
  os << '\n';
  if (!text.empty()) {
    os << indent << "  " << escape(text) << '\n';
  }
  for (const auto& child : e.children()) {
    write_element(os, *child, depth + 1);
  }
  os << indent << "</" << e.name() << ">\n";
}

}  // namespace

std::string escape(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      case '\'': out += "&apos;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

std::string write(const Element& element) {
  std::ostringstream os;
  write_element(os, element, 0);
  return os.str();
}

std::string write(const Document& doc) {
  std::ostringstream os;
  os << "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  if (doc.root) write_element(os, *doc.root, 0);
  return os.str();
}

}  // namespace gates::xml
