// From-scratch XML subset: DOM, parser and writer.
//
// The GATES Launcher "is in charge of getting configuration files and
// analyzing them by using an embedded XML parser" (paper §3.2); this module
// is that embedded parser. Supported subset: prolog, comments, CDATA,
// elements, attributes, character data, the five predefined entities and
// numeric character references. Not supported (not needed by configs, and
// rejected with clear errors where they would change meaning): DTDs,
// processing instructions other than the prolog, namespaces-as-semantics
// (colons in names are allowed but uninterpreted).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gates/common/status.hpp"

namespace gates::xml {

/// A parsed element. Text content is stored per-element as the concatenation
/// of its character data (configs never interleave text and children in a
/// way where that matters).
class Element {
 public:
  explicit Element(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // -- attributes (order-preserving) ---------------------------------------
  void set_attr(std::string key, std::string value);
  std::optional<std::string> attr(std::string_view key) const;
  std::string attr_or(std::string_view key, std::string fallback) const;
  /// Attribute that must exist; error status names the element.
  StatusOr<std::string> required_attr(std::string_view key) const;
  const std::vector<std::pair<std::string, std::string>>& attrs() const {
    return attrs_;
  }

  // -- children -------------------------------------------------------------
  Element& add_child(std::string name);
  /// Takes ownership of an already-built element.
  Element& adopt(std::unique_ptr<Element> child);
  const std::vector<std::unique_ptr<Element>>& children() const {
    return children_;
  }
  /// First child with the given name, or nullptr.
  const Element* child(std::string_view name) const;
  /// All children with the given name.
  std::vector<const Element*> children_named(std::string_view name) const;
  /// Descendant by '/'-separated path of element names ("resources/node").
  const Element* find(std::string_view path) const;

  // -- text -----------------------------------------------------------------
  void append_text(std::string_view t) { text_ += t; }
  /// Raw accumulated character data.
  const std::string& text() const { return text_; }
  /// Character data with surrounding whitespace stripped.
  std::string trimmed_text() const;

 private:
  std::string name_;
  std::vector<std::pair<std::string, std::string>> attrs_;
  std::vector<std::unique_ptr<Element>> children_;
  std::string text_;
};

struct Document {
  std::unique_ptr<Element> root;
};

/// Parse error with 1-based line/column of the offending input.
struct ParseError {
  int line = 0;
  int column = 0;
  std::string message;

  std::string to_string() const;
};

/// Parses a complete document; the root element is required.
StatusOr<Document> parse(std::string_view input);

/// Like parse() but surfaces position info.
StatusOr<Document> parse_with_location(std::string_view input,
                                       ParseError* error_out);

/// Serializes with 2-space indentation; attributes and text are escaped such
/// that parse(write(doc)) reproduces the document.
std::string write(const Document& doc);
std::string write(const Element& element);

/// Escapes &, <, >, ", ' for use in attribute values / text.
std::string escape(std::string_view raw);

}  // namespace gates::xml
