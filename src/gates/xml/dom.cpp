#include "gates/common/string_util.hpp"
#include "gates/xml/xml.hpp"

namespace gates::xml {

void Element::set_attr(std::string key, std::string value) {
  for (auto& [k, v] : attrs_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  attrs_.emplace_back(std::move(key), std::move(value));
}

std::optional<std::string> Element::attr(std::string_view key) const {
  for (const auto& [k, v] : attrs_) {
    if (k == key) return v;
  }
  return std::nullopt;
}

std::string Element::attr_or(std::string_view key, std::string fallback) const {
  auto v = attr(key);
  return v ? *v : std::move(fallback);
}

StatusOr<std::string> Element::required_attr(std::string_view key) const {
  auto v = attr(key);
  if (!v) {
    return invalid_argument("element <" + name_ + "> is missing required attribute '" +
                            std::string(key) + "'");
  }
  return *v;
}

Element& Element::add_child(std::string name) {
  children_.push_back(std::make_unique<Element>(std::move(name)));
  return *children_.back();
}

Element& Element::adopt(std::unique_ptr<Element> child) {
  children_.push_back(std::move(child));
  return *children_.back();
}

const Element* Element::child(std::string_view name) const {
  for (const auto& c : children_) {
    if (c->name() == name) return c.get();
  }
  return nullptr;
}

std::vector<const Element*> Element::children_named(std::string_view name) const {
  std::vector<const Element*> out;
  for (const auto& c : children_) {
    if (c->name() == name) out.push_back(c.get());
  }
  return out;
}

const Element* Element::find(std::string_view path) const {
  const Element* cur = this;
  std::size_t start = 0;
  while (cur != nullptr && start < path.size()) {
    std::size_t pos = path.find('/', start);
    std::string_view segment = (pos == std::string_view::npos)
                                   ? path.substr(start)
                                   : path.substr(start, pos - start);
    cur = cur->child(segment);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return cur;
}

std::string Element::trimmed_text() const { return std::string(trim(text_)); }

}  // namespace gates::xml
