#include <cctype>
#include <cstdlib>

#include "gates/common/string_util.hpp"
#include "gates/xml/xml.hpp"

namespace gates::xml {
namespace {

bool is_name_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':';
}

bool is_name_char(char c) {
  return is_name_start(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

class Parser {
 public:
  explicit Parser(std::string_view input) : in_(input) {}

  StatusOr<Document> run(ParseError* error_out) {
    auto doc = parse_document();
    if (!doc.ok() && error_out) {
      error_out->line = line_;
      error_out->column = column_;
      error_out->message = doc.status().message();
    }
    return doc;
  }

 private:
  // -- low-level cursor -----------------------------------------------------
  bool eof() const { return pos_ >= in_.size(); }
  char peek() const { return in_[pos_]; }
  bool peek_is(std::string_view s) const {
    return in_.substr(pos_, s.size()) == s;
  }
  char advance() {
    char c = in_[pos_++];
    if (c == '\n') {
      ++line_;
      column_ = 1;
    } else {
      ++column_;
    }
    return c;
  }
  void advance_n(std::size_t n) {
    for (std::size_t i = 0; i < n && !eof(); ++i) advance();
  }
  void skip_ws() {
    while (!eof() && std::isspace(static_cast<unsigned char>(peek()))) advance();
  }

  Status err(std::string msg) const {
    return invalid_argument("XML parse error at line " + std::to_string(line_) +
                            ", column " + std::to_string(column_) + ": " +
                            std::move(msg));
  }

  // -- grammar ----------------------------------------------------------------
  StatusOr<Document> parse_document() {
    skip_misc();
    if (eof()) return err("document has no root element");
    if (peek() != '<') return err("expected '<' before root element");
    auto root = parse_element();
    if (!root.ok()) return root.status();
    skip_misc();
    if (!eof()) return err("trailing content after root element");
    Document doc;
    doc.root = std::move(root).value();
    return doc;
  }

  /// Skips whitespace, comments, and the XML prolog between top-level items.
  void skip_misc() {
    while (true) {
      skip_ws();
      if (peek_is("<!--")) {
        if (!skip_comment().is_ok()) return;
      } else if (peek_is("<?")) {
        if (!skip_prolog().is_ok()) return;
      } else {
        return;
      }
    }
  }

  Status skip_comment() {
    advance_n(4);  // <!--
    while (!eof()) {
      if (peek_is("-->")) {
        advance_n(3);
        return Status::ok();
      }
      advance();
    }
    return err("unterminated comment");
  }

  Status skip_prolog() {
    advance_n(2);  // <?
    while (!eof()) {
      if (peek_is("?>")) {
        advance_n(2);
        return Status::ok();
      }
      advance();
    }
    return err("unterminated processing instruction");
  }

  StatusOr<std::string> parse_name() {
    if (eof() || !is_name_start(peek())) return err("expected a name");
    std::string name;
    while (!eof() && is_name_char(peek())) name.push_back(advance());
    return name;
  }

  StatusOr<std::string> parse_entity() {
    // cursor on '&'
    advance();
    std::string entity;
    while (!eof() && peek() != ';') {
      entity.push_back(advance());
      if (entity.size() > 8) return err("entity reference too long");
    }
    if (eof()) return err("unterminated entity reference");
    advance();  // ';'
    if (entity == "lt") return std::string("<");
    if (entity == "gt") return std::string(">");
    if (entity == "amp") return std::string("&");
    if (entity == "quot") return std::string("\"");
    if (entity == "apos") return std::string("'");
    if (!entity.empty() && entity[0] == '#') {
      long code;
      char* end = nullptr;
      if (entity.size() > 2 && (entity[1] == 'x' || entity[1] == 'X')) {
        code = std::strtol(entity.c_str() + 2, &end, 16);
      } else {
        code = std::strtol(entity.c_str() + 1, &end, 10);
      }
      if (end == nullptr || *end != '\0' || code <= 0 || code > 0x10FFFF) {
        return err("bad numeric character reference '&" + entity + ";'");
      }
      // Encode as UTF-8.
      std::string out;
      auto cp = static_cast<unsigned long>(code);
      if (cp < 0x80) {
        out.push_back(static_cast<char>(cp));
      } else if (cp < 0x800) {
        out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else if (cp < 0x10000) {
        out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      } else {
        out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
        out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
      }
      return out;
    }
    return err("unknown entity '&" + entity + ";'");
  }

  StatusOr<std::string> parse_attr_value() {
    if (eof() || (peek() != '"' && peek() != '\'')) {
      return err("expected quoted attribute value");
    }
    char quote = advance();
    std::string value;
    while (!eof() && peek() != quote) {
      if (peek() == '<') return err("'<' not allowed in attribute value");
      if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent.status();
        value += *ent;
      } else {
        value.push_back(advance());
      }
    }
    if (eof()) return err("unterminated attribute value");
    advance();  // closing quote
    return value;
  }

  StatusOr<std::unique_ptr<Element>> parse_element() {
    advance();  // '<'
    auto name = parse_name();
    if (!name.ok()) return name.status();
    auto element = std::make_unique<Element>(*name);

    // Attributes.
    while (true) {
      skip_ws();
      if (eof()) return err("unterminated start tag <" + *name + ">");
      if (peek() == '>' || peek_is("/>")) break;
      auto key = parse_name();
      if (!key.ok()) return key.status();
      skip_ws();
      if (eof() || peek() != '=') return err("expected '=' after attribute name");
      advance();
      skip_ws();
      auto value = parse_attr_value();
      if (!value.ok()) return value.status();
      if (element->attr(*key).has_value()) {
        return err("duplicate attribute '" + *key + "' on <" + *name + ">");
      }
      element->set_attr(std::move(*key), std::move(*value));
    }

    if (peek_is("/>")) {
      advance_n(2);
      return element;
    }
    advance();  // '>'

    // Content.
    while (true) {
      if (eof()) return err("missing </" + *name + ">");
      if (peek_is("<!--")) {
        if (auto s = skip_comment(); !s.is_ok()) return s;
      } else if (peek_is("<![CDATA[")) {
        advance_n(9);
        std::string cdata;
        while (!eof() && !peek_is("]]>")) cdata.push_back(advance());
        if (eof()) return err("unterminated CDATA section");
        advance_n(3);
        element->append_text(cdata);
      } else if (peek_is("</")) {
        advance_n(2);
        auto close = parse_name();
        if (!close.ok()) return close.status();
        if (*close != *name) {
          return err("mismatched close tag </" + *close + "> for <" + *name + ">");
        }
        skip_ws();
        if (eof() || peek() != '>') return err("expected '>' in close tag");
        advance();
        return element;
      } else if (peek() == '<') {
        auto child = parse_element();
        if (!child.ok()) return child.status();
        element->adopt(std::move(*child));
      } else if (peek() == '&') {
        auto ent = parse_entity();
        if (!ent.ok()) return ent.status();
        element->append_text(*ent);
      } else {
        std::string text;
        while (!eof() && peek() != '<' && peek() != '&') text.push_back(advance());
        element->append_text(text);
      }
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
  int line_ = 1;
  int column_ = 1;
};

}  // namespace

StatusOr<Document> parse(std::string_view input) {
  return parse_with_location(input, nullptr);
}

StatusOr<Document> parse_with_location(std::string_view input,
                                       ParseError* error_out) {
  Parser parser(input);
  return parser.run(error_out);
}

std::string ParseError::to_string() const {
  return "line " + std::to_string(line) + ", column " + std::to_string(column) +
         ": " + message;
}

}  // namespace gates::xml
