// The stream-processing developer API: StreamProcessor, ProcessorContext,
// Emitter. This is the C++ rendering of the paper's §3.3 interface.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "gates/common/properties.hpp"
#include "gates/common/rng.hpp"
#include "gates/common/types.hpp"
#include "gates/core/packet.hpp"
#include "gates/core/parameter.hpp"

namespace gates::core {

class StateWriter;
class StateReader;

/// Output side of a stage. Emitted packets are routed to the stage's
/// downstream connection(s) on the given port.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(Packet packet, std::size_t port = 0) = 0;
};

/// Everything a processor may ask of its hosting stage.
class ProcessorContext {
 public:
  virtual ~ProcessorContext() = default;

  /// The paper's specifyPara(init_value, max_value, min_value, increment,
  /// direction): registers an adjustment parameter with the middleware and
  /// returns a handle whose suggested_value() the processor polls each
  /// iteration. Must be called from init().
  virtual AdjustmentParameter& specify_parameter(
      AdjustmentParameter::Spec spec) = 0;

  /// Stage configuration (the <param> entries of the XML config).
  virtual const Properties& properties() const = 0;

  /// Deterministic per-stage random stream.
  virtual Rng& rng() = 0;

  /// Engine time (virtual in SimEngine, wall in RtEngine).
  virtual TimePoint now() const = 0;

  virtual StageId stage_id() const = 0;
  virtual const std::string& stage_name() const = 0;
};

/// User-supplied stage logic. Lifecycle: init() once before any data;
/// process() per dequeued packet (never for EOS); finish() once after every
/// upstream reached end-of-stream — emit any final summaries there.
///
/// Failover: when a stage is re-placed after its node crashed, a *fresh*
/// processor instance is built, init() runs, then on_recover() — the hook
/// for re-initializing state the crash lost (re-seeding sketches, asking
/// peers for checkpoints, ...). Unacked input is then replayed at least
/// once from the upstream retention buffers.
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  virtual void init(ProcessorContext& ctx) = 0;
  virtual void process(const Packet& packet, Emitter& emitter) = 0;
  virtual void finish(Emitter& /*emitter*/) {}
  /// Called (after init()) on the replacement instance of a failed-over
  /// stage, before any replayed packets arrive.
  virtual void on_recover(ProcessorContext& /*ctx*/) {}

  /// Migration (DESIGN.md §10): serialize operator state into `w` at an ack
  /// boundary — everything acked is reflected in the written state, nothing
  /// unacked is (the replay tail covers it). Return false (the default) to
  /// declare the processor un-checkpointable; migration then falls back to
  /// init() + on_recover() + replay, exactly like crash failover.
  virtual bool checkpoint(StateWriter& /*w*/) { return false; }
  /// Counterpart on the replacement instance, called after init() instead
  /// of on_recover() when a checkpoint is available. Return false (or fail a
  /// read) to reject the blob; the engine then runs on_recover() instead.
  virtual bool restore(StateReader& /*r*/) { return false; }

  /// Diagnostic name (registry key by convention).
  virtual std::string name() const = 0;
};

using ProcessorFactory = std::function<std::unique_ptr<StreamProcessor>()>;

/// How a stage may be replicated into a pool of workers behind its inbox.
enum class ParallelismMode {
  /// One worker, today's behavior (the default).
  kSerial,
  /// Any replica may take any packet (round-robin dispatch). The processor
  /// must not keep cross-packet state that the merge order can't reconstruct.
  kStateless,
  /// Packets are hash-sharded by `shard_fn`; every packet of a key goes to
  /// the same replica, so per-key state stays replica-local.
  kKeyed,
};

/// Maps a packet to a shard key; replica = shard_fn(packet) % replicas.
using ShardFn = std::function<std::uint64_t(const Packet&)>;

/// Replication declaration on a stage. The processor factory is instantiated
/// once per replica; emissions are merged back into input order before
/// anything flows downstream, so acks/EOS/replay semantics are unchanged.
struct Parallelism {
  ParallelismMode mode = ParallelismMode::kSerial;
  /// Initial replica count (>= 1).
  std::size_t replicas = 1;
  /// Scaling ceiling for the adaptation controller; 0 means "the hosting
  /// node's core budget" (HostModel::cores_at).
  std::size_t max_replicas = 0;
  /// Required for kKeyed; ignored otherwise.
  ShardFn shard_fn;
};

}  // namespace gates::core
