// The stream-processing developer API: StreamProcessor, ProcessorContext,
// Emitter. This is the C++ rendering of the paper's §3.3 interface.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "gates/common/properties.hpp"
#include "gates/common/rng.hpp"
#include "gates/common/types.hpp"
#include "gates/core/packet.hpp"
#include "gates/core/parameter.hpp"

namespace gates::core {

/// Output side of a stage. Emitted packets are routed to the stage's
/// downstream connection(s) on the given port.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(Packet packet, std::size_t port = 0) = 0;
};

/// Everything a processor may ask of its hosting stage.
class ProcessorContext {
 public:
  virtual ~ProcessorContext() = default;

  /// The paper's specifyPara(init_value, max_value, min_value, increment,
  /// direction): registers an adjustment parameter with the middleware and
  /// returns a handle whose suggested_value() the processor polls each
  /// iteration. Must be called from init().
  virtual AdjustmentParameter& specify_parameter(
      AdjustmentParameter::Spec spec) = 0;

  /// Stage configuration (the <param> entries of the XML config).
  virtual const Properties& properties() const = 0;

  /// Deterministic per-stage random stream.
  virtual Rng& rng() = 0;

  /// Engine time (virtual in SimEngine, wall in RtEngine).
  virtual TimePoint now() const = 0;

  virtual StageId stage_id() const = 0;
  virtual const std::string& stage_name() const = 0;
};

/// User-supplied stage logic. Lifecycle: init() once before any data;
/// process() per dequeued packet (never for EOS); finish() once after every
/// upstream reached end-of-stream — emit any final summaries there.
///
/// Failover: when a stage is re-placed after its node crashed, a *fresh*
/// processor instance is built, init() runs, then on_recover() — the hook
/// for re-initializing state the crash lost (re-seeding sketches, asking
/// peers for checkpoints, ...). Unacked input is then replayed at least
/// once from the upstream retention buffers.
class StreamProcessor {
 public:
  virtual ~StreamProcessor() = default;

  virtual void init(ProcessorContext& ctx) = 0;
  virtual void process(const Packet& packet, Emitter& emitter) = 0;
  virtual void finish(Emitter& /*emitter*/) {}
  /// Called (after init()) on the replacement instance of a failed-over
  /// stage, before any replayed packets arrive.
  virtual void on_recover(ProcessorContext& /*ctx*/) {}

  /// Diagnostic name (registry key by convention).
  virtual std::string name() const = 0;
};

using ProcessorFactory = std::function<std::unique_ptr<StreamProcessor>()>;

}  // namespace gates::core
