#include "gates/core/pipeline.hpp"

#include <algorithm>
#include <queue>

namespace gates::core {

Status PipelineSpec::validate() const {
  if (stages.empty()) return invalid_argument("pipeline has no stages");
  if (sources.empty()) return invalid_argument("pipeline has no sources");

  for (const auto& src : sources) {
    if (src.target_stage >= stages.size()) {
      return invalid_argument("source '" + src.name +
                              "' targets nonexistent stage index " +
                              std::to_string(src.target_stage));
    }
    if (src.rate_hz <= 0) {
      return invalid_argument("source '" + src.name + "' has non-positive rate");
    }
  }

  for (const auto& edge : edges) {
    if (edge.from_stage >= stages.size() || edge.to_stage >= stages.size()) {
      return invalid_argument("edge references nonexistent stage");
    }
    if (edge.from_stage == edge.to_stage) {
      return invalid_argument("self-loop on stage '" +
                              stages[edge.from_stage].name + "'");
    }
  }

  for (const auto& stage : stages) {
    if (stage.input_capacity == 0) {
      return invalid_argument("stage '" + stage.name + "' has zero input capacity");
    }
    if (!stage.factory && stage.processor_uri.empty()) {
      return invalid_argument("stage '" + stage.name +
                              "' has neither a factory nor a processor URI");
    }
    const Parallelism& par = stage.parallelism;
    if (par.replicas == 0) {
      return invalid_argument("stage '" + stage.name + "' has zero replicas");
    }
    if (par.mode == ParallelismMode::kSerial && par.replicas > 1) {
      return invalid_argument("stage '" + stage.name +
                              "' is serial but declares " +
                              std::to_string(par.replicas) + " replicas");
    }
    if (par.mode == ParallelismMode::kKeyed && !par.shard_fn) {
      return invalid_argument("stage '" + stage.name +
                              "' is keyed but has no shard function");
    }
    if (par.max_replicas != 0 && par.max_replicas < par.replicas) {
      return invalid_argument("stage '" + stage.name +
                              "' max_replicas below initial replicas");
    }
  }

  // Acyclicity via Kahn's algorithm over stage edges.
  std::vector<std::size_t> indegree(stages.size(), 0);
  for (const auto& edge : edges) ++indegree[edge.to_stage];
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  std::size_t visited = 0;
  while (!ready.empty()) {
    std::size_t s = ready.front();
    ready.pop();
    ++visited;
    for (const auto& edge : edges) {
      if (edge.from_stage == s && --indegree[edge.to_stage] == 0) {
        ready.push(edge.to_stage);
      }
    }
  }
  if (visited != stages.size()) {
    return invalid_argument("pipeline stage graph contains a cycle");
  }

  // Every stage must be reachable from some source.
  std::vector<bool> fed(stages.size(), false);
  std::queue<std::size_t> frontier;
  for (const auto& src : sources) {
    if (!fed[src.target_stage]) {
      fed[src.target_stage] = true;
      frontier.push(src.target_stage);
    }
  }
  while (!frontier.empty()) {
    std::size_t s = frontier.front();
    frontier.pop();
    for (const auto& edge : edges) {
      if (edge.from_stage == s && !fed[edge.to_stage]) {
        fed[edge.to_stage] = true;
        frontier.push(edge.to_stage);
      }
    }
  }
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (!fed[i]) {
      return invalid_argument("stage '" + stages[i].name +
                              "' is not reachable from any source");
    }
  }
  return Status::ok();
}

std::vector<std::size_t> PipelineSpec::topological_order() const {
  std::vector<std::size_t> indegree(stages.size(), 0);
  for (const auto& edge : edges) ++indegree[edge.to_stage];
  std::vector<std::size_t> order;
  std::queue<std::size_t> ready;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (indegree[i] == 0) ready.push(i);
  }
  while (!ready.empty()) {
    std::size_t s = ready.front();
    ready.pop();
    order.push_back(s);
    for (const auto& edge : edges) {
      if (edge.from_stage == s && --indegree[edge.to_stage] == 0) {
        ready.push(edge.to_stage);
      }
    }
  }
  return order;
}

std::vector<EdgeSpec> PipelineSpec::edges_from(std::size_t stage) const {
  std::vector<EdgeSpec> out;
  for (const auto& edge : edges) {
    if (edge.from_stage == stage) out.push_back(edge);
  }
  return out;
}

std::vector<EdgeSpec> PipelineSpec::edges_into(std::size_t stage) const {
  std::vector<EdgeSpec> out;
  for (const auto& edge : edges) {
    if (edge.to_stage == stage) out.push_back(edge);
  }
  return out;
}

std::vector<std::size_t> PipelineSpec::sources_into(std::size_t stage) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < sources.size(); ++i) {
    if (sources[i].target_stage == stage) out.push_back(i);
  }
  return out;
}

std::size_t PipelineSpec::fan_in(std::size_t stage) const {
  std::size_t n = 0;
  for (const auto& src : sources) {
    if (src.target_stage == stage) ++n;
  }
  for (const auto& edge : edges) {
    if (edge.to_stage == stage) ++n;
  }
  return n;
}

}  // namespace gates::core
