// Pipeline topology: sources, stages and edges.
//
// Applications "comprise a set of stages... the first stage is applied near
// sources of individual streams, and the second stage is used for computing
// the final results" (paper §3.1, goal 2). A PipelineSpec is pure
// configuration; engines instantiate it, and the grid Deployer assigns
// stages to nodes.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "gates/common/properties.hpp"
#include "gates/common/rng.hpp"
#include "gates/common/status.hpp"
#include "gates/common/types.hpp"
#include "gates/core/adapt/controller.hpp"
#include "gates/core/adapt/queue_monitor.hpp"
#include "gates/core/cost_model.hpp"
#include "gates/core/packet.hpp"
#include "gates/core/processor.hpp"

namespace gates::core {

/// Builds a data packet for sequence number `seq`. Engines own one Rng per
/// source; generators must be pure in (seq, rng state).
using PacketGenerator = std::function<Packet(std::uint64_t seq, Rng& rng)>;

struct SourceSpec {
  std::string name = "source";
  StreamId stream = 0;
  /// Packets emitted per second. Deterministic inter-arrival of 1/rate by
  /// default; poisson = true draws exponential gaps instead.
  double rate_hz = 100;
  bool poisson = false;
  /// Number of packets before EOS; 0 means unbounded (run_for engines stop
  /// on the time horizon instead).
  std::uint64_t total_packets = 0;
  /// Payload size used when `generator` is not set (zero-filled payload).
  std::size_t packet_bytes = 64;
  /// Optional payload factory.
  PacketGenerator generator;
  /// Provenance of `generator` when it came from a GeneratorRegistry (the
  /// <source type=.../> of a config): lets tooling serialize the source
  /// back to XML. Empty for hand-written closures.
  std::string generator_type;
  Properties generator_properties;
  /// Node hosting the source (instruments are physically placed).
  NodeId location = 0;
  /// Index into PipelineSpec::stages of the stage consuming this source.
  std::size_t target_stage = 0;
};

/// Resource requirements the Deployer matches against grid nodes.
struct ResourceRequirement {
  double min_cpu_factor = 0;
  double min_memory_mb = 0;
};

struct StageSpec {
  std::string name = "stage";
  /// Repository URI of the processor code (resolved by the grid Deployer),
  /// e.g. "builtin://count-samps-summary". Ignored when `factory` is set.
  std::string processor_uri;
  /// Direct factory for programmatic (non-grid) construction.
  ProcessorFactory factory;
  /// Free-form configuration passed to the processor via its context.
  Properties properties;
  /// Service-time model for this stage's processing.
  CostModel cost;
  /// Input buffer capacity in packets (the queue the monitor watches).
  std::size_t input_capacity = 200;
  /// Send-buffer depth, in seconds of backlog on any outbound link: when a
  /// link this stage sends on has more queued than this, the stage stops
  /// consuming input until it drains — the DES rendering of a blocking
  /// socket send. Backpressure then surfaces as the stage's own queue
  /// growing, which is what the Section-4 algorithm reacts to.
  double send_buffer_seconds = 3.0;
  adapt::QueueMonitorConfig monitor;
  adapt::ControllerConfig controller;
  ResourceRequirement requirement;
  /// Replication declaration (serial, stateless pool, or keyed shards).
  Parallelism parallelism;
  /// Named built-in shard key ("sequence" | "stream") for keyed stages that
  /// come from XML configs — kept so the writer can round-trip it.
  /// Programmatic pipelines set parallelism.shard_fn directly and leave
  /// this empty.
  std::string parallelism_key;
  /// Pin to a specific node; kInvalidNode lets the Deployer choose.
  NodeId placement_hint = kInvalidNode;
};

/// Directed stage-to-stage connection: packets the upstream stage emits on
/// `port` flow to the downstream stage's input buffer.
struct EdgeSpec {
  std::size_t from_stage = 0;
  std::size_t to_stage = 0;
  std::size_t port = 0;
};

struct PipelineSpec {
  std::string name = "pipeline";
  std::vector<SourceSpec> sources;
  std::vector<StageSpec> stages;
  std::vector<EdgeSpec> edges;

  /// Checks indices, acyclicity, and that every stage is fed (directly or
  /// transitively) by at least one source.
  Status validate() const;

  /// Stage indices in a topological order (valid only after validate()).
  std::vector<std::size_t> topological_order() const;

  /// Downstream edges of one stage.
  std::vector<EdgeSpec> edges_from(std::size_t stage) const;
  /// Upstream edges feeding one stage (failover rewires these).
  std::vector<EdgeSpec> edges_into(std::size_t stage) const;
  /// Indices into `sources` of the sources feeding one stage.
  std::vector<std::size_t> sources_into(std::size_t stage) const;
  /// Number of inputs (source and stage edges) feeding one stage.
  std::size_t fan_in(std::size_t stage) const;
};

/// Per-stage placement produced by the Deployer (or written by hand in
/// tests): placement[i] is the node hosting stage i.
struct Placement {
  std::vector<NodeId> stage_nodes;
};

/// CPU speed model of the hosting nodes: service times divide by the
/// factor. Missing entries default to 1.0.
struct HostModel {
  std::vector<double> cpu_factor;
  /// Core budget per node: the ceiling on how many stage replicas the
  /// adaptation controller may run on that host. Missing entries default
  /// to `default_cores`.
  std::vector<std::size_t> cores;
  std::size_t default_cores = 4;

  double at(NodeId node) const {
    if (node < cpu_factor.size()) return cpu_factor[node];
    return 1.0;
  }

  std::size_t cores_at(NodeId node) const {
    if (node < cores.size() && cores[node] > 0) return cores[node];
    return default_cores;
  }
};

}  // namespace gates::core
