// Live stage migration (DESIGN.md §10): the engine-agnostic protocol
// driver plus the checkpoint container that travels between engines and —
// in daemon mode — across the wire as a CHECKPOINT frame.
//
// The protocol is four steps, each abortable:
//
//   quiesce   — stop the stage at a RetentionRing ack boundary (everything
//               acked is reflected in operator state, nothing unacked is)
//   capture   — checkpoint() each replica into a StageCheckpoint
//   transfer  — ship the checkpoint to the target placement (a no-op
//               in-process; a CHECKPOINT frame + exact wire ack in daemons)
//   resume    — fresh processor(s) on the target, restore() (or the
//               on_recover() fallback), rewire, replay the unacked tail
//
// An abort at any step runs the engine's abort_fallback hook, which
// degrades to the existing crash-failover path: the stage is crash-stopped
// and the failure detector / retention replay machinery recovers it, so a
// dead target never loses data — it only costs the failover latency.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gates/common/byte_buffer.hpp"
#include "gates/common/types.hpp"

namespace gates::core {

enum class MigrationStep : std::uint8_t {
  kQuiesce = 0,
  kCapture,
  kTransfer,
  kResume,
};
inline constexpr std::size_t kMigrationStepCount =
    static_cast<std::size_t>(MigrationStep::kResume) + 1;

const char* migration_step_name(MigrationStep step);

/// Captured operator state for one stage: one blob per replica (serial
/// stages have exactly one). An empty blob means that replica's processor
/// declined checkpoint() — resume runs its on_recover() fallback instead.
struct StageCheckpoint {
  std::string stage;
  /// Incarnation the capture was taken at; stale-checkpoint guard on resume.
  std::uint64_t incarnation = 0;
  std::vector<ByteBuffer> replicas;

  std::size_t total_bytes() const;
  /// Wire form (CHECKPOINT frame body in daemon mode).
  void encode(ByteBuffer& out) const;
  static bool decode(const std::uint8_t* data, std::size_t size,
                     StageCheckpoint& out);
};

/// One migration attempt and how it ended; RunReport::migrations.
struct MigrationRecord {
  std::string stage;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  TimePoint requested_at = 0;
  TimePoint resumed_at = 0;
  /// Stage-stopped interval: quiesce reached -> resumed (0 unless completed).
  Duration downtime = 0;
  std::uint64_t checkpoint_bytes = 0;
  std::uint64_t packets_replayed = 0;
  /// True when restore() consumed the checkpoint; false = on_recover fallback.
  bool checkpointed = false;
  enum class Outcome {
    /// Stage resumed on the target with state intact.
    kCompleted,
    /// A step failed; stage kept running in place (pre-quiesce abort).
    kAborted,
    /// A step failed after the stage stopped; degraded to crash-failover.
    kFellBack,
  };
  Outcome outcome = Outcome::kAborted;
  /// Step that failed (meaningful unless kCompleted).
  MigrationStep failed_step = MigrationStep::kQuiesce;
  std::string detail;

  static const char* outcome_name(Outcome o) {
    switch (o) {
      case Outcome::kCompleted: return "completed";
      case Outcome::kAborted: return "aborted";
      case Outcome::kFellBack: return "fell-back";
    }
    return "?";
  }
};

/// Drives the four-step protocol through engine-supplied hooks, emitting
/// the kMigrate* trace spans and gates_migration_* metrics uniformly so
/// both engines (and the daemon path) report identically.
class MigrationCoordinator {
 public:
  /// Each hook returns false on failure and fills `error`. The coordinator
  /// never touches engine internals — everything engine-specific lives in
  /// the hooks, everything protocol-shaped lives here.
  struct Hooks {
    /// Stop the stage at an ack boundary. After success the stage is down
    /// and a failed later step MUST go through abort_fallback (kFellBack).
    std::function<bool(std::string& error)> quiesce;
    std::function<bool(StageCheckpoint& out, std::string& error)> capture;
    std::function<bool(const StageCheckpoint& ckpt, std::string& error)>
        transfer;
    /// Rebuild on the target and replay; fills record.packets_replayed /
    /// record.checkpointed / record.to.
    std::function<bool(const StageCheckpoint& ckpt, MigrationRecord& record,
                       std::string& error)>
        resume;
    /// Degrade to crash-failover after the stage already stopped. Must not
    /// fail (it only crash-stops; the failure detector does the rest).
    std::function<void(MigrationStep step, const std::string& error)>
        abort_fallback;
  };

  /// Chaos hook: return true to force-fail the named step (simulating
  /// target death at exactly that point in the protocol).
  using FaultInjector = std::function<bool(MigrationStep)>;

  /// `now` supplies engine time (virtual or wall seconds) for the record
  /// and the downtime figure.
  MigrationRecord run(std::string stage, NodeId from, NodeId to,
                      const std::function<TimePoint()>& now,
                      const Hooks& hooks,
                      const FaultInjector& inject = nullptr);
};

}  // namespace gates::core
