// Pooled packet construction for the data path.
//
// A Packet's only heap-touching member is its ByteBuffer payload, which is
// arena-backed (common/arena.hpp): PacketPool is the packet-shaped facade
// over that slab machinery — acquire() hands out a Packet whose payload
// block comes from the calling thread's recycle cache, and dropping the
// last Packet copy returns the block to the releasing thread's cache (the
// depot bridges producer-allocates/consumer-frees pipelines). stats() is
// the process-wide arena view the engines export as gates_pool_* metrics.
#pragma once

#include <cstddef>

#include "gates/common/arena.hpp"
#include "gates/common/byte_buffer.hpp"
#include "gates/core/packet.hpp"

namespace gates::core {

class PacketPool {
 public:
  /// Process-wide pool (the arena's leaky global).
  static PacketPool& global() {
    static PacketPool pool;
    return pool;
  }

  /// A data packet with a `payload_bytes`-sized uninitialized payload drawn
  /// from the pool. Callers fill the payload and stamp stream/sequence/
  /// created_at themselves.
  Packet acquire(std::size_t payload_bytes) {
    Packet packet;
    if (payload_bytes != 0) {
      packet.payload = ByteBuffer::uninitialized(payload_bytes);
    }
    return packet;
  }

  ArenaStats stats() const { return PayloadArena::global().stats(); }

 private:
  PacketPool() = default;
};

}  // namespace gates::core
