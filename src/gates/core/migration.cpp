#include "gates/core/migration.hpp"

#include <utility>

#include "gates/common/serialize.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::core {

const char* migration_step_name(MigrationStep step) {
  switch (step) {
    case MigrationStep::kQuiesce: return "quiesce";
    case MigrationStep::kCapture: return "capture";
    case MigrationStep::kTransfer: return "transfer";
    case MigrationStep::kResume: return "resume";
  }
  return "?";
}

std::size_t StageCheckpoint::total_bytes() const {
  std::size_t n = 0;
  for (const auto& b : replicas) n += b.size();
  return n;
}

void StageCheckpoint::encode(ByteBuffer& out) const {
  Serializer s(out);
  s.write_string(stage);
  s.write_u64(incarnation);
  s.write_varint(replicas.size());
  for (const auto& b : replicas) {
    s.write_varint(b.size());
    if (b.size() != 0) out.append(b.data(), b.size());
  }
}

bool StageCheckpoint::decode(const std::uint8_t* data, std::size_t size,
                             StageCheckpoint& out) {
  Deserializer d(data, size);
  if (!d.read_string(out.stage).is_ok()) return false;
  if (!d.read_u64(out.incarnation).is_ok()) return false;
  std::uint64_t count = 0;
  if (!d.read_varint(count).is_ok()) return false;
  out.replicas.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t len = 0;
    if (!d.read_varint(len).is_ok() || len > d.remaining()) return false;
    ByteBuffer blob;
    if (len != 0) {
      // Blobs are the trailing raw bytes after each varint length; re-derive
      // the cursor from remaining() since Deserializer has no seek.
      blob.append(data + (size - d.remaining()), len);
      std::uint8_t scratch;
      for (std::uint64_t k = 0; k < len; ++k) {
        if (!d.read_u8(scratch).is_ok()) return false;
      }
    }
    out.replicas.push_back(std::move(blob));
  }
  return true;
}

MigrationRecord MigrationCoordinator::run(std::string stage, NodeId from,
                                          NodeId to,
                                          const std::function<TimePoint()>& now,
                                          const Hooks& hooks,
                                          const FaultInjector& inject) {
  auto& reg = obs::MetricsRegistry::global();
  const bool metrics = reg.enabled();

  MigrationRecord rec;
  rec.stage = std::move(stage);
  rec.from = from;
  rec.to = to;
  rec.requested_at = now();
  GATES_TRACE(.time = rec.requested_at, .kind = obs::TraceKind::kMigrateStart,
              .component = rec.stage,
              .detail = "node " + std::to_string(from) + " -> node " +
                        std::to_string(to),
              .value_old = static_cast<double>(from),
              .value_new = static_cast<double>(to));
  if (metrics) reg.counter("gates_migration_started_total").add();

  bool stopped = false;
  std::string error;
  auto fail = [&](MigrationStep step) {
    rec.failed_step = step;
    rec.detail = error;
    if (stopped) {
      rec.outcome = MigrationRecord::Outcome::kFellBack;
      hooks.abort_fallback(step, error);
    } else {
      rec.outcome = MigrationRecord::Outcome::kAborted;
    }
    GATES_TRACE(.time = now(), .kind = obs::TraceKind::kMigrateAbort,
                .component = rec.stage,
                .detail = std::string(migration_step_name(step)) + ": " + error);
    if (metrics) reg.counter("gates_migration_aborted_total").add();
    return rec;
  };
  auto injected = [&](MigrationStep step) {
    if (inject == nullptr || !inject(step)) return false;
    error = "fault injected";
    return true;
  };

  if (injected(MigrationStep::kQuiesce)) return fail(MigrationStep::kQuiesce);
  if (!hooks.quiesce(error)) return fail(MigrationStep::kQuiesce);
  stopped = true;
  const TimePoint stopped_at = now();

  StageCheckpoint ckpt;
  ckpt.stage = rec.stage;
  if (injected(MigrationStep::kCapture)) return fail(MigrationStep::kCapture);
  if (!hooks.capture(ckpt, error)) return fail(MigrationStep::kCapture);
  rec.checkpoint_bytes = ckpt.total_bytes();

  if (injected(MigrationStep::kTransfer)) return fail(MigrationStep::kTransfer);
  if (hooks.transfer && !hooks.transfer(ckpt, error)) {
    return fail(MigrationStep::kTransfer);
  }
  GATES_TRACE(.time = now(), .duration = now() - stopped_at,
              .kind = obs::TraceKind::kMigrateTransfer, .component = rec.stage,
              .value_new = static_cast<double>(rec.checkpoint_bytes));

  if (injected(MigrationStep::kResume)) return fail(MigrationStep::kResume);
  if (!hooks.resume(ckpt, rec, error)) return fail(MigrationStep::kResume);

  rec.resumed_at = now();
  rec.downtime = rec.resumed_at - stopped_at;
  rec.outcome = MigrationRecord::Outcome::kCompleted;
  GATES_TRACE(.time = rec.resumed_at, .duration = rec.downtime,
              .kind = obs::TraceKind::kMigrateResume, .component = rec.stage,
              .value_old = static_cast<double>(rec.packets_replayed),
              .value_new = static_cast<double>(rec.to));
  if (metrics) {
    reg.counter("gates_migration_completed_total").add();
    reg.histogram("gates_migration_downtime_micros", 0, 1e6, 40)
        .observe(rec.downtime * 1e6);
  }
  return rec;
}

}  // namespace gates::core
