// Real-time engine: runs a pipeline on actual threads with wall-clock
// bandwidth throttling — the closest in-process analogue of the paper's
// deployment (one JVM per stage, TCP links with introduced delay).
//
// Topology maps to one thread per source and per stage; stage input buffers
// are bounded queues; inter-node flows acquire wall-clock-paced tokens from
// a shared per-(src,dst) throttle before a blocking push, so both bandwidth
// limits and full buffers backpressure the sending thread exactly like a
// blocking socket send. The control thread runs the identical QueueMonitor
// / ParameterController code as the DES engine, on wall time.
//
// Use the SimEngine for experiments (deterministic, fast); use this engine
// to demonstrate the middleware on live threads and in soak tests.
#pragma once

#include <atomic>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gates/common/clock.hpp"
#include "gates/common/idle_strategy.hpp"
#include "gates/common/status.hpp"
#include "gates/core/failover.hpp"
#include "gates/core/pipeline.hpp"
#include "gates/core/report.hpp"
#include "gates/net/link_shaper.hpp"
#include "gates/net/message.hpp"
#include "gates/net/remote_link.hpp"
#include "gates/net/topology.hpp"

namespace gates::core {

class RtEngine {
 public:
  struct Config {
    /// Control loop period in wall seconds (experiments are short, so the
    /// default is much tighter than the DES default).
    Duration control_period = 0.05;
    net::WireFormat wire;
    std::uint64_t seed = 1;
    bool adaptation_enabled = true;
    /// Watchdog: a run not finished after this many wall seconds is force-
    /// stopped and reported as incomplete.
    Duration max_wall_time = 120;
    /// Data-plane batching (see DESIGN.md "Zero-copy, batched data path").
    struct Batching {
      /// Max packets moved per queue/throttle/retention transaction.
      /// 1 restores the pre-batching per-packet behavior.
      std::size_t max_batch = 32;
      /// Lock-free SPSC-ring fast path for stage inboxes with exactly one
      /// data-plane producer (sources and fan-in stages keep the mutex
      /// queue; control-plane injections ride a side channel either way).
      bool spsc = true;
      /// Sources flush their staged batch whenever the accumulated
      /// inter-arrival pacing debt reaches this many seconds, so slow
      /// sources (gap >= this) still emit packet-by-packet and pacing is
      /// distorted by at most one batch flush.
      double max_source_delay = 1e-3;
    };
    Batching batching;
    /// Fault tolerance. Disabled (default): a killed stage's thread exits
    /// silently and the control loop raises EOS on its behalf. Enabled: the
    /// worker publishes heartbeats, the control loop declares the stage dead
    /// after `suspicion_beats` missed beats, restarts it in place with a
    /// fresh processor, and replays the unacknowledged tail of every
    /// inbound flow from bounded retention.
    FailoverConfig failover;
    /// Thread-to-core placement. When `pin` is set, each pipeline node's
    /// worker threads (sources, serial stages, a pool's dispatcher and
    /// replicas) round-robin onto that node's core list, so a replica pool
    /// lands on one NUMA node and keeps its rings in a shared LLC.
    struct Placement {
      /// Master switch (gates_run --pin). Off by default: pinning is a
      /// deliberate act on a dedicated box, not a universal win.
      bool pin = false;
      /// Per pipeline-node core lists (index = node id, from the grid XML
      /// `cores` attribute). Empty with pin on: the process's allowed cores
      /// are partitioned contiguously across nodes. Pinning failures (bad
      /// id, restrictive cpuset, non-Linux) leave threads unpinned.
      std::vector<std::vector<int>> node_cores;
    };
    Placement thread_placement;
    /// Idle behavior for hot-path waits: stage inbox full/empty and merge
    /// window backpressure (spin -> yield -> park; see idle_strategy.hpp).
    /// Defaults to the host-adapted balanced mode (no pause-spinning on a
    /// single-core box, where spinning starves the peer).
    IdleConfig idle = IdleConfig::for_host();
    /// Cross-process transport endpoints (gates_node deployments). An
    /// egress link turns the indexed stage into a remote outlet: drained
    /// input is framed and sent instead of processed, with a local
    /// RetentionRing released by exact acks from the wire so replay works
    /// across a peer restart. An ingress link turns the indexed source
    /// into a remote inlet: its run loop decodes frames from the link and
    /// feeds the local target stage, acking upstream as items clear local
    /// processing. Both maps are empty for single-process runs.
    struct Remote {
      std::map<std::size_t, std::shared_ptr<net::RemoteLink>> egress_links;
      std::map<std::size_t, std::shared_ptr<net::RemoteLink>> ingress_links;
      /// Wire-side retention per egress link (unacked packets replayable
      /// after a peer restart).
      std::size_t retention_packets = 8192;
      /// How long an egress waits after sending EOS for the peer to ack
      /// everything before giving up (a crashed, never-revived peer).
      Duration eos_barrier_timeout = 10.0;
    };
    Remote remote;
    /// Live migration (DESIGN.md §10).
    struct Migration {
      /// How long the coordinator waits for the worker to reach its quiesce
      /// (ack) boundary before aborting the migration. The worker checks
      /// between batches, so the clean-path bound is ~heartbeat_period plus
      /// one batch's service time; a stuck worker aborts here instead.
      Duration quiesce_timeout = 5.0;
    };
    Migration migration;
  };

  RtEngine(PipelineSpec spec, Placement placement, HostModel hosts,
           net::Topology topology, Config config);
  ~RtEngine();
  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// Runs to completion (all sources bounded) or the watchdog.
  Status run();
  /// Runs unbounded sources for `seconds` of wall time, then winds down.
  Status run_for(Duration seconds);

  const RunReport& report() const { return report_; }
  StreamProcessor& processor(std::size_t stage_index);

  /// Live per-stage health as JSON: heartbeat/lease state ("alive",
  /// "suspect", "dead", "finished"), queue length, and active replicas.
  /// Thread-safe against a running engine (reads only atomics and
  /// internally locked queues) — this backs the introspection endpoint's
  /// /healthz route.
  std::string health_json();

  // -- replica pools (StageSpec::parallelism != kSerial) -----------------------
  /// Replicas currently active on a stage (1 for serial stages).
  std::size_t replica_count(std::size_t stage_index) const;
  /// One replica's processor instance. For pooled stages, processor(i)
  /// returns replica 0.
  StreamProcessor& replica_processor(std::size_t stage_index,
                                     std::size_t replica);
  /// Whether the stage's inbox took the lock-free SPSC fast path (test
  /// hook: a stage fed by a replicated upstream must NOT, since every
  /// replica is a distinct producer).
  bool stage_inbox_spsc(std::size_t stage_index) const;

  // -- link impairment ---------------------------------------------------------
  /// Replaces the LinkSpec (bandwidth, latency, impairments) of the flow
  /// from -> to while the engine runs. Thread-safe: chaos drivers call this
  /// from a second thread while run() blocks. Bandwidth always applies (the
  /// throttle gate re-rates); latency/impairments need the flow's shaper,
  /// which exists when the configured topology spec is already impaired or
  /// the flow was registered with prepare_link_change() before run().
  void apply_link_change(NodeId from, NodeId to, const net::LinkSpec& spec);
  /// Registers a flow for mid-run impairment: its shaper is built at setup
  /// even when the configured spec is clean. Must precede run(). Without
  /// this, a clean flow keeps the zero-overhead direct path and a later
  /// apply_link_change can only change its bandwidth.
  void prepare_link_change(NodeId from, NodeId to);

  // -- crash injection ---------------------------------------------------------
  /// At `t` wall seconds into the run, crash-stops every stage hosted on
  /// `node` (threads exit; queued input is lost). Must precede run().
  void schedule_node_failure(NodeId node, TimePoint t);
  /// Immediately crash-stops one stage. Thread-safe: tests call this from a
  /// second thread while run() blocks, to kill a stage mid-run.
  void kill_stage(std::size_t stage_index);

  /// Optional hook consulted when a crashed stage restarts: returns the
  /// factory building its replacement processor. Without one the stage's
  /// own spec factory is reused — fine for programmatic pipelines, but
  /// grid-deployed factories are single-shot service instances; wire a
  /// provider that restarts the instance (GatesServiceInstance::restart)
  /// there. Must precede run().
  using RecoveryFactoryProvider =
      std::function<ProcessorFactory(std::size_t stage_index)>;
  void set_recovery_factory_provider(RecoveryFactoryProvider provider);

  // -- live migration (DESIGN.md §10) -----------------------------------------
  /// Thread-safe: requests a live migration of the stage to `target`
  /// (kInvalidNode = re-matchmake via the migration provider / least-loaded
  /// policy). The control loop executes it on its next tick: quiesce the
  /// worker at a batch/ack boundary, checkpoint every replica, resume on
  /// the target placement with the inbox intact (the unacked tail never
  /// leaves the process). The MigrationRecord lands in report().migrations.
  /// Requires failover.enabled; aborts degrade to crash-failover.
  void request_migration(std::size_t stage_index, NodeId target = kInvalidNode);
  /// At `t` wall seconds into the run, migrates the stage (see above).
  /// Must precede run().
  void schedule_migration(std::size_t stage_index, TimePoint t,
                          NodeId target = kInvalidNode);
  /// Matchmaking for migration targets; without one, explicit targets are
  /// honored and kInvalidNode falls back to a least-loaded policy.
  void set_migration_provider(MigrationProvider provider);
  /// Chaos hook: force-fail the named protocol step of every migration.
  void set_migration_fault_injector(MigrationCoordinator::FaultInjector inject);
  /// Daemon mode: ships the captured checkpoint out of process (CHECKPOINT
  /// wire frame + exact ack) during the transfer step. Failure aborts the
  /// migration into crash-failover. Must precede run().
  using MigrationTransferHook =
      std::function<bool(const StageCheckpoint&, std::string& error)>;
  void set_migration_transfer(MigrationTransferHook hook);

 private:
  class StageWorker;
  class SourceWorker;
  struct ThrottleGate;
  struct ReplayChannel;
  /// One in-flight queue entry (packet + replay bookkeeping); shared by the
  /// stage and source data paths.
  struct FlowItem;
  /// Pooled parking lot for batches in transit through a LinkShaper: slots
  /// are recycled, so shaped sends stop allocating a shared_ptr'd vector
  /// per batch (see net::TransitSink).
  class TransitPool;

  /// Workers signal this after setting their finished flag so the control
  /// loop wakes immediately instead of discovering completion up to one
  /// control period late (a visible bias on short benchmark runs).
  void notify_stage_finished();

  Status setup();
  Status execute(Duration source_horizon);
  void control_loop();
  std::shared_ptr<ThrottleGate> gate_for_flow(NodeId from, NodeId to);
  /// Canonical gate/shaper map key for a flow (loopback / shared-ingress /
  /// pair) plus the flow's configured topology spec.
  std::pair<std::pair<NodeId, NodeId>, net::LinkSpec> flow_key(
      NodeId from, NodeId to) const;
  /// The flow's impairment shaper, created lazily at setup; nullptr for
  /// clean flows that were not registered via prepare_link_change() — those
  /// keep the direct gate -> inbox path with zero added cost.
  std::shared_ptr<net::LinkShaper> shaper_for_flow(NodeId from, NodeId to);
  /// Control-loop pass over injected/killed stages: detects dead workers by
  /// heartbeat staleness, then restarts (failover on) or raises EOS on
  /// their behalf (failover off).
  void handle_failures(TimePoint run_started);
  void restart_stage(std::size_t stage_index, FailureReport& record);
  /// Control-loop pass over scheduled/requested migrations.
  void process_migrations(TimePoint run_started);
  /// Runs one migration through the MigrationCoordinator (control thread).
  void migrate_stage_now(std::size_t stage_index, NodeId target,
                         TimePoint run_started);
  /// Fallback matchmaking when no migration provider is installed: the same
  /// least-loaded-by-live-stages policy the SimEngine uses.
  std::optional<ReplacementDecision> default_migration_target(
      std::size_t stage_index) const;
  /// Publishes every shaper's accumulated planned hold time into its link
  /// PhaseClock (overwrite — the shaper owns the running total).
  void store_link_phases();

  PipelineSpec spec_;
  Placement placement_;
  HostModel hosts_;
  net::Topology topology_;
  Config config_;

  Rng root_rng_;
  WallClock clock_;
  std::vector<std::unique_ptr<StageWorker>> stages_;
  std::vector<std::unique_ptr<SourceWorker>> sources_;
  std::map<std::pair<NodeId, NodeId>, std::shared_ptr<ThrottleGate>> gates_;
  /// Guards gates_/shapers_: read-mostly after setup, but a live migration
  /// (control thread) may lazily create the re-homed stage's flows while a
  /// chaos thread applies a link change.
  mutable std::mutex flow_mu_;
  /// Declared after stages_ so shaper threads are torn down (deliveries
  /// drained) while the stage workers they push into are still alive.
  std::map<std::pair<NodeId, NodeId>, std::shared_ptr<net::LinkShaper>>
      shapers_;
  std::set<std::pair<NodeId, NodeId>> prepared_flows_;
  std::uint64_t impair_stream_ = 0;  // Rng sub-stream per shaper
  struct NodeFailure {
    NodeId node;
    TimePoint time;
    bool fired = false;
  };
  std::vector<NodeFailure> node_failures_;
  std::vector<FailureReport> failures_;  // control thread only
  RecoveryFactoryProvider recovery_factory_provider_;
  struct TimedMigration {
    std::size_t stage;
    TimePoint time;
    NodeId target;
    bool fired = false;
  };
  std::vector<TimedMigration> timed_migrations_;  // control thread after setup
  std::mutex migration_mu_;  // guards pending_migrations_ (any thread -> control)
  std::vector<std::pair<std::size_t, NodeId>> pending_migrations_;
  std::vector<MigrationRecord> migration_records_;  // control thread only
  MigrationProvider migration_provider_;
  MigrationCoordinator::FaultInjector migration_fault_injector_;
  MigrationTransferHook migration_transfer_;
  /// Atomic so health_json() (introspection thread) can check it against a
  /// concurrently running setup().
  std::atomic<bool> setup_done_{false};
  /// Completion wakeup (see notify_stage_finished()).
  std::mutex done_mu_;
  std::condition_variable done_cv_;
  RunReport report_;
};

}  // namespace gates::core
