// Real-time engine: runs a pipeline on actual threads with wall-clock
// bandwidth throttling — the closest in-process analogue of the paper's
// deployment (one JVM per stage, TCP links with introduced delay).
//
// Topology maps to one thread per source and per stage; stage input buffers
// are bounded queues; inter-node flows acquire wall-clock-paced tokens from
// a shared per-(src,dst) throttle before a blocking push, so both bandwidth
// limits and full buffers backpressure the sending thread exactly like a
// blocking socket send. The control thread runs the identical QueueMonitor
// / ParameterController code as the DES engine, on wall time.
//
// Use the SimEngine for experiments (deterministic, fast); use this engine
// to demonstrate the middleware on live threads and in soak tests.
#pragma once

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "gates/common/clock.hpp"
#include "gates/common/status.hpp"
#include "gates/core/pipeline.hpp"
#include "gates/core/report.hpp"
#include "gates/net/message.hpp"
#include "gates/net/topology.hpp"

namespace gates::core {

class RtEngine {
 public:
  struct Config {
    /// Control loop period in wall seconds (experiments are short, so the
    /// default is much tighter than the DES default).
    Duration control_period = 0.05;
    net::WireFormat wire;
    std::uint64_t seed = 1;
    bool adaptation_enabled = true;
    /// Watchdog: a run not finished after this many wall seconds is force-
    /// stopped and reported as incomplete.
    Duration max_wall_time = 120;
  };

  RtEngine(PipelineSpec spec, Placement placement, HostModel hosts,
           net::Topology topology, Config config);
  ~RtEngine();
  RtEngine(const RtEngine&) = delete;
  RtEngine& operator=(const RtEngine&) = delete;

  /// Runs to completion (all sources bounded) or the watchdog.
  Status run();
  /// Runs unbounded sources for `seconds` of wall time, then winds down.
  Status run_for(Duration seconds);

  const RunReport& report() const { return report_; }
  StreamProcessor& processor(std::size_t stage_index);

 private:
  class StageWorker;
  class SourceWorker;
  struct ThrottleGate;

  Status setup();
  Status execute(Duration source_horizon);
  void control_loop();
  std::shared_ptr<ThrottleGate> gate_for_flow(NodeId from, NodeId to);

  PipelineSpec spec_;
  Placement placement_;
  HostModel hosts_;
  net::Topology topology_;
  Config config_;

  Rng root_rng_;
  WallClock clock_;
  std::vector<std::unique_ptr<StageWorker>> stages_;
  std::vector<std::unique_ptr<SourceWorker>> sources_;
  std::map<std::pair<NodeId, NodeId>, std::shared_ptr<ThrottleGate>> gates_;
  bool setup_done_ = false;
  RunReport report_;
};

}  // namespace gates::core
