#include "gates/core/parameter.hpp"

#include <algorithm>
#include <cmath>

#include "gates/common/check.hpp"

namespace gates::core {

AdjustmentParameter::AdjustmentParameter(Spec spec) : spec_(std::move(spec)), value_(0) {
  GATES_CHECK_MSG(spec_.max_value >= spec_.min_value,
                  "parameter '" + spec_.name + "' has max < min");
  GATES_CHECK_MSG(spec_.increment >= 0,
                  "parameter '" + spec_.name + "' has negative increment");
  set_value(spec_.initial);
}

double AdjustmentParameter::set_value(double v) {
  v = std::clamp(v, spec_.min_value, spec_.max_value);
  if (spec_.increment > 0) {
    double steps = std::round((v - spec_.min_value) / spec_.increment);
    v = std::clamp(spec_.min_value + steps * spec_.increment, spec_.min_value,
                   spec_.max_value);
  }
  value_.store(v, std::memory_order_relaxed);
  return v;
}

}  // namespace gates::core
