// Discrete-event engine: runs a deployed pipeline on simulated hosts and
// links, with the Section-4 self-adaptation loop driving adjustment
// parameters every control period.
//
// Determinism: a run is a pure function of (PipelineSpec, Placement,
// HostModel, Topology, Config) — all stochastic choices flow from
// Config::seed through per-component forked Rngs, and the DES kernel breaks
// event-time ties by scheduling order. The failover path preserves this:
// detection latency is computed from the heartbeat schedule, retries follow
// the RetryPolicy, and replacement matchmaking must be deterministic.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "gates/common/status.hpp"
#include "gates/core/failover.hpp"
#include "gates/core/migration.hpp"
#include "gates/core/pipeline.hpp"
#include "gates/core/report.hpp"
#include "gates/net/link.hpp"
#include "gates/net/message.hpp"
#include "gates/net/topology.hpp"
#include "gates/sim/simulation.hpp"

namespace gates::core {

class SimEngine {
 public:
  struct Config {
    /// Period of the adaptation control loop (queue observation, exception
    /// reporting, parameter adjustment).
    Duration control_period = 1.0;
    /// Wire-overhead model applied to every emitted packet.
    net::WireFormat wire;
    /// Safety horizon for run(): a run that has not completed by this
    /// virtual time reports completed = false.
    Duration max_time = 1e7;
    std::uint64_t seed = 1;
    /// Disables parameter adjustment (monitors still run) — the fixed
    /// versions of the paper's experiments.
    bool adaptation_enabled = true;
    /// Monitor template applied to every inter-node link's outbound queue.
    adapt::QueueMonitorConfig link_monitor = default_link_monitor();
    /// Fault tolerance. Disabled by default: a crashed stage blackholes its
    /// input and EOS is raised on its behalf (the legacy degradation).
    FailoverConfig failover;
  };

  static adapt::QueueMonitorConfig default_link_monitor();

  SimEngine(PipelineSpec spec, Placement placement, HostModel hosts,
            net::Topology topology, Config config);
  ~SimEngine();
  SimEngine(const SimEngine&) = delete;
  SimEngine& operator=(const SimEngine&) = delete;

  /// Runs until every stage has seen EOS on all inputs (bounded sources) or
  /// the safety horizon. Returns an error status for invalid pipelines.
  Status run();

  /// Runs until the given virtual time; used with unbounded sources
  /// (trajectory experiments, Figs. 8-9).
  Status run_for(Duration horizon);

  const RunReport& report() const { return report_; }

  /// The live processor of a stage, for reading application results after a
  /// run (e.g. the merged top-k at the sink).
  StreamProcessor& processor(std::size_t stage_index);

  /// Current suggested value of a named parameter on a stage (tests).
  double parameter_value(std::size_t stage_index, const std::string& name) const;

  /// Replicas currently active on a stage (1 for serial stages). The DES
  /// models a pool as one server with a multiplied service rate.
  std::size_t replica_count(std::size_t stage_index) const;

  // -- dynamic resource variation (call before run()/run_for()) -------------
  /// At virtual time `t`, changes the CPU factor of every stage hosted on
  /// `node` (subsequent services use the new speed).
  void schedule_cpu_change(NodeId node, TimePoint t, double factor);
  /// At virtual time `t`, changes the bandwidth of the flow from -> to:
  /// the shared ingress of `to` when one exists, else the dedicated pair
  /// link. Subsequent transmissions use the new rate.
  void schedule_bandwidth_change(NodeId from, NodeId to, TimePoint t,
                                 Bandwidth bandwidth);
  /// At virtual time `t`, replaces the full LinkSpec (bandwidth, latency,
  /// impairments) of the flow from -> to — a chaos transition. Emits a
  /// kLinkDegrade/kLinkRestore/kPartition trace event classified against
  /// the flow's configured topology spec.
  void schedule_link_change(NodeId from, NodeId to, TimePoint t,
                            net::LinkSpec spec);
  /// At virtual time `t`, crashes every stage hosted on `node` (crash-stop:
  /// queued and in-flight packets toward the node are lost). With failover
  /// disabled, EOS is raised on the dead stages' behalf so the rest of the
  /// pipeline still completes with whatever data reached it. With failover
  /// enabled, the failure detector declares the node down after K missed
  /// heartbeats, each stage is re-placed on a surviving node and the
  /// bounded retention buffers of its inbound flows are replayed.
  void schedule_node_failure(NodeId node, TimePoint t);
  /// At virtual time `t`, returns a previously failed node to the candidate
  /// pool — subsequent re-placement attempts may pick it again. Stages lost
  /// with the node do not restart by themselves; the failover path revives
  /// them (possibly onto this node).
  void schedule_node_recovery(NodeId node, TimePoint t);

  /// Installs the matchmaking callback the failover path consults (e.g.
  /// grid::make_replacement_provider wrapping Deployer::replace_stage).
  /// Without one, a built-in least-loaded policy over the nodes already
  /// known to the engine is used. Must precede run().
  void set_replacement_provider(ReplacementProvider provider);

  // -- live migration (DESIGN.md §10) ---------------------------------------
  /// At virtual time `t`, live-migrates the stage: quiesce at the event/ack
  /// boundary, checkpoint the processor, resume on `target` (kInvalidNode =
  /// re-matchmake via the migration provider or the least-loaded policy)
  /// and replay the unacked tail. Requires failover.enabled — without
  /// retention there is nothing to cover the gap — else the request aborts
  /// in place and is recorded as such. Call before run()/run_for().
  void schedule_migration(std::size_t stage_index, TimePoint t,
                          NodeId target = kInvalidNode);
  /// Matchmaking for migration targets (e.g. grid::make_migration_provider
  /// wrapping Deployer::migrate_stage + ResourceDirectory::find_better_than).
  void set_migration_provider(MigrationProvider provider);
  /// Chaos hook: force-fail the named protocol step of every migration
  /// (simulating target death mid-protocol); the engine must degrade to
  /// crash-failover without losing data.
  void set_migration_fault_injector(MigrationCoordinator::FaultInjector inject);

  sim::Simulation& simulation() { return sim_; }

 private:
  class StageRuntime;
  class SourceRuntime;
  struct MonitoredLink;
  struct ReplayChannel;
  struct Delivery;

  Status setup();
  net::SimLink* link_for_flow(NodeId from, NodeId to);
  /// Cached per-link attribution clock (the DES is single-threaded, so a
  /// plain map lookup per arrival is fine and avoids the Profiler mutex).
  obs::PhaseClock* link_clock_for(const net::SimLink* link);
  void control_tick();
  void on_stage_finished();
  void finalize_report(bool completed);

  // -- failover ---------------------------------------------------------------
  bool node_down(NodeId node) const;
  /// Worst-case one-way delay a heartbeat from `node` can see, across the
  /// configured topology and every scheduled link change touching the node.
  Duration heartbeat_delay(NodeId node) const;
  void on_node_failure(NodeId node, TimePoint t);
  void on_failure_detected(std::size_t stage_index, std::size_t report_index);
  void try_failover(std::size_t stage_index, std::size_t report_index,
                    std::size_t attempt);
  std::optional<ReplacementDecision> default_replacement(
      std::size_t stage_index) const;
  void revive_stage(std::size_t stage_index, const ReplacementDecision& decision,
                    FailureReport& record);
  /// Executes one scheduled migration through the MigrationCoordinator.
  void migrate_stage(std::size_t stage_index, NodeId target);
  /// Routes `sender`'s traffic for `dest` over the link between their
  /// current nodes, registering monitors and drain listeners as needed.
  net::SimLink* attach_flow(StageRuntime* sender, StageRuntime* dest);

  PipelineSpec spec_;
  Placement placement_;
  HostModel hosts_;
  net::Topology topology_;
  Config config_;

  sim::Simulation sim_;
  Rng root_rng_;
  std::vector<std::unique_ptr<StageRuntime>> stages_;
  std::vector<std::unique_ptr<SourceRuntime>> sources_;
  /// Dedicated links per (src,dst) node pair, shared-ingress links per dst
  /// node, loopbacks per node.
  std::map<std::pair<NodeId, NodeId>, std::unique_ptr<net::SimLink>> pair_links_;
  std::map<NodeId, std::unique_ptr<net::SimLink>> ingress_links_;
  std::map<NodeId, std::unique_ptr<net::SimLink>> loopback_links_;
  std::vector<std::unique_ptr<MonitoredLink>> monitored_links_;
  std::map<const net::SimLink*, obs::PhaseClock*> link_clocks_;
  std::unique_ptr<sim::PeriodicTask> control_task_;

  struct CpuChange {
    NodeId node;
    TimePoint time;
    double factor;
  };
  struct BandwidthChange {
    NodeId from;
    NodeId to;
    TimePoint time;
    Bandwidth bandwidth;
  };
  struct LinkChange {
    NodeId from;
    NodeId to;
    TimePoint time;
    net::LinkSpec spec;
  };
  struct NodeFailure {
    NodeId node;
    TimePoint time;
  };
  struct NodeRecovery {
    NodeId node;
    TimePoint time;
  };
  struct MigrationRequest {
    std::size_t stage;
    TimePoint time;
    NodeId target;
  };
  std::vector<CpuChange> cpu_changes_;
  std::vector<BandwidthChange> bandwidth_changes_;
  std::vector<LinkChange> link_changes_;
  std::vector<NodeFailure> node_failures_;
  std::vector<NodeRecovery> node_recoveries_;
  /// Next Rng sub-stream for a link impairment model (streams 2000+; link
  /// creation order is deterministic, so forks are too).
  std::uint64_t impair_stream_ = 0;
  /// Rng stream for jittered failover retry backoff.
  Rng retry_rng_;

  ReplacementProvider replacement_provider_;
  std::vector<NodeId> down_nodes_;  // sorted
  std::vector<FailureReport> failures_;

  std::vector<MigrationRequest> migration_requests_;
  std::vector<MigrationRecord> migration_records_;
  MigrationProvider migration_provider_;
  MigrationCoordinator::FaultInjector migration_fault_injector_;

  std::size_t finished_stages_ = 0;
  bool completed_ = false;
  TimePoint completion_time_ = 0;
  bool setup_done_ = false;
  RunReport report_;
};

}  // namespace gates::core
