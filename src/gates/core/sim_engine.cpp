#include "gates/core/sim_engine.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "gates/common/check.hpp"
#include "gates/common/log.hpp"
#include "gates/core/checkpoint.hpp"
#include "gates/core/retention_ring.hpp"
#include "gates/obs/attribution.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/profiler.hpp"
#include "gates/obs/trace.hpp"
#include "gates/obs/trace_context.hpp"

namespace gates::core {

// ---------------------------------------------------------------------------
// Delivery: what rides in a SimMessage payload. The replay origin lets the
// receiving stage acknowledge the packet after processing it, releasing it
// from the sender's bounded retention buffer. Null origin = retention off.
// ---------------------------------------------------------------------------
struct SimEngine::Delivery {
  Packet packet;
  ReplayChannel* origin = nullptr;
  std::uint64_t seq = 0;
  /// Destination incarnation at send time. A revived stage rejects messages
  /// stamped for a previous incarnation: they were in flight across its
  /// outage, their retained copies have already been replayed, and accepting
  /// both would deliver duplicates.
  std::uint64_t dest_incarnation = 0;
  /// Observability: virtual send time and the link the message rode, so the
  /// receiver can charge now - sent_at to the link's shaper-delay phase and
  /// render a causal link hop for sampled packets. Arrival time (set by
  /// try_deliver) is the base for inbox-wait attribution.
  TimePoint sent_at = 0;
  const net::SimLink* via = nullptr;
  TimePoint arrived_at = 0;
};

// ---------------------------------------------------------------------------
// ReplayChannel: sender-side bounded retention for one flow (one route, or
// one source's feed). Holds the last N unacknowledged packets; EOS markers
// are pinned regardless of capacity — losing a termination marker would
// wedge the recovered stage forever.
// ---------------------------------------------------------------------------
struct SimEngine::ReplayChannel {
  explicit ReplayChannel(std::size_t cap) : ring(cap) {}

  RetentionRing ring;  // O(1)-amortized retain/ack/evict (was a deque scan)
  std::uint64_t evicted_reported = 0;  // already attributed to a FailureReport

  std::uint64_t retain(const Packet& packet) { return ring.retain(packet); }

  /// Exact ack. Impaired links reorder deliveries, so processing seq does
  /// NOT imply earlier seqs arrived — a cumulative ack here would release a
  /// reorder-held packet from retention and lose it if the receiver crashed
  /// before it landed. On FIFO flows exact acks advance the window
  /// identically, so the clean path is unchanged.
  void ack(std::uint64_t seq) { ring.ack_exact(seq); }
};

// ---------------------------------------------------------------------------
// MonitoredLink: a non-loopback link plus its queue monitor and the adaptive
// stages that send on it (receivers of its load exceptions).
// ---------------------------------------------------------------------------
struct SimEngine::MonitoredLink {
  net::SimLink* link = nullptr;
  adapt::QueueMonitor monitor;
  std::vector<StageRuntime*> senders;
  RunningStats queue_samples;
  std::uint64_t overload_sent = 0;
  std::uint64_t underload_sent = 0;

  explicit MonitoredLink(net::SimLink* l, adapt::QueueMonitorConfig cfg)
      : link(l), monitor(cfg) {}

  /// Control-tick sampling into the registry; handles resolved on first use.
  void sample_metrics() {
    if (backlog_gauge_ == nullptr) {
      auto& reg = obs::MetricsRegistry::global();
      const obs::Labels labels = {{"link", link->config().name}};
      backlog_gauge_ = &reg.gauge("gates_link_backlog_seconds", labels);
      delivered_ = &reg.counter("gates_link_messages_delivered", labels);
      bytes_ = &reg.counter("gates_link_bytes_delivered", labels);
      overload_ = &reg.counter("gates_link_overload_exceptions", labels);
      underload_ = &reg.counter("gates_link_underload_exceptions", labels);
    }
    backlog_gauge_->set(link->backlog_seconds());
    delivered_->set(link->stats().messages_delivered);
    bytes_->set(link->stats().bytes_delivered);
    overload_->set(overload_sent);
    underload_->set(underload_sent);
  }

 private:
  obs::Gauge* backlog_gauge_ = nullptr;
  obs::Counter* delivered_ = nullptr;
  obs::Counter* bytes_ = nullptr;
  obs::Counter* overload_ = nullptr;
  obs::Counter* underload_ = nullptr;

 public:
  void add_sender(StageRuntime* s) {
    if (s == nullptr) return;
    if (std::find(senders.begin(), senders.end(), s) == senders.end()) {
      senders.push_back(s);
    }
  }
};

// ---------------------------------------------------------------------------
// StageRuntime: one deployed stage. Implements the stage's network sink, the
// processor's emitter and its middleware context.
// ---------------------------------------------------------------------------
class SimEngine::StageRuntime final : public net::MessageSink,
                                      public Emitter,
                                      public ProcessorContext {
 public:
  struct Route {
    net::SimLink* link = nullptr;
    StageRuntime* dest = nullptr;
    std::size_t port = 0;
    /// Retention buffer for this flow; null when failover is disabled.
    ReplayChannel* channel = nullptr;
  };

  StageRuntime(SimEngine& engine, std::size_t index, const StageSpec& spec,
               NodeId node, double cpu_factor, Rng rng)
      : engine_(engine),
        index_(index),
        spec_(spec),
        node_(node),
        cpu_factor_(cpu_factor),
        monitor_(spec.monitor),
        rng_(rng) {
    GATES_CHECK(cpu_factor_ > 0);
    processor_ = spec_.factory();
    GATES_CHECK_MSG(processor_ != nullptr,
                    "factory for stage '" + spec_.name + "' returned null");
    if (spec_.parallelism.mode != ParallelismMode::kSerial) {
      const Parallelism& par = spec_.parallelism;
      replica_budget_ = par.max_replicas != 0
                            ? par.max_replicas
                            : engine_.hosts_.cores_at(node_);
      replica_budget_ = std::max(replica_budget_, par.replicas);
      active_replicas_ = par.replicas;
      max_replicas_used_ = par.replicas;
      if (par.mode == ParallelismMode::kStateless) {
        // Scale-before-degrade: same policy object the RtEngine uses. The
        // DES models the pool as one server whose rate is multiplied by the
        // active replica count (§4's overload exception first buys cores).
        scaler_ = std::make_unique<adapt::ReplicaScaler>(
            par.replicas, replica_budget_, adapt::ReplicaScalerConfig{});
        AdjustmentParameter::Spec rspec;
        rspec.name = "replicas";
        rspec.initial = static_cast<double>(par.replicas);
        rspec.min_value = static_cast<double>(par.replicas);
        rspec.max_value = static_cast<double>(replica_budget_);
        rspec.increment = 1;
        rspec.direction = ParamDirection::kIncreaseSpeedsUp;
        replicas_param_ = std::make_unique<AdjustmentParameter>(rspec);
      }
    }
  }

  void init() {
    // Observability handles, re-resolved on revive (idempotent): the
    // PhaseClock is stable for the stage name's lifetime.
    profile_ = obs::Profiler::global().enabled()
                   ? &obs::Profiler::global().stage(spec_.name)
                   : nullptr;
    tracer_active_ = obs::PacketTracer::global().active();
    in_init_ = true;
    processor_->init(*this);
    in_init_ = false;
  }

  // -- wiring (engine setup) -------------------------------------------------
  void add_route(Route route) {
    if (route.channel == nullptr && engine_.config_.failover.enabled) {
      channels_.push_back(std::make_unique<ReplayChannel>(
          engine_.config_.failover.replay_buffer_packets));
      route.channel = channels_.back().get();
    }
    routes_.push_back(route);
  }
  void add_inbound_link(net::SimLink* link) {
    if (std::find(inbound_links_.begin(), inbound_links_.end(), link) ==
        inbound_links_.end()) {
      inbound_links_.push_back(link);
    }
  }
  void clear_inbound_links() { inbound_links_.clear(); }
  void add_upstream(StageRuntime* stage) {
    if (stage != nullptr &&
        std::find(upstreams_.begin(), upstreams_.end(), stage) ==
            upstreams_.end()) {
      upstreams_.push_back(stage);
    }
  }
  void set_eos_expected(std::size_t n) { eos_expected_ = n; }
  NodeId node() const { return node_; }
  std::vector<Route>& routes() { return routes_; }
  /// Dynamic resource variation: subsequent services run at the new speed.
  void set_cpu_factor(double factor) {
    GATES_CHECK(factor > 0);
    cpu_factor_ = factor;
  }

  /// Crashes this stage: discards its queue, refuses future deliveries, and
  /// raises EOS downstream on its behalf (the middleware's failure
  /// detection). Counts toward pipeline completion. The legacy, no-failover
  /// degradation.
  void fail() {
    if (finished_ || failed_) return;
    failed_ = true;
    ++incarnation_;
    const std::size_t discarded = queue_.size();
    queue_.clear();
    packets_dropped_ += discarded;
    for (net::SimLink* link : inbound_links_) link->notify_space();
    GATES_TRACE(.time = engine_.sim_.now(), .kind = obs::TraceKind::kCrash,
                .component = spec_.name, .detail = "fail (eos on behalf)",
                .value_new = static_cast<double>(discarded));
    raise_eos_on_behalf();
    GATES_LOG(kWarn, "sim-engine")
        << "stage '" << spec_.name << "' failed at t=" << engine_.sim_.now();
  }

  /// Crash-stop for the failover path: the stage goes dark (queued input
  /// and in-flight messages toward it are lost) but no EOS is raised — the
  /// failure detector and the re-placement path decide what happens next.
  void crash() {
    if (finished_ || failed_) return;
    failed_ = true;
    ++incarnation_;
    packets_dropped_ += queue_.size();
    queue_.clear();
    for (net::SimLink* link : inbound_links_) {
      packets_dropped_ += link->drop_messages_for(this);
      link->notify_space();
    }
    GATES_TRACE(.time = engine_.sim_.now(), .kind = obs::TraceKind::kCrash,
                .component = spec_.name, .detail = "crash-stop");
    trace_heartbeat_transition(spec_.name, engine_.sim_.now(), "suspect");
    GATES_LOG(kWarn, "sim-engine")
        << "stage '" << spec_.name << "' crashed at t=" << engine_.sim_.now();
  }

  /// Failover gave up on this crashed stage: degrade exactly like fail().
  void abandon() {
    if (finished_ || !failed_) return;
    GATES_TRACE(.time = engine_.sim_.now(), .kind = obs::TraceKind::kAbandoned,
                .component = spec_.name);
    raise_eos_on_behalf();
    GATES_LOG(kWarn, "sim-engine")
        << "stage '" << spec_.name << "' abandoned at t=" << engine_.sim_.now();
  }

  /// Re-deploys this stage on `node` with a fresh processor from `factory`
  /// (empty = the stage's own spec factory). Counters and EOS bookkeeping
  /// carry over; processor state starts from init() + on_recover().
  void revive(NodeId node, double cpu_factor, const ProcessorFactory& factory) {
    GATES_CHECK(failed_ && !finished_);
    node_ = node;
    cpu_factor_ = cpu_factor;
    processor_ = factory ? factory() : spec_.factory();
    GATES_CHECK_MSG(processor_ != nullptr,
                    "replacement factory for stage '" + spec_.name +
                        "' returned null");
    params_.clear();
    controllers_.clear();
    failed_ = false;
    busy_ = false;
    // New incarnation: anything still in flight from before the revival is
    // stale (its retained copy is about to be replayed) and must not be
    // double-delivered.
    ++incarnation_;
    ++recoveries_;
    init();
    processor_->on_recover(*this);
  }

  bool failed() const { return failed_; }
  std::uint64_t incarnation() const { return incarnation_; }

  // -- net::MessageSink --------------------------------------------------------
  bool try_deliver(net::SimMessage&& msg) override {
    const auto* peek = std::any_cast<Delivery>(&msg.payload);
    if (failed_ || peek->dest_incarnation != incarnation_) {
      // A crashed host blackholes traffic, and a revived one rejects stale
      // in-flight messages from before its outage; the sender's
      // backpressure and the failure handling (EOS on behalf, or detection
      // + replay) cover the rest.
      ++packets_dropped_;
      GATES_TRACE(.time = engine_.sim_.now(),
                  .kind = obs::TraceKind::kPacketDrop, .component = spec_.name,
                  .detail = failed_ ? "blackholed (host down)"
                                    : "stale incarnation",
                  .value_new = 1);
      return true;
    }
    if (queue_.size() >= spec_.input_capacity) return false;
    Delivery d = std::any_cast<Delivery>(std::move(msg.payload));
    d.arrived_at = engine_.sim_.now();
    if (d.via != nullptr) {
      if (profile_ != nullptr) {
        // Link transit (latency + serialization + backlog) charged to the
        // link's shaper-delay phase, same family as the Rt LinkShaper.
        engine_.link_clock_for(d.via)->add(obs::Phase::kShaperDelay,
                                           d.arrived_at - d.sent_at);
      }
      if (tracer_active_ && d.packet.trace.sampled()) {
        GATES_TRACE(.time = d.sent_at, .duration = d.arrived_at - d.sent_at,
                    .kind = obs::TraceKind::kPacketHop,
                    .component = d.via->config().name, .detail = "link",
                    .trace_id = d.packet.trace.trace_id,
                    .hop = d.packet.trace.hop);
      }
    }
    queue_.push_back(std::move(d));
    begin_service();
    return true;
  }

  // -- Emitter -----------------------------------------------------------------
  void emit(Packet packet, std::size_t port = 0) override {
    ++packets_emitted_;
    bool routed = false;
    for (auto& route : routes_) {
      if (route.port != port) continue;
      net::SimMessage msg;
      msg.wire_bytes = engine_.config_.wire.wire_size(packet.payload_bytes(),
                                                      packet.records);
      msg.sink = route.dest;
      msg.source_stage = static_cast<StageId>(index_);
      msg.barrier = packet.is_eos();
      Delivery d;
      d.packet = packet;  // copy: the same packet may take several routes
      d.dest_incarnation = route.dest->incarnation();
      d.sent_at = engine_.sim_.now();
      d.via = route.link;
      if (route.channel != nullptr) {
        d.origin = route.channel;
        d.seq = route.channel->retain(d.packet);
      }
      msg.payload = std::move(d);
      if (!route.link->send(std::move(msg))) {
        ++packets_dropped_;
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kPacketDrop,
                    .component = spec_.name, .detail = "link send failed",
                    .value_new = 1);
      }
      routed = true;
    }
    if (!routed && !packet.is_eos()) {
      ++packets_unrouted_;
    }
  }

  // -- ProcessorContext ---------------------------------------------------------
  AdjustmentParameter& specify_parameter(
      AdjustmentParameter::Spec param_spec) override {
    GATES_CHECK_MSG(in_init_, "specify_parameter must be called from init()");
    params_.push_back(std::make_unique<AdjustmentParameter>(param_spec));
    controllers_.push_back(std::make_unique<adapt::ParameterController>(
        *params_.back(), spec_.controller));
    return *params_.back();
  }
  const Properties& properties() const override { return spec_.properties; }
  Rng& rng() override { return rng_; }
  TimePoint now() const override { return engine_.sim_.now(); }
  StageId stage_id() const override { return static_cast<StageId>(index_); }
  const std::string& stage_name() const override { return spec_.name; }

  // -- adaptation ---------------------------------------------------------------
  /// Exception reported by a downstream server (stage monitor or outbound
  /// link monitor).
  void receive_downstream_exception(adapt::LoadSignal signal) {
    ++exceptions_received_;
    for (auto& controller : controllers_) {
      controller->report_downstream_exception(signal);
    }
  }

  /// One control period: observe own queue, report upstream, adjust params.
  void control_step() {
    if (failed_) return;
    queue_samples_.add(static_cast<double>(queue_.size()));
    const adapt::LoadSignal signal =
        monitor_.observe(static_cast<double>(queue_.size()));
    if (signal == adapt::LoadSignal::kOverload) {
      ++overload_sent_;
      GATES_TRACE(.time = engine_.sim_.now(),
                  .kind = obs::TraceKind::kOverloadException,
                  .component = spec_.name,
                  .dtilde = monitor_.normalized_dtilde());
    }
    if (signal == adapt::LoadSignal::kUnderload) {
      ++underload_sent_;
      GATES_TRACE(.time = engine_.sim_.now(),
                  .kind = obs::TraceKind::kUnderloadException,
                  .component = spec_.name,
                  .dtilde = monitor_.normalized_dtilde());
    }
    if (signal != adapt::LoadSignal::kNone) {
      // Scale-before-degrade: a replicated stage's exception is offered to
      // the replica scaler first; only a kPropagate verdict (core budget or
      // floor exhausted) lets it reach upstream accuracy controllers.
      bool propagate = true;
      if (scaler_ != nullptr && engine_.config_.adaptation_enabled) {
        propagate = !apply_scaling(signal);
      }
      if (propagate) {
        for (StageRuntime* up : upstreams_) {
          up->receive_downstream_exception(signal);
        }
      }
    }
    if (replicas_param_ != nullptr) {
      replicas_param_->set_value(static_cast<double>(active_replicas_));
      replicas_param_->record(engine_.sim_.now());
    }
    if (engine_.config_.adaptation_enabled) {
      for (std::size_t i = 0; i < controllers_.size(); ++i) {
        controllers_[i]->update(monitor_.normalized_dtilde_gated());
        params_[i]->record(engine_.sim_.now());
        const adapt::ParameterController::LastUpdate& u =
            controllers_[i]->last_update();
        // Every Eq. 4 move carries the attribution snapshot that triggered
        // it (empty/elided when the Profiler is off).
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kParamAdjust,
                    .component = spec_.name, .detail = params_[i]->name(),
                    .value_old = u.old_value, .value_new = u.new_value,
                    .dtilde = u.dtilde, .phi1 = u.phi1,
                    .annotation = obs::attribution_brief(spec_.name));
      }
    } else {
      for (auto& p : params_) p->record(engine_.sim_.now());
    }
    if (obs::MetricsRegistry::global().enabled()) sample_metrics();
  }

  /// One load signal through the replica scaler; returns true when the pool
  /// consumed it (a DES scale step is instantaneous — no dispatcher handoff).
  bool apply_scaling(adapt::LoadSignal signal) {
    switch (scaler_->observe(signal, active_replicas_)) {
      case adapt::ReplicaScaler::Decision::kPropagate:
        return false;
      case adapt::ReplicaScaler::Decision::kNone:
        return true;
      case adapt::ReplicaScaler::Decision::kScaleUp:
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kReplicaScaleUp,
                    .component = spec_.name,
                    .value_old = static_cast<double>(active_replicas_),
                    .value_new = static_cast<double>(active_replicas_ + 1),
                    .dtilde = monitor_.normalized_dtilde(),
                    .annotation = obs::attribution_brief(spec_.name));
        ++active_replicas_;
        max_replicas_used_ = std::max(max_replicas_used_, active_replicas_);
        return true;
      case adapt::ReplicaScaler::Decision::kScaleDown:
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kReplicaScaleDown,
                    .component = spec_.name,
                    .value_old = static_cast<double>(active_replicas_),
                    .value_new = static_cast<double>(active_replicas_ - 1),
                    .dtilde = monitor_.normalized_dtilde(),
                    .annotation = obs::attribution_brief(spec_.name));
        --active_replicas_;
        return true;
    }
    return false;
  }

  /// Control-tick publication of this stage's counters into the registry;
  /// handles resolved (registration mutex) on first use only.
  void sample_metrics() {
    if (processed_ctr_ == nullptr) {
      auto& reg = obs::MetricsRegistry::global();
      const obs::Labels labels = {{"stage", spec_.name}};
      processed_ctr_ = &reg.counter("gates_stage_packets_processed", labels);
      emitted_ctr_ = &reg.counter("gates_stage_packets_emitted", labels);
      dropped_ctr_ = &reg.counter("gates_stage_packets_dropped", labels);
      overload_ctr_ =
          &reg.counter("gates_stage_overload_exceptions", labels);
      underload_ctr_ =
          &reg.counter("gates_stage_underload_exceptions", labels);
      received_ctr_ =
          &reg.counter("gates_stage_exceptions_received", labels);
      queue_gauge_ = &reg.gauge("gates_stage_queue_length", labels);
      dtilde_gauge_ = &reg.gauge("gates_stage_dtilde", labels);
      queue_hist_ = &reg.histogram(
          "gates_stage_queue_length_hist", 0,
          static_cast<double>(spec_.monitor.capacity), 16, labels);
    }
    processed_ctr_->set(packets_processed_);
    emitted_ctr_->set(packets_emitted_);
    dropped_ctr_->set(packets_dropped_);
    overload_ctr_->set(overload_sent_);
    underload_ctr_->set(underload_sent_);
    received_ctr_->set(exceptions_received_);
    queue_gauge_->set(static_cast<double>(queue_.size()));
    dtilde_gauge_->set(monitor_.normalized_dtilde());
    queue_hist_->observe(static_cast<double>(queue_.size()));
  }

  /// True while any outbound link's backlog exceeds the send buffer; the
  /// stage stops consuming input (blocking-send semantics).
  bool outbound_blocked() const {
    for (const auto& route : routes_) {
      if (route.link->backlog_seconds() >= spec_.send_buffer_seconds) {
        return true;
      }
    }
    return false;
  }

  // -- service loop ---------------------------------------------------------------
  void begin_service() {
    if (busy_ || finished_ || failed_ || queue_.empty()) return;
    if (outbound_blocked()) {
      ++blocked_events_;
      return;  // resumed by the link's drain listener
    }
    busy_ = true;
    Delivery item = std::move(queue_.front());
    queue_.pop_front();
    // Space freed: let stalled inbound links resume delivery.
    for (net::SimLink* link : inbound_links_) link->notify_space();
    // Replicated stages serve at a multiplied rate: the DES models the pool
    // as a single server `active_replicas_` times faster (order-preserving
    // merge makes the pool externally indistinguishable from that).
    const Duration service = spec_.cost.service_time(item.packet) /
                             (cpu_factor_ * static_cast<double>(active_replicas_));
    busy_time_ += service;
    if (profile_ != nullptr) {
      if (item.arrived_at > 0) {
        profile_->add(obs::Phase::kInboxWait,
                      engine_.sim_.now() - item.arrived_at);
      }
      profile_->add(obs::Phase::kService, service);
    }
    if (!tracer_active_) {
      // Legacy behaviour (sampling off): every service gets a span whenever
      // the TraceBuffer is enabled.
      GATES_TRACE(.time = engine_.sim_.now(), .duration = service,
                  .kind = obs::TraceKind::kServiceSpan,
                  .component = spec_.name);
    } else if (item.packet.trace.sampled()) {
      ++item.packet.trace.hop;
      if (item.arrived_at > 0 &&
          engine_.sim_.now() > item.arrived_at) {
        GATES_TRACE(.time = item.arrived_at,
                    .duration = engine_.sim_.now() - item.arrived_at,
                    .kind = obs::TraceKind::kPacketHop,
                    .component = spec_.name, .detail = "inbox-wait",
                    .trace_id = item.packet.trace.trace_id,
                    .hop = item.packet.trace.hop);
      }
      GATES_TRACE(.time = engine_.sim_.now(), .duration = service,
                  .kind = obs::TraceKind::kPacketHop,
                  .component = spec_.name, .detail = "service",
                  .trace_id = item.packet.trace.trace_id,
                  .hop = item.packet.trace.hop);
    }
    auto shared = std::make_shared<Delivery>(std::move(item));
    const std::uint64_t inc = incarnation_;
    engine_.sim_.schedule_after(service, [this, shared, inc] {
      complete_service(std::move(*shared), inc);
    });
  }

  void complete_service(Delivery item, std::uint64_t incarnation) {
    if (incarnation != incarnation_) return;  // crashed while serving
    busy_ = false;
    if (failed_) return;
    // Processing is the acknowledgment point: the packet's effects are now
    // in this stage's state (and anything it emitted is downstream), so the
    // sender may release it from retention.
    if (item.origin != nullptr) item.origin->ack(item.seq);
    Packet& packet = item.packet;
    if (packet.is_eos()) {
      ++eos_received_;
      if (eos_received_ >= eos_expected_ && !finished_) {
        processor_->finish(*this);
        for (auto& route : routes_) {
          send_eos_on_route(route, packet.stream);
        }
        finished_ = true;
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kStageFinished,
                    .component = spec_.name);
        engine_.on_stage_finished();
        return;
      }
    } else {
      ++packets_processed_;
      records_processed_ += packet.records;
      bytes_processed_ += packet.payload_bytes();
      if (profile_ != nullptr) profile_->add_packets(1);
      latency_.add(engine_.sim_.now() - packet.created_at);
      processor_->process(packet, *this);
    }
    begin_service();
  }

  // -- failover support --------------------------------------------------------
  /// Re-sends every retained (unacked) packet of `route`'s channel — called
  /// after the route's destination was revived and rewired.
  std::uint64_t replay_route(Route& route) {
    if (route.channel == nullptr) return 0;
    std::uint64_t n = 0;
    route.channel->ring.for_each_unacked([&](std::uint64_t seq,
                                             const Packet& packet) {
      net::SimMessage msg;
      msg.wire_bytes = engine_.config_.wire.wire_size(packet.payload_bytes(),
                                                      packet.records);
      msg.sink = route.dest;
      msg.source_stage = static_cast<StageId>(index_);
      msg.barrier = packet.is_eos();
      Delivery d;
      d.packet = packet;
      d.origin = route.channel;
      d.seq = seq;
      d.dest_incarnation = route.dest->incarnation();
      d.sent_at = engine_.sim_.now();
      d.via = route.link;
      if (tracer_active_ && d.packet.trace.sampled()) {
        GATES_TRACE(.time = engine_.sim_.now(),
                    .kind = obs::TraceKind::kPacketHop,
                    .component = spec_.name,
                    .detail = "replay",
                    .trace_id = d.packet.trace.trace_id,
                    .hop = d.packet.trace.hop);
      }
      msg.payload = std::move(d);
      if (route.link->send(std::move(msg))) ++n;
    });
    return n;
  }

  // -- migration support -------------------------------------------------------
  /// Serializes the live processor into one replica blob (empty when the
  /// processor declines checkpoint()). No quiesce work is needed here: the
  /// DES delivers one event at a time and processing is the ack point, so
  /// any event boundary is an ack boundary — state reflects exactly the
  /// acked packets, the unacked tail sits in the senders' retention rings.
  bool capture_checkpoint(StageCheckpoint& out) {
    out.incarnation = incarnation_;
    ByteBuffer blob;
    StateWriter w(blob);
    const bool wrote = processor_->checkpoint(w);
    out.replicas.clear();
    out.replicas.push_back(wrote ? std::move(blob) : ByteBuffer{});
    return true;
  }

  /// revive() for a *live* stage: fresh processor on the target restored
  /// from the checkpoint (or via on_recover() when it was declined), the
  /// incarnation bump cancelling in-flight deliveries and the pending
  /// service completion, the queue dropped — its contents are unacked, so
  /// the replay tail re-delivers them to the new incarnation.
  void resume_migrated(NodeId node, double cpu_factor,
                       const ProcessorFactory& factory,
                       const StageCheckpoint& ckpt, bool& used_checkpoint) {
    GATES_CHECK(!failed_ && !finished_);
    node_ = node;
    cpu_factor_ = cpu_factor;
    processor_ = factory ? factory() : spec_.factory();
    GATES_CHECK_MSG(processor_ != nullptr,
                    "migration factory for stage '" + spec_.name +
                        "' returned null");
    params_.clear();
    controllers_.clear();
    queue_.clear();  // unacked: replayed below, not lost
    busy_ = false;
    ++incarnation_;
    init();
    used_checkpoint = false;
    if (!ckpt.replicas.empty() && ckpt.replicas.front().size() != 0) {
      StateReader r(ckpt.replicas.front());
      used_checkpoint = processor_->restore(r);
    }
    if (!used_checkpoint) processor_->on_recover(*this);
  }

  // -- reporting --------------------------------------------------------------------
  StageReport build_report() const {
    StageReport r;
    r.name = spec_.name;
    r.node = node_;
    r.packets_processed = packets_processed_;
    r.records_processed = records_processed_;
    r.bytes_processed = bytes_processed_;
    r.packets_emitted = packets_emitted_;
    r.packets_dropped = packets_dropped_;
    r.busy_time = busy_time_;
    r.queue_length = queue_samples_;
    r.packet_latency = latency_;
    r.overload_exceptions_sent = overload_sent_;
    r.underload_exceptions_sent = underload_sent_;
    r.exceptions_received = exceptions_received_;
    r.final_normalized_dtilde = monitor_.normalized_dtilde();
    r.final_replicas = active_replicas_;
    r.max_replicas_used = max_replicas_used_;
    for (const auto& p : params_) {
      r.parameter_trajectories.emplace_back(p->name(), p->trajectory());
    }
    if (replicas_param_ != nullptr) {
      r.parameter_trajectories.emplace_back(replicas_param_->name(),
                                            replicas_param_->trajectory());
    }
    return r;
  }

  StreamProcessor& processor() { return *processor_; }
  std::size_t active_replicas() const { return active_replicas_; }
  bool finished() const { return finished_; }
  const std::string& name() const { return spec_.name; }
  std::size_t recoveries() const { return recoveries_; }
  double parameter_value(const std::string& pname) const {
    for (const auto& p : params_) {
      if (p->name() == pname) return p->suggested_value();
    }
    GATES_CHECK_MSG(false, "no parameter '" + pname + "' on stage '" +
                               spec_.name + "'");
    return 0;
  }

 private:
  void raise_eos_on_behalf() {
    for (auto& route : routes_) {
      send_eos_on_route(route, 0);
    }
    finished_ = true;
    engine_.on_stage_finished();
  }

  void send_eos_on_route(Route& route, StreamId stream) {
    Packet eos = Packet::eos(stream, engine_.sim_.now());
    net::SimMessage msg;
    msg.wire_bytes = engine_.config_.wire.per_message_overhead;
    msg.sink = route.dest;
    msg.source_stage = static_cast<StageId>(index_);
    msg.barrier = true;
    Delivery d;
    d.packet = std::move(eos);
    d.dest_incarnation = route.dest->incarnation();
    d.sent_at = engine_.sim_.now();
    d.via = route.link;
    if (route.channel != nullptr) {
      d.origin = route.channel;
      d.seq = route.channel->retain(d.packet);
    }
    msg.payload = std::move(d);
    route.link->send(std::move(msg));
  }

  SimEngine& engine_;
  std::size_t index_;
  const StageSpec& spec_;
  NodeId node_;
  double cpu_factor_;

  std::unique_ptr<StreamProcessor> processor_;
  std::deque<Delivery> queue_;
  std::vector<net::SimLink*> inbound_links_;
  std::vector<Route> routes_;
  std::vector<std::unique_ptr<ReplayChannel>> channels_;
  std::vector<StageRuntime*> upstreams_;

  adapt::QueueMonitor monitor_;
  std::vector<std::unique_ptr<AdjustmentParameter>> params_;
  std::vector<std::unique_ptr<adapt::ParameterController>> controllers_;
  Rng rng_;

  // Replica pool model (1 server, multiplied service rate).
  std::size_t active_replicas_ = 1;
  std::size_t replica_budget_ = 1;
  std::size_t max_replicas_used_ = 1;
  std::unique_ptr<adapt::ReplicaScaler> scaler_;
  std::unique_ptr<AdjustmentParameter> replicas_param_;

  bool in_init_ = false;
  bool busy_ = false;
  bool finished_ = false;
  bool failed_ = false;
  /// Bumped on every crash; stale service-completion events compare against
  /// it and abort, so a revived stage never sees pre-crash completions.
  std::uint64_t incarnation_ = 0;
  std::size_t recoveries_ = 0;
  std::size_t eos_expected_ = 0;
  std::size_t eos_received_ = 0;

  std::uint64_t packets_processed_ = 0;
  std::uint64_t records_processed_ = 0;
  std::uint64_t bytes_processed_ = 0;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_unrouted_ = 0;
  std::uint64_t blocked_events_ = 0;
  Duration busy_time_ = 0;
  RunningStats queue_samples_;
  RunningStats latency_;
  std::uint64_t overload_sent_ = 0;
  std::uint64_t underload_sent_ = 0;
  std::uint64_t exceptions_received_ = 0;

  // Cached metric handles (resolved on the first sampled control tick).
  obs::Counter* processed_ctr_ = nullptr;
  obs::Counter* emitted_ctr_ = nullptr;
  obs::Counter* dropped_ctr_ = nullptr;
  obs::Counter* overload_ctr_ = nullptr;
  obs::Counter* underload_ctr_ = nullptr;
  obs::Counter* received_ctr_ = nullptr;
  obs::Gauge* queue_gauge_ = nullptr;
  obs::Gauge* dtilde_gauge_ = nullptr;
  obs::FixedHistogram* queue_hist_ = nullptr;

  // Observability handles, resolved at init() (and re-resolved on revive).
  obs::PhaseClock* profile_ = nullptr;
  bool tracer_active_ = false;
};

// ---------------------------------------------------------------------------
// SourceRuntime: a data-stream source pinned to a node, feeding one stage.
// ---------------------------------------------------------------------------
class SimEngine::SourceRuntime {
 public:
  SourceRuntime(SimEngine& engine, const SourceSpec& spec,
                StageRuntime* target, net::SimLink* link, Rng rng)
      : engine_(engine), spec_(spec), target_(target), link_(link), rng_(rng) {
    if (engine_.config_.failover.enabled) {
      channel_ = std::make_unique<ReplayChannel>(
          engine_.config_.failover.replay_buffer_packets);
    }
  }

  void start() { schedule_next(0.0); }

  StageRuntime* target() { return target_; }
  /// Failover rewiring: subsequent (and replayed) packets use the new link.
  void set_link(net::SimLink* link) { link_ = link; }
  ReplayChannel* channel() { return channel_.get(); }

  std::uint64_t replay() {
    if (channel_ == nullptr) return 0;
    std::uint64_t n = 0;
    channel_->ring.for_each_unacked([&](std::uint64_t seq,
                                        const Packet& packet) {
      net::SimMessage msg;
      msg.wire_bytes = engine_.config_.wire.wire_size(packet.payload_bytes(),
                                                      packet.records);
      msg.sink = target_;
      msg.barrier = packet.is_eos();
      Delivery d;
      d.packet = packet;
      d.origin = channel_.get();
      d.seq = seq;
      d.dest_incarnation = target_->incarnation();
      d.sent_at = engine_.sim_.now();
      d.via = link_;
      msg.payload = std::move(d);
      if (link_->send(std::move(msg))) ++n;
    });
    return n;
  }

 private:
  void schedule_next(Duration delay) {
    engine_.sim_.schedule_after(delay, [this] { emit_one(); });
  }

  void send_packet(Packet packet, std::size_t wire_bytes) {
    net::SimMessage msg;
    msg.wire_bytes = wire_bytes;
    msg.sink = target_;
    msg.barrier = packet.is_eos();
    Delivery d;
    d.packet = std::move(packet);
    d.dest_incarnation = target_->incarnation();
    d.sent_at = engine_.sim_.now();
    d.via = link_;
    if (channel_ != nullptr) {
      d.origin = channel_.get();
      d.seq = channel_->retain(d.packet);
    }
    msg.payload = std::move(d);
    link_->send(std::move(msg));
  }

  void emit_one() {
    auto& sim = engine_.sim_;
    Packet packet;
    if (spec_.generator) {
      packet = spec_.generator(seq_, rng_);
    } else {
      packet.payload.resize(spec_.packet_bytes);
    }
    packet.stream = spec_.stream;
    packet.sequence = seq_;
    packet.created_at = sim.now();
    ++seq_;
    if (obs::PacketTracer::global().active()) {
      packet.trace = obs::PacketTracer::global().maybe_sample();
      if (packet.trace.sampled()) {
        GATES_TRACE(.time = packet.created_at,
                    .kind = obs::TraceKind::kPacketHop,
                    .component = "source:" + std::to_string(spec_.stream),
                    .detail = "emit",
                    .trace_id = packet.trace.trace_id,
                    .hop = packet.trace.hop);
      }
    }

    const std::size_t wire =
        engine_.config_.wire.wire_size(packet.payload_bytes(), packet.records);
    send_packet(std::move(packet), wire);

    if (spec_.total_packets != 0 && seq_ >= spec_.total_packets) {
      // End of stream: an EOS marker follows the last data packet FIFO.
      send_packet(Packet::eos(spec_.stream, sim.now()),
                  engine_.config_.wire.per_message_overhead);
      return;
    }
    const Duration gap = spec_.poisson ? rng_.exponential(spec_.rate_hz)
                                       : 1.0 / spec_.rate_hz;
    schedule_next(gap);
  }

  SimEngine& engine_;
  const SourceSpec& spec_;
  StageRuntime* target_;
  net::SimLink* link_;
  std::unique_ptr<ReplayChannel> channel_;
  Rng rng_;
  std::uint64_t seq_ = 0;
};

// ---------------------------------------------------------------------------
// SimEngine
// ---------------------------------------------------------------------------

adapt::QueueMonitorConfig SimEngine::default_link_monitor() {
  // Link monitors observe backlog in SECONDS (queued bytes / bandwidth), so
  // thresholds are drain times: more than 5 s of queued data is an
  // over-load observation, under half a second an under-load one.
  adapt::QueueMonitorConfig cfg;
  cfg.capacity = 120;
  cfg.expected_length = 1;
  cfg.over_threshold = 2.5;
  cfg.under_threshold = 0.25;
  cfg.window = 12;
  cfg.alpha = 0.7;
  cfg.p1 = 0.15;
  cfg.p2 = 0.35;
  cfg.p3 = 0.50;
  cfg.lt1 = -0.10;
  cfg.lt2 = +0.10;
  cfg.dbar_window = 8;
  return cfg;
}

SimEngine::SimEngine(PipelineSpec spec, Placement placement, HostModel hosts,
                     net::Topology topology, Config config)
    : spec_(std::move(spec)),
      placement_(std::move(placement)),
      hosts_(std::move(hosts)),
      topology_(std::move(topology)),
      config_(config),
      root_rng_(config.seed),
      retry_rng_(root_rng_.fork(3000)) {}

SimEngine::~SimEngine() = default;

net::SimLink* SimEngine::link_for_flow(NodeId from, NodeId to) {
  if (from == to) {
    auto& slot = loopback_links_[to];
    if (!slot) {
      net::SimLink::Config cfg;
      cfg.name = "loopback@" + std::to_string(to);
      const auto spec = net::Topology::loopback();
      cfg.bandwidth = spec.bandwidth;
      cfg.latency = spec.latency;
      slot = std::make_unique<net::SimLink>(sim_, cfg);
    }
    return slot.get();
  }
  if (auto shared = topology_.shared_ingress(to)) {
    auto& slot = ingress_links_[to];
    if (!slot) {
      net::SimLink::Config cfg;
      cfg.name = "ingress@" + std::to_string(to);
      cfg.bandwidth = shared->bandwidth;
      cfg.latency = shared->latency;
      cfg.impair = shared->impair;
      cfg.rng = root_rng_.fork(2000 + impair_stream_++);
      slot = std::make_unique<net::SimLink>(sim_, cfg);
      monitored_links_.push_back(
          std::make_unique<MonitoredLink>(slot.get(), config_.link_monitor));
    }
    return slot.get();
  }
  auto key = std::make_pair(from, to);
  auto& slot = pair_links_[key];
  if (!slot) {
    const auto spec = topology_.between(from, to);
    net::SimLink::Config cfg;
    cfg.name = "link:" + std::to_string(from) + "->" + std::to_string(to);
    cfg.bandwidth = spec.bandwidth;
    cfg.latency = spec.latency;
    cfg.impair = spec.impair;
    cfg.rng = root_rng_.fork(2000 + impair_stream_++);
    slot = std::make_unique<net::SimLink>(sim_, cfg);
    monitored_links_.push_back(
        std::make_unique<MonitoredLink>(slot.get(), config_.link_monitor));
  }
  return slot.get();
}

obs::PhaseClock* SimEngine::link_clock_for(const net::SimLink* link) {
  auto& slot = link_clocks_[link];
  if (slot == nullptr) {
    // Profiler::link() takes a mutex; the DES is single-threaded, so cache
    // the handle per link and pay the lookup once.
    slot = &obs::Profiler::global().link(link->config().name);
  }
  return slot;
}

net::SimLink* SimEngine::attach_flow(StageRuntime* sender, StageRuntime* dest) {
  net::SimLink* link = link_for_flow(sender->node(), dest->node());
  for (auto& ml : monitored_links_) {
    if (ml->link == link) ml->add_sender(sender);
  }
  // Blocking-send resume: when the link drains, blocked senders retry.
  link->add_drain_listener([sender] { sender->begin_service(); });
  dest->add_inbound_link(link);
  return link;
}

Status SimEngine::setup() {
  if (setup_done_) return Status::ok();
  if (auto s = spec_.validate(); !s.is_ok()) return s;
  if (placement_.stage_nodes.size() != spec_.stages.size()) {
    return invalid_argument("placement covers " +
                            std::to_string(placement_.stage_nodes.size()) +
                            " stages but pipeline has " +
                            std::to_string(spec_.stages.size()));
  }
  for (const auto& stage : spec_.stages) {
    if (!stage.factory) {
      return failed_precondition(
          "stage '" + stage.name +
          "' has no processor factory (deploy through gates::grid::Deployer "
          "to resolve its URI, or set StageSpec::factory)");
    }
  }

  // Instantiate stages.
  for (std::size_t i = 0; i < spec_.stages.size(); ++i) {
    stages_.push_back(std::make_unique<StageRuntime>(
        *this, i, spec_.stages[i], placement_.stage_nodes[i],
        hosts_.at(placement_.stage_nodes[i]), root_rng_.fork(1000 + i)));
  }

  // Wire stage-to-stage edges.
  for (const auto& edge : spec_.edges) {
    StageRuntime* sender = stages_[edge.from_stage].get();
    StageRuntime* dest = stages_[edge.to_stage].get();
    net::SimLink* link = attach_flow(sender, dest);
    sender->add_route({link, dest, edge.port, nullptr});
    dest->add_upstream(sender);
  }

  // Wire sources.
  for (std::size_t i = 0; i < spec_.sources.size(); ++i) {
    const auto& src = spec_.sources[i];
    StageRuntime* target = stages_[src.target_stage].get();
    net::SimLink* link =
        link_for_flow(src.location, placement_.stage_nodes[src.target_stage]);
    target->add_inbound_link(link);
    sources_.push_back(std::make_unique<SourceRuntime>(
        *this, src, target, link, root_rng_.fork(i)));
  }

  // EOS bookkeeping.
  for (std::size_t i = 0; i < spec_.stages.size(); ++i) {
    stages_[i]->set_eos_expected(spec_.fan_in(i));
  }

  // Initialize processors (parameters get registered here).
  for (auto& stage : stages_) stage->init();

  // Dynamic resource variation events.
  for (const auto& change : cpu_changes_) {
    sim_.schedule_at(change.time, [this, change] {
      for (auto& stage : stages_) {
        if (stage->node() == change.node) stage->set_cpu_factor(change.factor);
      }
      GATES_LOG(kInfo, "sim-engine")
          << "node " << change.node << " cpu factor -> " << change.factor;
    });
  }
  for (const auto& change : bandwidth_changes_) {
    // Resolve (or create) the link now so the event is cheap and the change
    // also applies when the flow has not carried traffic yet.
    net::SimLink* link = link_for_flow(change.from, change.to);
    sim_.schedule_at(change.time, [link, change] {
      link->set_bandwidth(change.bandwidth);
      GATES_LOG(kInfo, "sim-engine")
          << "flow " << change.from << "->" << change.to << " bandwidth -> "
          << change.bandwidth;
    });
  }

  for (const auto& change : link_changes_) {
    net::SimLink* link = link_for_flow(change.from, change.to);
    // The transition is classified against the flow's *configured* spec, so
    // a later change back to it traces as a restore.
    const net::LinkSpec base =
        change.from == change.to ? net::Topology::loopback()
        : topology_.shared_ingress(change.to)
            ? *topology_.shared_ingress(change.to)
            : topology_.between(change.from, change.to);
    sim_.schedule_at(change.time, [this, link, change, base] {
      link->apply_spec(change.spec);
      const net::LinkTransition tr =
          net::classify_transition(base, change.spec);
      const obs::TraceKind kind =
          tr == net::LinkTransition::kPartition ? obs::TraceKind::kPartition
          : tr == net::LinkTransition::kDegrade ? obs::TraceKind::kLinkDegrade
                                                : obs::TraceKind::kLinkRestore;
      GATES_TRACE(.time = sim_.now(), .kind = kind,
                  .component = link->config().name,
                  .detail = net::describe_spec(change.spec),
                  .value_old = base.bandwidth,
                  .value_new = change.spec.bandwidth);
      GATES_LOG(kInfo, "sim-engine")
          << "flow " << change.from << "->" << change.to << " link change: "
          << net::describe_spec(change.spec);
    });
  }

  // Lease validation (heartbeats travel the same impaired links as data): a
  // lease shorter than one period + 2x the worst one-way delay can expire
  // on delay alone, so widen suspicion_beats to the false-positive-free
  // floor before the detector arms.
  if (config_.failover.enabled) {
    Duration worst = topology_.worst_case_one_way();
    for (const auto& change : link_changes_) {
      worst = std::max(worst, change.spec.worst_case_one_way());
    }
    const std::size_t beats = lease_beats_for_delay(
        config_.failover.heartbeat_period, worst,
        config_.failover.suspicion_beats);
    if (beats > config_.failover.suspicion_beats) {
      GATES_LOG(kInfo, "sim-engine")
          << "lease " << config_.failover.lease() << "s cannot cover worst "
          << "one-way delay " << worst << "s; suspicion_beats "
          << config_.failover.suspicion_beats << " -> " << beats;
      config_.failover.suspicion_beats = beats;
    }
  }

  for (const auto& failure : node_failures_) {
    sim_.schedule_at(failure.time, [this, failure] {
      on_node_failure(failure.node, failure.time);
    });
  }
  for (const auto& recovery : node_recoveries_) {
    sim_.schedule_at(recovery.time, [this, recovery] {
      auto it =
          std::find(down_nodes_.begin(), down_nodes_.end(), recovery.node);
      if (it != down_nodes_.end()) down_nodes_.erase(it);
      GATES_LOG(kInfo, "sim-engine")
          << "node " << recovery.node << " recovered at t=" << sim_.now();
    });
  }

  for (const auto& req : migration_requests_) {
    sim_.schedule_at(req.time, [this, req] {
      migrate_stage(req.stage, req.target);
    });
  }

  // Start sources and the control loop.
  for (auto& source : sources_) source->start();
  control_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.control_period, [this] {
        control_tick();
        return !completed_;
      });

  setup_done_ = true;
  return Status::ok();
}

void SimEngine::control_tick() {
  // Real (not virtual) time: the fold cost gauge measures how expensive the
  // observability pass is for the process, and virtual time does not advance
  // inside a tick.
  const auto tick_start = std::chrono::steady_clock::now();
  // Links first: network pressure reaches the sending stages in the same
  // period as stage-queue pressure.
  for (auto& ml : monitored_links_) {
    const double d = ml->link->backlog_seconds();
    ml->queue_samples.add(d);
    adapt::LoadSignal signal = ml->monitor.observe(d);
    // A stalled link is empty only because its receiver refuses delivery;
    // that is not spare capacity, so it must not solicit more data.
    if (signal == adapt::LoadSignal::kUnderload && ml->link->stalled()) {
      signal = adapt::LoadSignal::kNone;
    }
    if (signal == adapt::LoadSignal::kOverload) {
      ++ml->overload_sent;
      GATES_TRACE(.time = sim_.now(),
                  .kind = obs::TraceKind::kOverloadException,
                  .component = ml->link->config().name, .dtilde = d);
    }
    if (signal == adapt::LoadSignal::kUnderload) {
      ++ml->underload_sent;
      GATES_TRACE(.time = sim_.now(),
                  .kind = obs::TraceKind::kUnderloadException,
                  .component = ml->link->config().name, .dtilde = d);
    }
    if (signal != adapt::LoadSignal::kNone) {
      for (StageRuntime* sender : ml->senders) {
        sender->receive_downstream_exception(signal);
      }
    }
    if (obs::MetricsRegistry::global().enabled()) ml->sample_metrics();
  }
  for (auto& stage : stages_) stage->control_step();
  if (obs::Profiler::global().enabled()) {
    obs::fold_profiler_into_metrics(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      tick_start)
            .count());
  }
}

void SimEngine::on_stage_finished() {
  ++finished_stages_;
  if (finished_stages_ == stages_.size()) {
    completed_ = true;
    completion_time_ = sim_.now();
    sim_.stop();
  }
}

// -- failover ----------------------------------------------------------------

bool SimEngine::node_down(NodeId node) const {
  return std::find(down_nodes_.begin(), down_nodes_.end(), node) !=
         down_nodes_.end();
}

Duration SimEngine::heartbeat_delay(NodeId node) const {
  Duration d = topology_.worst_case_one_way(node);
  for (const auto& change : link_changes_) {
    if (change.from == node || change.to == node) {
      d = std::max(d, change.spec.worst_case_one_way());
    }
  }
  return d;
}

void SimEngine::on_node_failure(NodeId node, TimePoint t) {
  if (!node_down(node)) {
    down_nodes_.push_back(node);
    std::sort(down_nodes_.begin(), down_nodes_.end());
  }
  const auto& fo = config_.failover;
  // Failure detector model: the node beats every heartbeat_period; the K-th
  // consecutive missed beat declares it down. Deterministic by arithmetic
  // instead of simulating each beat. The last heartbeat that did arrive was
  // in flight for up to the worst one-way delay of the node's links, which
  // shifts the whole observation window later by that much.
  const TimePoint detect_t =
      fo.heartbeat_period *
          (std::floor(t / fo.heartbeat_period) +
           static_cast<double>(fo.suspicion_beats)) +
      heartbeat_delay(node);
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    StageRuntime* stage = stages_[i].get();
    if (stage->node() != node || stage->finished() || stage->failed()) continue;
    FailureReport rec;
    rec.node = node;
    rec.stage = stage->name();
    rec.failed_at = t;
    if (!fo.enabled) {
      // Legacy path: omniscient detection, EOS on the stage's behalf.
      rec.detected_at = t;
      rec.outcome = FailureReport::Outcome::kEosOnBehalf;
      failures_.push_back(std::move(rec));
      stage->fail();
      continue;
    }
    const TimePoint when = std::max(detect_t, t);
    rec.detected_at = when;
    failures_.push_back(std::move(rec));
    const std::size_t report_index = failures_.size() - 1;
    stage->crash();
    sim_.schedule_at(when, [this, i, report_index] {
      on_failure_detected(i, report_index);
    });
  }
}

void SimEngine::on_failure_detected(std::size_t stage_index,
                                    std::size_t report_index) {
  StageRuntime* stage = stages_[stage_index].get();
  if (stage->finished() || !stage->failed()) return;  // already resolved
  GATES_TRACE(.time = sim_.now(), .kind = obs::TraceKind::kFailureDetected,
              .component = stage->name(),
              .value_old = failures_[report_index].failed_at);
  trace_heartbeat_transition(stage->name(), sim_.now(), "dead");
  GATES_LOG(kInfo, "sim-engine")
      << "failure of stage '" << stage->name() << "' detected at t="
      << sim_.now();
  try_failover(stage_index, report_index, 0);
}

std::optional<ReplacementDecision> SimEngine::default_replacement(
    std::size_t stage_index) const {
  // Candidate universe: every node this engine has heard of.
  std::vector<NodeId> candidates;
  auto consider = [&](NodeId n) {
    if (n == kInvalidNode || node_down(n)) return;
    if (std::find(candidates.begin(), candidates.end(), n) ==
        candidates.end()) {
      candidates.push_back(n);
    }
  };
  for (NodeId n = 0; n < hosts_.cpu_factor.size(); ++n) consider(n);
  for (const auto& stage : stages_) consider(stage->node());
  for (const auto& src : spec_.sources) consider(src.location);
  if (candidates.empty()) return std::nullopt;
  std::sort(candidates.begin(), candidates.end());
  // Least-loaded by live stages, ties to the lowest id — the same policy the
  // Deployer uses.
  NodeId best = kInvalidNode;
  std::size_t best_load = 0;
  for (NodeId candidate : candidates) {
    std::size_t load = 0;
    for (std::size_t i = 0; i < stages_.size(); ++i) {
      if (i != stage_index && stages_[i]->node() == candidate &&
          !stages_[i]->failed()) {
        ++load;
      }
    }
    if (best == kInvalidNode || load < best_load) {
      best = candidate;
      best_load = load;
    }
  }
  ReplacementDecision decision;
  decision.node = best;
  return decision;
}

void SimEngine::try_failover(std::size_t stage_index, std::size_t report_index,
                             std::size_t attempt) {
  StageRuntime* stage = stages_[stage_index].get();
  if (stage->finished() || !stage->failed()) return;
  FailureReport& rec = failures_[report_index];
  rec.attempts = attempt + 1;
  std::optional<ReplacementDecision> decision =
      replacement_provider_ ? replacement_provider_(stage_index, down_nodes_)
                            : default_replacement(stage_index);
  if (decision && decision->node != kInvalidNode &&
      !node_down(decision->node)) {
    revive_stage(stage_index, *decision, rec);
    return;
  }
  if (config_.failover.retry.exhausted(attempt + 1)) {
    rec.outcome = FailureReport::Outcome::kAbandoned;
    stage->abandon();
    return;
  }
  // Jittered backoff (satellite of the chaos work): replicas knocked out by
  // one partition must not retry in lockstep. retry_rng_ is a forked seeded
  // stream, so the schedule stays deterministic per (config, seed).
  sim_.schedule_after(config_.failover.retry.delay(attempt + 1, retry_rng_),
                      [this, stage_index, report_index, attempt] {
                        try_failover(stage_index, report_index, attempt + 1);
                      });
}

void SimEngine::revive_stage(std::size_t stage_index,
                             const ReplacementDecision& decision,
                             FailureReport& record) {
  StageRuntime* stage = stages_[stage_index].get();
  const NodeId node = decision.node;
  stage->revive(node, hosts_.at(node), decision.factory);

  // Rewire: inbound flows now terminate at the stage's new node, outbound
  // flows originate from it. Links are created lazily as needed.
  stage->clear_inbound_links();
  std::uint64_t replayed = 0;
  std::uint64_t lost = 0;
  auto account = [&](ReplayChannel* ch) {
    if (ch == nullptr) return;
    lost += ch->ring.evicted() - ch->evicted_reported;
    ch->evicted_reported = ch->ring.evicted();
  };
  for (auto& up : stages_) {
    for (auto& route : up->routes()) {
      if (route.dest != stage) continue;
      route.link = attach_flow(up.get(), stage);
      account(route.channel);
      replayed += up->replay_route(route);
    }
  }
  for (std::size_t s = 0; s < sources_.size(); ++s) {
    if (sources_[s]->target() != stage) continue;
    // Source locations are fixed (instruments); only the stage end moved.
    net::SimLink* link = link_for_flow(spec_.sources[s].location, node);
    sources_[s]->set_link(link);
    stage->add_inbound_link(link);
    account(sources_[s]->channel());
    replayed += sources_[s]->replay();
  }
  for (auto& route : stage->routes()) {
    route.link = attach_flow(stage, route.dest);
  }

  record.outcome = FailureReport::Outcome::kRecovered;
  record.recovered_on = node;
  record.recovered_at = sim_.now();
  record.packets_replayed = replayed;
  record.packets_lost_retention = lost;
  GATES_TRACE(.time = sim_.now(), .kind = obs::TraceKind::kRecovered,
              .component = stage->name(),
              .value_new = static_cast<double>(node));
  trace_failover_span(stage->name(), record.failed_at, sim_.now(), node,
                      replayed, lost);
  trace_heartbeat_transition(stage->name(), sim_.now(), "alive");
  GATES_LOG(kInfo, "sim-engine")
      << "stage '" << stage->name() << "' failed over to node " << node
      << " at t=" << sim_.now() << " (" << replayed << " replayed, " << lost
      << " lost to retention)";
}

void SimEngine::migrate_stage(std::size_t stage_index, NodeId target) {
  StageRuntime* stage = stages_[stage_index].get();
  const NodeId from = stage->node();
  ReplacementDecision decision;

  MigrationCoordinator::Hooks hooks;
  hooks.quiesce = [&](std::string& error) {
    if (!config_.failover.enabled) {
      error = "failover disabled (no retention to cover the gap)";
      return false;
    }
    if (stage->finished()) {
      error = "stage already finished";
      return false;
    }
    if (stage->failed()) {
      error = "stage is crashed (failover owns it)";
      return false;
    }
    // Nothing to drain: this event boundary *is* the ack barrier (see
    // capture_checkpoint). The stage is quiesced by construction.
    return true;
  };
  hooks.capture = [&](StageCheckpoint& out, std::string& error) {
    (void)error;
    return stage->capture_checkpoint(out);
  };
  hooks.transfer = [&](const StageCheckpoint&, std::string& error) {
    // In-process "transfer" is the matchmaking + (for grid pipelines) the
    // service-instance creation on the target; the blob itself stays local.
    std::optional<ReplacementDecision> d;
    if (migration_provider_) {
      d = migration_provider_(stage_index, target);
    } else if (target != kInvalidNode) {
      d.emplace();
      d->node = target;
    } else {
      d = default_replacement(stage_index);
    }
    if (!d || d->node == kInvalidNode) {
      error = "no candidate target";
      return false;
    }
    if (node_down(d->node)) {
      error = "target node is down";
      return false;
    }
    if (d->node == from) {
      error = "no better placement than current node";
      return false;
    }
    decision = *d;
    return true;
  };
  hooks.resume = [&](const StageCheckpoint& ckpt, MigrationRecord& rec,
                     std::string& error) {
    (void)error;
    bool used = false;
    stage->resume_migrated(decision.node, hosts_.at(decision.node),
                           decision.factory, ckpt, used);
    rec.checkpointed = used;
    rec.to = decision.node;
    // Rewire + replay, the same path revive_stage takes after a crash.
    stage->clear_inbound_links();
    std::uint64_t replayed = 0;
    for (auto& up : stages_) {
      for (auto& route : up->routes()) {
        if (route.dest != stage) continue;
        route.link = attach_flow(up.get(), stage);
        replayed += up->replay_route(route);
      }
    }
    for (std::size_t s = 0; s < sources_.size(); ++s) {
      if (sources_[s]->target() != stage) continue;
      net::SimLink* link = link_for_flow(spec_.sources[s].location,
                                         decision.node);
      sources_[s]->set_link(link);
      stage->add_inbound_link(link);
      replayed += sources_[s]->replay();
    }
    for (auto& route : stage->routes()) {
      route.link = attach_flow(stage, route.dest);
    }
    rec.packets_replayed = replayed;
    GATES_LOG(kInfo, "sim-engine")
        << "stage '" << stage->name() << "' migrated " << from << " -> "
        << decision.node << " at t=" << sim_.now() << " ("
        << (used ? "checkpoint restored" : "on_recover fallback") << ", "
        << replayed << " replayed)";
    return true;
  };
  hooks.abort_fallback = [&](MigrationStep step, const std::string& why) {
    // Degrade to crash-failover: crash-stop the stage and let the existing
    // detector + retention-replay machinery recover it. Never lost data —
    // only the failover latency.
    if (stage->finished() || stage->failed()) return;
    const TimePoint t = sim_.now();
    GATES_LOG(kWarn, "sim-engine")
        << "migration of '" << stage->name() << "' aborted at "
        << migration_step_name(step) << " (" << why
        << "); degrading to crash-failover";
    FailureReport rec;
    rec.node = stage->node();
    rec.stage = stage->name();
    rec.failed_at = t;
    const auto& fo = config_.failover;
    const TimePoint when = std::max(
        fo.heartbeat_period * (std::floor(t / fo.heartbeat_period) +
                               static_cast<double>(fo.suspicion_beats)) +
            heartbeat_delay(stage->node()),
        t);
    rec.detected_at = when;
    failures_.push_back(std::move(rec));
    const std::size_t report_index = failures_.size() - 1;
    stage->crash();
    sim_.schedule_at(when, [this, stage_index, report_index] {
      on_failure_detected(stage_index, report_index);
    });
  };

  migration_records_.push_back(MigrationCoordinator().run(
      stage->name(), from, target, [this] { return sim_.now(); }, hooks,
      migration_fault_injector_));
}

Status SimEngine::run() {
  if (auto s = setup(); !s.is_ok()) return s;
  sim_.run_until(config_.max_time);
  finalize_report(completed_);
  return Status::ok();
}

Status SimEngine::run_for(Duration horizon) {
  if (auto s = setup(); !s.is_ok()) return s;
  sim_.run_until(horizon);
  finalize_report(completed_);
  return Status::ok();
}

void SimEngine::finalize_report(bool completed) {
  report_ = RunReport{};
  report_.completed = completed;
  report_.execution_time = completed ? completion_time_ : sim_.now();
  report_.events_executed = sim_.events_executed();
  for (const auto& stage : stages_) {
    report_.stages.push_back(stage->build_report());
  }
  report_.failures = failures_;
  report_.migrations = migration_records_;
  // Host facts only: a simulated run has no pin/idle configuration, and its
  // figures do not depend on the wall-clock machine — but the row should
  // still say where it ran.
  report_.host = HostInfo::detect();
  auto add_link_report = [&](const net::SimLink& link, const MonitoredLink* ml) {
    LinkReport r;
    r.name = link.config().name;
    r.messages_delivered = link.stats().messages_delivered;
    r.bytes_delivered = link.stats().bytes_delivered;
    r.utilization = link.utilization();
    r.stalled_time = link.stats().stalled_time;
    r.messages_lost = link.stats().messages_lost;
    r.messages_retransmitted = link.stats().messages_retransmitted;
    if (ml != nullptr) {
      r.queue_length = ml->queue_samples;
      r.overload_exceptions_sent = ml->overload_sent;
      r.underload_exceptions_sent = ml->underload_sent;
    }
    report_.links.push_back(std::move(r));
  };
  auto monitored_for = [&](const net::SimLink* link) -> const MonitoredLink* {
    for (const auto& ml : monitored_links_) {
      if (ml->link == link) return ml.get();
    }
    return nullptr;
  };
  for (const auto& [node, link] : ingress_links_) {
    add_link_report(*link, monitored_for(link.get()));
  }
  for (const auto& [key, link] : pair_links_) {
    add_link_report(*link, monitored_for(link.get()));
  }
  if (obs::Profiler::global().enabled()) {
    // One last fold so packets processed after the final control tick are
    // visible in both the metrics snapshot and the attribution report.
    obs::fold_profiler_into_metrics(0.0);
    report_.attribution = obs::make_bottleneck_report();
  }
  if (obs::MetricsRegistry::global().enabled()) {
    report_.metrics = obs::MetricsRegistry::global().snapshot();
  }
  if (obs::TraceBuffer::global().enabled()) {
    report_.trace_summary = obs::TraceBuffer::global().summary();
  }
}

StreamProcessor& SimEngine::processor(std::size_t stage_index) {
  GATES_CHECK(stage_index < stages_.size());
  return stages_[stage_index]->processor();
}

std::size_t SimEngine::replica_count(std::size_t stage_index) const {
  GATES_CHECK(stage_index < stages_.size());
  return stages_[stage_index]->active_replicas();
}

void SimEngine::schedule_cpu_change(NodeId node, TimePoint t, double factor) {
  GATES_CHECK_MSG(!setup_done_, "schedule_cpu_change must precede run()");
  GATES_CHECK(factor > 0);
  cpu_changes_.push_back({node, t, factor});
}

void SimEngine::schedule_bandwidth_change(NodeId from, NodeId to, TimePoint t,
                                          Bandwidth bandwidth) {
  GATES_CHECK_MSG(!setup_done_, "schedule_bandwidth_change must precede run()");
  GATES_CHECK(bandwidth > 0);
  bandwidth_changes_.push_back({from, to, t, bandwidth});
}

void SimEngine::schedule_link_change(NodeId from, NodeId to, TimePoint t,
                                     net::LinkSpec spec) {
  GATES_CHECK_MSG(!setup_done_, "schedule_link_change must precede run()");
  GATES_CHECK(spec.bandwidth > 0);
  GATES_CHECK(spec.latency >= 0);
  link_changes_.push_back({from, to, t, spec});
}

void SimEngine::schedule_node_failure(NodeId node, TimePoint t) {
  GATES_CHECK_MSG(!setup_done_, "schedule_node_failure must precede run()");
  node_failures_.push_back({node, t});
}

void SimEngine::schedule_node_recovery(NodeId node, TimePoint t) {
  GATES_CHECK_MSG(!setup_done_, "schedule_node_recovery must precede run()");
  node_recoveries_.push_back({node, t});
}

void SimEngine::set_replacement_provider(ReplacementProvider provider) {
  GATES_CHECK_MSG(!setup_done_, "set_replacement_provider must precede run()");
  replacement_provider_ = std::move(provider);
}

void SimEngine::schedule_migration(std::size_t stage_index, TimePoint t,
                                   NodeId target) {
  GATES_CHECK_MSG(!setup_done_, "schedule_migration must precede run()");
  GATES_CHECK_MSG(stage_index < spec_.stages.size(),
                  "schedule_migration: bad stage index");
  migration_requests_.push_back({stage_index, t, target});
}

void SimEngine::set_migration_provider(MigrationProvider provider) {
  GATES_CHECK_MSG(!setup_done_, "set_migration_provider must precede run()");
  migration_provider_ = std::move(provider);
}

void SimEngine::set_migration_fault_injector(
    MigrationCoordinator::FaultInjector inject) {
  migration_fault_injector_ = std::move(inject);
}

double SimEngine::parameter_value(std::size_t stage_index,
                                  const std::string& name) const {
  GATES_CHECK(stage_index < stages_.size());
  return stages_[stage_index]->parameter_value(name);
}

}  // namespace gates::core
