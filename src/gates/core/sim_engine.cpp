#include "gates/core/sim_engine.hpp"

#include <algorithm>

#include "gates/common/check.hpp"
#include "gates/common/log.hpp"

namespace gates::core {

// ---------------------------------------------------------------------------
// MonitoredLink: a non-loopback link plus its queue monitor and the adaptive
// stages that send on it (receivers of its load exceptions).
// ---------------------------------------------------------------------------
struct SimEngine::MonitoredLink {
  net::SimLink* link = nullptr;
  adapt::QueueMonitor monitor;
  std::vector<StageRuntime*> senders;
  RunningStats queue_samples;
  std::uint64_t overload_sent = 0;
  std::uint64_t underload_sent = 0;

  explicit MonitoredLink(net::SimLink* l, adapt::QueueMonitorConfig cfg)
      : link(l), monitor(cfg) {}

  void add_sender(StageRuntime* s) {
    if (s == nullptr) return;
    if (std::find(senders.begin(), senders.end(), s) == senders.end()) {
      senders.push_back(s);
    }
  }
};

// ---------------------------------------------------------------------------
// StageRuntime: one deployed stage. Implements the stage's network sink, the
// processor's emitter and its middleware context.
// ---------------------------------------------------------------------------
class SimEngine::StageRuntime final : public net::MessageSink,
                                      public Emitter,
                                      public ProcessorContext {
 public:
  struct Route {
    net::SimLink* link = nullptr;
    StageRuntime* dest = nullptr;
    std::size_t port = 0;
  };

  StageRuntime(SimEngine& engine, std::size_t index, const StageSpec& spec,
               NodeId node, double cpu_factor, Rng rng)
      : engine_(engine),
        index_(index),
        spec_(spec),
        node_(node),
        cpu_factor_(cpu_factor),
        monitor_(spec.monitor),
        rng_(rng) {
    GATES_CHECK(cpu_factor_ > 0);
    processor_ = spec_.factory();
    GATES_CHECK_MSG(processor_ != nullptr,
                    "factory for stage '" + spec_.name + "' returned null");
  }

  void init() {
    in_init_ = true;
    processor_->init(*this);
    in_init_ = false;
  }

  // -- wiring (engine setup) -------------------------------------------------
  void add_route(Route route) { routes_.push_back(route); }
  void add_inbound_link(net::SimLink* link) {
    if (std::find(inbound_links_.begin(), inbound_links_.end(), link) ==
        inbound_links_.end()) {
      inbound_links_.push_back(link);
    }
  }
  void add_upstream(StageRuntime* stage) {
    if (stage != nullptr &&
        std::find(upstreams_.begin(), upstreams_.end(), stage) ==
            upstreams_.end()) {
      upstreams_.push_back(stage);
    }
  }
  void set_eos_expected(std::size_t n) { eos_expected_ = n; }
  NodeId node() const { return node_; }
  /// Dynamic resource variation: subsequent services run at the new speed.
  void set_cpu_factor(double factor) {
    GATES_CHECK(factor > 0);
    cpu_factor_ = factor;
  }

  /// Crashes this stage: discards its queue, refuses future deliveries, and
  /// raises EOS downstream on its behalf (the middleware's failure
  /// detection). Counts toward pipeline completion.
  void fail() {
    if (finished_ || failed_) return;
    failed_ = true;
    const std::size_t discarded = queue_.size();
    queue_.clear();
    packets_dropped_ += discarded;
    for (net::SimLink* link : inbound_links_) link->notify_space();
    for (const auto& route : routes_) {
      Packet eos = Packet::eos(0, engine_.sim_.now());
      net::SimMessage msg;
      msg.wire_bytes = engine_.config_.wire.per_message_overhead;
      msg.sink = route.dest;
      msg.source_stage = static_cast<StageId>(index_);
      msg.payload = std::move(eos);
      route.link->send(std::move(msg));
    }
    finished_ = true;
    GATES_LOG(kWarn, "sim-engine")
        << "stage '" << spec_.name << "' failed at t=" << engine_.sim_.now();
    engine_.on_stage_finished();
  }
  bool failed() const { return failed_; }

  // -- net::MessageSink --------------------------------------------------------
  bool try_deliver(net::SimMessage&& msg) override {
    if (failed_) {
      // A crashed host blackholes traffic; the sender's own backpressure
      // and the EOS raised at failure time handle the rest.
      ++packets_dropped_;
      return true;
    }
    if (queue_.size() >= spec_.input_capacity) return false;
    queue_.push_back(std::any_cast<Packet>(std::move(msg.payload)));
    begin_service();
    return true;
  }

  // -- Emitter -----------------------------------------------------------------
  void emit(Packet packet, std::size_t port = 0) override {
    ++packets_emitted_;
    bool routed = false;
    for (const auto& route : routes_) {
      if (route.port != port) continue;
      net::SimMessage msg;
      msg.wire_bytes = engine_.config_.wire.wire_size(packet.payload_bytes(),
                                                      packet.records);
      msg.sink = route.dest;
      msg.source_stage = static_cast<StageId>(index_);
      msg.payload = packet;  // copy: the same packet may take several routes
      if (!route.link->send(std::move(msg))) {
        ++packets_dropped_;
      }
      routed = true;
    }
    if (!routed && !packet.is_eos()) {
      ++packets_unrouted_;
    }
  }

  // -- ProcessorContext ---------------------------------------------------------
  AdjustmentParameter& specify_parameter(
      AdjustmentParameter::Spec param_spec) override {
    GATES_CHECK_MSG(in_init_, "specify_parameter must be called from init()");
    params_.push_back(std::make_unique<AdjustmentParameter>(param_spec));
    controllers_.push_back(std::make_unique<adapt::ParameterController>(
        *params_.back(), spec_.controller));
    return *params_.back();
  }
  const Properties& properties() const override { return spec_.properties; }
  Rng& rng() override { return rng_; }
  TimePoint now() const override { return engine_.sim_.now(); }
  StageId stage_id() const override { return static_cast<StageId>(index_); }
  const std::string& stage_name() const override { return spec_.name; }

  // -- adaptation ---------------------------------------------------------------
  /// Exception reported by a downstream server (stage monitor or outbound
  /// link monitor).
  void receive_downstream_exception(adapt::LoadSignal signal) {
    ++exceptions_received_;
    for (auto& controller : controllers_) {
      controller->report_downstream_exception(signal);
    }
  }

  /// One control period: observe own queue, report upstream, adjust params.
  void control_step() {
    if (failed_) return;
    queue_samples_.add(static_cast<double>(queue_.size()));
    const adapt::LoadSignal signal =
        monitor_.observe(static_cast<double>(queue_.size()));
    if (signal == adapt::LoadSignal::kOverload) ++overload_sent_;
    if (signal == adapt::LoadSignal::kUnderload) ++underload_sent_;
    if (signal != adapt::LoadSignal::kNone) {
      for (StageRuntime* up : upstreams_) {
        up->receive_downstream_exception(signal);
      }
    }
    if (engine_.config_.adaptation_enabled) {
      for (std::size_t i = 0; i < controllers_.size(); ++i) {
        controllers_[i]->update(monitor_.normalized_dtilde_gated());
        params_[i]->record(engine_.sim_.now());
      }
    } else {
      for (auto& p : params_) p->record(engine_.sim_.now());
    }
  }

  /// True while any outbound link's backlog exceeds the send buffer; the
  /// stage stops consuming input (blocking-send semantics).
  bool outbound_blocked() const {
    for (const auto& route : routes_) {
      if (route.link->backlog_seconds() >= spec_.send_buffer_seconds) {
        return true;
      }
    }
    return false;
  }

  // -- service loop ---------------------------------------------------------------
  void begin_service() {
    if (busy_ || finished_ || queue_.empty()) return;
    if (outbound_blocked()) {
      ++blocked_events_;
      return;  // resumed by the link's drain listener
    }
    busy_ = true;
    Packet packet = std::move(queue_.front());
    queue_.pop_front();
    // Space freed: let stalled inbound links resume delivery.
    for (net::SimLink* link : inbound_links_) link->notify_space();
    const Duration service = spec_.cost.service_time(packet) / cpu_factor_;
    busy_time_ += service;
    auto shared = std::make_shared<Packet>(std::move(packet));
    engine_.sim_.schedule_after(
        service, [this, shared] { complete_service(std::move(*shared)); });
  }

  void complete_service(Packet packet) {
    busy_ = false;
    if (failed_) return;  // crashed while serving
    if (packet.is_eos()) {
      ++eos_received_;
      if (eos_received_ >= eos_expected_ && !finished_) {
        processor_->finish(*this);
        for (const auto& route : routes_) {
          Packet eos = Packet::eos(packet.stream, engine_.sim_.now());
          net::SimMessage msg;
          msg.wire_bytes = engine_.config_.wire.per_message_overhead;
          msg.sink = route.dest;
          msg.source_stage = static_cast<StageId>(index_);
          msg.payload = std::move(eos);
          route.link->send(std::move(msg));
        }
        finished_ = true;
        engine_.on_stage_finished();
        return;
      }
    } else {
      ++packets_processed_;
      records_processed_ += packet.records;
      bytes_processed_ += packet.payload_bytes();
      latency_.add(engine_.sim_.now() - packet.created_at);
      processor_->process(packet, *this);
    }
    begin_service();
  }

  // -- reporting --------------------------------------------------------------------
  StageReport build_report() const {
    StageReport r;
    r.name = spec_.name;
    r.node = node_;
    r.packets_processed = packets_processed_;
    r.records_processed = records_processed_;
    r.bytes_processed = bytes_processed_;
    r.packets_emitted = packets_emitted_;
    r.packets_dropped = packets_dropped_;
    r.busy_time = busy_time_;
    r.queue_length = queue_samples_;
    r.packet_latency = latency_;
    r.overload_exceptions_sent = overload_sent_;
    r.underload_exceptions_sent = underload_sent_;
    r.exceptions_received = exceptions_received_;
    r.final_normalized_dtilde = monitor_.normalized_dtilde();
    for (const auto& p : params_) {
      r.parameter_trajectories.emplace_back(p->name(), p->trajectory());
    }
    return r;
  }

  StreamProcessor& processor() { return *processor_; }
  bool finished() const { return finished_; }
  const std::string& name() const { return spec_.name; }
  double parameter_value(const std::string& pname) const {
    for (const auto& p : params_) {
      if (p->name() == pname) return p->suggested_value();
    }
    GATES_CHECK_MSG(false, "no parameter '" + pname + "' on stage '" +
                               spec_.name + "'");
    return 0;
  }

 private:
  SimEngine& engine_;
  std::size_t index_;
  const StageSpec& spec_;
  NodeId node_;
  double cpu_factor_;

  std::unique_ptr<StreamProcessor> processor_;
  std::deque<Packet> queue_;
  std::vector<net::SimLink*> inbound_links_;
  std::vector<Route> routes_;
  std::vector<StageRuntime*> upstreams_;

  adapt::QueueMonitor monitor_;
  std::vector<std::unique_ptr<AdjustmentParameter>> params_;
  std::vector<std::unique_ptr<adapt::ParameterController>> controllers_;
  Rng rng_;

  bool in_init_ = false;
  bool busy_ = false;
  bool finished_ = false;
  bool failed_ = false;
  std::size_t eos_expected_ = 0;
  std::size_t eos_received_ = 0;

  std::uint64_t packets_processed_ = 0;
  std::uint64_t records_processed_ = 0;
  std::uint64_t bytes_processed_ = 0;
  std::uint64_t packets_emitted_ = 0;
  std::uint64_t packets_dropped_ = 0;
  std::uint64_t packets_unrouted_ = 0;
  std::uint64_t blocked_events_ = 0;
  Duration busy_time_ = 0;
  RunningStats queue_samples_;
  RunningStats latency_;
  std::uint64_t overload_sent_ = 0;
  std::uint64_t underload_sent_ = 0;
  std::uint64_t exceptions_received_ = 0;
};

// ---------------------------------------------------------------------------
// SourceRuntime: a data-stream source pinned to a node, feeding one stage.
// ---------------------------------------------------------------------------
class SimEngine::SourceRuntime {
 public:
  SourceRuntime(SimEngine& engine, const SourceSpec& spec,
                StageRuntime* target, net::SimLink* link, Rng rng)
      : engine_(engine), spec_(spec), target_(target), link_(link), rng_(rng) {}

  void start() { schedule_next(0.0); }

 private:
  void schedule_next(Duration delay) {
    engine_.sim_.schedule_after(delay, [this] { emit_one(); });
  }

  void emit_one() {
    auto& sim = engine_.sim_;
    Packet packet;
    if (spec_.generator) {
      packet = spec_.generator(seq_, rng_);
    } else {
      packet.payload.resize(spec_.packet_bytes);
    }
    packet.stream = spec_.stream;
    packet.sequence = seq_;
    packet.created_at = sim.now();
    ++seq_;

    net::SimMessage msg;
    msg.wire_bytes =
        engine_.config_.wire.wire_size(packet.payload_bytes(), packet.records);
    msg.sink = target_;
    msg.payload = std::move(packet);
    link_->send(std::move(msg));

    if (spec_.total_packets != 0 && seq_ >= spec_.total_packets) {
      // End of stream: an EOS marker follows the last data packet FIFO.
      net::SimMessage eos_msg;
      eos_msg.wire_bytes = engine_.config_.wire.per_message_overhead;
      eos_msg.sink = target_;
      eos_msg.payload = Packet::eos(spec_.stream, sim.now());
      link_->send(std::move(eos_msg));
      return;
    }
    const Duration gap = spec_.poisson ? rng_.exponential(spec_.rate_hz)
                                       : 1.0 / spec_.rate_hz;
    schedule_next(gap);
  }

  SimEngine& engine_;
  const SourceSpec& spec_;
  StageRuntime* target_;
  net::SimLink* link_;
  Rng rng_;
  std::uint64_t seq_ = 0;
};

// ---------------------------------------------------------------------------
// SimEngine
// ---------------------------------------------------------------------------

adapt::QueueMonitorConfig SimEngine::default_link_monitor() {
  // Link monitors observe backlog in SECONDS (queued bytes / bandwidth), so
  // thresholds are drain times: more than 5 s of queued data is an
  // over-load observation, under half a second an under-load one.
  adapt::QueueMonitorConfig cfg;
  cfg.capacity = 120;
  cfg.expected_length = 1;
  cfg.over_threshold = 2.5;
  cfg.under_threshold = 0.25;
  cfg.window = 12;
  cfg.alpha = 0.7;
  cfg.p1 = 0.15;
  cfg.p2 = 0.35;
  cfg.p3 = 0.50;
  cfg.lt1 = -0.10;
  cfg.lt2 = +0.10;
  cfg.dbar_window = 8;
  return cfg;
}

SimEngine::SimEngine(PipelineSpec spec, Placement placement, HostModel hosts,
                     net::Topology topology, Config config)
    : spec_(std::move(spec)),
      placement_(std::move(placement)),
      hosts_(std::move(hosts)),
      topology_(std::move(topology)),
      config_(config),
      root_rng_(config.seed) {}

SimEngine::~SimEngine() = default;

net::SimLink* SimEngine::link_for_flow(NodeId from, NodeId to) {
  if (from == to) {
    auto& slot = loopback_links_[to];
    if (!slot) {
      net::SimLink::Config cfg;
      cfg.name = "loopback@" + std::to_string(to);
      const auto spec = net::Topology::loopback();
      cfg.bandwidth = spec.bandwidth;
      cfg.latency = spec.latency;
      slot = std::make_unique<net::SimLink>(sim_, cfg);
    }
    return slot.get();
  }
  if (auto shared = topology_.shared_ingress(to)) {
    auto& slot = ingress_links_[to];
    if (!slot) {
      net::SimLink::Config cfg;
      cfg.name = "ingress@" + std::to_string(to);
      cfg.bandwidth = shared->bandwidth;
      cfg.latency = shared->latency;
      slot = std::make_unique<net::SimLink>(sim_, cfg);
      monitored_links_.push_back(
          std::make_unique<MonitoredLink>(slot.get(), config_.link_monitor));
    }
    return slot.get();
  }
  auto key = std::make_pair(from, to);
  auto& slot = pair_links_[key];
  if (!slot) {
    const auto spec = topology_.between(from, to);
    net::SimLink::Config cfg;
    cfg.name = "link:" + std::to_string(from) + "->" + std::to_string(to);
    cfg.bandwidth = spec.bandwidth;
    cfg.latency = spec.latency;
    slot = std::make_unique<net::SimLink>(sim_, cfg);
    monitored_links_.push_back(
        std::make_unique<MonitoredLink>(slot.get(), config_.link_monitor));
  }
  return slot.get();
}

Status SimEngine::setup() {
  if (setup_done_) return Status::ok();
  if (auto s = spec_.validate(); !s.is_ok()) return s;
  if (placement_.stage_nodes.size() != spec_.stages.size()) {
    return invalid_argument("placement covers " +
                            std::to_string(placement_.stage_nodes.size()) +
                            " stages but pipeline has " +
                            std::to_string(spec_.stages.size()));
  }
  for (const auto& stage : spec_.stages) {
    if (!stage.factory) {
      return failed_precondition(
          "stage '" + stage.name +
          "' has no processor factory (deploy through gates::grid::Deployer "
          "to resolve its URI, or set StageSpec::factory)");
    }
  }

  // Instantiate stages.
  for (std::size_t i = 0; i < spec_.stages.size(); ++i) {
    stages_.push_back(std::make_unique<StageRuntime>(
        *this, i, spec_.stages[i], placement_.stage_nodes[i],
        hosts_.at(placement_.stage_nodes[i]), root_rng_.fork(1000 + i)));
  }

  // Wire stage-to-stage edges.
  for (const auto& edge : spec_.edges) {
    const NodeId from = placement_.stage_nodes[edge.from_stage];
    const NodeId to = placement_.stage_nodes[edge.to_stage];
    net::SimLink* link = link_for_flow(from, to);
    StageRuntime* sender = stages_[edge.from_stage].get();
    stages_[edge.from_stage]->add_route(
        {link, stages_[edge.to_stage].get(), edge.port});
    stages_[edge.to_stage]->add_inbound_link(link);
    stages_[edge.to_stage]->add_upstream(sender);
    for (auto& ml : monitored_links_) {
      if (ml->link == link) ml->add_sender(sender);
    }
    // Blocking-send resume: when the link drains, blocked senders retry.
    link->add_drain_listener([sender] { sender->begin_service(); });
  }

  // Wire sources.
  for (std::size_t i = 0; i < spec_.sources.size(); ++i) {
    const auto& src = spec_.sources[i];
    StageRuntime* target = stages_[src.target_stage].get();
    net::SimLink* link =
        link_for_flow(src.location, placement_.stage_nodes[src.target_stage]);
    target->add_inbound_link(link);
    sources_.push_back(std::make_unique<SourceRuntime>(
        *this, src, target, link, root_rng_.fork(i)));
  }

  // EOS bookkeeping.
  for (std::size_t i = 0; i < spec_.stages.size(); ++i) {
    stages_[i]->set_eos_expected(spec_.fan_in(i));
  }

  // Initialize processors (parameters get registered here).
  for (auto& stage : stages_) stage->init();

  // Dynamic resource variation events.
  for (const auto& change : cpu_changes_) {
    sim_.schedule_at(change.time, [this, change] {
      for (auto& stage : stages_) {
        if (stage->node() == change.node) stage->set_cpu_factor(change.factor);
      }
      GATES_LOG(kInfo, "sim-engine")
          << "node " << change.node << " cpu factor -> " << change.factor;
    });
  }
  for (const auto& change : bandwidth_changes_) {
    // Resolve (or create) the link now so the event is cheap and the change
    // also applies when the flow has not carried traffic yet.
    net::SimLink* link = link_for_flow(change.from, change.to);
    sim_.schedule_at(change.time, [link, change] {
      link->set_bandwidth(change.bandwidth);
      GATES_LOG(kInfo, "sim-engine")
          << "flow " << change.from << "->" << change.to << " bandwidth -> "
          << change.bandwidth;
    });
  }

  for (const auto& failure : node_failures_) {
    sim_.schedule_at(failure.time, [this, failure] {
      for (auto& stage : stages_) {
        if (stage->node() == failure.node) stage->fail();
      }
    });
  }

  // Start sources and the control loop.
  for (auto& source : sources_) source->start();
  control_task_ = std::make_unique<sim::PeriodicTask>(
      sim_, config_.control_period, [this] {
        control_tick();
        return !completed_;
      });

  setup_done_ = true;
  return Status::ok();
}

void SimEngine::control_tick() {
  // Links first: network pressure reaches the sending stages in the same
  // period as stage-queue pressure.
  for (auto& ml : monitored_links_) {
    const double d = ml->link->backlog_seconds();
    ml->queue_samples.add(d);
    adapt::LoadSignal signal = ml->monitor.observe(d);
    // A stalled link is empty only because its receiver refuses delivery;
    // that is not spare capacity, so it must not solicit more data.
    if (signal == adapt::LoadSignal::kUnderload && ml->link->stalled()) {
      signal = adapt::LoadSignal::kNone;
    }
    if (signal == adapt::LoadSignal::kOverload) ++ml->overload_sent;
    if (signal == adapt::LoadSignal::kUnderload) ++ml->underload_sent;
    if (signal != adapt::LoadSignal::kNone) {
      for (StageRuntime* sender : ml->senders) {
        sender->receive_downstream_exception(signal);
      }
    }
  }
  for (auto& stage : stages_) stage->control_step();
}

void SimEngine::on_stage_finished() {
  ++finished_stages_;
  if (finished_stages_ == stages_.size()) {
    completed_ = true;
    completion_time_ = sim_.now();
    sim_.stop();
  }
}

Status SimEngine::run() {
  if (auto s = setup(); !s.is_ok()) return s;
  sim_.run_until(config_.max_time);
  finalize_report(completed_);
  return Status::ok();
}

Status SimEngine::run_for(Duration horizon) {
  if (auto s = setup(); !s.is_ok()) return s;
  sim_.run_until(horizon);
  finalize_report(completed_);
  return Status::ok();
}

void SimEngine::finalize_report(bool completed) {
  report_ = RunReport{};
  report_.completed = completed;
  report_.execution_time = completed ? completion_time_ : sim_.now();
  report_.events_executed = sim_.events_executed();
  for (const auto& stage : stages_) {
    report_.stages.push_back(stage->build_report());
  }
  auto add_link_report = [&](const net::SimLink& link, const MonitoredLink* ml) {
    LinkReport r;
    r.name = link.config().name;
    r.messages_delivered = link.stats().messages_delivered;
    r.bytes_delivered = link.stats().bytes_delivered;
    r.utilization = link.utilization();
    r.stalled_time = link.stats().stalled_time;
    if (ml != nullptr) {
      r.queue_length = ml->queue_samples;
      r.overload_exceptions_sent = ml->overload_sent;
      r.underload_exceptions_sent = ml->underload_sent;
    }
    report_.links.push_back(std::move(r));
  };
  auto monitored_for = [&](const net::SimLink* link) -> const MonitoredLink* {
    for (const auto& ml : monitored_links_) {
      if (ml->link == link) return ml.get();
    }
    return nullptr;
  };
  for (const auto& [node, link] : ingress_links_) {
    add_link_report(*link, monitored_for(link.get()));
  }
  for (const auto& [key, link] : pair_links_) {
    add_link_report(*link, monitored_for(link.get()));
  }
}

StreamProcessor& SimEngine::processor(std::size_t stage_index) {
  GATES_CHECK(stage_index < stages_.size());
  return stages_[stage_index]->processor();
}

void SimEngine::schedule_cpu_change(NodeId node, TimePoint t, double factor) {
  GATES_CHECK_MSG(!setup_done_, "schedule_cpu_change must precede run()");
  GATES_CHECK(factor > 0);
  cpu_changes_.push_back({node, t, factor});
}

void SimEngine::schedule_bandwidth_change(NodeId from, NodeId to, TimePoint t,
                                          Bandwidth bandwidth) {
  GATES_CHECK_MSG(!setup_done_, "schedule_bandwidth_change must precede run()");
  GATES_CHECK(bandwidth > 0);
  bandwidth_changes_.push_back({from, to, t, bandwidth});
}

void SimEngine::schedule_node_failure(NodeId node, TimePoint t) {
  GATES_CHECK_MSG(!setup_done_, "schedule_node_failure must precede run()");
  node_failures_.push_back({node, t});
}

double SimEngine::parameter_value(std::size_t stage_index,
                                  const std::string& name) const {
  GATES_CHECK(stage_index < stages_.size());
  return stages_[stage_index]->parameter_value(name);
}

}  // namespace gates::core
