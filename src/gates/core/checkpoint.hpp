// Operator-state checkpointing for live stage migration (DESIGN.md §10).
//
// StateWriter/StateReader are thin, stable façades over the common
// Serializer/Deserializer pair. Processors that opt into migration
// implement StreamProcessor::checkpoint()/restore() against these types;
// the engines align every capture to a RetentionRing ack boundary, so a
// checkpoint plus the unacked replay tail reconstructs exact operator
// state on the target.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "gates/common/byte_buffer.hpp"
#include "gates/common/serialize.hpp"
#include "gates/common/status.hpp"

namespace gates::core {

/// Sink a processor serializes its operator state into. Append-only;
/// the engine owns the backing buffer and frames it per replica.
class StateWriter {
 public:
  explicit StateWriter(ByteBuffer& out) : ser_(out) {}

  void write_u8(std::uint8_t v) { ser_.write_u8(v); }
  void write_u32(std::uint32_t v) { ser_.write_u32(v); }
  void write_u64(std::uint64_t v) { ser_.write_u64(v); }
  void write_i64(std::int64_t v) { ser_.write_i64(v); }
  void write_f64(double v) { ser_.write_f64(v); }
  void write_varint(std::uint64_t v) { ser_.write_varint(v); }
  void write_string(std::string_view s) { ser_.write_string(s); }

 private:
  Serializer ser_;
};

/// Source a replacement processor restores its state from. All reads are
/// Status-returning; a failed read aborts the restore and the engine falls
/// back to the stateless on_recover() path.
class StateReader {
 public:
  explicit StateReader(const ByteBuffer& in) : de_(in) {}
  StateReader(const std::uint8_t* data, std::size_t size) : de_(data, size) {}

  bool at_end() const { return de_.at_end(); }
  std::size_t remaining() const { return de_.remaining(); }

  Status read_u8(std::uint8_t& v) { return de_.read_u8(v); }
  Status read_u32(std::uint32_t& v) { return de_.read_u32(v); }
  Status read_u64(std::uint64_t& v) { return de_.read_u64(v); }
  Status read_i64(std::int64_t& v) { return de_.read_i64(v); }
  Status read_f64(double& v) { return de_.read_f64(v); }
  Status read_varint(std::uint64_t& v) { return de_.read_varint(v); }
  Status read_string(std::string& s) { return de_.read_string(s); }

 private:
  Deserializer de_;
};

}  // namespace gates::core
