// Sender-side replay retention, as an indexed ring.
//
// Replaces the deque-with-linear-eviction-scan both engines used: every
// operation — retain, eviction of the oldest unacked data packet when the
// channel is over capacity, exact ack (RtEngine) and cumulative ack
// (SimEngine) — is O(1) amortized.
//
// Layout: retained sequence numbers form the dense window
// [base_seq, next_seq); the slot for seq s lives at s & mask, valid as long
// as the window fits the (power-of-two, geometrically grown) slot array.
// Evicted and acked entries stay behind as tombstones until the window's
// base advances past them, which keeps the seq -> slot arithmetic O(1)
// instead of shifting positions the way a deque erase does. The eviction
// cursor only ever moves forward (an acked or evicted slot never becomes
// live again), so the scan it replaces is paid once per seq over the
// channel's lifetime.
//
// EOS markers are pinned: they are never evicted regardless of capacity —
// losing a termination marker would wedge a recovered stage forever. They
// hold no payload, and no data follows an EOS on a flow (a stage emits it
// only when finishing for good), so a pinned EOS cannot force unbounded
// window growth.
//
// Not thread-safe; the RtEngine's ReplayChannel wraps it in a mutex, the
// single-threaded SimEngine uses it bare.
#pragma once

#include <cstdint>
#include <vector>

#include "gates/common/cache_line.hpp"
#include "gates/common/check.hpp"
#include "gates/core/packet.hpp"

namespace gates::core {

class RetentionRing {
 public:
  /// `capacity` bounds unacked non-EOS entries; 0 disables data retention
  /// (data packets are counted as evicted immediately, EOS still pinned).
  explicit RetentionRing(std::size_t capacity) : capacity_(capacity) {
    slots_.resize(kInitialSlots);
    mask_ = slots_.size() - 1;
  }

  /// Stores a copy (a refcount bump — ByteBuffer payloads are COW) and
  /// returns the assigned sequence number. May evict the oldest unacked
  /// data entry when over capacity.
  std::uint64_t retain(const Packet& packet) {
    const std::uint64_t seq = cur_.next_seq;
    const bool eos = packet.is_eos();
    if (capacity_ == 0 && !eos) {
      // Not stored: tombstone the seq so the window stays dense.
      ensure_slot(seq);
      slot(seq).state = State::kEvicted;
      ++cur_.next_seq;
      ++cur_.evicted;
      advance_base();
      return seq;
    }
    ensure_slot(seq);
    Slot& s = slot(seq);
    s.packet = packet;
    s.state = State::kLive;
    ++cur_.next_seq;
    if (!eos) {
      ++cur_.data_retained;
      while (cur_.data_retained > capacity_) evict_oldest_data();
    }
    return seq;
  }

  /// Releases exactly `seq` (RtEngine: across a restart a replayed tail
  /// interleaves with new traffic, so a processed high seq does NOT imply
  /// earlier seqs arrived). Unknown / already-released seqs are ignored.
  void ack_exact(std::uint64_t seq) {
    if (seq < cur_.base_seq || seq >= cur_.next_seq) return;
    Slot& s = slot(seq);
    if (s.state != State::kLive) return;
    if (!s.packet.is_eos()) --cur_.data_retained;
    s.state = State::kAcked;
    s.packet = Packet{};  // release the payload reference now
    advance_base();
  }

  /// Releases everything up to and including `seq` (SimEngine: flows are
  /// FIFO, so processing seq implies everything before it was handled).
  void ack_cumulative(std::uint64_t seq) {
    while (cur_.base_seq < cur_.next_seq && cur_.base_seq <= seq) {
      Slot& s = slot(cur_.base_seq);
      if (s.state == State::kLive && !s.packet.is_eos()) --cur_.data_retained;
      s.state = State::kEmpty;
      s.packet = Packet{};
      ++cur_.base_seq;
    }
    if (cur_.evict_seq < cur_.base_seq) cur_.evict_seq = cur_.base_seq;
  }

  /// Visits every retained (live, unacked) entry in seq order — the replay
  /// walk after a failover.
  template <typename Fn>
  void for_each_unacked(Fn&& fn) const {
    for (std::uint64_t s = cur_.base_seq; s < cur_.next_seq; ++s) {
      const Slot& entry = slots_[s & mask_];
      if (entry.state == State::kLive) fn(s, entry.packet);
    }
  }

  std::size_t data_retained() const { return cur_.data_retained; }
  std::uint64_t evicted() const { return cur_.evicted; }
  std::uint64_t next_seq() const { return cur_.next_seq; }
  /// First still-outstanding seq; base_seq() == next_seq() means every
  /// retained entry has been released (the remote EOS-barrier condition).
  std::uint64_t base_seq() const { return cur_.base_seq; }
  /// Slot-array footprint (tests: growth stays bounded near capacity).
  std::size_t slot_count() const { return slots_.size(); }

 private:
  enum class State : std::uint8_t { kEmpty, kLive, kAcked, kEvicted };
  struct Slot {
    Packet packet;
    State state = State::kEmpty;
  };
  static constexpr std::size_t kInitialSlots = 16;

  Slot& slot(std::uint64_t seq) { return slots_[seq & mask_]; }

  /// Makes room for `seq`: first let the window's base slide past dead
  /// entries, then grow (double) if the window still wouldn't fit.
  void ensure_slot(std::uint64_t seq) {
    advance_base();
    if (seq - cur_.base_seq < slots_.size()) return;
    std::size_t new_size = slots_.size() * 2;
    while (seq - cur_.base_seq >= new_size) new_size *= 2;
    std::vector<Slot> grown(new_size);
    const std::size_t new_mask = new_size - 1;
    for (std::uint64_t s = cur_.base_seq; s < cur_.next_seq; ++s) {
      grown[s & new_mask] = std::move(slots_[s & mask_]);
    }
    slots_ = std::move(grown);
    mask_ = new_mask;
  }

  /// Tombstones the oldest live non-EOS entry. The cursor is monotone:
  /// everything before it is acked, evicted, or a pinned EOS forever.
  void evict_oldest_data() {
    if (cur_.evict_seq < cur_.base_seq) cur_.evict_seq = cur_.base_seq;
    while (cur_.evict_seq < cur_.next_seq) {
      Slot& s = slot(cur_.evict_seq);
      if (s.state == State::kLive && !s.packet.is_eos()) {
        s.state = State::kEvicted;
        s.packet = Packet{};
        --cur_.data_retained;
        ++cur_.evicted;
        advance_base();
        return;
      }
      ++cur_.evict_seq;
    }
    GATES_CHECK_MSG(false, "retention over capacity with no evictable entry");
  }

  void advance_base() {
    while (cur_.base_seq < cur_.next_seq) {
      Slot& s = slot(cur_.base_seq);
      if (s.state == State::kLive) break;
      s.state = State::kEmpty;
      s.packet = Packet{};
      ++cur_.base_seq;
    }
    if (cur_.evict_seq < cur_.base_seq) cur_.evict_seq = cur_.base_seq;
  }

  /// Every retain/ack touches all of these; keeping them on one cache line
  /// (audited below) means the per-packet bookkeeping is a single-line walk.
  struct alignas(detail::kCacheLine) Cursors {
    std::uint64_t base_seq = 0;   // oldest slot still in the window
    std::uint64_t next_seq = 0;   // next seq to assign
    std::uint64_t evict_seq = 0;  // monotone eviction cursor
    std::size_t data_retained = 0;
    std::uint64_t evicted = 0;
  };
  static_assert(sizeof(Cursors) == detail::kCacheLine,
                "per-packet retention cursors must fit one cache line");

  const std::size_t capacity_;
  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  Cursors cur_;
};

}  // namespace gates::core
