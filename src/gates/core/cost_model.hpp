// Service-time model for a stage.
//
// The DES engine charges a stage `service_time(packet) / host_cpu_factor`
// of virtual time per packet; the rt engine busy-waits/sleeps the same
// amount of wall time. comp-steer's "post-processing of k ms/byte"
// (paper §5.4) maps directly onto per_byte_seconds.
#pragma once

#include <cstddef>

#include "gates/common/types.hpp"
#include "gates/core/packet.hpp"

namespace gates::core {

struct CostModel {
  double per_packet_seconds = 0;
  double per_byte_seconds = 0;
  double per_record_seconds = 0;

  /// True when every coefficient is zero — the rt engine skips the
  /// per-packet service computation and sleep entirely for such stages.
  bool is_zero() const {
    return per_packet_seconds == 0 && per_byte_seconds == 0 &&
           per_record_seconds == 0;
  }

  Duration service_time(const Packet& p) const {
    if (p.is_eos()) return 0;
    return per_packet_seconds +
           per_byte_seconds * static_cast<double>(p.payload_bytes()) +
           per_record_seconds * static_cast<double>(p.records);
  }
};

}  // namespace gates::core
