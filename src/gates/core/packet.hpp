// The unit of stream data flowing between stages.
#pragma once

#include <cstdint>

#include "gates/common/byte_buffer.hpp"
#include "gates/common/types.hpp"
#include "gates/obs/trace_context.hpp"

namespace gates::core {

/// Application-defined packet kind tags. Kinds below 0xFFFF0000 are free for
/// applications; the middleware reserves the rest.
inline constexpr std::uint32_t kPacketKindData = 0;
inline constexpr std::uint32_t kPacketKindSummary = 1;
/// End-of-stream marker, injected by sources and propagated by the engine
/// once a stage has drained every upstream.
inline constexpr std::uint32_t kPacketKindEos = 0xFFFFFFFFu;

struct Packet {
  StreamId stream = 0;
  std::uint64_t sequence = 0;
  /// Virtual (SimEngine) or wall (RtEngine) time the packet was created.
  TimePoint created_at = 0;
  std::uint32_t kind = kPacketKindData;
  /// Logical records carried, for the per-record wire-overhead model.
  std::size_t records = 1;
  /// Causal tracing context (null for the unsampled 1 - 1/N majority).
  /// Travels with the packet through fan-out, retention and replay, so a
  /// replayed copy renders on the same Perfetto flow as the original.
  obs::TraceContext trace;
  ByteBuffer payload;

  bool is_eos() const { return kind == kPacketKindEos; }
  std::size_t payload_bytes() const { return payload.size(); }

  static Packet eos(StreamId stream, TimePoint now) {
    Packet p;
    p.stream = stream;
    p.created_at = now;
    p.kind = kPacketKindEos;
    p.records = 0;
    return p;
  }
};

}  // namespace gates::core
