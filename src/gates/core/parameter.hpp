// Adjustment parameters — the paper's specifyPara / getSuggestedValue API.
//
// A processor exposes a tunable whose value trades processing rate against
// accuracy (sampling rate, summary size, ...). The middleware's controller
// rewrites the value each control period; the processor polls
// suggested_value() once per iteration, exactly as in the paper's Sampler
// example.
#pragma once

#include <atomic>
#include <string>
#include <utility>
#include <vector>

#include "gates/common/types.hpp"

namespace gates::core {

class AdjustmentParameter {
 public:
  struct Spec {
    std::string name;
    double initial = 0;
    double min_value = 0;
    double max_value = 1;
    /// Granularity: suggested values are quantized to multiples of this
    /// above min_value. 0 disables quantization.
    double increment = 0;
    ParamDirection direction = ParamDirection::kIncreaseSlowsDown;
  };

  explicit AdjustmentParameter(Spec spec);

  const Spec& spec() const { return spec_; }
  const std::string& name() const { return spec_.name; }

  /// Current middleware-suggested value (the paper's getSuggestedValue()).
  /// Thread-safe: the rt engine's control thread writes while stage threads
  /// read.
  double suggested_value() const {
    return value_.load(std::memory_order_relaxed);
  }

  /// Sets the value, clamping to [min,max] and quantizing to the increment.
  /// Returns the value actually stored.
  double set_value(double v);

  /// Appends a (time, value) sample; called by the engine's control loop
  /// only, so it needs no locking.
  void record(TimePoint t) {
    trajectory_.emplace_back(t, suggested_value());
  }
  const std::vector<std::pair<TimePoint, double>>& trajectory() const {
    return trajectory_;
  }

 private:
  Spec spec_;
  std::atomic<double> value_;
  std::vector<std::pair<TimePoint, double>> trajectory_;
};

}  // namespace gates::core
