// Run reports: everything the benches and EXPERIMENTS.md tables read out of
// an engine run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gates/common/stats.hpp"
#include "gates/common/types.hpp"
#include "gates/core/migration.hpp"
#include "gates/obs/attribution.hpp"
#include "gates/obs/metrics.hpp"
#include "gates/obs/trace.hpp"

namespace gates::core {

struct StageReport {
  std::string name;
  NodeId node = kInvalidNode;
  std::uint64_t packets_processed = 0;
  std::uint64_t records_processed = 0;
  std::uint64_t bytes_processed = 0;
  std::uint64_t packets_emitted = 0;
  std::uint64_t packets_dropped = 0;
  Duration busy_time = 0;
  /// Queue length sampled once per control period.
  RunningStats queue_length;
  /// Per-packet latency from packet creation (at the source or the emitting
  /// stage) to the end of this stage's service — the "real-time" the
  /// middleware protects. Sinks' values are the end-to-end figures.
  RunningStats packet_latency;
  std::uint64_t overload_exceptions_sent = 0;
  std::uint64_t underload_exceptions_sent = 0;
  std::uint64_t exceptions_received = 0;
  /// Final dtilde/C at end of run.
  double final_normalized_dtilde = 0;
  /// Replica pool accounting (1/1 for serial stages).
  std::size_t final_replicas = 1;
  std::size_t max_replicas_used = 1;
  /// (time, value) trajectory of each adjustment parameter.
  std::vector<std::pair<std::string, std::vector<std::pair<TimePoint, double>>>>
      parameter_trajectories;
};

/// One node failure and what the middleware did about it.
struct FailureReport {
  NodeId node = kInvalidNode;
  /// Stage the failure took down (one entry per affected stage).
  std::string stage;
  TimePoint failed_at = 0;
  /// When the failure detector declared the node down (lease expiry).
  TimePoint detected_at = 0;
  enum class Outcome {
    /// Failover disabled or replay exhausted: EOS raised on the stage's
    /// behalf, its in-flight data lost (the legacy degradation).
    kEosOnBehalf,
    /// Stage re-placed on a surviving node and replayed.
    kRecovered,
    /// Every re-placement attempt failed; degraded to EOS-on-behalf.
    kAbandoned,
    /// Run ended before the failover path resolved.
    kUnresolved,
  };
  Outcome outcome = Outcome::kUnresolved;
  /// Node hosting the replacement (kInvalidNode unless kRecovered).
  NodeId recovered_on = kInvalidNode;
  TimePoint recovered_at = 0;
  /// Re-placement attempts made (>= 1 once detection fired).
  std::size_t attempts = 0;
  /// Packets re-sent from upstream retention buffers.
  std::uint64_t packets_replayed = 0;
  /// Unacked packets evicted from bounded retention — the loss window.
  std::uint64_t packets_lost_retention = 0;

  Duration detection_latency() const { return detected_at - failed_at; }

  static const char* outcome_name(Outcome o) {
    switch (o) {
      case Outcome::kEosOnBehalf: return "eos-on-behalf";
      case Outcome::kRecovered: return "recovered";
      case Outcome::kAbandoned: return "abandoned";
      case Outcome::kUnresolved: return "unresolved";
    }
    return "?";
  }
};

struct LinkReport {
  std::string name;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  /// Dropped by the link's loss process (kDrop impairments only).
  std::uint64_t messages_lost = 0;
  /// Extra transmissions charged by kRetransmit impairments.
  std::uint64_t messages_retransmitted = 0;
  double utilization = 0;
  Duration stalled_time = 0;
  RunningStats queue_length;
  std::uint64_t overload_exceptions_sent = 0;
  std::uint64_t underload_exceptions_sent = 0;
};

/// Packet-path allocation accounting over one run: start-to-end deltas of
/// the global PayloadArena counters plus ByteBuffer deep copies, reduced to
/// the steady-state figure the perf gate watches — heap allocations per
/// packet processed (pool/arena hits are not heap allocations; slab carves
/// and fallback blocks are).
struct AllocationReport {
  std::uint64_t pool_acquired = 0;
  std::uint64_t pool_recycled = 0;
  std::uint64_t pool_heap_fallback = 0;
  std::uint64_t pool_slab_allocs = 0;
  std::uint64_t payload_deep_copies = 0;
  /// Sum of stage packets_processed — the denominator below.
  std::uint64_t packets = 0;

  double hit_rate() const {
    return pool_acquired == 0
               ? 1.0
               : static_cast<double>(pool_recycled) /
                     static_cast<double>(pool_acquired);
  }
  double allocations_per_packet() const {
    return packets == 0 ? 0.0
                        : static_cast<double>(pool_slab_allocs +
                                              pool_heap_fallback) /
                              static_cast<double>(packets);
  }
};

/// The machine and engine configuration a run executed on, recorded into
/// every report (and therefore every $GATES_BENCH_JSON row): a throughput
/// figure from a 1-CPU CI container and one from a 32-core dev box are not
/// comparable, and the row must say which it was.
struct HostInfo {
  /// CPUs online and visible to this process (sysconf(_SC_NPROCESSORS_ONLN)).
  int cpus = 0;
  /// std::thread::hardware_concurrency() (0 when the runtime cannot tell).
  unsigned hardware_concurrency = 0;
  /// Whether worker threads were pinned to cores (RtEngine --pin).
  bool pinned = false;
  /// Idle strategy in effect ("spin" | "balanced" | "park"; "" for engines
  /// without one, i.e. the SimEngine).
  std::string idle;
  /// PayloadArena bytes on explicit huge-page mappings at end of run (0
  /// when the host reserves none and the arena fell back to THP/heap).
  std::uint64_t arena_hugepage_bytes = 0;

  /// cpus + hardware_concurrency of the running host; the engine fills in
  /// the configuration fields.
  static HostInfo detect();
};

struct RunReport {
  /// Virtual (SimEngine) or wall (RtEngine) seconds from start to the last
  /// stage finishing — the paper's "execution time".
  Duration execution_time = 0;
  bool completed = false;  // false = hit the time horizon before EOS
  std::uint64_t events_executed = 0;
  std::vector<StageReport> stages;
  std::vector<LinkReport> links;
  /// Node failures observed during the run, in failure-time order.
  std::vector<FailureReport> failures;
  /// Live migrations attempted during the run, in request-time order.
  std::vector<MigrationRecord> migrations;
  /// End-of-run MetricsRegistry snapshot (empty when metrics were disabled).
  obs::MetricsSnapshot metrics;
  /// Trace volume/drop accounting (all-zero when tracing was disabled) —
  /// records whether the persisted event log is complete.
  obs::TraceSummary trace_summary;
  /// End-of-run bottleneck ranking (empty when the Profiler was disabled).
  obs::BottleneckReport attribution;
  /// Packet-path allocation deltas (all-zero for engines that do not track
  /// them — currently populated by the RtEngine).
  AllocationReport allocation;
  /// Where and how the run executed.
  HostInfo host;

  const StageReport* stage(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }

  /// Machine-readable form of everything above, including the full parameter
  /// trajectories (gates_run --emit-report-json, bench artifacts).
  std::string to_json() const;
};

}  // namespace gates::core
