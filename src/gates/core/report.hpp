// Run reports: everything the benches and EXPERIMENTS.md tables read out of
// an engine run.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "gates/common/stats.hpp"
#include "gates/common/types.hpp"

namespace gates::core {

struct StageReport {
  std::string name;
  NodeId node = kInvalidNode;
  std::uint64_t packets_processed = 0;
  std::uint64_t records_processed = 0;
  std::uint64_t bytes_processed = 0;
  std::uint64_t packets_emitted = 0;
  std::uint64_t packets_dropped = 0;
  Duration busy_time = 0;
  /// Queue length sampled once per control period.
  RunningStats queue_length;
  /// Per-packet latency from packet creation (at the source or the emitting
  /// stage) to the end of this stage's service — the "real-time" the
  /// middleware protects. Sinks' values are the end-to-end figures.
  RunningStats packet_latency;
  std::uint64_t overload_exceptions_sent = 0;
  std::uint64_t underload_exceptions_sent = 0;
  std::uint64_t exceptions_received = 0;
  /// Final dtilde/C at end of run.
  double final_normalized_dtilde = 0;
  /// (time, value) trajectory of each adjustment parameter.
  std::vector<std::pair<std::string, std::vector<std::pair<TimePoint, double>>>>
      parameter_trajectories;
};

struct LinkReport {
  std::string name;
  std::uint64_t messages_delivered = 0;
  std::uint64_t bytes_delivered = 0;
  double utilization = 0;
  Duration stalled_time = 0;
  RunningStats queue_length;
  std::uint64_t overload_exceptions_sent = 0;
  std::uint64_t underload_exceptions_sent = 0;
};

struct RunReport {
  /// Virtual (SimEngine) or wall (RtEngine) seconds from start to the last
  /// stage finishing — the paper's "execution time".
  Duration execution_time = 0;
  bool completed = false;  // false = hit the time horizon before EOS
  std::uint64_t events_executed = 0;
  std::vector<StageReport> stages;
  std::vector<LinkReport> links;

  const StageReport* stage(const std::string& name) const {
    for (const auto& s : stages) {
      if (s.name == name) return &s;
    }
    return nullptr;
  }
};

}  // namespace gates::core
