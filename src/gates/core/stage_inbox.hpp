// Stage input buffer for the real-time engine.
//
// Two interchangeable implementations behind one blocking, batch-oriented
// interface:
//
//  - mutex mode (default): a BoundedQueue. Correct for any number of
//    producers — fan-in stages, and any stage when simplicity wins.
//  - SPSC mode: the lock-free SpscRing as the fast path for 1:1 flows
//    (exactly one upstream thread feeding exactly one worker thread), with
//    a condvar fallback that preserves blocking push/pop semantics. The
//    engine selects this at setup time once the flow graph is known.
//
// Control-plane producers — failover replay re-injection and EOS-on-behalf,
// which run on the control thread and would violate the ring's single-
// producer invariant — go through push_aux(), a small mutex-guarded side
// queue the consumer folds into its drains. It is intentionally unbounded:
// its occupancy is bounded externally by the replay retention depth.
//
// Sleep/wake protocol (SPSC mode): pushes and pops are lock-free; a side
// that finds the ring full (producer) or empty (consumer) first runs its
// IdleStrategy (spin→yield per the configured mode), and only when that
// says to park does it register itself in a waiting flag, re-check, and
// sleep on a condvar. The opposite side publishes its batch, issues a
// seq_cst fence, and only takes the wakeup mutex when the flag says someone
// is actually asleep — so the steady-state path never touches the mutex,
// and the store(batch)/load(flag) vs store(flag)/load(batch) races that
// would lose a wakeup are fenced out.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "gates/common/bounded_queue.hpp"
#include "gates/common/check.hpp"
#include "gates/common/idle_strategy.hpp"
#include "gates/common/spsc_ring.hpp"

namespace gates::core {

template <typename T>
class StageInbox {
 public:
  explicit StageInbox(std::size_t capacity)
      : capacity_(capacity), queue_(capacity) {}

  /// Switches to the SPSC fast path. Only valid before any concurrent use;
  /// the engine calls this from setup() for stages with exactly one
  /// data-plane producer.
  void use_spsc() {
    GATES_CHECK(ring_ == nullptr);
    ring_ = std::make_unique<SpscRing<T>>(capacity_);
  }
  bool spsc() const { return ring_ != nullptr; }

  /// Sets the spin/yield/park behavior for full/empty waits (SPSC mode).
  /// Call before concurrent use.
  void set_idle(const IdleConfig& config) { idle_ = config; }

  // -- producer side (the single data-plane producer in SPSC mode) -----------

  /// Blocking push; returns false iff closed.
  bool push(T item) {
    if (ring_ == nullptr) return queue_.push(std::move(item));
    std::vector<T> one;
    one.push_back(std::move(item));
    return push_all(one) == 1;
  }

  /// Pushes every item, blocking as space frees. Returns the number pushed
  /// (< items.size() iff closed mid-way). On full success `items` is left
  /// cleared.
  std::size_t push_all(std::vector<T>& items) {
    if (ring_ == nullptr) return queue_.push_all(items);
    std::size_t pushed = 0;
    IdleStrategy idle(idle_);
    while (pushed < items.size()) {
      if (closed_.load(std::memory_order_acquire)) break;
      const std::size_t n = ring_->try_push_n(items, pushed);
      pushed += n;
      if (n != 0) {
        wake(consumer_waiting_, not_empty_);
        idle.reset();
        continue;
      }
      // Ring full: spin/yield per the idle mode, then park until the
      // consumer frees slots.
      if (!idle.should_park()) continue;
      std::unique_lock<std::mutex> lock(sleep_mu_);
      producer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      not_full_.wait(lock, [&] {
        return ring_->size() < ring_->capacity() ||
               closed_.load(std::memory_order_acquire);
      });
      producer_waiting_.store(false, std::memory_order_relaxed);
      idle.reset();
    }
    if (pushed == items.size()) items.clear();
    return pushed;
  }

  /// Non-blocking single push (SPSC mode, producer thread): on success
  /// `fill(slot)` writes the next ring slot in place; returns false — and
  /// calls nothing — when the ring is full, the inbox is closed, or in
  /// mutex mode. Deliberately does NOT wake the consumer: the per-push
  /// seq_cst fence the wake protocol needs would cost more than the push
  /// itself, so callers batch wakeups through wake_consumer() once per
  /// flush boundary — and MUST call it before blocking themselves, or a
  /// parked consumer sleeps through the pushed items.
  template <typename F>
  bool try_produce(F&& fill) {
    if (ring_ == nullptr || closed_.load(std::memory_order_acquire)) {
      return false;
    }
    return ring_->try_produce(fill);
  }

  /// Pairs with try_produce(): one fence + parked-flag check covering every
  /// un-woken push since the last call.
  void wake_consumer() { wake(consumer_waiting_, not_empty_); }

  /// Control-plane push from any thread (replay re-injection, EOS on a
  /// crashed stage's behalf). Never blocks in SPSC mode; returns false iff
  /// closed.
  bool push_aux(T item) {
    if (ring_ == nullptr) return queue_.push(std::move(item));
    {
      std::lock_guard<std::mutex> lock(aux_mu_);
      if (closed_.load(std::memory_order_acquire)) return false;
      aux_.push_back(std::move(item));
      aux_size_.store(aux_.size(), std::memory_order_release);
    }
    wake(consumer_waiting_, not_empty_);
    return true;
  }

  // -- consumer side (single worker thread) ----------------------------------

  /// Moves up to `max` items into `out`, blocking until at least one is
  /// available or the inbox is closed and drained (returns 0).
  std::size_t drain(std::vector<T>& out, std::size_t max) {
    if (ring_ == nullptr) return queue_.drain(out, max);
    return drain_spsc(out, max, -1.0);
  }

  /// As drain(), but waits at most `timeout_seconds`; 0 on timeout too
  /// (check closed() to distinguish, as with BoundedQueue::pop_for).
  std::size_t drain_for(std::vector<T>& out, std::size_t max,
                        double timeout_seconds) {
    if (ring_ == nullptr) return queue_.drain_for(out, max, timeout_seconds);
    return drain_spsc(out, max, timeout_seconds);
  }

  /// In-place drain (SPSC mode only): applies `f` to up to `max` items
  /// directly in the ring slots — no move into a batch vector — blocking
  /// like drain() until at least one item is handled or the inbox is closed
  /// and empty (returns 0). Aux-channel items are pulled into a scratch
  /// buffer and handed to `f` outside the aux lock, so `f` may block (emit
  /// downstream) without stalling control-plane producers.
  template <typename F>
  std::size_t consume(F&& f, std::size_t max) {
    GATES_CHECK(ring_ != nullptr);
    std::size_t n = take_in_place(f, max);
    if (n != 0) {
      wake(producer_waiting_, not_full_);
      return n;
    }
    IdleStrategy idle(idle_);
    while (!idle.should_park()) {
      n = take_in_place(f, max);
      if (n != 0) {
        wake(producer_waiting_, not_full_);
        return n;
      }
      if (closed_.load(std::memory_order_acquire)) return 0;
    }
    {
      std::unique_lock<std::mutex> lock(sleep_mu_);
      consumer_waiting_.store(true, std::memory_order_relaxed);
      std::atomic_thread_fence(std::memory_order_seq_cst);
      // Unlike drain_spsc the predicate only peeks at sizes: `f` must not
      // run under sleep_mu_ (it may park on a downstream inbox). Items seen
      // by the predicate can only be removed by this thread, so the
      // post-unlock take below cannot come up empty unless we closed.
      not_empty_.wait(lock, [&] {
        return !ring_->empty() ||
               aux_size_.load(std::memory_order_acquire) != 0 ||
               closed_.load(std::memory_order_acquire);
      });
      consumer_waiting_.store(false, std::memory_order_relaxed);
    }
    n = take_in_place(f, max);
    if (n != 0) wake(producer_waiting_, not_full_);
    return n;
  }

  // -- control ---------------------------------------------------------------

  /// Wakes all waiters; subsequent pushes fail, drains empty what remains.
  void close() {
    closed_.store(true, std::memory_order_release);
    queue_.close();
    if (ring_ != nullptr) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      not_empty_.notify_all();
      not_full_.notify_all();
    }
  }

  /// Reverses close() and discards queued input (crash-restart path: the
  /// revived consumer must not see its predecessor's undrained input). Only
  /// call when no consumer thread is running; the caller momentarily acts
  /// as the consumer, which is legal because the dead worker was joined.
  void reopen() {
    queue_.reopen();
    if (ring_ != nullptr) {
      std::vector<T> discard;
      while (ring_->try_pop_n(discard, ring_->capacity()) != 0) {
        discard.clear();
      }
      std::lock_guard<std::mutex> lock(aux_mu_);
      aux_.clear();
      aux_size_.store(0, std::memory_order_release);
    }
    closed_.store(false, std::memory_order_release);
    if (ring_ != nullptr) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      not_full_.notify_all();
    }
  }

  bool closed() const {
    return ring_ == nullptr ? queue_.closed()
                            : closed_.load(std::memory_order_acquire);
  }

  std::size_t size() const {
    if (ring_ == nullptr) return queue_.size();
    return ring_->size() + aux_size_.load(std::memory_order_acquire);
  }
  std::size_t capacity() const {
    return ring_ == nullptr ? queue_.capacity() : ring_->capacity();
  }

 private:
  /// Lock-free grab from ring then aux; returns how many landed in `out`.
  std::size_t take(std::vector<T>& out, std::size_t max) {
    std::size_t n = ring_->try_pop_n(out, max);
    if (n < max && aux_size_.load(std::memory_order_acquire) != 0) {
      std::lock_guard<std::mutex> lock(aux_mu_);
      while (n < max && !aux_.empty()) {
        out.push_back(std::move(aux_.front()));
        aux_.pop_front();
        ++n;
      }
      aux_size_.store(aux_.size(), std::memory_order_release);
    }
    return n;
  }

  /// consume()'s lock-free grab: ring items in place, then aux via scratch.
  template <typename F>
  std::size_t take_in_place(F& f, std::size_t max) {
    std::size_t n = ring_->consume_n(f, max);
    if (n < max && aux_size_.load(std::memory_order_acquire) != 0) {
      aux_scratch_.clear();
      {
        std::lock_guard<std::mutex> lock(aux_mu_);
        while (n + aux_scratch_.size() < max && !aux_.empty()) {
          aux_scratch_.push_back(std::move(aux_.front()));
          aux_.pop_front();
        }
        aux_size_.store(aux_.size(), std::memory_order_release);
      }
      for (T& item : aux_scratch_) f(item);
      n += aux_scratch_.size();
      aux_scratch_.clear();
    }
    return n;
  }

  std::size_t drain_spsc(std::vector<T>& out, std::size_t max,
                         double timeout_seconds) {
    std::size_t n = take(out, max);
    if (n != 0) {
      wake(producer_waiting_, not_full_);
      return n;
    }
    // Spin/yield phase before parking. Skipped for timed drains: those are
    // failover-beat polls where latency is bounded by the timeout anyway.
    if (timeout_seconds < 0) {
      IdleStrategy idle(idle_);
      while (!idle.should_park()) {
        n = take(out, max);
        if (n != 0) {
          wake(producer_waiting_, not_full_);
          return n;
        }
        if (closed_.load(std::memory_order_acquire)) return 0;
      }
    }
    std::unique_lock<std::mutex> lock(sleep_mu_);
    consumer_waiting_.store(true, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_seq_cst);
    auto ready = [&] {
      n = take(out, max);
      return n != 0 || closed_.load(std::memory_order_acquire);
    };
    if (timeout_seconds < 0) {
      not_empty_.wait(lock, ready);
    } else {
      not_empty_.wait_for(
          lock, std::chrono::duration<double>(timeout_seconds), ready);
    }
    consumer_waiting_.store(false, std::memory_order_relaxed);
    lock.unlock();
    if (n != 0) wake(producer_waiting_, not_full_);
    return n;
  }

  /// Post-publish wakeup: fence so the just-published batch and the flag
  /// read can't reorder, then notify only if the peer is actually asleep.
  void wake(std::atomic<bool>& peer_waiting, std::condition_variable& cv) {
    std::atomic_thread_fence(std::memory_order_seq_cst);
    if (peer_waiting.load(std::memory_order_relaxed)) {
      std::lock_guard<std::mutex> lock(sleep_mu_);
      cv.notify_all();
    }
  }

  const std::size_t capacity_;
  BoundedQueue<T> queue_;  // mutex mode (also holds capacity semantics)

  // SPSC mode state; unused (ring_ == nullptr) in mutex mode. Read-mostly
  // fields (ring_, idle_, closed_) share a line; the waiting flags each get
  // their own line because the *peer* polls them on every publish — a flag
  // sharing a line with state its owner writes per-batch would ping-pong.
  std::unique_ptr<SpscRing<T>> ring_;
  IdleConfig idle_;
  std::atomic<bool> closed_{false};
  alignas(detail::kCacheLine) std::atomic<bool> consumer_waiting_{false};
  alignas(detail::kCacheLine) std::atomic<bool> producer_waiting_{false};
  alignas(detail::kCacheLine) std::mutex sleep_mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  mutable std::mutex aux_mu_;
  std::deque<T> aux_;
  std::atomic<std::size_t> aux_size_{0};
  /// Consumer-thread scratch for consume()'s aux hand-off.
  std::vector<T> aux_scratch_;
};

static_assert(alignof(StageInbox<int>) == detail::kCacheLine,
              "waiting flags must not share a cache line across sides");

/// Order-preserving merge window for a replicated stage.
///
/// The dispatcher stamps every input with a dense arrival sequence and
/// acquire()s a window slot before handing it to a replica; replicas deposit
/// their result (emissions + ack bookkeeping) with complete(). Results leave
/// strictly in sequence order through a *release election*: whichever thread
/// completes the head claims the releaser role, drains every contiguous
/// ready slot, performs all downstream effects, and only then ends the
/// claim. claim_release()/end_release() bracket the releaser's critical
/// region under the merge mutex, so the non-atomic state touched on the
/// release path (staged route batches, ack scratch buffers) is handed from
/// releaser to releaser with proper happens-before. The caller must loop
///
///   while (merge.claim_release()) {
///     while (auto c = merge.pop_ready()) { /* stage effects of *c */ }
///     /* flush effects downstream, ack inputs */
///     merge.end_release();
///   }
///
/// re-checking claim_release() after end_release(): a completion that lands
/// between the last empty pop_ready() and end_release() is picked up by the
/// next claim (by this thread or the completing one), never lost.
///
/// Capacity doubles as backpressure: acquire() blocks while the sequence is
/// a full window ahead of the release point, bounding in-flight work.
template <typename C>
class ReorderMerge {
 public:
  explicit ReorderMerge(std::size_t window) : window_(window), slots_(window) {
    GATES_CHECK(window > 0);
  }

  /// Sets the spin/yield/park behavior for acquire() waits. Call before
  /// concurrent use.
  void set_idle(const IdleConfig& config) { idle_ = config; }

  /// Dispatcher side: waits for sequence `seq` to fit in the window.
  /// Returns false iff closed.
  bool acquire(std::uint64_t seq) {
    // Fast path off the published release point: no mutex while the window
    // has room. The lock-free true return is safe because every later
    // dispatcher action on this slot (complete()) re-synchronizes on mu_,
    // and base_ only grows — a stale read errs toward waiting.
    IdleStrategy idle(idle_);
    while (!closed_pub_.load(std::memory_order_acquire)) {
      if (seq < base_pub_.load(std::memory_order_acquire) + window_) {
        return true;
      }
      if (idle.should_park()) break;
    }
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [&] {
      return seq < base_ + window_ || closed_;
    });
    return !closed_;
  }

  /// Deposits the result for an acquired sequence. Dropped if closed.
  void complete(std::uint64_t seq, C completion) {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    GATES_CHECK(seq >= base_ && seq < base_ + window_);
    Slot& slot = slots_[seq % window_];
    GATES_CHECK(!slot.filled);
    slot.value = std::move(completion);
    slot.filled = true;
  }

  /// Tries to become the releaser: succeeds iff nobody holds the claim and
  /// the head-of-window result is ready.
  bool claim_release() {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_ || releasing_ || !slots_[base_ % window_].filled) return false;
    releasing_ = true;
    return true;
  }

  /// Pops the next in-order result; only valid while holding the claim.
  std::optional<C> pop_ready() {
    std::unique_lock<std::mutex> lock(mu_);
    Slot& slot = slots_[base_ % window_];
    if (closed_ || !slot.filled) return std::nullopt;
    std::optional<C> out(std::move(slot.value));
    slot.value = C{};
    slot.filled = false;
    ++base_;
    base_pub_.store(base_, std::memory_order_release);
    lock.unlock();
    not_full_.notify_all();
    return out;
  }

  /// Ends the claim. All downstream effects of popped results must have
  /// happened before this call.
  void end_release() {
    std::lock_guard<std::mutex> lock(mu_);
    releasing_ = false;
  }

  /// Unblocks acquire() waiters and discards pending results (crash path).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      closed_pub_.store(true, std::memory_order_release);
    }
    not_full_.notify_all();
  }

  /// Returns to the initial state (sequence restarts at 0). Only call when
  /// no dispatcher/replica threads are running.
  void reset() {
    std::lock_guard<std::mutex> lock(mu_);
    for (Slot& slot : slots_) {
      slot.value = C{};
      slot.filled = false;
    }
    base_ = 0;
    base_pub_.store(0, std::memory_order_release);
    closed_ = false;
    closed_pub_.store(false, std::memory_order_release);
    releasing_ = false;
  }

  std::size_t window() const { return window_; }
  /// Next sequence to be released (test/diagnostic).
  std::uint64_t release_base() const {
    std::lock_guard<std::mutex> lock(mu_);
    return base_;
  }

 private:
  struct Slot {
    C value{};
    bool filled = false;
  };

  const std::size_t window_;
  IdleConfig idle_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::vector<Slot> slots_;
  std::uint64_t base_ = 0;
  bool closed_ = false;
  bool releasing_ = false;
  // Dispatcher-polled mirrors of base_/closed_, on their own line so the
  // acquire() spin doesn't contend with the mutex-guarded release state.
  alignas(detail::kCacheLine) std::atomic<std::uint64_t> base_pub_{0};
  std::atomic<bool> closed_pub_{false};
};

static_assert(alignof(ReorderMerge<int>) == detail::kCacheLine,
              "acquire() spin mirrors must sit on their own cache line");

}  // namespace gates::core
